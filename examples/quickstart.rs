//! Quickstart: train a small cost-sensitive PPN on the Crypto-A preset and
//! backtest it against a uniform CRP baseline.
//!
//! ```sh
//! cargo run --release -p ppn-repro --example quickstart
//! ```

use ppn_repro::core::prelude::*;
use ppn_repro::market::{run_backtest, test_range, Dataset, Preset};

fn main() {
    // 1. Load a dataset (synthetic stand-in for the paper's Poloniex feed).
    let ds = Dataset::load(Preset::CryptoA);
    println!(
        "Dataset {}: {} assets, {} train / {} test periods",
        ds.preset.name(),
        ds.assets(),
        ds.train_len(),
        ds.test_len()
    );

    // 2. Train PPN by direct policy gradient on the cost-sensitive reward.
    //    (A short run for demo purposes — the experiment harness trains longer.)
    let reward = RewardConfig::default(); // λ=1e−4, γ=1e−3, ψ=0.25%
    let train = TrainConfig { steps: 120, batch: 12, ..TrainConfig::default() };
    println!("Training PPN for {} steps ...", train.steps);
    let (mut ppn, report) = train_policy(&ds, Variant::Ppn, reward, train);
    println!("final training reward: {:+.5}", report.final_reward);

    // 3. Backtest over the held-out test split at the paper's 0.25% cost.
    let result = run_backtest(&ds, &mut ppn, 0.0025, test_range(&ds));
    let m = result.metrics;
    println!("\nPPN on the test split:");
    println!(
        "  APV {:.3}  SR {:.2}%  CR {:.2}  MDD {:.1}%  TO {:.3}",
        m.apv,
        m.sharpe_pct,
        m.calmar,
        m.mdd * 100.0,
        m.turnover
    );

    // 4. Compare with uniform CRP under the same costs.
    let crp = run_backtest(&ds, &mut ppn_repro::baselines::Crp, 0.0025, test_range(&ds));
    println!("CRP on the test split:");
    println!(
        "  APV {:.3}  SR {:.2}%  CR {:.2}  MDD {:.1}%  TO {:.3}",
        crp.metrics.apv,
        crp.metrics.sharpe_pct,
        crp.metrics.calmar,
        crp.metrics.mdd * 100.0,
        crp.metrics.turnover
    );
}
