//! Demonstrates the cost-sensitive reward in action (§6.4 of the paper):
//! the same PPN trained with a small vs a large transaction trade-off γ.
//! With γ large, the network learns to stop trading — turnover collapses and
//! the wealth curve goes flat, exactly the behaviour of the paper's Fig. 6.
//!
//! Also shows the exact implicit-cost solver against its Proposition-4
//! bracket on a concrete rebalance.
//!
//! ```sh
//! cargo run --release -p ppn-repro --example cost_sensitivity
//! ```

use ppn_repro::core::prelude::*;
use ppn_repro::market::{cost_proportion, prop4_bounds, run_backtest, test_range, Dataset, Preset};

fn main() {
    // --- Proposition 4 on a concrete rebalance --------------------------
    let psi = 0.0025;
    let held = [0.10, 0.55, 0.20, 0.15]; // drifted holdings (cash first)
    let target = [0.40, 0.20, 0.20, 0.20];
    let sol = cost_proportion(psi, &target, &held, 1e-12);
    let (lo, hi) = prop4_bounds(psi, &target, &held);
    println!("Rebalancing {held:?} -> {target:?} at psi = {psi}");
    println!(
        "  exact cost proportion c = {:.6} (solved in {} fixed-point iterations)",
        sol.cost, sol.iterations
    );
    println!("  Proposition 4 bracket: [{lo:.6}, {hi:.6}]  ✓\n");

    // --- γ ablation ------------------------------------------------------
    let ds = Dataset::load(Preset::CryptoA);
    for gamma in [1e-4, 1e-1] {
        let reward = RewardConfig { gamma, ..RewardConfig::default() };
        let train = TrainConfig { steps: 80, batch: 12, ..TrainConfig::default() };
        println!("Training PPN-LSTM with gamma = {gamma:.0e} ({} steps) ...", train.steps);
        let (mut policy, _) = train_policy(&ds, Variant::PpnLstm, reward, train);
        let r = run_backtest(&ds, &mut policy, psi, test_range(&ds));
        println!(
            "  gamma {gamma:.0e}: APV {:.3}, average turnover {:.4}\n",
            r.metrics.apv, r.metrics.turnover
        );
    }
    println!("Expected shape: the large-gamma run trades far less (lower TO).");
}
