//! Builds a custom synthetic market with user-chosen regime structure,
//! inspects it, and shows how strategy performance flips with the regime:
//! a mean-reverting market rewards OLMAR, a trending one rewards EG.
//!
//! ```sh
//! cargo run --release -p ppn-repro --example custom_market
//! ```

use ppn_repro::baselines::{ExponentialGradient, Olmar};
use ppn_repro::market::{
    generate_paths, price_relatives, run_backtest, synthesize_ohlc, Dataset, MarketConfig, Preset,
};

fn describe(cfg: &MarketConfig, label: &str) {
    let paths = generate_paths(cfg);
    let ohlc = synthesize_ohlc(&paths, 1);
    let rels = price_relatives(&ohlc);
    let mut up = 0usize;
    for x in &rels {
        if x[1] > 1.0 {
            up += 1;
        }
    }
    println!(
        "{label}: {} assets x {} periods; asset 1 up {:.1}% of periods, final price ratio {:.2}",
        cfg.assets,
        cfg.periods,
        100.0 * up as f64 / rels.len() as f64,
        paths.at(cfg.periods - 1, 0) / paths.at(0, 0),
    );
}

fn main() {
    // Two handcrafted regimes.
    let reverting = MarketConfig {
        assets: 8,
        periods: 4_000,
        momentum: -0.1,
        reversion: 0.08,
        ema_decay: 0.2,
        sigma: 0.012,
        seed: 42,
        ..MarketConfig::default()
    };
    let trending = MarketConfig {
        assets: 8,
        periods: 4_000,
        momentum: 0.25,
        reversion: 0.0,
        sigma: 0.006,
        seed: 42,
        ..MarketConfig::default()
    };
    describe(&reverting, "mean-reverting market");
    describe(&trending, "trending market");

    // The packaged presets wire such configs into full datasets; compare the
    // two strategy families on the strongly mean-reverting Crypto-B preset
    // and the trending Crypto-C preset.
    println!("\nStrategy-vs-regime (APV over the test split, psi = 0.25%):");
    for preset in [Preset::CryptoB, Preset::CryptoC] {
        let ds = Dataset::load(preset);
        let range = ppn_repro::market::test_range(&ds);
        let olmar = run_backtest(&ds, &mut Olmar::new(10.0, 5), 0.0025, range.clone());
        let eg = run_backtest(&ds, &mut ExponentialGradient::new(0.05), 0.0025, range);
        println!(
            "  {:<9} OLMAR {:>9.3} | EG {:>7.3}  -> {}",
            preset.name(),
            olmar.metrics.apv,
            eg.metrics.apv,
            if olmar.metrics.apv > eg.metrics.apv { "reversion wins" } else { "trend wins" }
        );
    }
}
