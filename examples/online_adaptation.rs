//! Online rolling adaptation (optional extension, EIIE-style): compare a
//! frozen PPN-LSTM against one that keeps taking gradient steps during the
//! test period, and demonstrate checkpointing the trained network.
//!
//! ```sh
//! cargo run --release -p ppn-repro --example online_adaptation
//! ```

use ppn_repro::core::prelude::*;
use ppn_repro::core::PolicyNet;
use ppn_repro::market::{run_backtest, Dataset, Preset};
use std::sync::Arc;

fn main() {
    let ds = Arc::new(Dataset::load(Preset::CryptoA));
    let range = ds.split..ds.split + 200;
    let reward = RewardConfig::default();
    let pretrain = TrainConfig { steps: 100, batch: 12, ..TrainConfig::default() };

    // Frozen policy.
    println!("Pre-training the frozen policy ({} steps) ...", pretrain.steps);
    let (mut frozen, _) = train_policy(&ds, Variant::PpnLstm, reward, pretrain.clone());
    let r_frozen = run_backtest(&ds, &mut frozen, 0.0025, range.clone());

    // Checkpoint round-trip: save, reload, verify identical behaviour.
    let path = std::env::temp_dir().join("ppn_online_example.json");
    frozen.net.save(&path).expect("save checkpoint");
    let reloaded = PolicyNet::load(&path).expect("load checkpoint");
    let mut reloaded_policy = NetPolicy::new(reloaded);
    let r_reload = run_backtest(&ds, &mut reloaded_policy, 0.0025, range.clone());
    assert_eq!(r_frozen.metrics.apv, r_reload.metrics.apv);
    println!("checkpoint round-trip OK ({})\n", path.display());

    // Online policy: 2 extra gradient steps per live period. Built from the
    // shared `Arc` handle — the resulting `OnlineNetPolicy<'static>` owns
    // its dataset, the same construction the `ppn-stream` updater uses to
    // move a policy onto its feed thread.
    println!("Running the online-adapting policy (2 steps/period) ...");
    let mut online: OnlineNetPolicy<'static> =
        OnlineNetPolicy::new(Arc::clone(&ds), Variant::PpnLstm, reward, pretrain, 2);
    let r_online = run_backtest(&ds, &mut online, 0.0025, range);

    println!("\nover {} test periods:", r_frozen.records.len());
    println!(
        "  frozen  APV {:.3}  SR {:.2}%  TO {:.3}",
        r_frozen.metrics.apv, r_frozen.metrics.sharpe_pct, r_frozen.metrics.turnover
    );
    println!(
        "  online  APV {:.3}  SR {:.2}%  TO {:.3}",
        r_online.metrics.apv, r_online.metrics.sharpe_pct, r_online.metrics.turnover
    );
    println!("\n(Online adaptation keeps learning from the newest periods — the");
    println!(" paper's Remark 3 data-efficiency argument applies unchanged.)");
}
