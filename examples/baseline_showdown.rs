//! Runs the full classic-baseline suite (§6.1.1 of the paper) on a chosen
//! dataset and prints a Table-3-style comparison — no training involved.
//!
//! ```sh
//! cargo run --release -p ppn-repro --example baseline_showdown [crypto-a|crypto-b|crypto-c|crypto-d|sp500]
//! ```

use ppn_repro::baselines::standard_suite;
use ppn_repro::market::{run_backtest, test_range, Dataset, Preset};

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "crypto-b".into());
    let preset = match arg.as_str() {
        "crypto-a" => Preset::CryptoA,
        "crypto-b" => Preset::CryptoB,
        "crypto-c" => Preset::CryptoC,
        "crypto-d" => Preset::CryptoD,
        "sp500" => Preset::Sp500,
        other => {
            eprintln!("unknown preset {other}; use crypto-a..d or sp500");
            std::process::exit(2);
        }
    };
    let ds = Dataset::load(preset);
    let range = test_range(&ds);
    println!(
        "{} — {} assets, {} test periods, psi = 0.25%\n",
        preset.name(),
        ds.assets(),
        range.len()
    );
    println!(
        "{:<10} {:>10} {:>8} {:>10} {:>8} {:>8}",
        "Algo", "APV", "SR(%)", "CR", "MDD(%)", "TO"
    );
    for mut p in standard_suite(&ds, range.clone()) {
        let r = run_backtest(&ds, p.as_mut(), 0.0025, range.clone());
        let m = r.metrics;
        println!(
            "{:<10} {:>10.3} {:>8.2} {:>10.2} {:>8.1} {:>8.3}",
            r.name,
            m.apv,
            m.sharpe_pct,
            m.calmar,
            m.mdd * 100.0,
            m.turnover
        );
    }
}
