//! Cross-crate integration tests: the full train → backtest → metrics flow
//! spanning `ppn-market`, `ppn-baselines`, `ppn-core` and `ppn-tensor`.

use ppn_repro::baselines::Crp;
use ppn_repro::core::prelude::*;
use ppn_repro::market::{run_backtest, test_range, Dataset, Preset};

fn tiny_train(steps: usize) -> TrainConfig {
    TrainConfig { steps, batch: 8, seed: 7, ..TrainConfig::default() }
}

#[test]
fn train_and_backtest_round_trip() {
    let ds = Dataset::load(Preset::CryptoA);
    let (mut policy, report) =
        train_policy(&ds, Variant::PpnLstm, RewardConfig::default(), tiny_train(30));
    assert!(report.rewards.len() == 30);
    assert!(report.rewards.iter().all(|r| r.is_finite()));
    let r = run_backtest(&ds, &mut policy, 0.0025, ds.split..ds.split + 60);
    assert_eq!(r.records.len(), 60);
    assert!(r.metrics.apv > 0.0 && r.metrics.apv.is_finite());
    assert!(r.metrics.mdd >= 0.0 && r.metrics.mdd <= 1.0);
}

#[test]
fn deterministic_given_seed() {
    let ds = Dataset::load(Preset::CryptoA);
    let run = || {
        let (mut p, _) =
            train_policy(&ds, Variant::PpnLstm, RewardConfig::default(), tiny_train(10));
        run_backtest(&ds, &mut p, 0.0025, ds.split..ds.split + 20).metrics.apv
    };
    assert_eq!(run(), run(), "same seed must give identical results");
}

#[test]
fn different_seeds_differ() {
    let ds = Dataset::load(Preset::CryptoA);
    let run = |seed: u64| {
        let cfg = TrainConfig { seed, ..tiny_train(10) };
        let (mut p, _) = train_policy(&ds, Variant::PpnLstm, RewardConfig::default(), cfg);
        run_backtest(&ds, &mut p, 0.0025, ds.split..ds.split + 20).metrics.apv
    };
    assert_ne!(run(1), run(2));
}

#[test]
fn net_policy_and_baseline_share_harness_accounting() {
    // The same (deterministic) action sequence must produce the same wealth
    // regardless of which crate produced it — pin this by comparing a CRP
    // baseline against a replayed copy of its own actions.
    struct Replay(Vec<Vec<f64>>, usize);
    impl ppn_repro::market::SequentialPolicy for Replay {
        fn name(&self) -> String {
            "REPLAY".into()
        }
        fn decide_one(&mut self, _: &ppn_repro::market::DecisionContext<'_>) -> Vec<f64> {
            let a = self.0[self.1].clone();
            self.1 += 1;
            a
        }
        fn reset(&mut self) {
            self.1 = 0;
        }
    }
    let ds = Dataset::load(Preset::CryptoB);
    let range = ds.split..ds.split + 50;
    let r1 = run_backtest(&ds, &mut Crp, 0.0025, range.clone());
    let actions: Vec<Vec<f64>> = r1.records.iter().map(|r| r.action.clone()).collect();
    let r2 = run_backtest(&ds, &mut Replay(actions, 0), 0.0025, range);
    assert_eq!(r1.metrics.apv, r2.metrics.apv);
}

#[test]
fn higher_costs_never_help_a_fixed_policy() {
    let ds = Dataset::load(Preset::CryptoA);
    let apv = |psi: f64| run_backtest(&ds, &mut Crp, psi, test_range(&ds)).metrics.apv;
    let free = apv(0.0);
    let cheap = apv(0.001);
    let dear = apv(0.01);
    assert!(free >= cheap && cheap >= dear, "{free} {cheap} {dear}");
}

#[test]
fn gamma_extreme_suppresses_turnover_during_training() {
    // The paper's Table 6 shape at the extreme: a huge γ makes the policy
    // hold rather than trade. Observable directly in the trainer telemetry:
    // the batch mean turnover under γ=100 ends far below the γ=0 run's.
    use ppn_repro::core::trainer::Trainer;
    use ppn_repro::core::{NetConfig, PolicyNet};
    let ds = Dataset::load(Preset::CryptoA);
    let mean_to_tail = |gamma: f64| {
        let reward = RewardConfig { gamma, ..RewardConfig::default() };
        let cfg = NetConfig { window: 10, ..NetConfig::paper(ds.assets()) };
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let net = PolicyNet::new(Variant::PpnLstm, cfg, &mut rng);
        let mut tr = Trainer::with_net(&ds, net, reward, tiny_train(50));
        let mut tail = Vec::new();
        for i in 0..50 {
            let s = tr.step();
            if i >= 40 {
                tail.push(s.mean_turnover);
            }
        }
        tail.iter().sum::<f64>() / tail.len() as f64
    };
    let free = mean_to_tail(0.0);
    let constrained = mean_to_tail(100.0);
    assert!(constrained < free, "gamma=100 mean turnover {constrained} not below gamma=0 {free}");
}
