//! Integration tests pinning the paper's theoretical statements on live
//! simulated trajectories (Propositions 2–4, Theorems 1–2 shape).

use ppn_repro::market::{
    cost_proportion, max_turnover, prop4_bounds, run_backtest, test_range, turnover_l1, Dataset,
    Preset,
};

/// Proposition 4 over an entire high-turnover backtest: the exact implicit
/// cost stays inside the bracket at every period.
#[test]
fn prop4_bracket_holds_on_live_trajectory() {
    let ds = Dataset::load(Preset::CryptoB);
    let psi = 0.0025;
    let mut rmr = ppn_repro::baselines::Rmr::new(5.0, 5);
    let r = run_backtest(&ds, &mut rmr, psi, test_range(&ds));
    let mut prev = {
        let mut v = vec![0.0; ds.assets() + 1];
        v[0] = 1.0;
        v
    };
    for rec in &r.records {
        let sol = cost_proportion(psi, &rec.action, &prev, 1e-13);
        let (lo, hi) = prop4_bounds(psi, &rec.action, &prev);
        assert!(
            lo <= sol.cost + 1e-10 && sol.cost <= hi + 1e-10,
            "t={}: {lo} ≤ {} ≤ {hi} violated",
            rec.t,
            sol.cost
        );
        assert!(turnover_l1(&rec.action, &prev) <= max_turnover(0.0) + 1e-10);
        prev = ppn_repro::market::drifted_weights(&rec.action, ds.relative(rec.t));
    }
}

/// Proposition 2's premise: per-period relatives stay within the theorems'
/// `1/e ≤ r ≤ e` band for every preset (the generator clamps log-returns).
#[test]
fn relatives_within_theorem_band_for_all_presets() {
    for preset in Preset::all() {
        let ds = Dataset::load(preset);
        let (lo, hi) = ((-1.0f64).exp(), 1.0f64.exp());
        for t in 0..ds.relatives.len() {
            for &x in ds.relative(t) {
                assert!(x > lo && x < hi, "{}: relative {x} at t={t}", preset.name());
            }
        }
    }
}

/// Theorem 1 shape: adding the λ-variance penalty can lower the achievable
/// mean log-return by at most a λ-scaled amount. We check the *reward
/// function itself*: for any trajectory, R(λ) ≥ R(0) − λ·maxvar where the
/// variance of log-returns in the admissible band is at most (9/4)·... — the
/// band |log r| ≤ 1 caps the variance at 1, giving R(0) − R(λ) ≤ λ·1 ≤ 9λ/4.
#[test]
fn risk_penalty_gap_bounded() {
    use ppn_repro::core::reward::reward_value;
    let ds = Dataset::load(Preset::CryptoA);
    let n = ds.assets() + 1;
    let uniform = vec![1.0 / n as f64; n];
    let t0 = ds.split;
    let actions: Vec<Vec<f64>> = (0..64).map(|_| uniform.clone()).collect();
    let relatives: Vec<Vec<f64>> = (0..64).map(|i| ds.relative(t0 + i).to_vec()).collect();
    let drifted = actions.clone();
    for lambda in [1e-4, 1e-2, 1e-1, 1.0] {
        let (r_l, ..) = reward_value(&actions, &relatives, &drifted, lambda, 0.0, 0.0025);
        let (r_0, ..) = reward_value(&actions, &relatives, &drifted, 0.0, 0.0, 0.0025);
        let gap = r_0 - r_l;
        assert!(gap >= 0.0, "penalty can only reduce the reward");
        assert!(gap <= 2.25 * lambda + 1e-12, "gap {gap} exceeds (9/4)λ for λ={lambda}");
    }
}

/// Theorem 2 shape: the γ-term subtracts at most γ·2(1−ψ)/(1+ψ) per period
/// because the turnover itself is bounded by Proposition 4.
#[test]
fn turnover_penalty_gap_bounded() {
    use ppn_repro::core::reward::reward_value;
    let ds = Dataset::load(Preset::CryptoA);
    let n = ds.assets() + 1;
    let psi = 0.0025;
    // Worst-case churn: flip between all-cash and all-in-asset-1.
    let mut actions = Vec::new();
    let mut drifted = Vec::new();
    for i in 0..32 {
        let mut a = vec![0.0; n];
        let mut h = vec![0.0; n];
        a[i % 2] = 1.0;
        h[(i + 1) % 2] = 1.0;
        actions.push(a);
        drifted.push(h);
    }
    let relatives: Vec<Vec<f64>> = (0..32).map(|i| ds.relative(ds.split + i).to_vec()).collect();
    for gamma in [1e-3, 1e-1, 1.0] {
        let (r_g, ..) = reward_value(&actions, &relatives, &drifted, 0.0, gamma, psi);
        let (r_0, ..) = reward_value(&actions, &relatives, &drifted, 0.0, 0.0, psi);
        let gap = r_0 - r_g;
        // ‖a−â‖₁ ≤ 2, and the theorem's allowance uses the tighter
        // 2(1−ψ)/(1+ψ) for *reachable* rebalances; the raw L1 is ≤ 2.
        assert!(gap >= 0.0 && gap <= gamma * 2.0 + 1e-12, "gap {gap} for γ={gamma}");
    }
}

/// Proposition 3's setting: with no transaction costs, the log-optimal CRP
/// found by brute-force grid search over 2-asset portfolios achieves the
/// highest growth rate among CRPs — a sanity check that our accounting
/// agrees with the Kelly-growth framework the paper builds on.
#[test]
fn log_optimal_crp_dominates_other_crps() {
    let ds = Dataset::load(Preset::CryptoA);
    let range = test_range(&ds);
    // Restrict to cash + asset 1; sweep the weight.
    let growth = |w: f64| -> f64 {
        let mut log_sum = 0.0;
        for t in range.clone() {
            let x = ds.relative(t);
            log_sum += (w * x[1] + (1.0 - w)).ln();
        }
        log_sum
    };
    let best_w = (0..=20)
        .map(|i| i as f64 / 20.0)
        .max_by(|a, b| growth(*a).partial_cmp(&growth(*b)).unwrap())
        .unwrap();
    // The maximiser of the empirical expected log-return has maximal wealth
    // (they are the same quantity): check against a few alternatives.
    for w in [0.0, 0.25, 0.5, 0.75, 1.0] {
        assert!(growth(best_w) >= growth(w) - 1e-12);
    }
}
