#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # ppn-repro
//!
//! Rust reproduction of *"Cost-Sensitive Portfolio Selection via Deep
//! Reinforcement Learning"* (Zhang, Zhao, Wu, Li, Huang & Tan).
//!
//! This facade crate re-exports the four subsystem crates so downstream
//! users can depend on one package:
//!
//! * [`tensor`] — the reverse-mode autodiff engine (`ppn-tensor`);
//! * [`market`] — synthetic markets, the trading MDP, costs and metrics
//!   (`ppn-market`);
//! * [`baselines`] — the twelve classic online portfolio strategies
//!   (`ppn-baselines`);
//! * [`core`] — the Portfolio Policy Network, its reward, and its trainers
//!   (`ppn-core`).
//!
//! See `examples/quickstart.rs` for the 30-line end-to-end flow, and
//! DESIGN.md / EXPERIMENTS.md for the paper-reproduction map.

pub use ppn_baselines as baselines;
pub use ppn_core as core;
pub use ppn_market as market;
pub use ppn_tensor as tensor;
