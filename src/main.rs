//! `ppn` — command-line interface to the reproduction.
//!
//! ```text
//! ppn train     --preset crypto-a --variant PPN --steps 800 --out model.json
//! ppn backtest  --preset crypto-a --model model.json [--psi 0.0025]
//! ppn baselines --preset crypto-a [--psi 0.0025]
//! ppn export    --preset crypto-a --out prices.csv
//! ```

use ppn_repro::baselines::standard_suite;
use ppn_repro::core::prelude::*;
use ppn_repro::core::PolicyNet;
use ppn_repro::market::{run_backtest, test_range, Dataset, Preset};
use std::collections::HashMap;
use std::process::ExitCode;

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                flags.insert(key.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.insert(key.to_string(), String::new());
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    flags
}

fn preset_from(flags: &HashMap<String, String>) -> Result<Preset, String> {
    match flags.get("preset").map(String::as_str) {
        Some("crypto-a") | None => Ok(Preset::CryptoA),
        Some("crypto-b") => Ok(Preset::CryptoB),
        Some("crypto-c") => Ok(Preset::CryptoC),
        Some("crypto-d") => Ok(Preset::CryptoD),
        Some("sp500") => Ok(Preset::Sp500),
        Some(other) => Err(format!("unknown preset '{other}' (crypto-a..d, sp500)")),
    }
}

fn print_metrics(name: &str, m: &ppn_repro::market::Metrics) {
    println!(
        "{:<10} APV {:>9.3}  SR {:>7.2}%  CR {:>9.2}  MDD {:>5.1}%  STD {:>5.2}%  TO {:>6.3}",
        name,
        m.apv,
        m.sharpe_pct,
        m.calmar,
        m.mdd * 100.0,
        m.std_pct,
        m.turnover
    );
}

fn cmd_train(flags: HashMap<String, String>) -> Result<(), String> {
    let preset = preset_from(&flags)?;
    let variant_name = flags.get("variant").cloned().unwrap_or_else(|| "PPN".into());
    let variant =
        Variant::from_name(&variant_name).ok_or(format!("unknown variant '{variant_name}'"))?;
    let steps: usize =
        flags.get("steps").map_or(Ok(400), |s| s.parse().map_err(|_| "bad --steps".to_string()))?;
    let out = flags.get("out").cloned().unwrap_or_else(|| "model.json".into());
    let gamma: f64 = flags
        .get("gamma")
        .map_or(Ok(1e-3), |s| s.parse().map_err(|_| "bad --gamma".to_string()))?;
    let lambda: f64 = flags
        .get("lambda")
        .map_or(Ok(1e-4), |s| s.parse().map_err(|_| "bad --lambda".to_string()))?;
    let psi: f64 =
        flags.get("psi").map_or(Ok(0.0025), |s| s.parse().map_err(|_| "bad --psi".to_string()))?;

    let ds = Dataset::load(preset);
    println!(
        "Training {variant_name} on {} for {steps} steps (λ={lambda:e}, γ={gamma:e}, ψ={psi}) ...",
        preset.name()
    );
    let reward = RewardConfig { lambda, gamma, psi };
    let train = TrainConfig { steps, ..TrainConfig::default() };
    let mut trainer = Trainer::new(&ds, variant, reward, train);
    for i in 0..steps {
        let s = trainer.step();
        if steps >= 10 && i % (steps / 10) == 0 {
            println!("  step {i:>5}: reward {:+.5}, turnover {:.4}", s.reward, s.mean_turnover);
        }
    }
    let net = trainer.into_net();
    net.save(&out).map_err(|e| e.to_string())?;
    println!("Saved checkpoint to {out}");
    Ok(())
}

fn cmd_backtest(flags: HashMap<String, String>) -> Result<(), String> {
    let preset = preset_from(&flags)?;
    let model = flags.get("model").ok_or("missing --model <path>")?;
    let psi: f64 =
        flags.get("psi").map_or(Ok(0.0025), |s| s.parse().map_err(|_| "bad --psi".to_string()))?;
    let ds = Dataset::load(preset);
    let net = PolicyNet::load(model).map_err(|e| e.to_string())?;
    if net.cfg.assets != ds.assets() {
        return Err(format!(
            "model was trained for {} assets, {} has {}",
            net.cfg.assets,
            preset.name(),
            ds.assets()
        ));
    }
    let mut policy = NetPolicy::new(net);
    let r = run_backtest(&ds, &mut policy, psi, test_range(&ds));
    println!("Backtest of {model} on {} (ψ={psi}):", preset.name());
    print_metrics(&r.name, &r.metrics);
    Ok(())
}

fn cmd_baselines(flags: HashMap<String, String>) -> Result<(), String> {
    let preset = preset_from(&flags)?;
    let psi: f64 =
        flags.get("psi").map_or(Ok(0.0025), |s| s.parse().map_err(|_| "bad --psi".to_string()))?;
    let ds = Dataset::load(preset);
    let range = test_range(&ds);
    println!("Classic baselines on {} (ψ={psi}, {} test periods):", preset.name(), range.len());
    for mut p in standard_suite(&ds, range.clone()) {
        let r = run_backtest(&ds, p.as_mut(), psi, range.clone());
        print_metrics(&r.name, &r.metrics);
    }
    Ok(())
}

fn cmd_export(flags: HashMap<String, String>) -> Result<(), String> {
    let preset = preset_from(&flags)?;
    let out = flags.get("out").cloned().unwrap_or_else(|| "prices.csv".into());
    let ds = Dataset::load(preset);
    let mut csv = String::from("period");
    for i in 0..ds.assets() {
        csv.push_str(&format!(",asset{i}_open,asset{i}_high,asset{i}_low,asset{i}_close"));
    }
    csv.push('\n');
    for t in 0..ds.periods() {
        csv.push_str(&t.to_string());
        for i in 0..ds.assets() {
            let b = ds.ohlc.bar(t, i);
            csv.push_str(&format!(",{},{},{},{}", b.open, b.high, b.low, b.close));
        }
        csv.push('\n');
    }
    std::fs::write(&out, csv).map_err(|e| e.to_string())?;
    println!("Wrote {} periods x {} assets of OHLC to {out}", ds.periods(), ds.assets());
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("usage: ppn <train|backtest|baselines|export> [--flags]");
        return ExitCode::from(2);
    };
    let flags = parse_flags(&args[1..]);
    let result = match cmd.as_str() {
        "train" => cmd_train(flags),
        "backtest" => cmd_backtest(flags),
        "baselines" => cmd_baselines(flags),
        "export" => cmd_export(flags),
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}
