#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # ppn-market
//!
//! Market substrate for the Rust reproduction of *"Cost-Sensitive Portfolio
//! Selection via Deep Reinforcement Learning"*: a synthetic OHLC market
//! generator standing in for the paper's Poloniex/Kaggle feeds, the trading
//! MDP of §3.1, the proportional transaction-cost model of §5.2.2 with its
//! Proposition-4 bounds, the backtest runner, and the evaluation metrics of
//! §6.1.2 (APV, SR, CR, MDD, STD, TO).
//!
//! Decisions go through the batch-first [`Policy`] trait
//! (`decide_batch(&[DecisionContext]) -> Vec<Weights>`); simple sequential
//! strategies implement the per-context [`SequentialPolicy`] shim and
//! inherit the batch API through its blanket impl:
//!
//! ```
//! use ppn_market::{Dataset, Preset, run_backtest, SequentialPolicy, DecisionContext, Weights};
//!
//! struct Uniform;
//! impl SequentialPolicy for Uniform {
//!     fn name(&self) -> String { "UBAH-ish".into() }
//!     fn decide_one(&mut self, ctx: &DecisionContext<'_>) -> Weights {
//!         let n = ctx.dataset.assets() + 1;
//!         vec![1.0 / n as f64; n]
//!     }
//! }
//!
//! let ds = Dataset::load(Preset::CryptoA);
//! let result = run_backtest(&ds, &mut Uniform, 0.0025, 100..200);
//! assert!(result.metrics.apv > 0.0);
//! ```

/// Backtest runner and the [`Policy`] trait it drives.
pub mod backtest;
/// Debug-build numerical contracts (simplex/finite invariants).
pub mod contracts;
/// Proportional transaction-cost model with the Proposition-4 bounds.
pub mod cost;
/// Synthetic dataset presets standing in for the paper's feeds.
pub mod dataset;
/// The trading MDP environment of §3.1.
pub mod env;
/// Live-feed simulation: regime-stitched datasets and replay cursors.
pub mod feed;
/// Geometric-Brownian-motion close-price path generator.
pub mod gbm;
/// Evaluation metrics of §6.1.2 (APV, SR, CR, MDD, STD, TO).
pub mod metrics;
/// OHLC bar synthesis over generated close paths.
pub mod ohlc;
/// Price relatives, drifted weights and portfolio returns.
pub mod relatives;
/// Risk measures beyond the paper's core table (VaR, ES, Sortino).
pub mod risk;

pub use backtest::{
    run_backtest, test_range, BacktestResult, DecisionContext, PeriodRecord, Policy,
    SequentialPolicy, Weights,
};
pub use cost::{cost_proportion, max_turnover, prop4_bounds, turnover_l1, CostSolution};
pub use dataset::{stats, Dataset, DatasetHandle, DatasetStats, Preset};
pub use env::{Observation, StepOutcome, TradingEnv};
pub use feed::{stitched_dataset, BarEvent, LiveFeed};
pub use gbm::{generate_paths, ClosePaths, MarketConfig};
pub use metrics::{compute as compute_metrics, max_drawdown, mean_std, Metrics};
pub use ohlc::{synthesize_ohlc, Bar, OhlcSeries};
pub use relatives::{drifted_weights, portfolio_return, price_relatives};
pub use risk::{
    annualized_return, annualized_volatility, downside_deviation, expected_shortfall,
    sortino_ratio, value_at_risk,
};
