//! Proportional transaction cost model (§5.2.2 and Proposition 4).
//!
//! After deciding `a_t`, the agent rebalances from the drifted portfolio
//! `â_{t−1}` to `a_t`. With equal purchase/sale rates `ψ`, the cost
//! proportion solves the implicit equation
//!
//! ```text
//! c_t = ψ · ‖ a_t·ω_t − â_{t−1} ‖₁  over the m risky assets,  ω_t = 1 − c_t
//! ```
//!
//! (the cash coordinate is excluded from the sum — cash moves carry no fee).
//! [`cost_proportion`] solves it by fixed-point iteration; the iteration is a
//! contraction with factor ≤ ψ‖a‖₁ ≤ ψ < 1, so convergence is geometric.
//!
//! Proposition 4 brackets the solution in terms of the explicit L1 turnover
//! `‖a_t − â_{t−1}‖₁`, which is what the paper's reward penalises (and what
//! training differentiates through).

/// Result of solving the implicit cost equation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostSolution {
    /// Cost proportion `c_t ∈ [0, 1)`.
    pub cost: f64,
    /// Net-wealth proportion `ω_t = 1 − c_t`.
    pub omega: f64,
    /// Iterations used by the fixed-point solver.
    pub iterations: usize,
}

/// L1 distance over the **risky** coordinates (index 0 = cash is skipped),
/// with the target scaled by `omega`.
fn risky_l1(target: &[f64], omega: f64, drifted: &[f64]) -> f64 {
    target.iter().zip(drifted).skip(1).map(|(&a, &h)| (a * omega - h).abs()).sum()
}

/// Solves `c = ψ‖a·(1−c) − â‖₁` by fixed-point iteration to `tol`.
///
/// # Panics
/// Panics unless `0 ≤ ψ < 1` and the two weight vectors have equal lengths.
// ppn-check: contract(finite)
pub fn cost_proportion(psi: f64, action: &[f64], drifted: &[f64], tol: f64) -> CostSolution {
    assert!((0.0..1.0).contains(&psi), "cost rate psi={psi}");
    assert_eq!(action.len(), drifted.len());
    if ppn_tensor::approx::is_zero(psi) {
        return CostSolution { cost: 0.0, omega: 1.0, iterations: 0 };
    }
    let mut c = psi * risky_l1(action, 1.0, drifted); // surrogate as warm start
    let mut iterations = 0;
    loop {
        let next = psi * risky_l1(action, 1.0 - c, drifted);
        iterations += 1;
        if (next - c).abs() < tol || iterations >= 64 {
            c = next;
            break;
        }
        c = next;
    }
    crate::contracts::assert_finite(&[c], "cost_proportion");
    CostSolution { cost: c, omega: 1.0 - c, iterations }
}

/// The differentiable surrogate used in the reward's transaction-cost term
/// (and during training): the full L1 turnover `‖a_t − â_{t−1}‖₁` including
/// the cash coordinate, exactly as written in Eqn. (1).
pub fn turnover_l1(action: &[f64], drifted: &[f64]) -> f64 {
    action.iter().zip(drifted).map(|(&a, &h)| (a - h).abs()).sum()
}

/// Proposition 4 bounds: `ψ/(1+ψ)·L1 ≤ c_t ≤ ψ/(1−ψ)·L1` where `L1` is the
/// *risky-coordinate* turnover at `ω = 1` used in the proposition's proof.
pub fn prop4_bounds(psi: f64, action: &[f64], drifted: &[f64]) -> (f64, f64) {
    let l1 = risky_l1(action, 1.0, drifted);
    (psi / (1.0 + psi) * l1, psi / (1.0 - psi) * l1)
}

/// Upper bound on any admissible turnover from Proposition 4:
/// `‖a_t − â_{t−1}‖₁ ≤ 2(1−ψ)/(1+ψ)`.
pub fn max_turnover(psi: f64) -> f64 {
    2.0 * (1.0 - psi) / (1.0 + psi)
}

#[cfg(test)]
mod tests {
    use super::*;

    const PSI: f64 = 0.0025; // the paper's 0.25% Poloniex rate

    #[test]
    fn no_trade_no_cost() {
        let a = [0.5, 0.3, 0.2];
        let s = cost_proportion(PSI, &a, &a, 1e-12);
        assert_eq!(s.cost, 0.0);
        assert_eq!(s.omega, 1.0);
    }

    #[test]
    fn zero_rate_no_cost() {
        let a = [0.0, 1.0, 0.0];
        let b = [1.0, 0.0, 0.0];
        let s = cost_proportion(0.0, &a, &b, 1e-12);
        assert_eq!(s.cost, 0.0);
    }

    #[test]
    fn full_swing_costs_about_psi() {
        // All-in from cash to one asset: buy 1·ω of the asset → c ≈ ψ·ω.
        let from_cash = [1.0, 0.0];
        let to_asset = [0.0, 1.0];
        let s = cost_proportion(PSI, &to_asset, &from_cash, 1e-14);
        let expect = PSI / (1.0 + PSI); // c = ψ(1−c) ⇒ c = ψ/(1+ψ)
        assert!((s.cost - expect).abs() < 1e-12, "{} vs {}", s.cost, expect);
    }

    #[test]
    fn solution_satisfies_implicit_equation() {
        let a = [0.1, 0.5, 0.2, 0.2];
        let h = [0.4, 0.1, 0.3, 0.2];
        for &psi in &[0.001, 0.0025, 0.01, 0.05, 0.2] {
            let s = cost_proportion(psi, &a, &h, 1e-14);
            let rhs = psi * risky_l1(&a, s.omega, &h);
            assert!((s.cost - rhs).abs() < 1e-10, "psi={psi}: {} vs {rhs}", s.cost);
            assert!(s.cost >= 0.0 && s.cost < 1.0);
        }
    }

    #[test]
    fn prop4_brackets_exact_cost() {
        let a = [0.2, 0.3, 0.5, 0.0];
        let h = [0.05, 0.6, 0.15, 0.2];
        for &psi in &[0.0025, 0.01, 0.05, 0.25] {
            let s = cost_proportion(psi, &a, &h, 1e-14);
            let (lo, hi) = prop4_bounds(psi, &a, &h);
            assert!(
                lo <= s.cost + 1e-12 && s.cost <= hi + 1e-12,
                "psi={psi}: {lo} ≤ {} ≤ {hi}",
                s.cost
            );
        }
    }

    #[test]
    fn converges_fast() {
        let a = [0.0, 0.5, 0.5];
        let h = [1.0, 0.0, 0.0];
        let s = cost_proportion(0.25, &a, &h, 1e-14);
        assert!(s.iterations < 40, "iterations {}", s.iterations);
    }

    #[test]
    fn max_turnover_bound() {
        assert!((max_turnover(0.0) - 2.0).abs() < 1e-15);
        assert!(max_turnover(0.5) < 1.0 + 1e-12);
        // Any pair of simplex vectors has L1 distance ≤ 2 = max_turnover(0).
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        assert!(turnover_l1(&a, &b) <= max_turnover(0.0) + 1e-12);
    }
}
