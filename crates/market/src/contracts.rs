//! Debug-build numerical contracts.
//!
//! The PPN reproduction leans on two invariants everywhere: portfolio
//! weights live on the probability simplex (§3.1 — softmax outputs, PVM
//! rows, drifted weights), and every value on the reward/cost path stays
//! finite (Theorems 1–2 only hold for finite log-returns). These helpers
//! make those invariants executable: each is a `debug_assert!`-backed check
//! that fires under `cargo test` and debug builds and compiles to nothing
//! in release, so hot paths pay zero cost.
//!
//! Call sites are tagged `// ppn-check: contract(simplex)` or
//! `// ppn-check: contract(finite)` above the function header; the
//! `contract` lint in `ppn-check` verifies every tag is backed by a call to
//! the matching assertion here.

/// Absolute tolerance on `Σwᵢ = 1` for simplex membership.
pub const SIMPLEX_TOL: f64 = 1e-6;

/// Coordinates may undershoot zero by at most this much (softmax and the
/// Euclidean projection both emit exact zeros or tiny negative round-off).
pub const SIMPLEX_NEG_TOL: f64 = 1e-9;

/// Debug-asserts that `w` is a point on the probability simplex: non-empty,
/// all coordinates finite and `>= -`[`SIMPLEX_NEG_TOL`], summing to one
/// within [`SIMPLEX_TOL`]. `ctx` names the call site in the failure message.
#[inline]
pub fn assert_simplex(w: &[f64], ctx: &str) {
    debug_assert!(
        simplex_violation(w).is_none(),
        "contract(simplex) violated in {ctx}: {} (weights: {w:?})",
        simplex_violation(w).unwrap_or_default()
    );
    let _ = (w, ctx); // used only by the debug_assert in release builds
}

/// Debug-asserts every element of a flat row-major `[rows × width]` buffer
/// row-wise on the simplex. Used for batched network output.
#[inline]
pub fn assert_simplex_rows(flat: &[f64], width: usize, ctx: &str) {
    #[cfg(debug_assertions)]
    if width > 0 {
        for (r, row) in flat.chunks_exact(width).enumerate() {
            assert_simplex(row, &format!("{ctx} row {r}"));
        }
    }
    let _ = (flat, width, ctx);
}

/// Debug-asserts that every value in `xs` is finite (no NaN/±inf).
#[inline]
pub fn assert_finite(xs: &[f64], ctx: &str) {
    debug_assert!(
        xs.iter().all(|x| x.is_finite()),
        "contract(finite) violated in {ctx}: {:?}",
        xs.iter().find(|x| !x.is_finite())
    );
    let _ = (xs, ctx);
}

/// Why `w` fails simplex membership, or `None` when it is a member.
/// Exposed so tests can assert on the classification itself.
pub fn simplex_violation(w: &[f64]) -> Option<String> {
    if w.is_empty() {
        return Some("empty weight vector".into());
    }
    if let Some(bad) = w.iter().find(|x| !x.is_finite()) {
        return Some(format!("non-finite coordinate {bad}"));
    }
    if let Some(bad) = w.iter().find(|x| **x < -SIMPLEX_NEG_TOL) {
        return Some(format!("negative coordinate {bad}"));
    }
    let sum: f64 = w.iter().sum();
    if (sum - 1.0).abs() > SIMPLEX_TOL {
        return Some(format!("coordinates sum to {sum}, not 1"));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_simplex_membership() {
        assert_eq!(simplex_violation(&[0.25; 4]), None);
        assert_eq!(simplex_violation(&[1.0]), None);
        assert!(simplex_violation(&[]).is_some());
        assert!(simplex_violation(&[0.5, 0.6]).unwrap().contains("sum"));
        assert!(simplex_violation(&[-0.1, 1.1]).unwrap().contains("negative"));
        assert!(simplex_violation(&[f64::NAN, 1.0]).unwrap().contains("non-finite"));
    }

    #[test]
    fn tolerates_round_off() {
        // Softmax output whose sum differs from 1 by float round-off.
        let w = [0.1 + 1e-12, 0.2, 0.3, 0.4];
        assert_eq!(simplex_violation(&w), None);
        assert_simplex(&w, "test");
        assert_simplex_rows(&[0.5, 0.5, 0.25, 0.75], 2, "test rows");
    }

    #[test]
    #[should_panic(expected = "contract(simplex) violated")]
    fn fires_on_off_simplex_input() {
        assert_simplex(&[0.9, 0.9], "test");
    }

    #[test]
    #[should_panic(expected = "contract(finite) violated")]
    fn fires_on_non_finite_input() {
        assert_finite(&[1.0, f64::INFINITY], "test");
    }
}
