//! OHLC bar synthesis from close-price paths.
//!
//! The paper's inputs are `(open, high, low, close)` per asset per 30-minute
//! period (d = 4, §3). The generator produces close paths; this module
//! expands them to bars with an intra-period range model: the open is the
//! previous close (crypto markets trade continuously, so there is no
//! overnight gap), and high/low extend beyond `max/min(open, close)` by a
//! folded-normal excursion proportional to the period's absolute move plus a
//! base range.

use crate::gbm::ClosePaths;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One OHLCV bar. The paper's experiments use the four prices (d = 4) but
/// note that the input "can be generalised to more prices to obtain more
/// information" (§3); the synthesised volume supports that extension
/// (`Dataset::window_with_volume`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bar {
    /// Opening price.
    pub open: f64,
    /// Period high.
    pub high: f64,
    /// Period low.
    pub low: f64,
    /// Closing price.
    pub close: f64,
    /// Traded volume (synthetic, correlated with the absolute move).
    pub volume: f64,
}

impl Bar {
    /// True when `low ≤ min(open, close)` and `high ≥ max(open, close)` and
    /// everything is positive/finite.
    pub fn is_coherent(&self) -> bool {
        self.low > 0.0
            && self.volume >= 0.0
            && self.low <= self.open.min(self.close)
            && self.high >= self.open.max(self.close)
            && [self.open, self.high, self.low, self.close, self.volume]
                .iter()
                .all(|x| x.is_finite())
    }
}

/// Dense `(periods, assets)` bar matrix.
#[derive(Debug, Clone)]
pub struct OhlcSeries {
    /// Risky asset count.
    pub assets: usize,
    /// Period count.
    pub periods: usize,
    bars: Vec<Bar>,
}

impl OhlcSeries {
    /// Bar of asset `i` at period `t`.
    pub fn bar(&self, t: usize, i: usize) -> Bar {
        self.bars[t * self.assets + i]
    }

    /// Closing price of asset `i` at period `t`.
    pub fn close(&self, t: usize, i: usize) -> f64 {
        self.bar(t, i).close
    }

    /// Replaces the bar at `(t, i)` — used by the missing-data filler.
    pub(crate) fn set_bar(&mut self, t: usize, i: usize, b: Bar) {
        self.bars[t * self.assets + i] = b;
    }
}

/// Expands close paths into coherent OHLC bars. `seed` controls only the
/// intra-period excursions, independent of the close-path seed.
pub fn synthesize_ohlc(paths: &ClosePaths, seed: u64) -> OhlcSeries {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let m = paths.assets;
    let mut bars = Vec::with_capacity(paths.periods * m);
    for t in 0..paths.periods {
        for i in 0..m {
            let close = paths.at(t, i);
            let open = if t == 0 { close } else { paths.at(t - 1, i) };
            let body_hi = open.max(close);
            let body_lo = open.min(close);
            // Excursion proportional to the absolute move plus a small base
            // range so flat periods still have a spread.
            let move_frac = (close / open - 1.0).abs();
            let base = 0.0015;
            let up: f64 = rng.gen_range(0.0..1.0) * (move_frac * 0.5 + base);
            let dn: f64 = rng.gen_range(0.0..1.0) * (move_frac * 0.5 + base);
            // Volume rises with the size of the move (the well-documented
            // volume–volatility relation), log-normal around that level.
            let vol_level = 1.0 + 80.0 * move_frac;
            let volume = vol_level * rng.gen_range(0.5..1.5f64);
            bars.push(Bar {
                open,
                high: body_hi * (1.0 + up),
                low: body_lo * (1.0 - dn),
                close,
                volume,
            });
        }
    }
    OhlcSeries { assets: m, periods: paths.periods, bars }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gbm::{generate_paths, MarketConfig};

    fn series() -> OhlcSeries {
        let cfg = MarketConfig { assets: 4, periods: 500, ..MarketConfig::default() };
        synthesize_ohlc(&generate_paths(&cfg), 1)
    }

    #[test]
    fn all_bars_coherent() {
        let s = series();
        for t in 0..s.periods {
            for i in 0..s.assets {
                let b = s.bar(t, i);
                assert!(b.is_coherent(), "incoherent bar at ({t},{i}): {b:?}");
            }
        }
    }

    #[test]
    fn opens_chain_to_previous_close() {
        let s = series();
        for t in 1..s.periods {
            for i in 0..s.assets {
                assert_eq!(s.bar(t, i).open, s.bar(t - 1, i).close);
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = MarketConfig { assets: 3, periods: 100, ..MarketConfig::default() };
        let p = generate_paths(&cfg);
        let a = synthesize_ohlc(&p, 5);
        let b = synthesize_ohlc(&p, 5);
        for t in 0..100 {
            for i in 0..3 {
                assert_eq!(a.bar(t, i), b.bar(t, i));
            }
        }
    }
}
