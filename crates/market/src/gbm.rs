//! Synthetic market model.
//!
//! Substitute for the paper's Poloniex crypto feeds (Table 1) and the Kaggle
//! S&P500 feed (Table 10): a correlated factor model in log-return space with
//! the structures the paper's two network streams are designed to exploit —
//! per-asset serial dependence (momentum / mean reversion) for the
//! *sequential information net* and cross-asset lead–lag correlation for the
//! *correlation information net* — plus the jump/regime noise character of
//! crypto markets.
//!
//! Per asset `i`, per period `t` the log-return is
//!
//! ```text
//! lr[i,t] = drift[i]
//!         + beta[i]   · f[t − lag[i]]          (lagged common factor)
//!         + momentum  · lr[i,t−1]              (AR(1) serial dependence)
//!         − reversion · dev[i,t−1]             (pull toward a slow EMA)
//!         + sigma[i] · regime[t] · ε[i,t]      (regime-switched noise)
//!         + J[i,t]                             (rare jumps)
//! ```
//!
//! where `f` is a persistent AR(1) factor and `dev` tracks the deviation of
//! the log price from its exponential moving average.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the synthetic market model. All rates are per period.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MarketConfig {
    /// Number of risky assets (cash is handled outside the generator).
    pub assets: usize,
    /// Number of periods to generate.
    pub periods: usize,
    /// RNG seed — generation is fully deterministic given the config.
    pub seed: u64,
    /// Common per-period drift added to every asset.
    pub drift: f64,
    /// Half-width of per-asset drift dispersion around `drift`.
    pub drift_spread: f64,
    /// Base per-period volatility (per-asset values are dispersed around it).
    pub sigma: f64,
    /// AR(1) coefficient of the common factor.
    pub factor_persistence: f64,
    /// Innovation scale of the common factor.
    pub factor_sigma: f64,
    /// Maximum factor lag in periods; asset `i` observes `f[t − i % (max_lag+1)]`.
    /// A positive value creates the lead–lag structure the correlation net learns.
    pub max_lag: usize,
    /// AR(1) momentum coefficient on the asset's own last return.
    pub momentum: f64,
    /// Mean-reversion strength toward the slow EMA of the log price.
    pub reversion: f64,
    /// EMA decay used for the mean-reversion anchor.
    pub ema_decay: f64,
    /// Probability of a jump per asset per period.
    pub jump_prob: f64,
    /// Jump magnitude scale (log-return units).
    pub jump_scale: f64,
    /// Probability of switching volatility regime each period.
    pub regime_switch_prob: f64,
    /// Volatility multiplier in the high-vol regime.
    pub high_vol_mult: f64,
}

impl Default for MarketConfig {
    fn default() -> Self {
        MarketConfig {
            assets: 12,
            periods: 36_000,
            seed: 7,
            drift: 2e-5,
            drift_spread: 3e-5,
            sigma: 0.008,
            factor_persistence: 0.6,
            factor_sigma: 0.004,
            max_lag: 2,
            momentum: 0.05,
            reversion: 0.01,
            ema_decay: 0.05,
            jump_prob: 0.002,
            jump_scale: 0.03,
            regime_switch_prob: 0.002,
            high_vol_mult: 2.5,
        }
    }
}

/// Generated close-price paths: `prices[t][i]`, starting at 1.0 scaled per
/// asset so magnitudes differ (like real tickers).
#[derive(Debug, Clone)]
pub struct ClosePaths {
    /// Number of risky assets.
    pub assets: usize,
    /// Row-major `(periods, assets)` close prices.
    pub prices: Vec<f64>,
    /// Periods generated.
    pub periods: usize,
}

impl ClosePaths {
    /// Close price of asset `i` at period `t`.
    pub fn at(&self, t: usize, i: usize) -> f64 {
        self.prices[t * self.assets + i]
    }
}

/// Generates close-price paths under `cfg`. Deterministic in `cfg.seed`.
pub fn generate_paths(cfg: &MarketConfig) -> ClosePaths {
    let _span = ppn_obs::span!("dataset.synthesize");
    assert!(cfg.assets > 0 && cfg.periods > 1, "degenerate market config");
    let m = cfg.assets;
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Per-asset static attributes.
    let drifts: Vec<f64> =
        (0..m).map(|_| cfg.drift + rng.gen_range(-cfg.drift_spread..=cfg.drift_spread)).collect();
    let sigmas: Vec<f64> = (0..m).map(|_| cfg.sigma * rng.gen_range(0.6..1.6)).collect();
    let betas: Vec<f64> = (0..m).map(|_| rng.gen_range(0.5..1.5)).collect();
    let lags: Vec<usize> = (0..m).map(|i| i % (cfg.max_lag + 1)).collect();
    let starts: Vec<f64> = (0..m).map(|_| rng.gen_range(0.5..200.0)).collect();

    // Factor history buffer (enough to look back max_lag periods).
    let mut factor_hist = vec![0.0; cfg.max_lag + 1];
    let mut high_vol = false;

    let mut log_prices: Vec<f64> = starts.iter().map(|s| s.ln()).collect();
    let mut emas = log_prices.clone();
    let mut last_lr = vec![0.0; m];

    let mut prices = Vec::with_capacity(cfg.periods * m);
    for p in &starts {
        prices.push(*p);
    }

    let gauss = |rng: &mut StdRng| -> f64 {
        // Box–Muller (single draw).
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen::<f64>();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    };

    for _t in 1..cfg.periods {
        // Advance the common factor and regime.
        let f_new = cfg.factor_persistence * factor_hist[0] + cfg.factor_sigma * gauss(&mut rng);
        factor_hist.rotate_right(1);
        factor_hist[0] = f_new;
        if rng.gen::<f64>() < cfg.regime_switch_prob {
            high_vol = !high_vol;
        }
        let reg = if high_vol { cfg.high_vol_mult } else { 1.0 };

        for i in 0..m {
            let mut lr = drifts[i]
                + betas[i] * factor_hist[lags[i].min(factor_hist.len() - 1)]
                + cfg.momentum * last_lr[i]
                - cfg.reversion * (log_prices[i] - emas[i])
                + sigmas[i] * reg * gauss(&mut rng);
            if rng.gen::<f64>() < cfg.jump_prob {
                lr += cfg.jump_scale * gauss(&mut rng);
            }
            // Clamp to keep prices strictly positive and relatives within the
            // theorems' 1/e..e band even through jump cascades.
            lr = lr.clamp(-0.9, 0.9);
            last_lr[i] = lr;
            log_prices[i] += lr;
            emas[i] += cfg.ema_decay * (log_prices[i] - emas[i]);
            prices.push(log_prices[i].exp());
        }
    }
    ClosePaths { assets: m, prices, periods: cfg.periods }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> MarketConfig {
        MarketConfig { assets: 5, periods: 2_000, ..MarketConfig::default() }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate_paths(&small_cfg());
        let b = generate_paths(&small_cfg());
        assert_eq!(a.prices, b.prices);
        let c = generate_paths(&MarketConfig { seed: 8, ..small_cfg() });
        assert_ne!(a.prices, c.prices);
    }

    #[test]
    fn prices_positive_and_finite() {
        let p = generate_paths(&small_cfg());
        assert_eq!(p.prices.len(), 5 * 2_000);
        assert!(p.prices.iter().all(|&x| x.is_finite() && x > 0.0));
    }

    #[test]
    fn relatives_within_theorem_band() {
        // Theorems 1/2 assume 1/e ≤ r_t ≤ e; single-asset relatives must obey.
        let p = generate_paths(&small_cfg());
        for t in 1..p.periods {
            for i in 0..p.assets {
                let rel = p.at(t, i) / p.at(t - 1, i);
                assert!(rel > (-1.0f64).exp() && rel < 1.0f64.exp(), "rel {rel}");
            }
        }
    }

    #[test]
    fn momentum_creates_positive_autocorrelation() {
        let cfg = MarketConfig {
            momentum: 0.3,
            reversion: 0.0,
            factor_sigma: 0.0,
            jump_prob: 0.0,
            periods: 20_000,
            ..small_cfg()
        };
        let p = generate_paths(&cfg);
        // Lag-1 autocorrelation of asset 0's log-returns should be ≈ 0.3.
        let lrs: Vec<f64> = (1..p.periods).map(|t| (p.at(t, 0) / p.at(t - 1, 0)).ln()).collect();
        let mean = lrs.iter().sum::<f64>() / lrs.len() as f64;
        let var: f64 = lrs.iter().map(|x| (x - mean).powi(2)).sum::<f64>();
        let cov: f64 = lrs.windows(2).map(|w| (w[0] - mean) * (w[1] - mean)).sum::<f64>();
        let ac = cov / var;
        assert!(ac > 0.15 && ac < 0.45, "autocorrelation {ac}");
    }

    #[test]
    fn lead_lag_structure_present() {
        // Asset with lag 1 should correlate with the lag-0 asset's previous
        // return through the shared factor.
        let cfg = MarketConfig {
            momentum: 0.0,
            reversion: 0.0,
            jump_prob: 0.0,
            sigma: 0.002,
            factor_sigma: 0.01,
            max_lag: 1,
            periods: 20_000,
            ..small_cfg()
        };
        let p = generate_paths(&cfg);
        let lr = |i: usize| -> Vec<f64> {
            (1..p.periods).map(|t| (p.at(t, i) / p.at(t - 1, i)).ln()).collect()
        };
        let a0 = lr(0); // lag 0 (leader)
        let a1 = lr(1); // lag 1 (follower)
        let corr_at = |shift: usize| -> f64 {
            let n = a0.len() - shift;
            let x = &a0[..n];
            let y = &a1[shift..];
            let mx = x.iter().sum::<f64>() / n as f64;
            let my = y.iter().sum::<f64>() / n as f64;
            let cov: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
            let vx: f64 = x.iter().map(|a| (a - mx).powi(2)).sum();
            let vy: f64 = y.iter().map(|b| (b - my).powi(2)).sum();
            cov / (vx * vy).sqrt()
        };
        // Follower's return at t+1 should track leader's return at t more than
        // contemporaneously-independent noise would.
        assert!(corr_at(1) > 0.3, "lead-lag corr {}", corr_at(1));
        assert!(corr_at(1) > corr_at(0) - 0.5); // sanity ordering
    }

    #[test]
    fn negative_drift_produces_bear_market() {
        let cfg = MarketConfig { drift: -3e-4, drift_spread: 0.0, periods: 10_000, ..small_cfg() };
        let p = generate_paths(&cfg);
        let mut losers = 0;
        for i in 0..p.assets {
            if p.at(p.periods - 1, i) < p.at(0, i) {
                losers += 1;
            }
        }
        assert!(losers >= 4, "expected a broad bear market, {losers}/5 assets down");
    }
}
