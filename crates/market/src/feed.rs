//! Live-feed simulation for the streaming online-adaptation pipeline.
//!
//! Two pieces:
//!
//! * [`stitched_dataset`] builds one continuous [`Dataset`] from a sequence
//!   of [`MarketConfig`] *regime segments*. Each segment's close paths are
//!   generated independently and then spliced price-continuously (segment
//!   `n+1` is rescaled per asset so its first close equals segment `n`'s
//!   last close), so the price-relative stream is well defined across every
//!   seam and a seam *is* a regime shift — drift, volatility, momentum and
//!   reversion all flip at a known bar index.
//! * [`LiveFeed`] is a replay cursor over a shared dataset: it reveals bars
//!   one at a time, which is how the `ppn-stream` updater consumes "new"
//!   market periods without a real exchange connection. Determinism is
//!   inherited from the generator — the same segment configs always produce
//!   the same feed.

use crate::dataset::{Dataset, Preset};
use crate::gbm::{generate_paths, ClosePaths, MarketConfig};
use crate::ohlc::synthesize_ohlc;
use crate::relatives::price_relatives;
use std::sync::Arc;

/// One bar revealed by a [`LiveFeed`].
#[derive(Debug, Clone)]
pub struct BarEvent {
    /// Period index of the newly-revealed bar. The decision for period `t`
    /// may use windows ending at `t` and relatives up to `t − 1`.
    pub t: usize,
    /// Price-relative vector realised between `t − 1` and `t`
    /// (length `m + 1`, cash first) — what a live exchange feed would
    /// deliver alongside the new bar.
    pub relative: Vec<f64>,
}

/// Builds a price-continuous dataset from consecutive regime segments.
///
/// Every segment must use the same asset count; the stitched dataset has
/// `sum(periods) − (segments − 1)` periods (each later segment's first bar
/// coincides with its predecessor's last). `split` marks where the "live"
/// part of the feed begins — everything before it is pretraining history.
/// No late-listing simulation is applied: a live feed has no missing bars.
///
/// # Panics
/// Panics when `segments` is empty, asset counts disagree, or `split` is
/// not inside the stitched period range.
pub fn stitched_dataset(preset: Preset, segments: &[MarketConfig], split: usize) -> Dataset {
    assert!(!segments.is_empty(), "stitched_dataset needs at least one segment");
    let assets = segments[0].assets;
    assert!(
        segments.iter().all(|s| s.assets == assets),
        "all regime segments must share one asset universe"
    );

    let mut prices: Vec<f64> = Vec::new();
    let mut periods = 0usize;
    for (n, seg) in segments.iter().enumerate() {
        let paths = generate_paths(seg);
        if n == 0 {
            prices.extend_from_slice(&paths.prices);
            periods = paths.periods;
            continue;
        }
        // Rescale so the segment's first close lands exactly on the current
        // last close of every asset, then skip that coinciding bar.
        let last: Vec<f64> = (0..assets).map(|i| prices[(periods - 1) * assets + i]).collect();
        for t in 1..paths.periods {
            for (i, anchor) in last.iter().enumerate() {
                prices.push(paths.at(t, i) / paths.at(0, i) * anchor);
            }
        }
        periods += paths.periods - 1;
    }

    let paths = ClosePaths { assets, prices, periods };
    assert!(split + 1 < periods, "split {split} outside stitched range {periods}");
    let ohlc = synthesize_ohlc(&paths, segments[0].seed);
    let relatives = price_relatives(&ohlc);
    Dataset { preset, ohlc, relatives, split }
}

/// A replay cursor that reveals a dataset's bars one at a time, simulating
/// a live market feed for the streaming updater.
#[derive(Debug, Clone)]
pub struct LiveFeed {
    dataset: Arc<Dataset>,
    next_t: usize,
}

impl LiveFeed {
    /// Creates a feed positioned at `start` (typically `dataset.split`):
    /// bars before `start` are history the consumer already has.
    pub fn new(dataset: Arc<Dataset>, start: usize) -> LiveFeed {
        LiveFeed { dataset, next_t: start.max(1) }
    }

    /// The dataset this feed replays.
    pub fn dataset(&self) -> &Arc<Dataset> {
        &self.dataset
    }

    /// Period index of the next bar to be revealed.
    pub fn position(&self) -> usize {
        self.next_t
    }

    /// Bars left before the feed is exhausted.
    pub fn remaining(&self) -> usize {
        self.dataset.periods().saturating_sub(self.next_t)
    }

    /// Reveals the next bar, or `None` once the dataset is exhausted.
    pub fn next_bar(&mut self) -> Option<BarEvent> {
        if self.next_t >= self.dataset.periods() {
            return None;
        }
        let t = self.next_t;
        self.next_t += 1;
        Some(BarEvent { t, relative: self.dataset.relative(t - 1).to_vec() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(periods: usize, seed: u64, drift: f64, momentum: f64) -> MarketConfig {
        MarketConfig { assets: 4, periods, seed, drift, momentum, ..MarketConfig::default() }
    }

    #[test]
    fn stitched_prices_are_continuous_at_the_seam() {
        let a = seg(100, 11, 8e-4, 0.3);
        let b = seg(60, 22, -8e-4, -0.2);
        let ds = stitched_dataset(Preset::CryptoA, &[a.clone(), b.clone()], 80);
        assert_eq!(ds.periods(), 100 + 60 - 1);
        // Every relative across the seam must be finite and positive; the
        // seam bar itself equals segment A's last close, so the relative at
        // t = 99 reflects segment B's own first move, not a rescaling jump.
        for t in 0..ds.periods() - 1 {
            for &x in ds.relative(t) {
                assert!(x.is_finite() && x > 0.0, "bad relative {x} at {t}");
            }
        }
        // Deterministic in the segment configs.
        let ds2 = stitched_dataset(Preset::CryptoA, &[a, b], 80);
        assert_eq!(ds.ohlc.close(120, 2), ds2.ohlc.close(120, 2));
    }

    #[test]
    fn regimes_actually_differ_across_the_seam() {
        // A strong up-drift then a strong down-drift must show up in the
        // realised mean relatives on either side of the seam.
        let a = seg(400, 11, 2e-3, 0.3);
        let b = seg(400, 22, -2e-3, 0.3);
        let ds = stitched_dataset(Preset::CryptoA, &[a, b], 300);
        let mean = |lo: usize, hi: usize| -> f64 {
            let mut s = 0.0;
            let mut n = 0usize;
            for t in lo..hi {
                for &x in &ds.relative(t)[1..] {
                    s += x;
                    n += 1;
                }
            }
            s / n as f64
        };
        let pre = mean(0, 399);
        let post = mean(400, ds.periods() - 1);
        assert!(pre > post, "regime shift invisible: pre {pre} post {post}");
    }

    #[test]
    fn live_feed_replays_bars_in_order() {
        let ds = Arc::new(stitched_dataset(Preset::CryptoA, &[seg(50, 3, 1e-4, 0.1)], 40));
        let mut feed = LiveFeed::new(Arc::clone(&ds), ds.split);
        assert_eq!(feed.remaining(), 10);
        let mut seen = Vec::new();
        while let Some(bar) = feed.next_bar() {
            assert_eq!(bar.relative, ds.relative(bar.t - 1));
            seen.push(bar.t);
        }
        assert_eq!(seen, (40..50).collect::<Vec<_>>());
        assert!(feed.next_bar().is_none());
        assert_eq!(feed.remaining(), 0);
    }
}
