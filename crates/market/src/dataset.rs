//! Dataset assembly: presets mirroring the paper's Table 1 / Table 10,
//! missing-value filling, train/test splits, and normalised price windows.

use crate::gbm::{generate_paths, MarketConfig};
use crate::ohlc::{synthesize_ohlc, Bar, OhlcSeries};
use crate::relatives::price_relatives;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The paper's five evaluation datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Preset {
    /// 12 assets, mild uptrend, weak mean reversion (Table 1 row 1).
    CryptoA,
    /// 16 assets, strongly mean-reverting & volatile — the regime where
    /// OLMAR/RMR-class baselines explode in the paper (Table 3).
    CryptoB,
    /// 21 assets, trending with weak signal — mean-reversion methods suffer.
    CryptoC,
    /// 44 assets, broad bear market with strong lead–lag structure.
    CryptoD,
    /// S&P500-like daily dataset (Table 10). The paper uses 506 assets; we
    /// use 64 — see DESIGN.md §1 for the substitution rationale.
    Sp500,
}

impl Preset {
    /// Human-readable name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Preset::CryptoA => "Crypto-A",
            Preset::CryptoB => "Crypto-B",
            Preset::CryptoC => "Crypto-C",
            Preset::CryptoD => "Crypto-D",
            Preset::Sp500 => "S&P500",
        }
    }

    /// All presets in table order.
    pub fn all() -> [Preset; 5] {
        [Preset::CryptoA, Preset::CryptoB, Preset::CryptoC, Preset::CryptoD, Preset::Sp500]
    }

    /// Market model for this preset.
    ///
    /// Each preset is tuned so the *test split* reproduces the qualitative
    /// regime of the corresponding paper dataset: A mildly bullish with
    /// strong cross-asset lead–lag (RL methods shine, mean-reversion loses);
    /// B violently mean-reverting (OLMAR/RMR-class explodes, RL bigger);
    /// C quietly trending (mean reversion crashes, everyone else modest);
    /// D a broad bear with both reversion and lead–lag (UBAH < 1, RL large).
    pub fn market_config(self) -> MarketConfig {
        match self {
            Preset::CryptoA => MarketConfig {
                assets: 12,
                periods: 8_000,
                seed: 0xA11CE,
                drift: 8e-4,
                drift_spread: 4e-4,
                sigma: 0.004,
                momentum: 0.35,
                reversion: 0.0,
                max_lag: 2,
                factor_persistence: 0.5,
                factor_sigma: 0.011,
                ..MarketConfig::default()
            },
            Preset::CryptoB => MarketConfig {
                assets: 16,
                periods: 8_000,
                seed: 0xB0B,
                drift: 4e-4,
                sigma: 0.016,
                momentum: -0.15,
                reversion: 0.09,
                ema_decay: 0.18,
                max_lag: 2,
                factor_persistence: 0.5,
                factor_sigma: 0.010,
                high_vol_mult: 2.5,
                ..MarketConfig::default()
            },
            Preset::CryptoC => MarketConfig {
                assets: 21,
                periods: 8_000,
                seed: 0xC0C0A,
                drift: 1e-4,
                sigma: 0.005,
                momentum: 0.30,
                reversion: 0.0,
                max_lag: 1,
                factor_persistence: 0.4,
                factor_sigma: 0.003,
                // Quiet-trend regime: tame the default jump/regime noise so
                // the preset's realised volatility actually reflects its
                // small sigma (dataset_invariants asserts B >> C).
                jump_prob: 0.0005,
                jump_scale: 0.015,
                regime_switch_prob: 0.001,
                high_vol_mult: 1.3,
                ..MarketConfig::default()
            },
            Preset::CryptoD => MarketConfig {
                assets: 44,
                periods: 8_000,
                seed: 0xD00D,
                drift: -5e-4,
                drift_spread: 2e-4,
                sigma: 0.012,
                momentum: 0.0,
                reversion: 0.06,
                ema_decay: 0.15,
                max_lag: 3,
                factor_persistence: 0.5,
                factor_sigma: 0.011,
                ..MarketConfig::default()
            },
            Preset::Sp500 => MarketConfig {
                assets: 64,
                periods: 1_300,
                seed: 0x5500,
                drift: 6e-4,
                drift_spread: 4e-4,
                sigma: 0.007,
                momentum: 0.25,
                reversion: 0.0,
                max_lag: 2,
                factor_persistence: 0.5,
                factor_sigma: 0.009,
                jump_prob: 0.001,
                ..MarketConfig::default()
            },
        }
    }

    /// Index where the test split begins (matching the paper's ~92/8 ratio
    /// for crypto and 1101/94 for S&P500).
    pub fn split(self) -> usize {
        match self {
            Preset::Sp500 => 1_200,
            _ => 7_200,
        }
    }

    /// Fraction of assets that "appear late" and need missing-data filling
    /// (the paper fills young crypto-currencies with flat fake movements).
    pub fn late_listing_fraction(self) -> f64 {
        match self {
            Preset::Sp500 => 0.0,
            _ => 0.15,
        }
    }
}

/// A fully-assembled dataset: OHLC bars for `assets` risky assets plus the
/// derived price-relative vectors (cash prepended at index 0).
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Preset this dataset was built from.
    pub preset: Preset,
    /// OHLC bars (post missing-value fill).
    pub ohlc: OhlcSeries,
    /// Price relatives `x_t ∈ R^{m+1}` for `t = 1..periods`;
    /// `relatives[t-1][0] = 1` is the cash asset.
    pub relatives: Vec<Vec<f64>>,
    /// First period index of the test split.
    pub split: usize,
}

impl Dataset {
    /// Builds the preset dataset with its default seed.
    pub fn load(preset: Preset) -> Dataset {
        Dataset::load_with_seed(preset, 0)
    }

    /// Builds the preset dataset with a seed offset (for multi-seed runs).
    pub fn load_with_seed(preset: Preset, seed_offset: u64) -> Dataset {
        let _span = ppn_obs::span!("dataset.load");
        let wall = ppn_obs::clock::now();
        let mut cfg = preset.market_config();
        cfg.seed = cfg.seed.wrapping_add(seed_offset.wrapping_mul(0x9e3779b97f4a7c15));
        let paths = generate_paths(&cfg);
        let mut ohlc = synthesize_ohlc(&paths, cfg.seed);
        simulate_late_listings(&mut ohlc, preset.late_listing_fraction(), cfg.seed);
        let relatives = price_relatives(&ohlc);
        ppn_obs::event!(
            ppn_obs::Level::Debug,
            "dataset.load",
            preset = preset.name(),
            seed_offset = seed_offset,
            assets = cfg.assets,
            periods = cfg.periods,
            ms = wall.elapsed().as_secs_f64() * 1e3,
        );
        Dataset { preset, ohlc, relatives, split: preset.split() }
    }

    /// Risky asset count `m`.
    pub fn assets(&self) -> usize {
        self.ohlc.assets
    }

    /// Total period count.
    pub fn periods(&self) -> usize {
        self.ohlc.periods
    }

    /// Number of training periods.
    pub fn train_len(&self) -> usize {
        self.split
    }

    /// Number of test periods.
    pub fn test_len(&self) -> usize {
        self.periods() - self.split
    }

    /// Normalised price window ending at period `t` (inclusive):
    /// a `(m, k, 4)` row-major buffer where every price type of every asset
    /// is divided by that asset's *closing* price at the last window period,
    /// matching the paper's `P̂_t = P_t / P_{t,k}` preprocessing (§6.1.3).
    ///
    /// # Panics
    /// Panics when `t + 1 < k`.
    pub fn window(&self, t: usize, k: usize) -> Vec<f64> {
        assert!(t + 1 >= k, "window of length {k} ending at {t}");
        let m = self.assets();
        let mut out = Vec::with_capacity(m * k * 4);
        for i in 0..m {
            let norm = self.ohlc.close(t, i);
            for s in 0..k {
                let b = self.ohlc.bar(t + 1 - k + s, i);
                out.push(b.open / norm);
                out.push(b.high / norm);
                out.push(b.low / norm);
                out.push(b.close / norm);
            }
        }
        out
    }

    /// Price relative vector realised between periods `t` and `t+1`
    /// (length `m+1`, cash first). Valid for `t` in `0..periods-1`.
    pub fn relative(&self, t: usize) -> &[f64] {
        &self.relatives[t]
    }

    /// Extended window with volume as a fifth feature: `(m, k, 5)` row-major,
    /// prices normalised as in [`Dataset::window`] and volume normalised by
    /// the window's mean volume per asset (§3's "generalise to more prices").
    pub fn window_with_volume(&self, t: usize, k: usize) -> Vec<f64> {
        assert!(t + 1 >= k, "window of length {k} ending at {t}");
        let m = self.assets();
        let mut out = Vec::with_capacity(m * k * 5);
        for i in 0..m {
            let norm = self.ohlc.close(t, i);
            let mean_vol: f64 =
                (0..k).map(|s| self.ohlc.bar(t + 1 - k + s, i).volume).sum::<f64>() / k as f64;
            let vnorm = if mean_vol > 0.0 { mean_vol } else { 1.0 };
            for s in 0..k {
                let b = self.ohlc.bar(t + 1 - k + s, i);
                out.push(b.open / norm);
                out.push(b.high / norm);
                out.push(b.low / norm);
                out.push(b.close / norm);
                out.push(b.volume / vnorm);
            }
        }
        out
    }
}

/// Owned-or-borrowed handle to a [`Dataset`].
///
/// Offline training borrows the caller's dataset (`Borrowed`) — the classic
/// zero-copy path. Streaming components instead share ownership through an
/// `Arc` (`Shared`), which erases the borrow so a trainer can cross thread
/// and lifetime boundaries (the `ppn-stream` updater owns its trainer for
/// the life of a background thread). `Deref` makes both cases read like a
/// plain `&Dataset`, and `From` impls let APIs accept
/// `impl Into<DatasetHandle<'_>>` so existing `&Dataset` call sites compile
/// unchanged.
#[derive(Debug, Clone)]
pub enum DatasetHandle<'a> {
    /// Borrows a caller-owned dataset (offline training).
    Borrowed(&'a Dataset),
    /// Shares ownership — usable as `DatasetHandle<'static>`.
    Shared(std::sync::Arc<Dataset>),
}

impl std::ops::Deref for DatasetHandle<'_> {
    type Target = Dataset;

    fn deref(&self) -> &Dataset {
        match self {
            DatasetHandle::Borrowed(ds) => ds,
            DatasetHandle::Shared(ds) => ds,
        }
    }
}

impl<'a> From<&'a Dataset> for DatasetHandle<'a> {
    fn from(ds: &'a Dataset) -> Self {
        DatasetHandle::Borrowed(ds)
    }
}

impl From<std::sync::Arc<Dataset>> for DatasetHandle<'_> {
    fn from(ds: std::sync::Arc<Dataset>) -> Self {
        DatasetHandle::Shared(ds)
    }
}

impl From<&std::sync::Arc<Dataset>> for DatasetHandle<'_> {
    fn from(ds: &std::sync::Arc<Dataset>) -> Self {
        DatasetHandle::Shared(std::sync::Arc::clone(ds))
    }
}

/// Blanks the early history of a random subset of assets and fills it with
/// the paper's "flat fake price-movements" rule: constant price equal to the
/// first observed close (so relatives are exactly 1 until listing).
fn simulate_late_listings(ohlc: &mut OhlcSeries, fraction: f64, seed: u64) {
    if fraction <= 0.0 {
        return;
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD_BEEF);
    let m = ohlc.assets;
    let late = ((m as f64) * fraction).round() as usize;
    // Deterministically pick the last `late` asset indices; their listing
    // period falls inside the first third of the history.
    for i in (m - late)..m {
        let listing = rng.gen_range(1..ohlc.periods / 3);
        let first = ohlc.bar(listing, i);
        let flat = Bar {
            open: first.open,
            high: first.open,
            low: first.open,
            close: first.open,
            volume: 0.0, // nothing traded before listing
        };
        for t in 0..listing {
            ohlc.set_bar(t, i, flat);
        }
        // Stitch the listing bar's open to the flat price so the first real
        // bar remains coherent.
        let mut b = ohlc.bar(listing, i);
        b.open = first.open;
        b.high = b.high.max(b.open);
        b.low = b.low.min(b.open);
        ohlc.set_bar(listing, i, b);
    }
}

/// Row of the paper's Table 1 for a preset built by this crate.
#[derive(Debug, Clone)]
pub struct DatasetStats {
    /// Preset name.
    pub name: &'static str,
    /// Risky asset count.
    pub assets: usize,
    /// Training period count.
    pub train: usize,
    /// Test period count.
    pub test: usize,
}

/// Computes Table-1-style statistics for a dataset.
pub fn stats(ds: &Dataset) -> DatasetStats {
    DatasetStats {
        name: ds.preset.name(),
        assets: ds.assets(),
        train: ds.train_len(),
        test: ds.test_len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_asset_counts_match_paper() {
        assert_eq!(Preset::CryptoA.market_config().assets, 12);
        assert_eq!(Preset::CryptoB.market_config().assets, 16);
        assert_eq!(Preset::CryptoC.market_config().assets, 21);
        assert_eq!(Preset::CryptoD.market_config().assets, 44);
    }

    #[test]
    fn dataset_shapes() {
        let ds = Dataset::load(Preset::CryptoA);
        assert_eq!(ds.assets(), 12);
        assert_eq!(ds.relatives.len(), ds.periods() - 1);
        assert_eq!(ds.relative(0).len(), 13);
        assert_eq!(ds.relative(0)[0], 1.0, "cash relative is 1");
        assert!(ds.train_len() > ds.test_len());
    }

    #[test]
    fn window_normalisation() {
        let ds = Dataset::load(Preset::CryptoA);
        let k = 30;
        let w = ds.window(100, k);
        assert_eq!(w.len(), 12 * k * 4);
        // Last period's close of every asset normalises to exactly 1.
        for i in 0..12 {
            let close_last = w[i * k * 4 + (k - 1) * 4 + 3];
            assert!((close_last - 1.0).abs() < 1e-12, "asset {i}: {close_last}");
        }
        // All entries positive and near 1 (relative prices).
        assert!(w.iter().all(|&x| x > 0.0 && x < 10.0));
    }

    #[test]
    fn late_listing_fill_is_flat() {
        let ds = Dataset::load(Preset::CryptoD);
        let m = ds.assets();
        // The last ~15% of assets were listed late; their earliest relatives
        // must be exactly 1 (flat fake price movements).
        let late_asset = m - 1;
        let rel0 = ds.relative(0)[late_asset + 1];
        assert_eq!(rel0, 1.0, "flat fill should give unit relatives");
    }

    #[test]
    fn relatives_consistent_with_closes() {
        let ds = Dataset::load(Preset::CryptoB);
        for t in [0usize, 10, 500] {
            for i in 0..ds.assets() {
                let expect = ds.ohlc.close(t + 1, i) / ds.ohlc.close(t, i);
                assert!((ds.relative(t)[i + 1] - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn seed_offset_changes_data() {
        let a = Dataset::load_with_seed(Preset::CryptoA, 0);
        let b = Dataset::load_with_seed(Preset::CryptoA, 1);
        assert_ne!(a.ohlc.close(100, 0), b.ohlc.close(100, 0));
    }
}
