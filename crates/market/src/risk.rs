//! Extended risk analytics beyond the paper's §6.1.2 metric set.
//!
//! The paper motivates the Calmar ratio by noting that downside movements
//! matter more than symmetric volatility; this module completes that family:
//! downside deviation and the Sortino ratio, empirical value-at-risk /
//! expected shortfall, and annualisation helpers for comparing the 30-minute
//! crypto periods with the daily stock periods.

/// Downside deviation of returns below `target` (population form).
pub fn downside_deviation(returns: &[f64], target: f64) -> f64 {
    if returns.is_empty() {
        return 0.0;
    }
    let sum: f64 = returns
        .iter()
        .map(|&r| {
            let d = (target - r).max(0.0);
            d * d
        })
        .sum();
    (sum / returns.len() as f64).sqrt()
}

/// Sortino ratio: mean excess return over the downside deviation. Returns 0
/// when there is no downside at all (the ratio is undefined/infinite).
pub fn sortino_ratio(returns: &[f64], target: f64) -> f64 {
    let dd = downside_deviation(returns, target);
    if ppn_tensor::approx::is_zero(dd) || returns.is_empty() {
        return 0.0;
    }
    let mean = returns.iter().sum::<f64>() / returns.len() as f64;
    (mean - target) / dd
}

/// Empirical value-at-risk at confidence `alpha` (e.g. 0.95): the loss
/// threshold exceeded in only `(1−alpha)` of periods. Positive = loss.
pub fn value_at_risk(returns: &[f64], alpha: f64) -> f64 {
    assert!((0.5..1.0).contains(&alpha), "alpha {alpha}");
    if returns.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = returns.to_vec();
    sorted.sort_by(f64::total_cmp);
    let idx = (((1.0 - alpha) * sorted.len() as f64).floor() as usize).min(sorted.len() - 1);
    -sorted[idx]
}

/// Expected shortfall (CVaR): mean loss conditional on exceeding the VaR.
pub fn expected_shortfall(returns: &[f64], alpha: f64) -> f64 {
    if returns.is_empty() {
        return 0.0;
    }
    let var = value_at_risk(returns, alpha);
    let tail: Vec<f64> = returns.iter().copied().filter(|&r| -r >= var).collect();
    if tail.is_empty() {
        return var;
    }
    -tail.iter().sum::<f64>() / tail.len() as f64
}

/// Annualises a per-period mean log-return given `periods_per_year`
/// (17 520 for 30-minute bars, 252 for daily bars).
pub fn annualized_return(mean_log_return: f64, periods_per_year: f64) -> f64 {
    (mean_log_return * periods_per_year).exp() - 1.0
}

/// Annualises a per-period volatility by √t scaling.
pub fn annualized_volatility(std_per_period: f64, periods_per_year: f64) -> f64 {
    std_per_period * periods_per_year.sqrt()
}

/// Periods per year for the paper's two sampling frequencies.
pub mod frequency {
    /// 30-minute bars, 24/7 crypto markets: 48 × 365.
    pub const CRYPTO_30MIN: f64 = 48.0 * 365.0;
    /// Daily bars, equity calendar.
    pub const DAILY: f64 = 252.0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downside_ignores_gains() {
        let r = [0.05, 0.10, 0.20];
        assert_eq!(downside_deviation(&r, 0.0), 0.0);
        assert_eq!(sortino_ratio(&r, 0.0), 0.0, "no downside ⇒ defined as 0");
    }

    #[test]
    fn downside_known_value() {
        // Only the −0.1 is below target 0: dd = sqrt(0.01/4) = 0.05.
        let r = [-0.1, 0.1, 0.1, 0.1];
        assert!((downside_deviation(&r, 0.0) - 0.05).abs() < 1e-12);
        let sortino = sortino_ratio(&r, 0.0);
        assert!((sortino - 0.05 / 0.05).abs() < 1e-12);
    }

    #[test]
    fn sortino_punishes_downside_more_than_sharpe_style_symmetry() {
        // Same mean and variance, different skew.
        let symmetric = [0.02, -0.02, 0.02, -0.02];
        let downside_heavy = [0.028, 0.0, -0.034, 0.014]; // mean ~0.002
        let s1 = sortino_ratio(&symmetric, 0.0);
        let s2 = sortino_ratio(&downside_heavy, 0.0);
        assert!(s1.is_finite() && s2.is_finite());
    }

    #[test]
    fn var_and_es_ordering() {
        let returns: Vec<f64> = (0..100).map(|i| (i as f64 - 50.0) / 1000.0).collect();
        let var95 = value_at_risk(&returns, 0.95);
        let es95 = expected_shortfall(&returns, 0.95);
        assert!(var95 > 0.0, "losses exist");
        assert!(es95 >= var95, "ES dominates VaR: {es95} vs {var95}");
        let var99 = value_at_risk(&returns, 0.99);
        assert!(var99 >= var95, "higher confidence ⇒ deeper tail");
    }

    #[test]
    fn var_of_all_gains_is_negative() {
        let returns = [0.01, 0.02, 0.03];
        assert!(value_at_risk(&returns, 0.95) < 0.0);
    }

    #[test]
    fn annualization_round_numbers() {
        // 1% per day for 252 days ≈ e^2.52 − 1.
        let a = annualized_return(0.01, frequency::DAILY);
        assert!((a - (2.52f64.exp() - 1.0)).abs() < 1e-12);
        let v = annualized_volatility(0.01, 100.0);
        assert!((v - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_safe() {
        assert_eq!(downside_deviation(&[], 0.0), 0.0);
        assert_eq!(sortino_ratio(&[], 0.0), 0.0);
        assert_eq!(value_at_risk(&[], 0.95), 0.0);
        assert_eq!(expected_shortfall(&[], 0.95), 0.0);
    }
}
