//! Price relative vectors (§3 of the paper).
//!
//! The price change on period `t+1` is `x_{t+1} = p^c_{t+1} / p^c_t`
//! elementwise over closing prices, with the risk-free cash asset prepended
//! at index 0 with constant relative 1.

use crate::ohlc::OhlcSeries;

/// Computes `x_t` for every consecutive period pair. `out[t]` has length
/// `m + 1` and describes the move from period `t` to `t+1`.
pub fn price_relatives(ohlc: &OhlcSeries) -> Vec<Vec<f64>> {
    let m = ohlc.assets;
    let mut out = Vec::with_capacity(ohlc.periods.saturating_sub(1));
    for t in 0..ohlc.periods.saturating_sub(1) {
        let mut x = Vec::with_capacity(m + 1);
        x.push(1.0); // cash
        for i in 0..m {
            x.push(ohlc.close(t + 1, i) / ohlc.close(t, i));
        }
        out.push(x);
    }
    out
}

/// Portfolio value multiplier for one period: `aᵀx`.
///
/// # Panics
/// Debug-asserts matching lengths.
pub fn portfolio_return(action: &[f64], relative: &[f64]) -> f64 {
    debug_assert_eq!(action.len(), relative.len());
    action.iter().zip(relative).map(|(a, x)| a * x).sum()
}

/// The portfolio drifted by the market move, i.e. the paper's
/// `â_{t-1} = (a_{t-1} ⊙ x_{t-1}) / (a_{t-1}ᵀ x_{t-1})`: the weights held
/// *before* rebalancing at the start of period `t`.
// ppn-check: contract(simplex)
pub fn drifted_weights(action: &[f64], relative: &[f64]) -> Vec<f64> {
    let denom = portfolio_return(action, relative);
    let out: Vec<f64> = action.iter().zip(relative).map(|(a, x)| a * x / denom).collect();
    crate::contracts::assert_simplex(&out, "drifted_weights");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn portfolio_return_weighted_sum() {
        let a = [0.5, 0.25, 0.25];
        let x = [1.0, 1.2, 0.8];
        assert!((portfolio_return(&a, &x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn drifted_weights_sum_to_one() {
        let a = [0.2, 0.3, 0.5];
        let x = [1.0, 1.5, 0.7];
        let d = drifted_weights(&a, &x);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Winners gain weight, losers lose weight.
        assert!(d[1] > a[1]);
        assert!(d[2] < a[2]);
    }

    #[test]
    fn all_cash_is_fixed_point() {
        let a = [1.0, 0.0, 0.0];
        let x = [1.0, 2.0, 0.5];
        assert_eq!(drifted_weights(&a, &x), vec![1.0, 0.0, 0.0]);
    }
}
