//! Gym-style MDP wrapper over a [`Dataset`] (§3.1 of the paper).
//!
//! States are normalised `(m, k, 4)` price windows; actions are `m+1`
//! simplex portfolios; the reward is the rebalanced log-return
//! `log(a_tᵀx_t · (1 − c_t))`. Because of the paper's zero-market-impact
//! assumption (Remark 1), the state transition ignores the action — the
//! environment simply advances along the recorded price series.

use crate::cost::cost_proportion;
use crate::dataset::Dataset;
use crate::relatives::{drifted_weights, portfolio_return};

/// Observation handed to the agent: the normalised price window plus the
/// recursive inputs the PPN decision module consumes.
#[derive(Debug, Clone)]
pub struct Observation {
    /// Period index the agent is deciding at.
    pub t: usize,
    /// Normalised `(m, k, 4)` window, row-major.
    pub window: Vec<f64>,
    /// Previous action `a_{t−1}` (length `m+1`).
    pub prev_action: Vec<f64>,
    /// Drifted holdings `â_{t−1}` (length `m+1`).
    pub drifted: Vec<f64>,
}

/// Result of one environment step.
#[derive(Debug, Clone)]
pub struct StepOutcome {
    /// Rebalanced log-return (the MDP reward).
    pub reward: f64,
    /// Gross return `a_tᵀ x_t`.
    pub gross_return: f64,
    /// Transaction cost proportion paid.
    pub cost: f64,
    /// Wealth after the step.
    pub wealth: f64,
    /// True when the episode (the configured range) is exhausted.
    pub done: bool,
}

/// Sequential trading environment over a dataset slice.
pub struct TradingEnv<'a> {
    dataset: &'a Dataset,
    /// Window length `k` (the paper uses 30).
    pub k: usize,
    /// Proportional cost rate `ψ`.
    pub psi: f64,
    range: std::ops::Range<usize>,
    t: usize,
    prev_action: Vec<f64>,
    drifted: Vec<f64>,
    wealth: f64,
}

impl<'a> TradingEnv<'a> {
    /// New environment over `range` (period indices into the relatives).
    ///
    /// # Panics
    /// Panics if the range starts before a full window is available.
    pub fn new(dataset: &'a Dataset, k: usize, psi: f64, range: std::ops::Range<usize>) -> Self {
        assert!(range.start + 1 >= k, "range must allow a full window of {k}");
        assert!(range.end <= dataset.relatives.len());
        let m1 = dataset.assets() + 1;
        let mut a0 = vec![0.0; m1];
        a0[0] = 1.0;
        TradingEnv {
            dataset,
            k,
            psi,
            t: range.start,
            range,
            prev_action: a0.clone(),
            drifted: a0,
            wealth: 1.0,
        }
    }

    /// Restarts the episode.
    pub fn reset(&mut self) -> Observation {
        let m1 = self.dataset.assets() + 1;
        self.t = self.range.start;
        self.prev_action = vec![0.0; m1];
        self.prev_action[0] = 1.0;
        self.drifted = self.prev_action.clone();
        self.wealth = 1.0;
        self.observe()
    }

    /// Current observation.
    pub fn observe(&self) -> Observation {
        Observation {
            t: self.t,
            window: self.dataset.window(self.t, self.k),
            prev_action: self.prev_action.clone(),
            drifted: self.drifted.clone(),
        }
    }

    /// Applies `action` (an `m+1` simplex vector), advances one period.
    ///
    /// # Panics
    /// Panics if called after the episode ended or the action is off-simplex.
    pub fn step(&mut self, action: &[f64]) -> StepOutcome {
        assert!(self.t < self.range.end, "step on finished episode");
        let sum: f64 = action.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "action off simplex: {sum}");

        let sol = cost_proportion(self.psi, action, &self.drifted, 1e-12);
        let x = self.dataset.relative(self.t);
        let gross = portfolio_return(action, x);
        let net = gross * (1.0 - sol.cost);
        self.wealth *= net;
        self.drifted = drifted_weights(action, x);
        self.prev_action = action.to_vec();
        self.t += 1;
        StepOutcome {
            reward: net.ln(),
            gross_return: gross,
            cost: sol.cost,
            wealth: self.wealth,
            done: self.t >= self.range.end,
        }
    }

    /// Wealth accumulated so far.
    pub fn wealth(&self) -> f64 {
        self.wealth
    }

    /// Remaining steps in the episode.
    pub fn remaining(&self) -> usize {
        self.range.end - self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Preset;

    #[test]
    fn episode_walks_the_range() {
        let ds = Dataset::load(Preset::CryptoA);
        let mut env = TradingEnv::new(&ds, 30, 0.0025, 100..110);
        let obs = env.reset();
        assert_eq!(obs.t, 100);
        assert_eq!(obs.window.len(), 12 * 30 * 4);
        assert_eq!(obs.prev_action[0], 1.0);
        let n = ds.assets() + 1;
        let uniform = vec![1.0 / n as f64; n];
        let mut steps = 0;
        loop {
            let out = env.step(&uniform);
            steps += 1;
            if out.done {
                break;
            }
        }
        assert_eq!(steps, 10);
        assert_eq!(env.remaining(), 0);
    }

    #[test]
    fn cash_action_yields_zero_reward() {
        let ds = Dataset::load(Preset::CryptoA);
        let mut env = TradingEnv::new(&ds, 30, 0.0025, 100..105);
        env.reset();
        let mut cash = vec![0.0; ds.assets() + 1];
        cash[0] = 1.0;
        let out = env.step(&cash);
        assert!(out.reward.abs() < 1e-12);
        assert_eq!(out.cost, 0.0);
        assert_eq!(out.wealth, 1.0);
    }

    #[test]
    fn reward_matches_wealth_change() {
        let ds = Dataset::load(Preset::CryptoB);
        let mut env = TradingEnv::new(&ds, 30, 0.0025, 200..220);
        env.reset();
        let n = ds.assets() + 1;
        let uniform = vec![1.0 / n as f64; n];
        let mut log_sum = 0.0;
        loop {
            let out = env.step(&uniform);
            log_sum += out.reward;
            if out.done {
                assert!((out.wealth.ln() - log_sum).abs() < 1e-9);
                break;
            }
        }
    }

    #[test]
    #[should_panic(expected = "off simplex")]
    fn rejects_bad_action() {
        let ds = Dataset::load(Preset::CryptoA);
        let mut env = TradingEnv::new(&ds, 30, 0.0, 100..105);
        env.reset();
        env.step(&vec![0.9; ds.assets() + 1]);
    }
}
