//! Evaluation metrics (§6.1.2): APV, Sharpe ratio, Calmar ratio, maximum
//! drawdown, return standard deviation, and average turnover.

use serde::{Deserialize, Serialize};

/// Metric bundle for one backtest, using the paper's definitions:
///
/// * `APV  = S_n = Π a_tᵀx_t (1 − c_t)`
/// * `SR   = mean(r̂^c) / std(r̂^c)` over rebalanced log-returns, in percent
/// * `MDD  = max_{τ>t} (S_t − S_τ)/S_t`
/// * `CR   = (S_n − 1) / MDD` (accumulated *profit* over MDD — this is the
///   reading consistent with the negative CR entries of Table 3)
/// * `STD  = std(r̂^c)` in percent
/// * `TO   = (1/2n) Σ ‖â_{t−1} − a_t ω_t‖₁`
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Metrics {
    /// Accumulated portfolio value (final wealth, S₀ = 1).
    pub apv: f64,
    /// Sharpe ratio in percent.
    pub sharpe_pct: f64,
    /// Calmar ratio.
    pub calmar: f64,
    /// Maximum drawdown in `[0, 1]`.
    pub mdd: f64,
    /// Standard deviation of per-period log-returns, in percent.
    pub std_pct: f64,
    /// Average turnover per period.
    pub turnover: f64,
}

/// Maximum drawdown of a wealth curve.
pub fn max_drawdown(wealth: &[f64]) -> f64 {
    let mut peak = f64::NEG_INFINITY;
    let mut mdd = 0.0f64;
    for &w in wealth {
        peak = peak.max(w);
        if peak > 0.0 {
            mdd = mdd.max((peak - w) / peak);
        }
    }
    mdd
}

/// Sample statistics `(mean, population std)` of a slice.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Computes the full metric bundle from per-period records.
///
/// * `net_log_returns[t] = log(a_tᵀx_t · (1 − c_t))`
/// * `wealth[t]` — wealth *after* period `t` (curve starts implicitly at 1)
/// * `turnovers[t] = ‖â_{t−1} − a_t·ω_t‖₁`
pub fn compute(net_log_returns: &[f64], wealth: &[f64], turnovers: &[f64]) -> Metrics {
    let apv = wealth.last().copied().unwrap_or(1.0);
    let (mean_r, std_r) = mean_std(net_log_returns);
    let sharpe_pct = if std_r > 0.0 { 100.0 * mean_r / std_r } else { 0.0 };
    // Include the starting wealth so a monotone-down curve still has a peak.
    let mut curve = Vec::with_capacity(wealth.len() + 1);
    curve.push(1.0);
    curve.extend_from_slice(wealth);
    let mdd = max_drawdown(&curve);
    let calmar = if mdd > 0.0 { (apv - 1.0) / mdd } else { 0.0 };
    let n = net_log_returns.len().max(1) as f64;
    let turnover = turnovers.iter().sum::<f64>() / (2.0 * n);
    Metrics { apv, sharpe_pct, calmar, mdd, std_pct: 100.0 * std_r, turnover }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mdd_of_monotone_growth_is_zero() {
        assert_eq!(max_drawdown(&[1.0, 1.1, 1.2, 1.3]), 0.0);
    }

    #[test]
    fn mdd_known_value() {
        // Peak 2.0 → trough 1.0: MDD = 0.5 even with later recovery.
        let w = [1.0, 2.0, 1.5, 1.0, 1.8, 2.1];
        assert!((max_drawdown(&w) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mdd_uses_running_peak() {
        let w = [1.0, 0.5, 3.0, 2.4];
        // First dip: 50%; later dip from 3.0 → 2.4: 20%. Max = 0.5.
        assert!((max_drawdown(&w) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn metrics_on_constant_growth() {
        let r = 0.01f64;
        let n = 100;
        let logs = vec![r; n];
        let wealth: Vec<f64> = (1..=n).map(|t| (r * t as f64).exp()).collect();
        let to = vec![0.0; n];
        let m = compute(&logs, &wealth, &to);
        assert!((m.apv - (r * n as f64).exp()).abs() < 1e-9);
        // Constant returns: variance vanishes up to floating-point residue.
        assert!(m.std_pct < 1e-12, "std {}", m.std_pct);
        assert_eq!(m.mdd, 0.0);
        assert_eq!(m.turnover, 0.0);
    }

    #[test]
    fn losing_strategy_has_negative_calmar() {
        let logs = vec![-0.01; 50];
        let wealth: Vec<f64> = (1..=50).map(|t| (-0.01 * t as f64).exp()).collect();
        let m = compute(&logs, &wealth, &vec![0.1; 50]);
        assert!(m.apv < 1.0);
        assert!(m.calmar < 0.0, "calmar {}", m.calmar);
        assert!(m.mdd > 0.0);
        assert!((m.turnover - 0.05 / 1.0).abs() < 1e-12); // 0.1 / 2
    }

    #[test]
    fn sharpe_scales_with_mean_over_std() {
        let logs = [0.02, 0.0, 0.02, 0.0];
        let (mean, std) = mean_std(&logs);
        let wealth = [1.02, 1.02, 1.04, 1.04];
        let m = compute(&logs, &wealth, &[0.0; 4]);
        assert!((m.sharpe_pct - 100.0 * mean / std).abs() < 1e-12);
    }
}
