//! Backtest runner shared by every strategy (classic baselines and networks).
//!
//! Time alignment: an action decided at period `t` is exposed to the price
//! relative `x_t` describing the move from close `t` to close `t+1`. Before
//! deciding, the agent holds the *drifted* weights `â_{t−1}` (Proposition 4's
//! pre-rebalance allocation); rebalancing to `a_t` pays the fixed-point cost
//! from [`crate::cost::cost_proportion`].

use crate::cost::cost_proportion;
use crate::dataset::Dataset;
use crate::metrics::{compute, Metrics};
use crate::relatives::{drifted_weights, portfolio_return};

/// What a policy sees when deciding the next portfolio.
pub struct DecisionContext<'a> {
    /// Absolute period index in the dataset.
    pub t: usize,
    /// The dataset (for price windows).
    pub dataset: &'a Dataset,
    /// Price relatives realised so far: `x_0 … x_{t−1}` (cash at index 0).
    pub history: &'a [Vec<f64>],
    /// Current (drifted) holdings `â_{t−1}`, length `m+1`.
    pub drifted: &'a [f64],
    /// Previous action `a_{t−1}` as decided (pre-drift), length `m+1`.
    pub prev_action: &'a [f64],
}

/// Portfolio weights on the `m+1` simplex, cash at index 0.
pub type Weights = Vec<f64>;

/// A portfolio selection policy behind the workspace's batch-first decision
/// API.
///
/// The required method is [`Policy::decide_batch`]: given a slice of
/// independent decision contexts it returns one simplex action per context,
/// in order. Batch-capable implementations (the neural policies) answer the
/// whole slice with a single forward pass; one-off callers go through the
/// provided [`Policy::decide`] adapter, which wraps a single context into a
/// one-element batch. The trait is object-safe — the backtester and the
/// `ppn-serve` inference server both drive it as `&mut dyn Policy`.
///
/// Implementations whose decisions mutate internal state between contexts
/// (the classic online baselines) should implement [`SequentialPolicy`]
/// instead and inherit this trait through its blanket impl.
pub trait Policy {
    /// Display name used in result tables.
    fn name(&self) -> String;

    /// Decides one action per context, in order. Every returned vector must
    /// lie on the `m+1` simplex (cash first), and the output length must
    /// equal `ctxs.len()`.
    fn decide_batch(&mut self, ctxs: &[DecisionContext<'_>]) -> Vec<Weights>;

    /// Single-context adapter over [`Policy::decide_batch`]: wraps `ctx`
    /// into a one-element batch and unwraps the result.
    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Weights {
        let mut out = self.decide_batch(std::slice::from_ref(ctx));
        debug_assert_eq!(out.len(), 1, "decide_batch must return one action per context");
        out.pop().unwrap_or_default()
    }

    /// Resets internal state between backtests (default: no-op).
    fn reset(&mut self) {}
}

/// Per-context decision logic for strategies that update internal state
/// between consecutive decisions (PAMR's mean-reversion updates, UBAH's
/// buy-once flag, the online rolling retrainer, …).
///
/// Such strategies cannot answer a batch with one fused computation — the
/// decision for context `i+1` depends on having decided context `i` — so
/// their batch semantics are fixed by definition: decide each context in
/// slice order. The blanket impl below lifts any `SequentialPolicy` into the
/// batch-first [`Policy`] trait with exactly that loop, keeping the
/// backtester, the experiment harness, and `ppn-serve` on a single API.
pub trait SequentialPolicy {
    /// Display name used in result tables.
    fn name(&self) -> String;

    /// Decides `a_t` for one context. Must lie on the `m+1` simplex.
    fn decide_one(&mut self, ctx: &DecisionContext<'_>) -> Weights;

    /// Resets internal state between backtests (default: no-op).
    fn reset(&mut self) {}
}

impl<T: SequentialPolicy> Policy for T {
    fn name(&self) -> String {
        SequentialPolicy::name(self)
    }

    fn decide_batch(&mut self, ctxs: &[DecisionContext<'_>]) -> Vec<Weights> {
        ctxs.iter().map(|ctx| self.decide_one(ctx)).collect()
    }

    fn reset(&mut self) {
        SequentialPolicy::reset(self)
    }
}

/// One period of a completed backtest.
#[derive(Debug, Clone)]
pub struct PeriodRecord {
    /// Absolute period index.
    pub t: usize,
    /// The action taken.
    pub action: Vec<f64>,
    /// Gross return `a_tᵀ x_t`.
    pub gross_return: f64,
    /// Transaction cost proportion `c_t`.
    pub cost: f64,
    /// Net log-return `log(a_tᵀx_t (1−c_t))`.
    pub net_log_return: f64,
    /// Wealth after the period.
    pub wealth: f64,
    /// Turnover `‖â_{t−1} − a_t·ω_t‖₁`.
    pub turnover: f64,
}

/// Completed backtest: per-period records plus the aggregate metrics.
#[derive(Debug, Clone)]
pub struct BacktestResult {
    /// Strategy display name.
    pub name: String,
    /// Per-period records in time order.
    pub records: Vec<PeriodRecord>,
    /// Aggregate metrics (paper §6.1.2).
    pub metrics: Metrics,
}

impl BacktestResult {
    /// Wealth curve, starting after the first period.
    pub fn wealth_curve(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.wealth).collect()
    }
}

/// Runs `policy` over periods `range` of `dataset` at cost rate `psi`.
///
/// `range` indexes into the dataset's relative vectors; for a paper-style
/// test-split run use `dataset.split..dataset.periods()-1`.
///
/// The per-period loop is inherently sequential — the context for period
/// `t+1` contains the drifted outcome of the action taken at `t` — so the
/// backtester drives the batch-first [`Policy`] API through its
/// single-context [`Policy::decide`] adapter (batch size 1).
///
/// # Panics
/// Panics if the policy returns a vector off the simplex by more than 1e-6.
// ppn-check: contract(finite)
pub fn run_backtest(
    dataset: &Dataset,
    policy: &mut dyn Policy,
    psi: f64,
    range: std::ops::Range<usize>,
) -> BacktestResult {
    let _span = ppn_obs::span!("backtest.run");
    policy.reset();
    let name = policy.name();
    let m1 = dataset.assets() + 1;
    let mut prev_action = vec![0.0; m1];
    prev_action[0] = 1.0; // a_0 = (1, 0, …, 0): all cash
    let mut drifted = prev_action.clone();
    let mut wealth = 1.0;
    let mut peak: f64 = 1.0;
    let mut records = Vec::with_capacity(range.len());
    let periods_counter = ppn_obs::counter("backtest.periods");
    let turnover_hist =
        ppn_obs::histogram("backtest.turnover", &[0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0]);

    for t in range {
        let _period = ppn_obs::span!("backtest.period");
        let action = {
            let ctx = DecisionContext {
                t,
                dataset,
                history: &dataset.relatives[..t],
                drifted: &drifted,
                prev_action: &prev_action,
            };
            policy.decide(&ctx)
        };
        validate_simplex(&action, policy, t);

        let sol = cost_proportion(psi, &action, &drifted, 1e-12);
        let x = dataset.relative(t);
        let gross = portfolio_return(&action, x);
        let net = gross * (1.0 - sol.cost);
        crate::contracts::assert_finite(&[gross, net], "run_backtest period return");
        wealth *= net;
        peak = peak.max(wealth);
        let turnover: f64 =
            drifted.iter().zip(&action).map(|(&h, &a)| (h - a * sol.omega).abs()).sum();
        periods_counter.inc();
        turnover_hist.observe(turnover);
        ppn_obs::event!(
            ppn_obs::Level::Trace,
            "backtest.period",
            policy = name.as_str(),
            t = t,
            portfolio_value = wealth,
            gross_return = gross,
            cost = sol.cost,
            turnover = turnover,
            drawdown = 1.0 - wealth / peak,
        );
        records.push(PeriodRecord {
            t,
            action: action.clone(),
            gross_return: gross,
            cost: sol.cost,
            net_log_return: net.ln(),
            wealth,
            turnover,
        });
        drifted = drifted_weights(&action, x);
        prev_action = action;
    }

    let logs: Vec<f64> = records.iter().map(|r| r.net_log_return).collect();
    let curve: Vec<f64> = records.iter().map(|r| r.wealth).collect();
    let tos: Vec<f64> = records.iter().map(|r| r.turnover).collect();
    let metrics = compute(&logs, &curve, &tos);
    ppn_obs::event!(
        ppn_obs::Level::Debug,
        "backtest.finish",
        policy = name.as_str(),
        periods = records.len(),
        apv = metrics.apv,
        mdd = metrics.mdd,
        turnover = metrics.turnover,
    );
    BacktestResult { name, metrics, records }
}

fn validate_simplex(a: &[f64], policy: &dyn Policy, t: usize) {
    let sum: f64 = a.iter().sum();
    assert!(
        (sum - 1.0).abs() < 1e-6 && a.iter().all(|&x| x >= -1e-9),
        "{} returned an off-simplex action at t={t}: sum={sum}",
        policy.name()
    );
}

/// The paper's standard test-split range for a dataset.
pub fn test_range(dataset: &Dataset) -> std::ops::Range<usize> {
    dataset.split..dataset.periods() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, Preset};

    /// Hold-cash policy used to pin down the accounting. Implements the
    /// batch-first trait directly (stateless, so any batch is trivial).
    struct Cash;
    impl Policy for Cash {
        fn name(&self) -> String {
            "CASH".into()
        }
        fn decide_batch(&mut self, ctxs: &[DecisionContext<'_>]) -> Vec<Weights> {
            ctxs.iter()
                .map(|ctx| {
                    let mut a = vec![0.0; ctx.dataset.assets() + 1];
                    a[0] = 1.0;
                    a
                })
                .collect()
        }
    }

    /// Uniform rebalanced policy, via the sequential shim.
    struct Uniform;
    impl SequentialPolicy for Uniform {
        fn name(&self) -> String {
            "UNIFORM".into()
        }
        fn decide_one(&mut self, ctx: &DecisionContext<'_>) -> Weights {
            let n = ctx.dataset.assets() + 1;
            vec![1.0 / n as f64; n]
        }
    }

    #[test]
    fn cash_policy_keeps_wealth_exactly_one() {
        let ds = Dataset::load(Preset::CryptoA);
        let r = run_backtest(&ds, &mut Cash, 0.0025, 100..300);
        assert!((r.metrics.apv - 1.0).abs() < 1e-12);
        assert_eq!(r.metrics.turnover, 0.0);
        assert_eq!(r.metrics.mdd, 0.0);
    }

    #[test]
    fn costs_reduce_wealth() {
        let ds = Dataset::load(Preset::CryptoA);
        let free = run_backtest(&ds, &mut Uniform, 0.0, 100..600);
        let taxed = run_backtest(&ds, &mut Uniform, 0.01, 100..600);
        assert!(taxed.metrics.apv < free.metrics.apv);
        assert!(taxed.metrics.turnover > 0.0);
    }

    #[test]
    fn wealth_equals_product_of_net_returns() {
        let ds = Dataset::load(Preset::CryptoB);
        let r = run_backtest(&ds, &mut Uniform, 0.0025, 50..250);
        let prod: f64 = r.records.iter().map(|p| p.gross_return * (1.0 - p.cost)).product();
        assert!((r.metrics.apv - prod).abs() < 1e-9);
        // Each net log return consistent with the record.
        for p in &r.records {
            assert!((p.net_log_return - (p.gross_return * (1.0 - p.cost)).ln()).abs() < 1e-12);
        }
    }

    #[test]
    fn first_period_pays_entry_cost_for_uniform() {
        let ds = Dataset::load(Preset::CryptoA);
        let r = run_backtest(&ds, &mut Uniform, 0.0025, 100..101);
        // Buying 12/13 of wealth into assets: c ≈ ψ·(12/13).
        let expect = 0.0025 * (12.0 / 13.0);
        assert!((r.records[0].cost - expect).abs() < 1e-4, "{}", r.records[0].cost);
    }

    /// Counts every context it sees, so batch semantics are observable.
    struct Counting {
        seen: Vec<usize>,
    }
    impl SequentialPolicy for Counting {
        fn name(&self) -> String {
            "COUNTING".into()
        }
        fn decide_one(&mut self, ctx: &DecisionContext<'_>) -> Weights {
            self.seen.push(ctx.t);
            let n = ctx.dataset.assets() + 1;
            vec![1.0 / n as f64; n]
        }
        fn reset(&mut self) {
            self.seen.clear();
        }
    }

    #[test]
    fn decide_adapter_wraps_a_single_context_batch() {
        let ds = Dataset::load(Preset::CryptoA);
        let prev = {
            let mut p = vec![0.0; ds.assets() + 1];
            p[0] = 1.0;
            p
        };
        let ctx = DecisionContext {
            t: 120,
            dataset: &ds,
            history: &ds.relatives[..120],
            drifted: &prev,
            prev_action: &prev,
        };
        let mut p = Counting { seen: Vec::new() };
        let single = Policy::decide(&mut p, &ctx);
        let batched = p.decide_batch(std::slice::from_ref(&ctx));
        assert_eq!(batched.len(), 1);
        assert_eq!(single, batched[0]);
        assert_eq!(p.seen, vec![120, 120], "adapter must route through decide_batch");
    }

    #[test]
    fn sequential_shim_decides_contexts_in_slice_order() {
        let ds = Dataset::load(Preset::CryptoA);
        let prev = {
            let mut p = vec![0.0; ds.assets() + 1];
            p[0] = 1.0;
            p
        };
        let ctxs: Vec<DecisionContext<'_>> = (100..104)
            .map(|t| DecisionContext {
                t,
                dataset: &ds,
                history: &ds.relatives[..t],
                drifted: &prev,
                prev_action: &prev,
            })
            .collect();
        let mut p = Counting { seen: Vec::new() };
        let out = p.decide_batch(&ctxs);
        assert_eq!(out.len(), 4);
        assert_eq!(p.seen, vec![100, 101, 102, 103]);
        Policy::reset(&mut p);
        assert!(p.seen.is_empty(), "blanket impl must forward reset");
    }

    #[test]
    fn sequential_policies_run_under_dyn_policy() {
        // The blanket impl must coerce into the object-safe trait the
        // backtester and server drive.
        let ds = Dataset::load(Preset::CryptoA);
        let mut p: Box<dyn Policy> = Box::new(Counting { seen: Vec::new() });
        let r = run_backtest(&ds, p.as_mut(), 0.0025, 100..110);
        assert_eq!(r.records.len(), 10);
        assert_eq!(r.name, "COUNTING");
    }

    #[test]
    fn test_range_is_nonempty_and_in_bounds() {
        let ds = Dataset::load(Preset::CryptoC);
        let r = test_range(&ds);
        assert!(r.start < r.end);
        assert!(r.end <= ds.relatives.len());
    }
}
