//! Dataset-level invariants across all presets.

use ppn_market::{Dataset, Preset};

#[test]
fn all_presets_load_with_consistent_shapes() {
    for preset in Preset::all() {
        let ds = Dataset::load(preset);
        let cfg = preset.market_config();
        assert_eq!(ds.assets(), cfg.assets, "{}", preset.name());
        assert_eq!(ds.periods(), cfg.periods);
        assert_eq!(ds.relatives.len(), ds.periods() - 1);
        assert!(ds.split < ds.periods());
        assert!(ds.train_len() > 4 * ds.test_len(), "paper-style ~80/20+ split");
    }
}

#[test]
fn windows_valid_across_whole_test_range() {
    for preset in [Preset::CryptoA, Preset::Sp500] {
        let ds = Dataset::load(preset);
        let k = 30;
        let mid = ds.split + ds.test_len() / 2;
        for t in [ds.split, mid, ds.periods() - 2] {
            let w = ds.window(t, k);
            assert_eq!(w.len(), ds.assets() * k * 4);
            assert!(w.iter().all(|&x| x.is_finite() && x > 0.0), "{} t={t}", preset.name());
        }
    }
}

#[test]
fn bars_coherent_after_late_listing_fill() {
    for preset in [Preset::CryptoB, Preset::CryptoD] {
        let ds = Dataset::load(preset);
        for t in (0..ds.periods()).step_by(97) {
            for i in 0..ds.assets() {
                let b = ds.ohlc.bar(t, i);
                assert!(b.is_coherent(), "{} bar ({t},{i}): {b:?}", preset.name());
            }
        }
    }
}

#[test]
fn ohlc_envelope_contains_close_ratio_one_in_window() {
    // Window normalisation divides by the final close; the final period's
    // high/low must bracket 1.
    let ds = Dataset::load(Preset::CryptoC);
    let k = 30;
    let w = ds.window(500, k);
    for i in 0..ds.assets() {
        let hi = w[i * k * 4 + (k - 1) * 4 + 1];
        let lo = w[i * k * 4 + (k - 1) * 4 + 2];
        assert!(hi >= 1.0 && lo <= 1.0, "asset {i}: high {hi} low {lo}");
    }
}

#[test]
fn presets_are_mutually_distinct() {
    let a = Dataset::load(Preset::CryptoA);
    let b = Dataset::load(Preset::CryptoB);
    assert_ne!(a.assets(), b.assets());
    assert_ne!(a.ohlc.close(100, 0), b.ohlc.close(100, 0));
}

#[test]
fn regime_signatures_match_design() {
    // Crypto-B must be substantially more volatile than Crypto-C (the
    // mean-reversion vs quiet-trend presets).
    let vol = |preset: Preset| {
        let ds = Dataset::load(preset);
        let logs: Vec<f64> = (0..2_000).map(|t| ds.relative(t)[1].ln()).collect();
        let mean = logs.iter().sum::<f64>() / logs.len() as f64;
        (logs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / logs.len() as f64).sqrt()
    };
    assert!(vol(Preset::CryptoB) > 1.5 * vol(Preset::CryptoC));
}

#[test]
fn bear_preset_is_actually_bearish_over_test_split() {
    // Crypto-D is the paper's losing market (UBAH < 1).
    let ds = Dataset::load(Preset::CryptoD);
    let mut log_sum = 0.0;
    let mut count = 0.0;
    for t in ds.split..ds.periods() - 1 {
        for i in 1..=ds.assets() {
            log_sum += ds.relative(t)[i].ln();
            count += 1.0;
        }
    }
    assert!(log_sum / count < 0.0, "Crypto-D test split should drift down");
}

#[test]
fn volume_window_has_five_features() {
    let ds = Dataset::load(Preset::CryptoA);
    let k = 30;
    // Use a period after every late listing so all assets trade (pre-listing
    // flat-filled bars legitimately carry zero volume).
    let t = ds.split;
    let w5 = ds.window_with_volume(t, k);
    let w4 = ds.window(t, k);
    assert_eq!(w5.len(), ds.assets() * k * 5);
    // Price features agree between the two layouts.
    for i in 0..ds.assets() {
        for s in 0..k {
            for f in 0..4 {
                assert_eq!(w5[i * k * 5 + s * 5 + f], w4[i * k * 4 + s * 4 + f]);
            }
        }
    }
    // Normalised volumes are positive and average ~1 per asset.
    for i in 0..ds.assets() {
        let mean: f64 = (0..k).map(|s| w5[i * k * 5 + s * 5 + 4]).sum::<f64>() / k as f64;
        assert!((mean - 1.0).abs() < 1e-9, "asset {i}: mean vol {mean}");
    }
}

#[test]
fn volume_tracks_volatility() {
    // The volume-volatility relation built into the synthesiser: big-move
    // periods should carry more volume on average.
    let ds = Dataset::load(Preset::CryptoB);
    let mut big = (0.0, 0.0);
    let mut small = (0.0, 0.0);
    for t in 1..3_000 {
        for i in 0..ds.assets() {
            let b = ds.ohlc.bar(t, i);
            let move_frac = (b.close / b.open - 1.0).abs();
            if move_frac > 0.01 {
                big = (big.0 + b.volume, big.1 + 1.0);
            } else if move_frac < 0.002 {
                small = (small.0 + b.volume, small.1 + 1.0);
            }
        }
    }
    assert!(big.1 > 0.0 && small.1 > 0.0);
    assert!(big.0 / big.1 > 1.5 * (small.0 / small.1));
}
