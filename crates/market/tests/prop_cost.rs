//! Property-based certification of the transaction-cost model against
//! Proposition 4 of the paper, and of metric invariants.

use ppn_market::{cost_proportion, max_drawdown, max_turnover, prop4_bounds, turnover_l1};
use proptest::prelude::*;

/// Strategy producing a random simplex vector of the given length.
fn simplex(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0..1.0f64, len).prop_map(|mut v| {
        let s: f64 = v.iter().sum();
        if s == 0.0 {
            v[0] = 1.0;
        } else {
            for x in &mut v {
                *x /= s;
            }
        }
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn cost_satisfies_implicit_equation(
        a in simplex(6),
        h in simplex(6),
        psi in 0.0001..0.3f64,
    ) {
        let s = cost_proportion(psi, &a, &h, 1e-13);
        // Residual of c = ψ Σ_{i≥1} |a_i ω − h_i|.
        let rhs: f64 = psi * a.iter().zip(&h).skip(1)
            .map(|(&ai, &hi)| (ai * s.omega - hi).abs()).sum::<f64>();
        prop_assert!((s.cost - rhs).abs() < 1e-9, "residual {}", (s.cost - rhs).abs());
        prop_assert!(s.cost >= 0.0 && s.cost < 1.0);
        prop_assert!((s.omega - (1.0 - s.cost)).abs() < 1e-15);
    }

    #[test]
    fn prop4_bounds_hold(
        a in simplex(5),
        h in simplex(5),
        psi in 0.0001..0.3f64,
    ) {
        let s = cost_proportion(psi, &a, &h, 1e-13);
        let (lo, hi) = prop4_bounds(psi, &a, &h);
        prop_assert!(lo <= s.cost + 1e-9, "lower bound {lo} > cost {}", s.cost);
        prop_assert!(s.cost <= hi + 1e-9, "cost {} > upper bound {hi}", s.cost);
    }

    #[test]
    fn turnover_within_prop4_range(
        a in simplex(5),
        h in simplex(5),
    ) {
        // ‖a − â‖₁ ∈ (0, 2(1−ψ)/(1+ψ)] at ψ=0 reduces to ≤ 2 for simplex pairs.
        let l1 = turnover_l1(&a, &h);
        prop_assert!(l1 <= max_turnover(0.0) + 1e-12);
        prop_assert!(l1 >= 0.0);
    }

    #[test]
    fn cost_monotone_in_psi(
        a in simplex(4),
        h in simplex(4),
        psi1 in 0.0001..0.1f64,
        bump in 0.001..0.1f64,
    ) {
        let c1 = cost_proportion(psi1, &a, &h, 1e-13).cost;
        let c2 = cost_proportion(psi1 + bump, &a, &h, 1e-13).cost;
        prop_assert!(c2 >= c1 - 1e-12, "cost not monotone: {c1} → {c2}");
    }

    #[test]
    fn mdd_in_unit_interval(w in prop::collection::vec(0.01..100.0f64, 1..200)) {
        let mdd = max_drawdown(&w);
        prop_assert!((0.0..=1.0).contains(&mdd));
    }

    #[test]
    fn mdd_invariant_under_scaling(
        w in prop::collection::vec(0.01..100.0f64, 2..100),
        s in 0.1..10.0f64,
    ) {
        let scaled: Vec<f64> = w.iter().map(|x| x * s).collect();
        prop_assert!((max_drawdown(&w) - max_drawdown(&scaled)).abs() < 1e-12);
    }
}
