//! Vendored shim for the subset of `mio` this workspace uses: a readiness
//! facade over Linux `epoll(7)`, reached through `std::os::fd` raw handles.
//!
//! The build environment is offline, so the real `mio` crate is not
//! available; this shim implements exactly the surface `ppn-serve`'s
//! event loop needs — [`Poll`] (an epoll instance), [`Events`] (a reusable
//! readiness buffer), [`Token`]/[`Interest`] (registration coordinates),
//! and [`Waker`] (a cross-thread wakeup source built on a non-blocking
//! `UnixStream` pair, so the only foreign functions required are the three
//! `epoll_*` calls themselves). Swap the workspace `path` dependency back
//! to the registry `mio` to use the real crate.
//!
//! Readiness is **level-triggered** (`EPOLLIN`/`EPOLLOUT` without
//! `EPOLLET`): an event keeps firing while the condition holds, so
//! consumers must either drain the fd to `WouldBlock` or deregister the
//! interest. This matches the simplest correct consumption pattern for a
//! per-connection state machine and avoids the lost-wakeup hazards of
//! edge-triggered loops.
//!
//! On non-Linux targets the crate still compiles, but [`Poll::new`]
//! returns `ErrorKind::Unsupported` — the serving stack is Linux-only by
//! design (the deployment target), while the rest of the workspace stays
//! portable.

use std::io;
use std::time::Duration;

/// Caller-chosen identifier attached to a registration; readiness events
/// report the token of the fd they concern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub usize);

/// Which readiness conditions a registration subscribes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Readable readiness (`EPOLLIN`).
    pub const READABLE: Interest = Interest(0b01);
    /// Writable readiness (`EPOLLOUT`).
    pub const WRITABLE: Interest = Interest(0b10);

    /// Combines two interests (`READABLE.add(WRITABLE)` subscribes to both).
    /// Named after the real `mio::Interest::add`, not `std::ops::Add`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// True when this interest includes readable readiness.
    pub fn is_readable(self) -> bool {
        self.0 & 0b01 != 0
    }

    /// True when this interest includes writable readiness.
    pub fn is_writable(self) -> bool {
        self.0 & 0b10 != 0
    }
}

/// One readiness event delivered by [`Poll::poll`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    token: Token,
    readable: bool,
    writable: bool,
    closed: bool,
}

impl Event {
    /// The registration token of the fd this event concerns.
    pub fn token(&self) -> Token {
        self.token
    }

    /// True when the fd is ready for reading (includes EOF/hangup, which a
    /// subsequent `read` surfaces as `Ok(0)`).
    pub fn is_readable(&self) -> bool {
        self.readable || self.closed
    }

    /// True when the fd is ready for writing.
    pub fn is_writable(&self) -> bool {
        self.writable
    }

    /// True when the peer hung up or the fd errored (`EPOLLHUP` /
    /// `EPOLLRDHUP` / `EPOLLERR`).
    pub fn is_closed(&self) -> bool {
        self.closed
    }
}

/// Reusable buffer of readiness events; fill it with [`Poll::poll`].
#[derive(Debug, Default)]
pub struct Events {
    inner: Vec<Event>,
    capacity: usize,
}

impl Events {
    /// An empty buffer that will receive at most `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        Events { inner: Vec::with_capacity(capacity), capacity: capacity.max(1) }
    }

    /// Iterates the events delivered by the most recent poll.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.inner.iter()
    }

    /// True when the most recent poll delivered no events (timeout).
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Number of events delivered by the most recent poll.
    pub fn len(&self) -> usize {
        self.inner.len()
    }
}

#[cfg(target_os = "linux")]
mod sys {
    //! The Linux implementation: raw `epoll_*` FFI against the libc that
    //! `std` already links. `epoll_event` is packed on x86-64 (kernel ABI).

    use super::{Event, Events, Interest, Token};
    use std::io;
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
    use std::os::raw::c_int;
    use std::time::Duration;

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
    }

    /// An epoll instance; closed on drop via `OwnedFd`.
    #[derive(Debug)]
    pub struct Selector {
        ep: OwnedFd,
    }

    impl Selector {
        pub fn new() -> io::Result<Selector> {
            // SAFETY: epoll_create1 has no pointer arguments; a non-negative
            // return is a freshly created fd this process owns.
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            // SAFETY: `fd` was just returned by epoll_create1 and is owned
            // by nobody else.
            Ok(Selector { ep: unsafe { OwnedFd::from_raw_fd(fd) } })
        }

        fn ctl(
            &self,
            op: c_int,
            fd: RawFd,
            interests: Option<(Token, Interest)>,
        ) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            if let Some((token, interest)) = interests {
                ev.data = token.0 as u64;
                if interest.is_readable() {
                    ev.events |= EPOLLIN | EPOLLRDHUP;
                }
                if interest.is_writable() {
                    ev.events |= EPOLLOUT;
                }
            }
            // SAFETY: `ev` outlives the call; the kernel copies it before
            // returning. `fd` validity is the caller's registration contract.
            let rc = unsafe { epoll_ctl(self.ep.as_raw_fd(), op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn register(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, Some((token, interest)))
        }

        pub fn reregister(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, Some((token, interest)))
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, None)
        }

        pub fn poll(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
            events.inner.clear();
            let timeout_ms: c_int = match timeout {
                // Round up so a 100µs request sleeps 1ms instead of busy
                // spinning at 0ms.
                Some(d) => {
                    let ms = d.as_millis();
                    let ms = if ms == 0 && !d.is_zero() { 1 } else { ms };
                    c_int::try_from(ms).unwrap_or(c_int::MAX)
                }
                None => -1,
            };
            let cap = events.capacity;
            let mut raw = vec![EpollEvent { events: 0, data: 0 }; cap];
            // SAFETY: `raw` provides `cap` writable EpollEvent slots; the
            // kernel writes at most `cap` entries and returns the count.
            let n = unsafe {
                epoll_wait(self.ep.as_raw_fd(), raw.as_mut_ptr(), cap as c_int, timeout_ms)
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                // A signal interrupting the wait is a spurious (empty) wake,
                // not a failure.
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for slot in raw.iter().take(n as usize) {
                let bits = slot.events;
                events.inner.push(Event {
                    token: Token(slot.data as usize),
                    readable: bits & EPOLLIN != 0,
                    writable: bits & EPOLLOUT != 0,
                    closed: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            Ok(())
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    //! Non-Linux stub: compiles everywhere, reports `Unsupported` at
    //! runtime so portable code paths can degrade gracefully.

    use super::{Events, Interest, Token};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    fn unsupported() -> io::Error {
        io::Error::new(io::ErrorKind::Unsupported, "epoll readiness requires Linux")
    }

    /// Stub selector (non-Linux).
    #[derive(Debug)]
    pub struct Selector;

    impl Selector {
        pub fn new() -> io::Result<Selector> {
            Err(unsupported())
        }

        pub fn register(&self, _: RawFd, _: Token, _: Interest) -> io::Result<()> {
            Err(unsupported())
        }

        pub fn reregister(&self, _: RawFd, _: Token, _: Interest) -> io::Result<()> {
            Err(unsupported())
        }

        pub fn deregister(&self, _: RawFd) -> io::Result<()> {
            Err(unsupported())
        }

        pub fn poll(&self, _: &mut Events, _: Option<Duration>) -> io::Result<()> {
            Err(unsupported())
        }
    }
}

/// An OS readiness selector (an `epoll(7)` instance on Linux).
///
/// Registration and polling take `&self` — epoll is thread-safe — but the
/// intended pattern is one owning event-loop thread with [`Waker`]s as the
/// only cross-thread entry point.
#[derive(Debug)]
pub struct Poll {
    selector: sys::Selector,
}

impl Poll {
    /// Creates a new selector.
    pub fn new() -> io::Result<Poll> {
        Ok(Poll { selector: sys::Selector::new()? })
    }

    /// Subscribes `source` to `interest`, tagging its events with `token`.
    pub fn register<S: std::os::fd::AsRawFd>(
        &self,
        source: &S,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.selector.register(source.as_raw_fd(), token, interest)
    }

    /// Replaces the interest/token of an already-registered `source`.
    pub fn reregister<S: std::os::fd::AsRawFd>(
        &self,
        source: &S,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.selector.reregister(source.as_raw_fd(), token, interest)
    }

    /// Removes `source` from the selector.
    pub fn deregister<S: std::os::fd::AsRawFd>(&self, source: &S) -> io::Result<()> {
        self.selector.deregister(source.as_raw_fd())
    }

    /// Blocks until at least one registered fd is ready, the `timeout`
    /// elapses (`None` waits forever), or a signal interrupts the wait
    /// (delivered as an empty event set). Events land in `events`.
    pub fn poll(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        self.selector.poll(events, timeout)
    }
}

/// Cross-thread wakeup source: `wake()` from any thread makes the owning
/// [`Poll`]'s current (or next) [`Poll::poll`] call return with an event
/// carrying the waker's token.
///
/// Built on a non-blocking `UnixStream` pair: the read end is registered
/// with the selector, `wake` writes one byte to the write end. Wakes
/// coalesce — a full pipe means a wake is already pending, which is exactly
/// the semantics wanted. Unlike real `mio`, the consumer must call
/// [`Waker::drain`] when it sees the waker's token, or (level-triggered)
/// the event repeats.
#[derive(Debug)]
pub struct Waker {
    read: std::os::unix::net::UnixStream,
    write: std::os::unix::net::UnixStream,
}

impl Waker {
    /// Creates the pair and registers the read end with `poll` under
    /// `token`.
    pub fn new(poll: &Poll, token: Token) -> io::Result<Waker> {
        let (read, write) = std::os::unix::net::UnixStream::pair()?;
        read.set_nonblocking(true)?;
        write.set_nonblocking(true)?;
        poll.register(&read, token, Interest::READABLE)?;
        Ok(Waker { read, write })
    }

    /// Signals the poller. Never blocks; a full pipe (wake already pending)
    /// counts as success.
    pub fn wake(&self) -> io::Result<()> {
        use std::io::Write;
        match (&self.write).write(&[1u8]) {
            Ok(_) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Consumes all pending wake bytes; call when the waker's token shows
    /// up in an event so the level-triggered readiness clears.
    pub fn drain(&self) {
        use std::io::Read;
        let mut buf = [0u8; 64];
        while matches!((&self.read).read(&mut buf), Ok(n) if n > 0) {}
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn listener_readiness_and_waker_roundtrip() {
        let poll = Poll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        poll.register(&listener, Token(0), Interest::READABLE).unwrap();
        let waker = Waker::new(&poll, Token(1)).unwrap();

        // Nothing ready yet: a short poll times out empty.
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_millis(5))).unwrap();
        assert!(events.is_empty());

        // A pending connection raises READABLE on the listener token.
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(500))).unwrap();
        assert!(events.iter().any(|e| e.token() == Token(0) && e.is_readable()));

        // The waker raises its own token, and drain() clears it.
        waker.wake().unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(500))).unwrap();
        assert!(events.iter().any(|e| e.token() == Token(1)));
        waker.drain();
        poll.poll(&mut events, Some(Duration::from_millis(5))).unwrap();
        assert!(events.iter().all(|e| e.token() != Token(1)), "drained waker must go quiet");

        // Accepted stream: WRITABLE immediately, readable once bytes land.
        let (mut server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        poll.register(&server_side, Token(2), Interest::READABLE.add(Interest::WRITABLE)).unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(500))).unwrap();
        assert!(events.iter().any(|e| e.token() == Token(2) && e.is_writable()));

        (&client).write_all(b"ping").unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(500))).unwrap();
        assert!(events.iter().any(|e| e.token() == Token(2) && e.is_readable()));
        let mut buf = [0u8; 8];
        assert_eq!(server_side.read(&mut buf).unwrap(), 4);

        // Reregister down to WRITABLE-only: new bytes no longer wake us...
        poll.reregister(&server_side, Token(2), Interest::WRITABLE).unwrap();
        // ...and deregistration silences the fd entirely.
        poll.deregister(&server_side).unwrap();
        (&client).write_all(b"more").unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(5))).unwrap();
        assert!(events.iter().all(|e| e.token() != Token(2)));
    }

    #[test]
    fn hangup_reports_closed() {
        let poll = Poll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        poll.register(&server_side, Token(7), Interest::READABLE).unwrap();
        drop(client);
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_millis(500))).unwrap();
        let ev = events.iter().find(|e| e.token() == Token(7)).expect("hangup event");
        assert!(ev.is_closed());
        assert!(ev.is_readable(), "EOF must be surfaced as readable so reads observe Ok(0)");
    }
}
