//! Vendored shim for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal, API-compatible stand-in: [`rngs::StdRng`] (xoshiro256** seeded
//! via SplitMix64 — *not* the upstream ChaCha12, so raw streams differ from
//! real `rand`, which is fine because nothing in the repo asserts on golden
//! random values), the [`SeedableRng`] constructor surface, and the [`Rng`]
//! extension methods `gen`, `gen_range`, `gen_bool` and `fill`.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Fixed-size seed type.
    type Seed;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128 + self.start as i128;
                v as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128 + lo as i128;
                v as $t
            }
        }
    )*};
}
int_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                // The closed upper end has measure zero; treat as half-open.
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
float_range!(f64, f32);

/// User-facing convenience methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Uniform value of type `T` (floats in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0,1]");
        <f64 as Standard>::sample_standard(self) < p
    }

    /// Fills `dest` with uniform values.
    fn fill<T: Standard>(&mut self, dest: &mut [T]) {
        for slot in dest {
            *slot = T::sample_standard(self);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic mock generators for tests.
    pub mod mock {
        use super::RngCore;

        /// Arithmetic-progression generator: yields `initial`,
        /// `initial + increment`, … (wrapping).
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct StepRng {
            next: u64,
            increment: u64,
        }

        impl StepRng {
            /// New mock generator.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng { next: initial, increment }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let out = self.next;
                self.next = self.next.wrapping_add(self.increment);
                out
            }
        }
    }

    /// The workspace's standard generator: xoshiro256** with SplitMix64
    /// seed expansion. Deterministic given the seed; statistically strong
    /// for simulation purposes (not cryptographic).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn mix(state: &mut u64) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *w = u64::from_le_bytes(b);
            }
            if s == [0; 4] {
                s = [1, 2, 3, 4];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut st = state;
            let s =
                [Self::mix(&mut st), Self::mix(&mut st), Self::mix(&mut st), Self::mix(&mut st)];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** (Blackman & Vigna 2018).
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let u = r.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let f = r.gen_range(-2.0f64..5.0);
            assert!((-2.0..5.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "{frac}");
    }

    #[test]
    fn mean_is_near_half() {
        let mut r = StdRng::seed_from_u64(13);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.005);
    }
}
