//! End-to-end tests for the streaming online-adaptation pipeline: a live
//! ppn-serve server whose model keeps training on a simulated feed must
//! hot-swap refreshed versions with zero downtime (every in-flight decide
//! answers 200 and is bit-identical to the version it was stamped with),
//! and an injected divergent candidate must be rolled back automatically
//! with the previous version restored bit-for-bit.
//!
//! Metrics share one process-global registry, so these tests only assert
//! monotone facts (counts grew) and never reset it.

use ppn_core::config::{NetConfig, RewardConfig, TrainConfig};
use ppn_core::ppn::{PolicyNet, Variant};
use ppn_market::{stitched_dataset, Dataset, MarketConfig, Preset};
use ppn_serve::http::HttpClient;
use ppn_serve::{DecideRequest, DecideResponse, ModelRegistry, ServeConfig, Server};
use ppn_stream::{promote, PromotionOutcome, StreamConfig, StreamService};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

const ASSETS: usize = 3;

fn small_cfg() -> NetConfig {
    NetConfig { window: 8, lstm_hidden: 4, tccb_channels: [3, 4, 4], ..NetConfig::paper(ASSETS) }
}

/// Two opposite-drift regimes spliced price-continuously: the seam is a
/// known mid-stream regime shift the online updater has to live through.
fn regime_shift_dataset(split: usize) -> Arc<Dataset> {
    let up = MarketConfig {
        assets: ASSETS,
        periods: 300,
        seed: 11,
        drift: 2e-3,
        momentum: 0.3,
        ..MarketConfig::default()
    };
    let down = MarketConfig { seed: 22, drift: -2e-3, ..up.clone() };
    Arc::new(stitched_dataset(Preset::CryptoA, &[up, down], split))
}

fn probe_inputs(cfg: &NetConfig) -> (Vec<f64>, Vec<f64>) {
    let window: Vec<f64> = (0..cfg.assets * cfg.window * cfg.features)
        .map(|i| 1.0 + 0.003 * (i as f64 * 0.9).sin())
        .collect();
    let prev = vec![1.0 / (cfg.assets as f64 + 1.0); cfg.assets + 1];
    (window, prev)
}

fn decide_body(cfg: &NetConfig, model: &str) -> String {
    let (window, prev_action) = probe_inputs(cfg);
    serde_json::to_string(&DecideRequest { model: model.to_string(), window, prev_action }).unwrap()
}

fn version_header(headers: &str) -> Option<u64> {
    headers
        .lines()
        .find_map(|l| l.strip_prefix("X-PPN-Model-Version: ").and_then(|v| v.trim().parse().ok()))
}

/// The headline demo: a serving model adapts to a mid-stream regime shift
/// through zero-downtime hot swaps. A client soaks `/decide` for the whole
/// run; every response must succeed, be stamped with the version that
/// produced it, and match that version's direct `act` bit-for-bit — across
/// at least one swap.
#[test]
fn live_server_adapts_across_regime_shift_with_zero_downtime_swaps() {
    let split = 280;
    let ds = regime_shift_dataset(split);
    let live_bars = (ds.periods() - split) as u64;
    let net_cfg = small_cfg();
    let net = PolicyNet::new(Variant::PpnLstm, net_cfg.clone(), &mut StdRng::seed_from_u64(9));
    // Retain every version the run can produce so each soak response can be
    // bit-verified against the exact network that was live when it landed.
    let registry = Arc::new(ModelRegistry::with_retention(64));
    let server = Server::start(Arc::clone(&registry), ServeConfig::default()).unwrap();

    let stream_cfg = StreamConfig {
        feed_period: Duration::from_millis(1),
        publish_every: 30,
        divergence_threshold: 2.1, // simplex L1 caps at 2.0: swaps always stick
        ..StreamConfig::default()
    };
    let pretrain = TrainConfig { steps: 10, batch: 8, ..TrainConfig::default() };
    let svc = StreamService::start(
        Arc::clone(&registry),
        "live",
        Arc::clone(&ds),
        net,
        RewardConfig::default(),
        pretrain,
        stream_cfg,
    );

    // Wait for the initial publication, then soak until the feed runs dry.
    while registry.live_version("live").is_none() {
        std::thread::sleep(Duration::from_millis(1));
    }
    let body = decide_body(&net_cfg, "live");
    let mut client = HttpClient::connect(server.addr()).unwrap();
    let mut observed: Vec<(u64, Vec<u64>)> = Vec::new();
    while !svc.is_finished() {
        let resp = client.request("POST", "/decide", &body).unwrap();
        assert_eq!(resp.status, 200, "zero-downtime means zero failed decides: {}", resp.body);
        let parsed: DecideResponse = serde_json::from_str(&resp.body).unwrap();
        assert_eq!(
            version_header(&resp.headers),
            Some(parsed.model_version),
            "stamped header and body must agree: {}",
            resp.headers
        );
        observed.push((parsed.model_version, parsed.weights.iter().map(|w| w.to_bits()).collect()));
    }
    let stats = svc.stop();

    assert_eq!(stats.bars, live_bars, "the updater must consume the whole live feed");
    assert!(stats.promoted >= 1, "at least one hot swap must have landed: {stats:?}");
    assert_eq!(stats.rolled_back, 0);
    assert_eq!(registry.live_version("live"), Some(stats.live_version));
    assert!(stats.live_version > 1);

    let mut versions: Vec<u64> = observed.iter().map(|(v, _)| *v).collect();
    versions.dedup();
    assert!(!observed.is_empty(), "the soak must overlap the stream run");
    let distinct: std::collections::BTreeSet<u64> = versions.iter().copied().collect();
    assert!(
        distinct.len() >= 2,
        "the soak must observe serving before and after a swap, saw versions {distinct:?}"
    );
    // Versions only ever move forward under this config (no rollbacks).
    assert!(versions.windows(2).all(|w| w[0] < w[1]), "out-of-order versions: {versions:?}");

    // Bit-identity: every response matches the direct forward pass of the
    // exact version it was stamped with.
    let (window, prev) = probe_inputs(&net_cfg);
    for (version, got) in &observed {
        let pin = registry
            .resolve_version("live", *version)
            .unwrap_or_else(|| panic!("version {version} not retained"));
        let want: Vec<u64> = pin.net().act(&window, &prev).iter().map(|w| w.to_bits()).collect();
        assert_eq!(got, &want, "response stamped v{version} diverges from that version's act()");
    }
    server.shutdown();
}

/// Injecting a wildly divergent candidate through the promotion gate on a
/// live server: the gate publishes it, detects the divergence on the shadow
/// window, and restores the previous version — clients end up decided by
/// the exact pre-injection network.
#[test]
fn injected_divergent_candidate_rolls_back_on_a_live_server() {
    let ds = regime_shift_dataset(280);
    let net_cfg = small_cfg();
    let good = PolicyNet::new(Variant::PpnLstm, net_cfg.clone(), &mut StdRng::seed_from_u64(1));
    let evil = PolicyNet::new(Variant::PpnLstm, net_cfg.clone(), &mut StdRng::seed_from_u64(666));
    let registry = Arc::new(ModelRegistry::new());
    registry.publish("live", good);
    let server = Server::start(Arc::clone(&registry), ServeConfig::default()).unwrap();
    let rollbacks_before = ppn_stream::metrics::rollbacks().get();

    let mut client = HttpClient::connect(server.addr()).unwrap();
    let body = decide_body(&net_cfg, "live");
    let before = client.request("POST", "/decide", &body).unwrap();
    assert_eq!(before.status, 200, "{}", before.body);
    assert_eq!(version_header(&before.headers), Some(1));

    // Threshold so tight any differently-initialised net trips it.
    let cfg = StreamConfig { divergence_threshold: 1e-9, ..StreamConfig::default() };
    let promotion = promote(&registry, "live", evil, &ds, ds.split, &cfg);
    assert_eq!(promotion.candidate_version, 2);
    assert_eq!(promotion.outcome, PromotionOutcome::RolledBack { restored: 1 });
    assert!(promotion.divergence.unwrap().max_l1 > 1e-9);
    assert!(ppn_stream::metrics::rollbacks().get() > rollbacks_before);

    // The live pointer is back on v1 and serving is bit-identical to the
    // pre-injection decision.
    assert_eq!(registry.live_version("live"), Some(1));
    let after = client.request("POST", "/decide", &body).unwrap();
    assert_eq!(after.status, 200, "{}", after.body);
    assert_eq!(version_header(&after.headers), Some(1));
    let b: DecideResponse = serde_json::from_str(&before.body).unwrap();
    let a: DecideResponse = serde_json::from_str(&after.body).unwrap();
    let b_bits: Vec<u64> = b.weights.iter().map(|w| w.to_bits()).collect();
    let a_bits: Vec<u64> = a.weights.iter().map(|w| w.to_bits()).collect();
    assert_eq!(a_bits, b_bits, "rollback must restore the exact pre-injection network");

    // The burned candidate version stays attributable in the history, and
    // the admin surface reports the rollback.
    assert!(registry.resolve_version("live", 2).is_some());
    let models = client.request("GET", "/models", "").unwrap();
    assert_eq!(models.status, 200);
    assert!(models.body.contains("\"live_version\":1"), "{}", models.body);
    server.shutdown();
}
