#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Streaming online-adaptation pipeline: keep a served policy learning on a
//! live bar feed, and hot-swap refreshed versions into the model registry
//! with automatic rollback when a candidate diverges.
//!
//! The paper trains offline and freezes the policy for the test split; the
//! EIIE framework it builds on supports *online* learning, and `ppn-core`'s
//! [`OnlineNetPolicy`](ppn_core::online::OnlineNetPolicy) already implements
//! the per-period gradient steps. This crate closes the remaining gap to a
//! *serving* deployment: a [`StreamService`] owns one updater thread that
//!
//! 1. replays bars from a [`ppn_market::LiveFeed`] (simulated live data),
//! 2. decides and adapts through the online policy (zero look-ahead — the
//!    trainer's sampling horizon always stays strictly below the current
//!    bar),
//! 3. every `publish_every` bars snapshots the network and runs it through
//!    [`promote`]: publish into the shared
//!    [`ModelRegistry`](ppn_serve::ModelRegistry) (a zero-downtime
//!    epoch-style pointer swap — in-flight `/decide` batches keep their
//!    pinned version), then shadow-compare the candidate against the
//!    previously-live version over recent bars and roll back automatically
//!    if the action divergence exceeds a threshold.
//!
//! Divergence is measured as the maximum L1 distance between the two
//! versions' portfolio vectors over a shadow window of recent bars (both
//! actions lie on the simplex, so the distance is in `[0, 2]` — see
//! [`divergence`]). The threshold guards serving against a corrupted or
//! destabilised candidate (e.g. a learning-rate blow-up mid-stream) without
//! requiring human intervention: traffic is on the candidate only for the
//! duration of the shadow check, and the rolled-back-to version keeps its
//! number so stamped responses stay attributable.
//!
//! Knobs (see `env_manifest.toml`): `PPN_STREAM_FEED_MS` paces the simulated
//! feed, `PPN_STREAM_PUBLISH_EVERY` sets the bars-per-checkpoint cadence,
//! and `PPN_STREAM_DIVERGENCE` sets the rollback threshold.

/// Shadow comparison between two policy versions over recent bars.
pub mod divergence;
/// The updater thread: feed → decide/train → snapshot → promote.
pub mod service;

pub use divergence::{shadow_divergence, DivergenceReport};
pub use service::{StreamService, StreamStats};

use ppn_serve::{ModelRegistry, ModelVersion};
use std::time::Duration;

/// Pacing and promotion knobs for the streaming updater.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Delay between simulated bars (`PPN_STREAM_FEED_MS`; 0 = replay as
    /// fast as the updater can train, the right setting for tests and
    /// benches).
    pub feed_period: Duration,
    /// Bars between candidate publications (`PPN_STREAM_PUBLISH_EVERY`).
    pub publish_every: usize,
    /// Max allowed shadow-window action divergence (L1, in `[0, 2]`) before
    /// a freshly-published candidate is rolled back
    /// (`PPN_STREAM_DIVERGENCE`).
    pub divergence_threshold: f64,
    /// Recent bars the shadow comparison replays through both versions.
    pub shadow_window: usize,
    /// Gradient steps the online policy takes per arriving bar.
    pub steps_per_bar: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            feed_period: Duration::from_millis(0),
            publish_every: 16,
            divergence_threshold: 0.75,
            shadow_window: 8,
            steps_per_bar: 1,
        }
    }
}

impl StreamConfig {
    /// Defaults with the `PPN_STREAM_*` environment overrides applied
    /// (unparseable values fall back to the default silently — the updater
    /// must not fail to start over a typo'd knob).
    pub fn from_env() -> Self {
        let mut cfg = StreamConfig::default();
        if let Some(ms) = parse_env(std::env::var("PPN_STREAM_FEED_MS").ok()) {
            cfg.feed_period = Duration::from_millis(ms);
        }
        if let Some(n) = parse_env::<usize>(std::env::var("PPN_STREAM_PUBLISH_EVERY").ok()) {
            cfg.publish_every = n.max(1);
        }
        if let Some(d) = parse_env(std::env::var("PPN_STREAM_DIVERGENCE").ok()) {
            cfg.divergence_threshold = d;
        }
        cfg
    }
}

fn parse_env<T: std::str::FromStr>(raw: Option<String>) -> Option<T> {
    raw.and_then(|s| s.trim().parse().ok())
}

/// Stream-side metric registration, one function per metric so call sites
/// and the Prometheus endpoint agree on names.
pub mod metrics {
    /// Bars consumed from the live feed.
    pub fn bars() -> ppn_obs::metrics::Counter {
        ppn_obs::counter("stream.bars")
    }

    /// Candidate versions published into the registry.
    pub fn publishes() -> ppn_obs::metrics::Counter {
        ppn_obs::counter("stream.publishes")
    }

    /// Candidates rolled back for exceeding the divergence threshold.
    pub fn rollbacks() -> ppn_obs::metrics::Counter {
        ppn_obs::counter("stream.rollbacks")
    }

    /// Shadow-window max-L1 divergence per promotion (simplex L1 ∈ [0, 2]).
    pub fn divergence() -> ppn_obs::metrics::Histogram {
        ppn_obs::histogram("stream.divergence", &[0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0])
    }

    /// Wall-clock milliseconds the registry swap (publish call) took.
    pub fn swap_ms() -> ppn_obs::metrics::Histogram {
        ppn_obs::histogram("stream.swap_ms", &[0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 25.0])
    }

    /// Wall-clock milliseconds the shadow divergence check took.
    pub fn shadow_ms() -> ppn_obs::metrics::Histogram {
        ppn_obs::histogram("stream.shadow_ms", &[0.1, 0.5, 1.0, 5.0, 25.0, 100.0])
    }
}

/// What [`promote`] did with a candidate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PromotionOutcome {
    /// First publication under this name — nothing to compare against.
    First,
    /// The candidate stayed live; shadow divergence was within threshold.
    Promoted,
    /// The candidate exceeded the divergence threshold and serving was
    /// rolled back to the version that was live before the publish.
    RolledBack {
        /// The version serving again after the rollback.
        restored: ModelVersion,
    },
}

/// Outcome report of one [`promote`] call.
#[derive(Debug, Clone)]
pub struct Promotion {
    /// Version the candidate was published as (live unless rolled back).
    pub candidate_version: ModelVersion,
    /// Whether the candidate survived the shadow comparison.
    pub outcome: PromotionOutcome,
    /// Shadow-window divergence vs the previously-live version (`None` on
    /// a first publication).
    pub divergence: Option<DivergenceReport>,
    /// How long the registry pointer swap (the publish call) took.
    pub swap_latency: Duration,
}

impl Promotion {
    /// True when the candidate is still the live version.
    pub fn is_live(&self) -> bool {
        !matches!(self.outcome, PromotionOutcome::RolledBack { .. })
    }
}

/// Publishes `candidate` under `name` and guards the swap with a shadow
/// comparison: replay the `cfg.shadow_window` bars ending at `t_end`
/// through both the candidate and the previously-live version, and roll
/// back if the worst-case action divergence exceeds
/// `cfg.divergence_threshold`.
///
/// Ordering is deliberate — publish first, compare second. The swap is
/// zero-downtime either way (pointer store), and publishing first means the
/// shadow check exercises exactly the artifact that is serving, so a
/// rollback also exercises the same path an operator would use via
/// `POST /rollback`.
pub fn promote(
    registry: &ModelRegistry,
    name: &str,
    candidate: ppn_core::ppn::PolicyNet,
    dataset: &ppn_market::Dataset,
    t_end: usize,
    cfg: &StreamConfig,
) -> Promotion {
    let previous = registry.resolve(name);
    let swap_start = ppn_obs::clock::now();
    let candidate_version = registry.publish(name, candidate);
    let swap_latency = swap_start.elapsed();
    metrics::publishes().inc();
    metrics::swap_ms().observe(swap_latency.as_secs_f64() * 1e3);

    let Some(previous) = previous else {
        return Promotion {
            candidate_version,
            outcome: PromotionOutcome::First,
            divergence: None,
            swap_latency,
        };
    };

    let shadow_start = ppn_obs::clock::now();
    let live = registry.resolve_version(name, candidate_version);
    let report = match live {
        Some(live) => {
            shadow_divergence(previous.net(), live.net(), dataset, t_end, cfg.shadow_window)
        }
        // Unreachable in practice (we just published), but degrade to an
        // empty report rather than panic in library code.
        None => DivergenceReport { max_l1: 0.0, mean_l1: 0.0, windows: 0 },
    };
    metrics::shadow_ms().observe(shadow_start.elapsed().as_secs_f64() * 1e3);
    metrics::divergence().observe(report.max_l1);

    if report.max_l1 > cfg.divergence_threshold
        && registry.rollback(name, previous.version()).is_ok()
    {
        metrics::rollbacks().inc();
        ppn_obs::obs_warn!(
            "stream: candidate v{candidate_version} of '{name}' diverged \
             (max L1 {:.4} > {:.4}), rolled back to v{}",
            report.max_l1,
            cfg.divergence_threshold,
            previous.version()
        );
        return Promotion {
            candidate_version,
            outcome: PromotionOutcome::RolledBack { restored: previous.version() },
            divergence: Some(report),
            swap_latency,
        };
    }
    Promotion {
        candidate_version,
        outcome: PromotionOutcome::Promoted,
        divergence: Some(report),
        swap_latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppn_core::config::NetConfig;
    use ppn_core::ppn::{PolicyNet, Variant};
    use ppn_market::{Dataset, Preset};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_net(seed: u64, assets: usize) -> PolicyNet {
        let cfg = NetConfig { window: 8, lstm_hidden: 4, ..NetConfig::paper(assets) };
        PolicyNet::new(Variant::PpnLstm, cfg, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn env_overrides_apply_and_bad_values_fall_back() {
        std::env::set_var("PPN_STREAM_FEED_MS", "25");
        std::env::set_var("PPN_STREAM_PUBLISH_EVERY", "0");
        std::env::set_var("PPN_STREAM_DIVERGENCE", "not-a-number");
        let cfg = StreamConfig::from_env();
        std::env::remove_var("PPN_STREAM_FEED_MS");
        std::env::remove_var("PPN_STREAM_PUBLISH_EVERY");
        std::env::remove_var("PPN_STREAM_DIVERGENCE");
        assert_eq!(cfg.feed_period, Duration::from_millis(25));
        assert_eq!(cfg.publish_every, 1, "publish cadence is clamped to at least 1");
        assert_eq!(
            cfg.divergence_threshold.to_bits(),
            StreamConfig::default().divergence_threshold.to_bits()
        );
    }

    #[test]
    fn first_publication_skips_the_shadow_check() {
        let ds = Dataset::load(Preset::CryptoA);
        let reg = ModelRegistry::new();
        let p =
            promote(&reg, "m", small_net(1, ds.assets()), &ds, ds.split, &StreamConfig::default());
        assert_eq!(p.candidate_version, 1);
        assert_eq!(p.outcome, PromotionOutcome::First);
        assert!(p.divergence.is_none());
        assert!(p.is_live());
    }

    #[test]
    fn identical_candidate_promotes_with_zero_divergence() {
        let ds = Dataset::load(Preset::CryptoA);
        let reg = ModelRegistry::new();
        let cfg = StreamConfig { divergence_threshold: 1e-12, ..StreamConfig::default() };
        reg.publish("m", small_net(7, ds.assets()));
        // Bit-identical weights → bit-identical actions → max L1 exactly 0.
        let p = promote(&reg, "m", small_net(7, ds.assets()), &ds, ds.split, &cfg);
        assert_eq!(p.outcome, PromotionOutcome::Promoted);
        let report = p.divergence.unwrap();
        assert_eq!(report.max_l1.to_bits(), 0.0_f64.to_bits());
        assert_eq!(report.windows, cfg.shadow_window);
        assert_eq!(reg.live_version("m"), Some(2));
    }

    #[test]
    fn diverging_candidate_is_rolled_back_to_previous_live() {
        let ds = Dataset::load(Preset::CryptoA);
        let reg = ModelRegistry::new();
        // Threshold so tight that any differently-initialised net trips it.
        let cfg = StreamConfig { divergence_threshold: 1e-9, ..StreamConfig::default() };
        reg.publish("m", small_net(1, ds.assets()));
        let before = reg.resolve("m").unwrap();
        let p = promote(&reg, "m", small_net(999, ds.assets()), &ds, ds.split, &cfg);
        assert_eq!(p.outcome, PromotionOutcome::RolledBack { restored: 1 });
        assert!(!p.is_live());
        assert!(p.divergence.unwrap().max_l1 > 1e-9);
        // The exact previous network serves again; the candidate's number is
        // burned, not reused.
        let after = reg.resolve("m").unwrap();
        assert_eq!(after.version(), 1);
        assert!(std::sync::Arc::ptr_eq(after.net(), before.net()));
        assert_eq!(reg.publish("m", small_net(2, ds.assets())), 3);
    }

    #[test]
    fn generous_threshold_promotes_a_different_net() {
        let ds = Dataset::load(Preset::CryptoA);
        let reg = ModelRegistry::new();
        // Simplex L1 caps at 2.0, so 2.1 can never trip — promotion must
        // stick even for unrelated networks.
        let cfg = StreamConfig { divergence_threshold: 2.1, ..StreamConfig::default() };
        reg.publish("m", small_net(1, ds.assets()));
        let p = promote(&reg, "m", small_net(999, ds.assets()), &ds, ds.split, &cfg);
        assert_eq!(p.outcome, PromotionOutcome::Promoted);
        let report = p.divergence.unwrap();
        assert!(report.max_l1 <= 2.0 + 1e-12);
        assert!(report.mean_l1 <= report.max_l1);
        assert_eq!(reg.live_version("m"), Some(2));
    }
}
