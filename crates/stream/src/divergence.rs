//! Shadow comparison between two policy versions over recent bars.
//!
//! A promotion's safety gate: replay the last few decision contexts through
//! both the previously-live network and the candidate, and measure how far
//! their portfolio vectors drift apart. Both outputs lie on the `m+1`
//! simplex, so the per-bar L1 distance is bounded by 2 (total disagreement:
//! all mass moved to disjoint assets) — thresholds are therefore absolute
//! and dataset-independent.
//!
//! The comparison is deliberately *stateless*: both networks see identical
//! `(window, prev_action)` inputs with a uniform previous action, so the
//! report isolates what the *network update* changed, not path-dependent
//! portfolio drift. It runs on the serving forward pass ([`PolicyNet::act_batch`])
//! — one batched call per network — so checking overhead stays well below a
//! single gradient step.

use ppn_core::ppn::PolicyNet;
use ppn_market::Dataset;

/// Divergence between two policy versions over a shadow window.
#[derive(Debug, Clone, serde::Serialize)]
pub struct DivergenceReport {
    /// Worst per-bar L1 distance between the two action vectors (`[0, 2]`).
    pub max_l1: f64,
    /// Mean per-bar L1 distance.
    pub mean_l1: f64,
    /// Bars actually compared (may be fewer than requested near the start
    /// of a dataset, where full price windows don't exist yet).
    pub windows: usize,
}

/// Replays the `windows` bars ending at (and excluding) `t_end` through
/// `live` and `candidate` and reports their action divergence.
///
/// Bars without a full price window are skipped; with no comparable bar at
/// all the report is all-zero with `windows == 0` (a vacuous pass — callers
/// gate on `max_l1`, and an empty comparison cannot justify a rollback).
pub fn shadow_divergence(
    live: &PolicyNet,
    candidate: &PolicyNet,
    dataset: &Dataset,
    t_end: usize,
    windows: usize,
) -> DivergenceReport {
    let k = candidate.cfg.window;
    debug_assert_eq!(live.cfg.window, k, "shadow versions must share a window length");
    let t_end = t_end.min(dataset.relatives.len());
    // Each compared bar t needs a full k-length price window ending at t.
    let first = t_end.saturating_sub(windows).max(k.saturating_sub(1));
    if first >= t_end {
        return DivergenceReport { max_l1: 0.0, mean_l1: 0.0, windows: 0 };
    }
    let m1 = dataset.assets() + 1;
    let uniform = vec![1.0 / m1 as f64; m1];
    let inputs: Vec<Vec<f64>> = (first..t_end).map(|t| dataset.window(t, k)).collect();
    let prevs = vec![uniform; inputs.len()];
    let a = live.act_batch(&inputs, &prevs);
    let b = candidate.act_batch(&inputs, &prevs);
    let mut max_l1 = 0.0_f64;
    let mut sum_l1 = 0.0_f64;
    for (wa, wb) in a.iter().zip(&b) {
        let l1: f64 = wa.iter().zip(wb).map(|(x, y)| (x - y).abs()).sum();
        max_l1 = max_l1.max(l1);
        sum_l1 += l1;
    }
    DivergenceReport { max_l1, mean_l1: sum_l1 / inputs.len() as f64, windows: inputs.len() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppn_core::config::NetConfig;
    use ppn_core::ppn::Variant;
    use ppn_market::Preset;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_net(seed: u64, assets: usize) -> PolicyNet {
        let cfg = NetConfig { window: 8, lstm_hidden: 4, ..NetConfig::paper(assets) };
        PolicyNet::new(Variant::PpnLstm, cfg, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn identical_networks_have_exactly_zero_divergence() {
        let ds = Dataset::load(Preset::CryptoA);
        let net = small_net(3, ds.assets());
        let twin = small_net(3, ds.assets());
        let r = shadow_divergence(&net, &twin, &ds, ds.split, 8);
        assert_eq!(r.windows, 8);
        assert_eq!(r.max_l1.to_bits(), 0.0_f64.to_bits());
        assert_eq!(r.mean_l1.to_bits(), 0.0_f64.to_bits());
    }

    #[test]
    fn different_networks_diverge_within_the_simplex_bound() {
        let ds = Dataset::load(Preset::CryptoA);
        let a = small_net(3, ds.assets());
        let b = small_net(4004, ds.assets());
        let r = shadow_divergence(&a, &b, &ds, ds.split, 8);
        assert!(r.max_l1 > 0.0, "differently-initialised nets must disagree somewhere");
        assert!(r.max_l1 <= 2.0 + 1e-12, "simplex L1 distance is bounded by 2");
        assert!(r.mean_l1 > 0.0 && r.mean_l1 <= r.max_l1);
    }

    #[test]
    fn early_bars_without_full_windows_are_skipped() {
        let ds = Dataset::load(Preset::CryptoA);
        let net = small_net(3, ds.assets());
        // t_end barely past the first full window: only a partial shadow.
        let k = net.cfg.window;
        let r = shadow_divergence(&net, &net, &ds, k + 2, 64);
        assert_eq!(r.windows, 3, "only bars k-1..k+2 have full windows");
        // And a t_end inside the warm-up yields the vacuous pass.
        let r0 = shadow_divergence(&net, &net, &ds, k - 2, 8);
        assert_eq!(r0.windows, 0);
        assert_eq!(r0.max_l1.to_bits(), 0.0_f64.to_bits());
    }
}
