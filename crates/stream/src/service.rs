//! The streaming updater service: one owned thread that feeds bars through
//! an online policy and periodically promotes refreshed versions into the
//! shared model registry.
//!
//! This is the only ppn-stream module allowed to spawn a thread (the
//! ppn-check `no-thread` allowlist pins it): exactly one updater thread per
//! [`StreamService`], owning the feed → decide/train → snapshot → promote
//! loop end to end. Forward and backward passes inside the loop still run
//! on the `ppn_tensor::par` worker pool, so `PPN_THREADS` keeps governing
//! compute parallelism; this thread only sequences the pipeline.
//!
//! Serving is never blocked by the updater: the registry swap is an
//! epoch-style pointer store, and the expensive pieces (gradient steps,
//! network snapshot, shadow forward passes) all happen outside the
//! registry's locks.

use crate::{metrics, promote, PromotionOutcome, StreamConfig};
use ppn_core::config::{RewardConfig, TrainConfig};
use ppn_core::online::OnlineNetPolicy;
use ppn_core::ppn::PolicyNet;
use ppn_core::trainer::Trainer;
use ppn_market::{drifted_weights, Dataset, DecisionContext, LiveFeed, SequentialPolicy};
use ppn_serve::ModelRegistry;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Progress counters for one updater run. Snapshot with
/// [`StreamService::stats`] while live, or take the final report from
/// [`StreamService::stop`].
#[derive(Debug, Clone, Default, serde::Serialize)]
pub struct StreamStats {
    /// Bars consumed from the live feed.
    pub bars: u64,
    /// Candidate versions published (including the initial one).
    pub publishes: u64,
    /// Candidates that survived the shadow comparison.
    pub promoted: u64,
    /// Candidates rolled back for exceeding the divergence threshold.
    pub rolled_back: u64,
    /// Shadow-window max-L1 divergence of the most recent promotion
    /// (0 until the second publish).
    pub last_divergence: f64,
    /// Version currently serving (0 until the initial publish lands).
    pub live_version: u64,
    /// True once the feed is exhausted or a stop was requested.
    pub finished: bool,
}

/// A running streaming updater.
///
/// Created with [`StreamService::start`], which returns immediately; the
/// updater pre-trains, publishes its initial version, and then adapts
/// online on its own thread. Call [`StreamService::stop`] to request
/// shutdown and join.
pub struct StreamService {
    handle: std::thread::JoinHandle<()>,
    stop: Arc<AtomicBool>,
    stats: Arc<parking_lot::Mutex<StreamStats>>,
}

impl StreamService {
    /// Spawns the updater thread.
    ///
    /// `net` is the (typically untrained) network to start from;
    /// `pretrain.steps` offline gradient steps run on the training split
    /// before the initial version is published under `name`, after which
    /// the feed replays bars from `dataset.split` onward — deciding,
    /// taking `cfg.steps_per_bar` online gradient steps per bar, and every
    /// `cfg.publish_every` bars promoting a snapshot through the
    /// divergence gate ([`promote`]).
    ///
    /// The caller must size the problem so online steps can sample:
    /// `dataset.split - pretrain.batch` must exceed the network's window
    /// (the trainer's no-look-ahead sampling precondition).
    pub fn start(
        registry: Arc<ModelRegistry>,
        name: impl Into<String>,
        dataset: Arc<Dataset>,
        net: PolicyNet,
        reward: RewardConfig,
        pretrain: TrainConfig,
        cfg: StreamConfig,
    ) -> StreamService {
        let name = name.into();
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(parking_lot::Mutex::new(StreamStats::default()));
        let worker = StreamWorker {
            registry,
            name,
            dataset,
            cfg,
            stop: Arc::clone(&stop),
            stats: Arc::clone(&stats),
        };
        let handle = std::thread::spawn(move || worker.run(net, reward, pretrain));
        StreamService { handle, stop, stats }
    }

    /// A point-in-time copy of the updater's progress counters.
    pub fn stats(&self) -> StreamStats {
        self.stats.lock().clone()
    }

    /// True once the updater thread has exited (feed exhausted or stop
    /// requested).
    pub fn is_finished(&self) -> bool {
        self.handle.is_finished()
    }

    /// Requests shutdown, joins the updater thread, and returns the final
    /// counters.
    pub fn stop(self) -> StreamStats {
        self.stop.store(true, Ordering::Relaxed);
        // A panicked updater already logged through the panic hook; the
        // final counters remain meaningful either way.
        let _ = self.handle.join();
        let stats = self.stats.lock().clone();
        stats
    }
}

/// Everything the updater thread owns besides the policy itself.
struct StreamWorker {
    registry: Arc<ModelRegistry>,
    name: String,
    dataset: Arc<Dataset>,
    cfg: StreamConfig,
    stop: Arc<AtomicBool>,
    stats: Arc<parking_lot::Mutex<StreamStats>>,
}

impl StreamWorker {
    fn run(self, net: PolicyNet, reward: RewardConfig, pretrain: TrainConfig) {
        let _span = ppn_obs::span!("stream.run");
        // Pre-train on the training split, publish the initial version.
        let mut trainer = Trainer::with_net(Arc::clone(&self.dataset), net, reward, pretrain);
        trainer.train();
        let v1 = self.registry.publish(&self.name, trainer.net.snapshot());
        metrics::publishes().inc();
        {
            let mut s = self.stats.lock();
            s.publishes = 1;
            s.live_version = v1;
        }
        ppn_obs::obs_info!(
            "stream: '{}' initial version v{v1} published, feeding from bar {}",
            self.name,
            self.dataset.split
        );

        let mut policy = OnlineNetPolicy::from_trainer(trainer, self.cfg.steps_per_bar);
        let mut feed = LiveFeed::new(Arc::clone(&self.dataset), self.dataset.split);
        let m1 = self.dataset.assets() + 1;
        let mut prev_action = vec![0.0; m1];
        prev_action[0] = 1.0;
        let bars_counter = metrics::bars();
        let mut since_publish = 0usize;

        while !self.stop.load(Ordering::Relaxed) {
            let Some(bar) = feed.next_bar() else { break };
            // Holdings drift with the realised relative before we re-decide.
            let drifted = drifted_weights(&prev_action, &bar.relative);
            let ctx = DecisionContext {
                t: bar.t,
                dataset: &self.dataset,
                history: &self.dataset.relatives[..bar.t],
                drifted: &drifted,
                prev_action: &prev_action,
            };
            prev_action = policy.decide_one(&ctx);
            bars_counter.inc();
            self.stats.lock().bars += 1;

            since_publish += 1;
            if since_publish >= self.cfg.publish_every {
                since_publish = 0;
                let candidate = policy.trainer().net.snapshot();
                let promotion =
                    promote(&self.registry, &self.name, candidate, &self.dataset, bar.t, &self.cfg);
                let mut s = self.stats.lock();
                s.publishes += 1;
                if let Some(report) = &promotion.divergence {
                    s.last_divergence = report.max_l1;
                }
                match promotion.outcome {
                    PromotionOutcome::RolledBack { restored } => {
                        s.rolled_back += 1;
                        s.live_version = restored;
                    }
                    _ => {
                        s.promoted += 1;
                        s.live_version = promotion.candidate_version;
                    }
                }
            }

            if !self.cfg.feed_period.is_zero() {
                std::thread::sleep(self.cfg.feed_period);
            }
        }
        self.stats.lock().finished = true;
        ppn_obs::obs_info!("stream: '{}' updater finished", self.name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppn_core::config::NetConfig;
    use ppn_core::ppn::Variant;
    use ppn_market::{stitched_dataset, MarketConfig, Preset};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_world() -> (Arc<Dataset>, PolicyNet, RewardConfig, TrainConfig) {
        let seg = MarketConfig { assets: 3, periods: 260, seed: 11, ..MarketConfig::default() };
        let ds = Arc::new(stitched_dataset(Preset::CryptoA, &[seg], 200));
        let net_cfg = NetConfig { window: 8, lstm_hidden: 4, ..NetConfig::paper(3) };
        let net = PolicyNet::new(Variant::PpnLstm, net_cfg, &mut StdRng::seed_from_u64(5));
        let pretrain = TrainConfig { steps: 3, batch: 8, ..TrainConfig::default() };
        (ds, net, RewardConfig::default(), pretrain)
    }

    #[test]
    fn updater_replays_the_whole_feed_and_publishes_on_cadence() {
        let (ds, net, reward, pretrain) = tiny_world();
        let registry = Arc::new(ModelRegistry::new());
        let cfg = StreamConfig {
            publish_every: 20,
            divergence_threshold: 2.1, // simplex L1 caps at 2.0: never rolls back
            ..StreamConfig::default()
        };
        let svc = StreamService::start(
            Arc::clone(&registry),
            "live",
            Arc::clone(&ds),
            net,
            reward,
            pretrain,
            cfg,
        );
        while !svc.is_finished() {
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let stats = svc.stop();
        // 260 periods − 200 warm-up bars = 60 live bars, cadence 20.
        assert_eq!(stats.bars, 60);
        assert_eq!(stats.publishes, 1 + 3, "initial publish + three cadence snapshots");
        assert_eq!(stats.promoted, 3);
        assert_eq!(stats.rolled_back, 0);
        assert!(stats.finished);
        assert_eq!(registry.live_version("live"), Some(stats.live_version));
        assert_eq!(stats.live_version, 4);
    }

    #[test]
    fn stop_mid_feed_joins_promptly() {
        let (ds, net, reward, pretrain) = tiny_world();
        let registry = Arc::new(ModelRegistry::new());
        let cfg = StreamConfig {
            feed_period: std::time::Duration::from_millis(5),
            publish_every: 1_000_000, // never publishes past the initial one
            ..StreamConfig::default()
        };
        let svc =
            StreamService::start(Arc::clone(&registry), "live", ds, net, reward, pretrain, cfg);
        // Wait for the initial publication, then cut the feed short.
        while registry.live_version("live").is_none() {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let stats = svc.stop();
        assert!(stats.bars < 60, "stop must interrupt the paced feed");
        assert_eq!(stats.publishes, 1);
        assert_eq!(registry.live_version("live"), Some(1));
    }
}
