//! Criterion microbenches for the autodiff substrate, including the
//! design-choice ablations called out in DESIGN.md §4:
//! `conv_dilation` (dilated vs plain causal convolutions at equal receptive
//! field) and `graph_alloc` (tape rebuild cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppn_tensor::conv::{causal_padding, conv2d_forward};
use ppn_tensor::{Graph, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let mut group = c.benchmark_group("matmul");
    for &n in &[16usize, 64, 128] {
        let a = Tensor::randn(&mut rng, &[n, n], 1.0);
        let b = Tensor::randn(&mut rng, &[n, n], 1.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul(&b)));
        });
    }
    group.finish();
}

/// Ablation: a dilated stack reaches receptive field 2·Σd(k−1)+1 with the
/// same parameter count as an undilated stack that needs a larger kernel.
fn bench_conv_dilation(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let (b, cin, m, k) = (16usize, 8usize, 12usize, 30usize);
    let x = Tensor::randn(&mut rng, &[b, cin, m, k], 1.0);
    let mut group = c.benchmark_group("conv_dilation");

    // Dilated causal: kernel 1×3, dilation 4 → receptive field 9 per layer.
    let w_dil = Tensor::randn(&mut rng, &[8, cin, 1, 3], 0.3);
    let (pl, pr) = causal_padding(3, 4);
    group.bench_function("dilated_k3_d4", |bench| {
        bench.iter(|| black_box(conv2d_forward(&x, &w_dil, (1, 4), (0, 0, pl, pr))));
    });

    // Plain causal with the same receptive field needs kernel 1×9 (3× params).
    let w_plain = Tensor::randn(&mut rng, &[8, cin, 1, 9], 0.3);
    let (pl9, pr9) = causal_padding(9, 1);
    group.bench_function("plain_k9_d1", |bench| {
        bench.iter(|| black_box(conv2d_forward(&x, &w_plain, (1, 1), (0, 0, pl9, pr9))));
    });
    group.finish();
}

/// Ablation: cost of the correlational (m×1 SAME) convolution — the price
/// paid for cross-asset mixing — vs a 1×1 that keeps assets independent.
fn bench_cconv_cost(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut group = c.benchmark_group("tccb_vs_tcb");
    for &m in &[12usize, 44] {
        let x = Tensor::randn(&mut rng, &[16, 16, m, 30], 1.0);
        let w_cc = Tensor::randn(&mut rng, &[16, 16, m, 1], 0.1);
        let (pt, pb) = ppn_tensor::conv::same_padding(m, 1);
        group.bench_with_input(BenchmarkId::new("cconv", m), &m, |bench, _| {
            bench.iter(|| black_box(conv2d_forward(&x, &w_cc, (1, 1), (pt, pb, 0, 0))));
        });
        let w_11 = Tensor::randn(&mut rng, &[16, 16, 1, 1], 0.1);
        group.bench_with_input(BenchmarkId::new("pointwise", m), &m, |bench, _| {
            bench.iter(|| black_box(conv2d_forward(&x, &w_11, (1, 1), (0, 0, 0, 0))));
        });
    }
    group.finish();
}

fn bench_softmax_backward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let x = Tensor::randn(&mut rng, &[64, 45], 1.0);
    c.bench_function("softmax_fwd_bwd_64x45", |bench| {
        bench.iter(|| {
            let mut g = Graph::new();
            let xn = g.param(x.clone());
            let y = g.softmax(xn);
            let s = g.sum(y);
            g.backward(s);
            black_box(g.grad(xn).is_some())
        });
    });
}

/// Tape allocation: building & dropping a ~200-node graph per step is the
/// strategy the trainer uses; this quantifies the rebuild overhead.
fn bench_graph_alloc(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let x = Tensor::randn(&mut rng, &[32, 32], 1.0);
    c.bench_function("graph_alloc_200_nodes", |bench| {
        bench.iter(|| {
            let mut g = Graph::new();
            let mut h = g.param(x.clone());
            for _ in 0..100 {
                let t = g.tanh(h);
                h = g.add(t, h);
            }
            let s = g.sum(h);
            g.backward(s);
            black_box(g.len())
        });
    });
}

criterion_group!(
    benches,
    bench_matmul,
    bench_conv_dilation,
    bench_cconv_cost,
    bench_softmax_backward,
    bench_graph_alloc
);
criterion_main!(benches);
