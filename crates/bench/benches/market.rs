//! Criterion benches for the market substrate: dataset generation,
//! environment stepping, the cost fixed-point solver, and per-baseline
//! update throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppn_market::{cost_proportion, run_backtest, Dataset, MarketConfig, Preset, TradingEnv};
use std::hint::black_box;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataset_generation");
    group.sample_size(10);
    group.bench_function("5k_periods_12_assets", |b| {
        let cfg = MarketConfig { assets: 12, periods: 5_000, ..MarketConfig::default() };
        b.iter(|| black_box(ppn_market::generate_paths(&cfg)));
    });
    group.finish();
}

fn bench_env_step(c: &mut Criterion) {
    let ds = Dataset::load(Preset::CryptoA);
    let n = ds.assets() + 1;
    let uniform = vec![1.0 / n as f64; n];
    c.bench_function("env_step", |b| {
        let mut env = TradingEnv::new(&ds, 30, 0.0025, 100..5_000);
        env.reset();
        b.iter(|| {
            if env.remaining() == 0 {
                env.reset();
            }
            black_box(env.step(&uniform))
        });
    });
}

fn bench_cost_fixed_point(c: &mut Criterion) {
    // Design-choice bench: exact implicit-cost solve vs the L1 surrogate.
    let a: Vec<f64> = (0..45).map(|i| if i == 3 { 0.6 } else { 0.4 / 44.0 }).collect();
    let h = vec![1.0 / 45.0; 45];
    let mut group = c.benchmark_group("cost_fixed_point");
    group.bench_function("exact_solver", |b| {
        b.iter(|| black_box(cost_proportion(0.0025, &a, &h, 1e-12)));
    });
    group.bench_function("l1_surrogate", |b| {
        b.iter(|| black_box(ppn_market::turnover_l1(&a, &h) * 0.0025));
    });
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let ds = Dataset::load(Preset::CryptoA);
    let mut group = c.benchmark_group("baseline_200_periods");
    group.sample_size(10);
    let run = |p: &mut dyn ppn_market::Policy| {
        black_box(run_backtest(&ds, p, 0.0025, 1_000..1_200).metrics.apv)
    };
    group.bench_with_input(BenchmarkId::from_parameter("OLMAR"), &0, |b, _| {
        b.iter(|| run(&mut ppn_baselines::Olmar::new(10.0, 5)))
    });
    group.bench_with_input(BenchmarkId::from_parameter("RMR"), &0, |b, _| {
        b.iter(|| run(&mut ppn_baselines::Rmr::new(5.0, 5)))
    });
    group.bench_with_input(BenchmarkId::from_parameter("ONS"), &0, |b, _| {
        b.iter(|| run(&mut ppn_baselines::Ons::new(0.01, 1.0)))
    });
    group.bench_with_input(BenchmarkId::from_parameter("CWMR"), &0, |b, _| {
        b.iter(|| run(&mut ppn_baselines::Cwmr::new(0.5, 2.0)))
    });
    group.bench_with_input(BenchmarkId::from_parameter("Anticor"), &0, |b, _| {
        b.iter(|| run(&mut ppn_baselines::Anticor::new(10)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_generation,
    bench_env_step,
    bench_cost_fixed_point,
    bench_baselines
);
criterion_main!(benches);
