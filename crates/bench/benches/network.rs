//! Criterion benches for full network forward/backward passes at the
//! paper's shapes (Table 2), per variant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppn_core::batch::WindowBatch;
use ppn_core::prelude::*;
use ppn_core::reward::cost_sensitive_reward;
use ppn_tensor::{Graph, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn toy_batch(cfg: &NetConfig, b: usize, rng: &mut StdRng) -> WindowBatch {
    let (m, k, d) = (cfg.assets, cfg.window, cfg.features);
    let windows: Vec<Vec<f64>> = (0..b)
        .map(|_| Tensor::randn(rng, &[m * k * d], 0.01).map(|v| 1.0 + v).into_vec())
        .collect();
    let prev = vec![vec![1.0 / (m as f64 + 1.0); m + 1]; b];
    WindowBatch::new(&windows, &prev, m, k, d)
}

fn bench_forward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let cfg = NetConfig::paper(12);
    let batch = toy_batch(&cfg, 16, &mut rng);
    let mut group = c.benchmark_group("forward_b16_m12_k30");
    group.sample_size(10);
    for v in [Variant::Eiie, Variant::PpnLstm, Variant::PpnI, Variant::Ppn] {
        let net = PolicyNet::new(v, cfg.clone(), &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(v.name()), &v, |bench, _| {
            bench.iter(|| {
                let mut g = Graph::new();
                let bind = net.store.bind(&mut g);
                let mut r = rand::rngs::mock::StepRng::new(0, 1);
                black_box(net.forward(&mut g, &bind, &batch, false, &mut r))
            });
        });
    }
    group.finish();
}

fn bench_train_step(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let cfg = NetConfig::paper(12);
    let batch = toy_batch(&cfg, 16, &mut rng);
    let rel = Tensor::randn(&mut rng, &[16, 13], 0.01).map(|v| 1.0 + v);
    let hat = Tensor::full(&[16, 13], 1.0 / 13.0);
    let mut group = c.benchmark_group("fwd_bwd_reward_b16_m12");
    group.sample_size(10);
    for v in [Variant::Eiie, Variant::Ppn] {
        let net = PolicyNet::new(v, cfg.clone(), &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(v.name()), &v, |bench, _| {
            bench.iter(|| {
                let mut g = Graph::new();
                let bind = net.store.bind(&mut g);
                let mut r = rand::rngs::mock::StepRng::new(0, 1);
                let a = net.forward(&mut g, &bind, &batch, false, &mut r);
                let nodes = cost_sensitive_reward(&mut g, a, &rel, &hat, 1e-4, 1e-3, 0.0025);
                g.backward(nodes.loss);
                black_box(bind.grads(&g).len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_forward, bench_train_step);
criterion_main!(benches);
