//! End-to-end telemetry coverage: a tiny train + backtest must populate the
//! span registry with the instrumented hot paths, feed the metrics
//! registry, and produce a parseable per-step JSONL trace.

use ppn_core::prelude::*;
use ppn_market::{run_backtest, Dataset, Preset};
use ppn_obs::ObsConfig;
use serde_json::Value;

#[test]
fn spans_metrics_and_step_trace_cover_train_and_backtest() {
    ppn_obs::init(ObsConfig {
        stderr_level: None,
        jsonl_level: None,
        jsonl_path: None,
        spans: true,
        metrics: true,
    });
    let ds = Dataset::load(Preset::CryptoA);
    let cfg = TrainConfig { steps: 2, batch: 8, ..TrainConfig::default() };
    let mut tr = Trainer::new(&ds, Variant::PpnLstm, RewardConfig::default(), cfg);
    let report = tr.train();

    // Satellite: the report retains the full StepStats trace and exports it
    // as JSONL that parses back.
    assert_eq!(report.steps.len(), 2);
    assert_eq!(report.rewards.len(), 2);
    let jsonl = report.to_jsonl();
    for (i, line) in jsonl.lines().enumerate() {
        let v = Value::parse(line).expect("step row parses");
        assert!(matches!(v.field("step"), Ok(Value::Num(n)) if *n == i as f64));
        assert!(matches!(v.field("reward"), Ok(Value::Num(_))));
        assert!(matches!(v.field("grad_norm"), Ok(Value::Num(_))));
        assert!(matches!(v.field("mean_turnover"), Ok(Value::Num(_))));
    }

    let mut policy = NetPolicy::new(tr.into_net());
    let r = run_backtest(&ds, &mut policy, 0.0025, 100..140);
    assert_eq!(r.records.len(), 40);

    // The instrumented spans all recorded non-zero wall time.
    let stats = ppn_obs::span_stats();
    for name in ["train.step", "net.forward", "backtest.period", "backtest.run", "dataset.load"] {
        let s = stats
            .iter()
            .find(|s| s.name() == name)
            .unwrap_or_else(|| panic!("span `{name}` missing from {stats:?}"));
        assert!(s.total_ns > 0, "span `{name}` has zero duration");
    }
    // net.forward nests under train.step, so the parent's self time is
    // strictly less than its total.
    let step = stats.iter().find(|s| s.path == "train.step").expect("train.step root");
    assert!(step.child_ns > 0 && step.self_ns() < step.total_ns);
    let report_text = ppn_obs::span_report();
    assert!(report_text.contains("train.step/net.forward"));

    // Metrics side: counters and histograms moved.
    let snap = ppn_obs::metrics_snapshot();
    let counter = |n: &str| snap.counters.iter().find(|c| c.name == n).map(|c| c.value);
    assert_eq!(counter("train.steps"), Some(2));
    assert_eq!(counter("backtest.periods"), Some(40));
    let hist =
        snap.histograms.iter().find(|h| h.name == "backtest.turnover").expect("turnover histogram");
    assert_eq!(hist.count, 40);

    // The pooled tensor kernels record per-call wall time while metrics are
    // live: a real train + backtest must have populated both histograms.
    for name in ["tensor.matmul_ms", "tensor.conv_ms"] {
        let h = snap.histograms.iter().find(|h| h.name == name);
        let h = h.unwrap_or_else(|| panic!("{name} histogram missing"));
        assert!(h.count > 0, "{name} recorded no kernel calls");
    }
}
