//! Overhead guard: with `PPN_OBS=off` the telemetry hot paths must cost a
//! negligible fraction of a training step (acceptance target: < 2%).
//!
//! The disabled fast path is a couple of relaxed atomic loads per call, so
//! even hundreds of telemetry call-sites per step must stay far under the
//! budget. Measured directly rather than via two separate builds.

use ppn_core::prelude::*;
use ppn_market::{Dataset, Preset};
use std::hint::black_box;
use std::time::Instant;

#[test]
fn disabled_telemetry_is_under_the_two_percent_budget() {
    ppn_obs::init(ppn_obs::ObsConfig::off());

    // Baseline: a real training step with all telemetry disabled.
    let ds = Dataset::load(Preset::CryptoA);
    let cfg = TrainConfig { steps: 3, batch: 8, ..TrainConfig::default() };
    let mut tr = Trainer::new(&ds, Variant::PpnLstm, RewardConfig::default(), cfg);
    tr.step(); // warm-up
    let t0 = Instant::now();
    for _ in 0..3 {
        tr.step();
    }
    let step_ns = t0.elapsed().as_nanos() as f64 / 3.0;

    // Cost of one disabled telemetry cluster (span + event + counter +
    // histogram) — everything a single instrumented step adds per call-site.
    let c = ppn_obs::counter("overhead.counter");
    let h = ppn_obs::histogram("overhead.hist", &[1.0, 10.0]);
    let iters = 100_000u64;
    let t1 = Instant::now();
    for i in 0..iters {
        let _g = ppn_obs::span!("overhead.span");
        ppn_obs::event!(ppn_obs::Level::Trace, "overhead.event", i = i, v = 1.25f64,);
        c.inc();
        h.observe(black_box(1.0));
    }
    let cluster_ns = t1.elapsed().as_nanos() as f64 / iters as f64;

    // Telemetry stayed off: nothing was recorded.
    assert_eq!(c.get(), 0);
    assert_eq!(h.count(), 0);
    assert!(ppn_obs::span_stats().is_empty());

    // Even at 100 clusters per training step (far above the real count of
    // ~6), the disabled path must stay under 2% of a step.
    let budget = 0.02 * step_ns;
    let projected = 100.0 * cluster_ns;
    assert!(
        projected < budget,
        "disabled telemetry too slow: {cluster_ns:.1}ns/cluster, projected \
         {projected:.0}ns per step vs 2% budget {budget:.0}ns (step {step_ns:.0}ns)"
    );
}

#[test]
fn sampled_request_tracing_stays_inside_the_budget() {
    ppn_obs::init(ppn_obs::ObsConfig::off());

    // Baseline: a real training step (same shape as the disabled-path test;
    // the two tests share one process, and init is first-caller-wins).
    let ds = Dataset::load(Preset::CryptoA);
    let cfg = TrainConfig { steps: 3, batch: 8, ..TrainConfig::default() };
    let mut tr = Trainer::new(&ds, Variant::PpnLstm, RewardConfig::default(), cfg);
    tr.step(); // warm-up
    let t0 = Instant::now();
    for _ in 0..3 {
        tr.step();
    }
    let step_ns = t0.elapsed().as_nanos() as f64 / 3.0;

    // Cost of one fully *sampled* trace cluster — a root plus two child
    // stage spans, the shape `train.step` and `serve.request` emit — with
    // the sink gated off. This bounds what `PPN_TRACE_SAMPLE=1` adds on top
    // of id generation when trace-level output is not being written.
    ppn_obs::trace::set_sample_rate(1);
    let iters = 100_000u64;
    let t1 = Instant::now();
    for _ in 0..iters {
        let root = ppn_obs::TraceSpan::root("overhead.trace");
        let ctx = root.context();
        black_box(ctx.is_sampled());
        let _a = ctx.child("overhead.stage_a");
        let _b = ctx.child("overhead.stage_b");
    }
    let cluster_ns = t1.elapsed().as_nanos() as f64 / iters as f64;
    ppn_obs::trace::set_sample_rate(0);

    // Even at 100 traced clusters per training step (a step emits one),
    // sampled tracing must stay under the same 2% budget.
    let budget = 0.02 * step_ns;
    let projected = 100.0 * cluster_ns;
    assert!(
        projected < budget,
        "sampled tracing too slow: {cluster_ns:.1}ns/cluster, projected \
         {projected:.0}ns per step vs 2% budget {budget:.0}ns (step {step_ns:.0}ns)"
    );
}
