//! Table 2: the PPN architecture. Prints the layer-by-layer shape contract
//! and *verifies* it by running a live forward pass at the paper's shapes.

use ppn_bench::TableWriter;
use ppn_core::batch::WindowBatch;
use ppn_core::prelude::*;
use ppn_tensor::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let run = ppn_bench::start_run("table2_architecture");
    let (m, k) = (12usize, 30usize);
    let cfg = NetConfig::paper(m);
    let mut table = TableWriter::new(
        "Table 2 — PPN architecture (verified live at m=12, k=30, d=4)",
        &["Part", "Input -> Output", "Layer information"],
    );
    let rows = [
        (
            "TCCB1",
            format!("({m},{k},4) -> ({m},{k},8)"),
            "DCONV-(N8, K[1x3], S1, causal), DiR1, DrR0.2, ReLU",
        ),
        (
            "TCCB1",
            format!("({m},{k},8) -> ({m},{k},8)"),
            "DCONV-(N8, K[1x3], S1, causal), DiR1, DrR0.2, ReLU",
        ),
        (
            "TCCB1",
            format!("({m},{k},8) -> ({m},{k},8)"),
            "CCONV-(N8, K[mx1], S1, SAME), DrR0.2, ReLU",
        ),
        (
            "TCCB2",
            format!("({m},{k},8) -> ({m},{k},16)"),
            "DCONV-(N16, K[1x3], S1, causal), DiR2, DrR0.2, ReLU",
        ),
        (
            "TCCB2",
            format!("({m},{k},16) -> ({m},{k},16)"),
            "DCONV-(N16, K[1x3], S1, causal), DiR2, DrR0.2, ReLU",
        ),
        (
            "TCCB2",
            format!("({m},{k},16) -> ({m},{k},16)"),
            "CCONV-(N16, K[mx1], S1, SAME), DrR0.2, ReLU",
        ),
        (
            "TCCB3",
            format!("({m},{k},16) -> ({m},{k},16)"),
            "DCONV-(N16, K[1x3], S1, causal), DiR4, DrR0.2, ReLU",
        ),
        (
            "TCCB3",
            format!("({m},{k},16) -> ({m},{k},16)"),
            "DCONV-(N16, K[1x3], S1, causal), DiR4, DrR0.2, ReLU",
        ),
        (
            "TCCB3",
            format!("({m},{k},16) -> ({m},{k},16)"),
            "CCONV-(N16, K[mx1], S1, SAME), DrR0.2, ReLU",
        ),
        ("Conv4", format!("({m},{k},16) -> ({m},1,16)"), "CONV-(N16, K[1xk], S1, VALID), ReLU"),
        ("LSTM", format!("({m},{k},4) -> ({m},1,16)"), "LSTM unit number: 16"),
        (
            "Concat",
            format!("({m},16)+({m},16)+({m},1)+(1,33) -> ({},33)", m + 1),
            "features + a_{t-1} + cash bias",
        ),
        (
            "Prediction",
            format!("({},33) -> ({},1)", m + 1, m + 1),
            "CONV-(N1, K[1x1], S1, VALID), Softmax",
        ),
    ];
    for (part, io, info) in rows {
        table.row(vec![part.to_string(), io, info.to_string()]);
    }
    table.finish("table2.md");

    // Live verification: forward at the paper's exact shapes.
    let mut rng = StdRng::seed_from_u64(0);
    let net = PolicyNet::new(Variant::Ppn, cfg.clone(), &mut rng);
    let windows = vec![vec![1.0; m * k * 4]];
    let prev = vec![vec![1.0 / (m as f64 + 1.0); m + 1]];
    let batch = WindowBatch::new(&windows, &prev, m, k, 4);
    let mut g = Graph::new();
    let bind = net.store.bind(&mut g);
    let out = net.forward(&mut g, &bind, &batch, false, &mut rng);
    assert_eq!(g.value(out).shape(), &[1, m + 1]);
    let s: f64 = g.value(out).data().iter().sum();
    assert!((s - 1.0).abs() < 1e-9);
    ppn_obs::obs_info!(
        "live check: forward at (m={m}, k={k}, d=4) -> {:?}, simplex OK; {} trainable scalars",
        g.value(out).shape(),
        net.store.num_scalars()
    );
    let _ = run.finish();
}
