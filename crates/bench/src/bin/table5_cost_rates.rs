//! Table 5 / Table Sup.3: profitability under different transaction cost
//! rates on Crypto-A (EIIE / PPN-I / PPN), retraining per rate as the paper
//! does.

use ppn_bench::{config_at, fnum, run_many, Budget, TableWriter};
use ppn_core::Variant;
use ppn_market::Preset;

fn main() {
    let run = ppn_bench::start_run("table5_cost_rates");
    let rates = [0.0001, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.02, 0.05];
    let nets = [Variant::Eiie, Variant::PpnI, Variant::Ppn];

    let mut header = vec!["Algos".to_string()];
    for c in rates {
        header.push(format!("c={}%:APV", c * 100.0));
        header.push(format!("c={}%:TO", c * 100.0));
    }
    let hdr: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = TableWriter::new(
        "Table 5 — Comparisons under different transaction cost rates on Crypto-A",
        &hdr,
    );

    // Row-major (variant × rate) cell grid, fanned out across the pool.
    let mut cfgs = Vec::new();
    for &v in &nets {
        for &psi in &rates {
            let mut cfg = config_at(Preset::CryptoA, v, Budget::Sweep);
            cfg.psi = psi;
            cfgs.push(cfg);
        }
    }
    ppn_obs::obs_info!("[table5] fanning out {} cells ...", cfgs.len());
    let results = run_many("table5_cost_rates", &cfgs);

    for (vi, v) in nets.iter().enumerate() {
        let mut row = vec![v.name().to_string()];
        for ri in 0..rates.len() {
            let m = &results[vi * rates.len() + ri].metrics;
            row.push(fnum(m.apv));
            row.push(fnum(m.turnover));
        }
        table.row(row);
    }
    table.finish("table5.md");
    let _ = run.finish();
}
