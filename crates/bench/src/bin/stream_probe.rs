//! Probe for the ppn-stream online-adaptation pipeline.
//!
//! Four phases, all against a stitched two-regime dataset (up-drift then
//! down-drift, spliced price-continuously so the seam is a genuine
//! mid-stream regime shift):
//!
//! 1. **Live run** — a full-speed [`StreamService`] replays the live feed
//!    end to end: bars/sec, online gradient updates/sec, and the
//!    publish/promotion tally.
//! 2. **Swap latency** — repeated registry publishes of fresh snapshots
//!    against the served name: p50/p99/max of the pointer-swap itself.
//! 3. **Divergence overhead** — repeated shadow comparisons between two
//!    versions: the per-promotion safety-gate cost.
//! 4. **Rollback demo** — a wildly divergent candidate is pushed through
//!    the promotion gate with a tight threshold and must be rolled back,
//!    restoring the previous version bit-for-bit.
//!
//! Results land in `results/BENCH_stream.json`. `--smoke` runs the same
//! phases at reduced scale and still writes the JSON (the CI artifact); the
//! correctness assertions (swap landed, rollback restored, live serving
//! never interrupted) hold in both modes.

use ppn_core::prelude::*;
use ppn_market::{stitched_dataset, Dataset, MarketConfig, Preset};
use ppn_serve::ModelRegistry;
use ppn_stream::{promote, shadow_divergence, PromotionOutcome, StreamConfig, StreamService};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

const ASSETS: usize = 4;

#[derive(serde::Serialize)]
struct LiveRunSample {
    live_bars: u64,
    steps_per_bar: usize,
    publish_every: usize,
    duration_s: f64,
    bars_per_s: f64,
    updates_per_s: f64,
    publishes: u64,
    promoted: u64,
    rolled_back: u64,
    final_version: u64,
}

#[derive(serde::Serialize)]
struct SwapSample {
    samples: usize,
    p50_ms: f64,
    p99_ms: f64,
    max_ms: f64,
}

#[derive(serde::Serialize)]
struct DivergenceSample {
    shadow_window: usize,
    samples: usize,
    mean_ms: f64,
    p99_ms: f64,
    max_l1: f64,
}

#[derive(serde::Serialize)]
struct RollbackSample {
    candidate_version: u64,
    restored_version: u64,
    max_l1: f64,
}

#[derive(serde::Serialize)]
struct BenchStream {
    model: String,
    assets: usize,
    window: usize,
    split: usize,
    periods: usize,
    live_run: LiveRunSample,
    swap: SwapSample,
    divergence_check: DivergenceSample,
    rollback_demo: RollbackSample,
}

fn small_cfg() -> NetConfig {
    NetConfig { window: 8, lstm_hidden: 4, tccb_channels: [3, 4, 4], ..NetConfig::paper(ASSETS) }
}

fn regime_shift_dataset(periods_per_regime: usize, split: usize) -> Arc<Dataset> {
    let up = MarketConfig {
        assets: ASSETS,
        periods: periods_per_regime,
        seed: 11,
        drift: 2e-3,
        momentum: 0.3,
        ..MarketConfig::default()
    };
    let down = MarketConfig { seed: 22, drift: -2e-3, ..up.clone() };
    Arc::new(stitched_dataset(Preset::CryptoA, &[up, down], split))
}

fn fresh_net(seed: u64) -> PolicyNet {
    PolicyNet::new(Variant::PpnLstm, small_cfg(), &mut StdRng::seed_from_u64(seed))
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let run = ppn_bench::start_run("stream_probe");

    let (per_regime, split, publish_every) = if smoke { (200, 180, 25) } else { (900, 600, 50) };
    let ds = regime_shift_dataset(per_regime, split);
    let live_bars = (ds.periods() - split) as u64;
    let cfg = small_cfg();
    println!(
        "stream_probe: {} assets, {} periods ({} live bars), regime seam at {}",
        ASSETS,
        ds.periods(),
        live_bars,
        per_regime - 1
    );

    // Phase 1: full-speed live run through the updater service.
    let registry = Arc::new(ModelRegistry::new());
    let stream_cfg = StreamConfig {
        publish_every,
        divergence_threshold: 2.1, // simplex L1 caps at 2.0: swaps always stick
        ..StreamConfig::default()
    };
    let steps_per_bar = stream_cfg.steps_per_bar;
    let pretrain =
        TrainConfig { steps: if smoke { 10 } else { 50 }, batch: 8, ..TrainConfig::default() };
    let t0 = Instant::now();
    let svc = StreamService::start(
        Arc::clone(&registry),
        "probe",
        Arc::clone(&ds),
        fresh_net(42),
        RewardConfig::default(),
        pretrain,
        stream_cfg.clone(),
    );
    while !svc.is_finished() {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let stats = svc.stop();
    let duration_s = t0.elapsed().as_secs_f64();
    assert_eq!(stats.bars, live_bars, "the updater must consume the whole feed");
    assert!(stats.promoted >= 1, "at least one hot swap must land: {stats:?}");
    assert_eq!(stats.rolled_back, 0, "threshold 2.1 can never trip");
    assert_eq!(registry.live_version("probe"), Some(stats.live_version));
    let live_run = LiveRunSample {
        live_bars,
        steps_per_bar,
        publish_every,
        duration_s,
        bars_per_s: stats.bars as f64 / duration_s,
        updates_per_s: (stats.bars * steps_per_bar as u64) as f64 / duration_s,
        publishes: stats.publishes,
        promoted: stats.promoted,
        rolled_back: stats.rolled_back,
        final_version: stats.live_version,
    };
    println!(
        "live run: {:.2}s  {:.1} bars/s  {:.1} updates/s  {} publishes ({} promoted), final v{}",
        live_run.duration_s,
        live_run.bars_per_s,
        live_run.updates_per_s,
        live_run.publishes,
        live_run.promoted,
        live_run.final_version
    );

    // Phase 2: swap latency — the pointer swap itself, isolated.
    let swap_samples = if smoke { 50 } else { 400 };
    let mut swap_ms = Vec::with_capacity(swap_samples);
    for s in 0..swap_samples {
        let candidate = fresh_net(1_000 + s as u64);
        let t = Instant::now();
        registry.publish("probe", candidate);
        swap_ms.push(t.elapsed().as_secs_f64() * 1e3);
    }
    swap_ms.sort_by(|a, b| a.total_cmp(b));
    let swap = SwapSample {
        samples: swap_samples,
        p50_ms: percentile(&swap_ms, 0.50),
        p99_ms: percentile(&swap_ms, 0.99),
        max_ms: swap_ms.last().copied().unwrap_or(f64::NAN),
    };
    println!(
        "swap latency over {} publishes: p50 {:.4} ms  p99 {:.4} ms  max {:.4} ms",
        swap.samples, swap.p50_ms, swap.p99_ms, swap.max_ms
    );

    // Phase 3: divergence-check overhead — the shadow comparison that gates
    // every promotion.
    let div_samples = if smoke { 30 } else { 200 };
    let a = fresh_net(7);
    let b = fresh_net(8_888);
    let mut div_ms = Vec::with_capacity(div_samples);
    let mut max_l1 = 0.0_f64;
    for _ in 0..div_samples {
        let t = Instant::now();
        let report = shadow_divergence(&a, &b, &ds, ds.periods() - 1, stream_cfg.shadow_window);
        div_ms.push(t.elapsed().as_secs_f64() * 1e3);
        max_l1 = max_l1.max(report.max_l1);
    }
    assert!(max_l1 > 0.0 && max_l1 <= 2.0 + 1e-12, "simplex L1 out of range: {max_l1}");
    div_ms.sort_by(|a, b| a.total_cmp(b));
    let divergence_check = DivergenceSample {
        shadow_window: stream_cfg.shadow_window,
        samples: div_samples,
        mean_ms: div_ms.iter().sum::<f64>() / div_samples as f64,
        p99_ms: percentile(&div_ms, 0.99),
        max_l1,
    };
    println!(
        "divergence check ({} bars): mean {:.4} ms  p99 {:.4} ms  observed max L1 {:.4}",
        divergence_check.shadow_window,
        divergence_check.mean_ms,
        divergence_check.p99_ms,
        divergence_check.max_l1
    );

    // Phase 4: publish → swap → rollback demo through the promotion gate.
    let live_before = registry.resolve("probe").expect("probe is live");
    let tight = StreamConfig { divergence_threshold: 1e-9, ..stream_cfg.clone() };
    let promotion = promote(&registry, "probe", fresh_net(666), &ds, ds.periods() - 1, &tight);
    let PromotionOutcome::RolledBack { restored } = promotion.outcome else {
        panic!("divergent candidate must be rolled back, got {:?}", promotion.outcome);
    };
    assert_eq!(restored, live_before.version(), "rollback must restore the previous live version");
    let live_after = registry.resolve("probe").expect("probe is still live");
    assert!(
        Arc::ptr_eq(live_before.net(), live_after.net()),
        "rollback must restore the exact network"
    );
    let rollback_demo = RollbackSample {
        candidate_version: promotion.candidate_version,
        restored_version: restored,
        max_l1: promotion.divergence.map(|d| d.max_l1).unwrap_or(f64::NAN),
    };
    println!(
        "rollback demo: candidate v{} rejected (max L1 {:.4}), restored v{}",
        rollback_demo.candidate_version, rollback_demo.max_l1, rollback_demo.restored_version
    );

    let report = BenchStream {
        model: "PPN-LSTM".to_string(),
        assets: ASSETS,
        window: cfg.window,
        split,
        periods: ds.periods(),
        live_run,
        swap,
        divergence_check,
        rollback_demo,
    };
    std::fs::create_dir_all("results").ok();
    let json = serde_json::to_vec_pretty(&report).expect("report serializes");
    std::fs::write("results/BENCH_stream.json", json).expect("write BENCH_stream.json");
    println!("wrote results/BENCH_stream.json");
    let _ = run.finish();
}
