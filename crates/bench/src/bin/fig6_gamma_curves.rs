//! Figure 6: PPN wealth curves on Crypto-A under different γ. Emits
//! `results/fig6_gamma_curves.csv`. The paper-shape to look for: large γ
//! curves go flat (trading stops when costs outweigh the edge).

use ppn_bench::{config_at, train_and_backtest, Budget};
use ppn_core::Variant;
use ppn_market::Preset;

fn main() {
    let run = ppn_bench::start_run("fig6_gamma_curves");
    let gammas = [1e-4, 1e-3, 1e-2, 1e-1];
    let mut curves = Vec::new();
    for &gamma in &gammas {
        ppn_obs::obs_info!("[fig6] gamma={gamma:.0e} ...");
        let mut cfg = config_at(Preset::CryptoA, Variant::Ppn, Budget::Sweep);
        cfg.gamma = gamma;
        let res = train_and_backtest(&cfg);
        curves.push((format!("gamma={gamma:.0e}"), res.wealth));
    }

    let len = curves.iter().map(|(_, c)| c.len()).min().unwrap_or(0);
    let mut csv = String::from("period");
    for (name, _) in &curves {
        csv.push(',');
        csv.push_str(name);
    }
    csv.push('\n');
    for t in 0..len {
        csv.push_str(&t.to_string());
        for (_, c) in &curves {
            csv.push_str(&format!(",{:.6}", c[t]));
        }
        csv.push('\n');
    }
    std::fs::create_dir_all("results").unwrap();
    std::fs::write("results/fig6_gamma_curves.csv", &csv).unwrap();
    let series: Vec<ppn_bench::Series> = curves
        .iter()
        .map(|(name, c)| ppn_bench::Series { name: name.clone(), values: c[..len].to_vec() })
        .collect();
    let cfg = ppn_bench::ChartConfig {
        title: "Fig. 6 — PPN wealth under different gamma (Crypto-A)".into(),
        y_label: "accumulated portfolio value (log scale)".into(),
        log_y: true,
        ..Default::default()
    };
    ppn_bench::save_chart(&series, &cfg, "fig6_gamma_curves.svg").unwrap();
    ppn_obs::obs_info!("wrote results/fig6_gamma_curves.csv and .svg ({len} periods)");
    for (name, c) in &curves {
        ppn_obs::obs_info!("{:<12} final APV {:.2}", name, c.last().copied().unwrap_or(1.0));
    }
    let _ = run.finish();
}
