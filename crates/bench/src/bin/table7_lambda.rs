//! Table 7 / Table Sup.5: cost-sensitivity to the risk trade-off λ — PPN
//! retrained at λ ∈ {1e−4, 1e−3, 1e−2, 1e−1}. Expected shape: STD (and
//! mostly MDD) decrease as λ grows, trading away some APV.

use ppn_bench::{config_at, fnum, run_many, Budget, TableWriter};
use ppn_core::Variant;
use ppn_market::Preset;

fn main() {
    let run = ppn_bench::start_run("table7_lambda");
    let lambdas = [1e-4, 1e-3, 1e-2, 1e-1];
    let presets = [Preset::CryptoA, Preset::CryptoB, Preset::CryptoC, Preset::CryptoD];

    let mut header = vec!["lambda".to_string()];
    for p in presets {
        for m in ["APV", "STD(%)", "MDD(%)"] {
            header.push(format!("{}:{}", p.name(), m));
        }
    }
    let hdr: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = TableWriter::new("Table 7 — PPN under different lambda", &hdr);

    // Row-major (λ × preset) cell grid, fanned out across the pool.
    let mut cfgs = Vec::new();
    for &lambda in &lambdas {
        for &p in &presets {
            let mut cfg = config_at(p, Variant::Ppn, Budget::Sweep);
            cfg.lambda = lambda;
            cfgs.push(cfg);
        }
    }
    ppn_obs::obs_info!("[table7] fanning out {} cells ...", cfgs.len());
    let results = run_many("table7_lambda", &cfgs);

    for (li, lambda) in lambdas.iter().enumerate() {
        let mut row = vec![format!("{lambda:.0e}")];
        for pi in 0..presets.len() {
            let m = &results[li * presets.len() + pi].metrics;
            row.push(fnum(m.apv));
            row.push(fnum(m.std_pct));
            row.push(fnum(m.mdd * 100.0));
        }
        table.row(row);
    }
    table.finish("table7.md");
    let _ = run.finish();
}
