//! Table 7 / Table Sup.5: cost-sensitivity to the risk trade-off λ — PPN
//! retrained at λ ∈ {1e−4, 1e−3, 1e−2, 1e−1}. Expected shape: STD (and
//! mostly MDD) decrease as λ grows, trading away some APV.

use ppn_bench::{config_at, fnum, train_and_backtest, Budget, TableWriter};
use ppn_core::Variant;
use ppn_market::Preset;

fn main() {
    let run = ppn_bench::start_run("table7_lambda");
    let lambdas = [1e-4, 1e-3, 1e-2, 1e-1];
    let presets = [Preset::CryptoA, Preset::CryptoB, Preset::CryptoC, Preset::CryptoD];

    let mut header = vec!["lambda".to_string()];
    for p in presets {
        for m in ["APV", "STD(%)", "MDD(%)"] {
            header.push(format!("{}:{}", p.name(), m));
        }
    }
    let hdr: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = TableWriter::new("Table 7 — PPN under different lambda", &hdr);

    for &lambda in &lambdas {
        let mut row = vec![format!("{lambda:.0e}")];
        for &p in &presets {
            ppn_obs::obs_info!("[table7] lambda={lambda:.0e} on {} ...", p.name());
            let mut cfg = config_at(p, Variant::Ppn, Budget::Sweep);
            cfg.lambda = lambda;
            let res = train_and_backtest(&cfg);
            row.push(fnum(res.metrics.apv));
            row.push(fnum(res.metrics.std_pct));
            row.push(fnum(res.metrics.mdd * 100.0));
        }
        table.row(row);
    }
    table.finish("table7.md");
    let _ = run.finish();
}
