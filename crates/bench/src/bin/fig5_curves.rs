//! Figure 5: wealth-curve development of EIIE and every PPN variant over the
//! Crypto-A test period. Emits `results/fig5_curves.csv` with one column per
//! strategy (plus the paper-style summary of final values).

use ppn_bench::{config_at, default_config, train_and_backtest, Budget};
use ppn_core::Variant;
use ppn_market::Preset;

fn main() {
    let run = ppn_bench::start_run("fig5_curves");
    let variants = [
        Variant::Eiie,
        Variant::PpnLstm,
        Variant::PpnTcb,
        Variant::PpnTccb,
        Variant::PpnTcbLstm,
        Variant::PpnTccbLstm,
        Variant::PpnI,
        Variant::Ppn,
    ];
    let mut curves = Vec::new();
    for v in variants {
        ppn_obs::obs_info!("[fig5] {} ...", v.name());
        let cfg = match v {
            Variant::Ppn | Variant::PpnI | Variant::Eiie => default_config(Preset::CryptoA, v),
            _ => config_at(Preset::CryptoA, v, Budget::Ablation),
        };
        let res = train_and_backtest(&cfg);
        curves.push((v.name().to_string(), res.wealth));
    }

    let len = curves.iter().map(|(_, c)| c.len()).min().unwrap_or(0);
    let mut csv = String::from("period");
    for (name, _) in &curves {
        csv.push(',');
        csv.push_str(name);
    }
    csv.push('\n');
    for t in 0..len {
        csv.push_str(&t.to_string());
        for (_, c) in &curves {
            csv.push_str(&format!(",{:.6}", c[t]));
        }
        csv.push('\n');
    }
    std::fs::create_dir_all("results").unwrap();
    std::fs::write("results/fig5_curves.csv", &csv).unwrap();
    let series: Vec<ppn_bench::Series> = curves
        .iter()
        .map(|(name, c)| ppn_bench::Series { name: name.clone(), values: c[..len].to_vec() })
        .collect();
    let cfg = ppn_bench::ChartConfig {
        title: "Fig. 5 — wealth development on Crypto-A (test split)".into(),
        y_label: "accumulated portfolio value (log scale)".into(),
        log_y: true,
        ..Default::default()
    };
    ppn_bench::save_chart(&series, &cfg, "fig5_curves.svg").unwrap();
    ppn_obs::obs_info!("wrote results/fig5_curves.csv and results/fig5_curves.svg ({len} periods)");
    for (name, c) in &curves {
        ppn_obs::obs_info!("final APV {:<15} {:.2}", name, c.last().copied().unwrap_or(1.0));
    }
    let _ = run.finish();
}
