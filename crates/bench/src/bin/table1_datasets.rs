//! Table 1 / Table 10: dataset statistics (asset counts, train/test sizes).

use ppn_bench::TableWriter;
use ppn_market::{stats, Dataset, Preset};

fn main() {
    let run = ppn_bench::start_run("table1_datasets");
    let mut table = TableWriter::new(
        "Table 1 & 10 — Statistics of the synthetic datasets (substituting the paper's Poloniex / Kaggle feeds)",
        &["Dataset", "#Asset", "Train Num.", "Test Num.", "Periods/day"],
    );
    for p in Preset::all() {
        let ds = Dataset::load(p);
        let s = stats(&ds);
        let freq = if p == Preset::Sp500 { "1 (daily)" } else { "48 (30-min)" };
        table.row(vec![
            s.name.to_string(),
            s.assets.to_string(),
            s.train.to_string(),
            s.test.to_string(),
            freq.to_string(),
        ]);
    }
    table.finish("table1.md");
    let _ = run.finish();
}
