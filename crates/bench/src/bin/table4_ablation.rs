//! Table 4 / Table Sup.2: representation-ability ablation — PPN with every
//! feature-extractor variant on the four crypto datasets.

use ppn_bench::{config_at, default_config, fnum, run_many, Budget, TableWriter};
use ppn_core::Variant;
use ppn_market::Preset;

fn main() {
    let run = ppn_bench::start_run("table4_ablation");
    let presets = [Preset::CryptoA, Preset::CryptoB, Preset::CryptoC, Preset::CryptoD];
    let mut header = vec!["Module".to_string()];
    for p in presets {
        for m in ["APV", "SR(%)", "CR", "TO"] {
            header.push(format!("{}:{}", p.name(), m));
        }
    }
    let hdr: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = TableWriter::new("Table 4 — PPN with different feature extractors", &hdr);

    // Row-major (variant × preset) cell grid, fanned out across the pool.
    let variants = Variant::table4_order();
    let mut cfgs = Vec::new();
    for &v in &variants {
        for &p in &presets {
            // PPN and PPN-I reuse the headline (full-budget) runs of Table 3;
            // the pure-ablation variants train at the ablation budget.
            cfgs.push(match v {
                Variant::Ppn | Variant::PpnI => default_config(p, v),
                _ => config_at(p, v, Budget::Ablation),
            });
        }
    }
    ppn_obs::obs_info!("[table4] fanning out {} cells ...", cfgs.len());
    let results = run_many("table4_ablation", &cfgs);

    for (vi, v) in variants.iter().enumerate() {
        let mut row = vec![v.name().to_string()];
        for pi in 0..presets.len() {
            let m = &results[vi * presets.len() + pi].metrics;
            row.extend([fnum(m.apv), fnum(m.sharpe_pct), fnum(m.calmar), fnum(m.turnover)]);
        }
        table.row(row);
    }
    table.finish("table4.md");
    let _ = run.finish();
}
