//! Development diagnostic: per-preset learnability probe. Trains PPN-I with
//! the current defaults and prints the reward trace, the resulting test
//! APV/TO, and the UBAH / OLMAR reference points so the market presets and
//! training knobs can be tuned until the paper's qualitative shape holds.

use ppn_core::prelude::*;
use ppn_market::{run_backtest, test_range, Dataset, Preset};

fn main() {
    let run = ppn_bench::start_run("diagnose");
    let presets: Vec<Preset> = match std::env::args().nth(1).as_deref() {
        Some("a") => vec![Preset::CryptoA],
        Some("b") => vec![Preset::CryptoB],
        Some("c") => vec![Preset::CryptoC],
        Some("d") => vec![Preset::CryptoD],
        _ => vec![Preset::CryptoA, Preset::CryptoB, Preset::CryptoC, Preset::CryptoD],
    };
    let steps: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(300);
    for p in presets {
        let ds = Dataset::load(p);
        let range = test_range(&ds);
        let ubah = run_backtest(&ds, &mut ppn_baselines::Ubah::default(), 0.0025, range.clone());
        let olmar =
            run_backtest(&ds, &mut ppn_baselines::Olmar::new(10.0, 5), 0.0025, range.clone());

        let train = TrainConfig { steps, ..TrainConfig::default() };
        let mut tr = Trainer::new(&ds, Variant::PpnI, RewardConfig::default(), train);
        let mut trace = Vec::new();
        for i in 0..steps {
            let s = tr.step();
            if i % (steps / 10).max(1) == 0 {
                trace.push((i, s.reward, s.mean_turnover));
            }
        }
        let net = tr.into_net();
        let mut policy = NetPolicy::new(net);
        let r = run_backtest(&ds, &mut policy, 0.0025, range);
        ppn_obs::obs_info!("=== {} (m={}) ===", p.name(), ds.assets());
        ppn_obs::obs_info!(
            "  UBAH APV {:.3} | OLMAR APV {:.3} | PPN-I APV {:.3} TO {:.3} SR {:.2}%",
            ubah.metrics.apv,
            olmar.metrics.apv,
            r.metrics.apv,
            r.metrics.turnover,
            r.metrics.sharpe_pct
        );
        let mut line = String::from("  reward trace:");
        for (i, rew, to) in &trace {
            line.push_str(&format!(" [{i}] {rew:+.4}/{to:.3}"));
        }
        ppn_obs::obs_info!("{line}");
    }
    let _ = run.finish();
}
