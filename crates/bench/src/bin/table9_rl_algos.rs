//! Table 9: reinforcement-learning algorithm comparison on Crypto-A —
//! PPN trained by direct policy gradient vs PPN-AC trained by DDPG (§7.2).
//!
//! The paper's finding (and the expected shape here): the critic's Q
//! approximation is poor for this non-stationary, action-decoupled MDP, so
//! PPN-AC lands well below PPN while still beating the handcraft baselines
//! thanks to the shared two-stream actor.

use ppn_bench::{default_config, fnum, run_cells, train_and_backtest, TableWriter};
use ppn_core::prelude::*;
use ppn_market::{run_backtest, test_range, Dataset, Metrics, Preset};

fn main() {
    let run = ppn_bench::start_run("table9_rl_algos");
    let ds = Dataset::load(Preset::CryptoA);
    let mut table = TableWriter::new(
        "Table 9 — RL algorithms for PPN on Crypto-A",
        &["Algos", "APV", "STD(%)", "SR(%)", "MDD(%)", "CR"],
    );

    // Heterogeneous cells (DDPG actor-critic vs direct policy gradient), so
    // fan out via `run_cells` with a common `Metrics` payload.
    let labels = ["PPN-AC".to_string(), "PPN".to_string()];
    ppn_obs::obs_info!("[table9] fanning out {} cells ...", labels.len());
    let results: Vec<Metrics> = run_cells("table9_rl_algos", &labels, |i| match i {
        0 => {
            // PPN-AC via DDPG.
            let ddpg_cfg = DdpgConfig {
                steps: std::env::var("PPN_DDPG_STEPS")
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(250),
                ..DdpgConfig::default()
            };
            let actor =
                DdpgTrainer::new(&ds, Variant::Ppn, RewardConfig::default(), ddpg_cfg).train();
            let mut ac_policy = NetPolicy::new(actor);
            run_backtest(&ds, &mut ac_policy, 0.0025, test_range(&ds)).metrics
        }
        // PPN via direct policy gradient (cached from Table 3).
        _ => train_and_backtest(&default_config(Preset::CryptoA, Variant::Ppn)).metrics,
    });

    for (label, m) in labels.iter().zip(&results) {
        table.row(vec![
            label.clone(),
            fnum(m.apv),
            fnum(m.std_pct),
            fnum(m.sharpe_pct),
            fnum(m.mdd * 100.0),
            fnum(m.calmar),
        ]);
    }
    table.finish("table9.md");
    let _ = run.finish();
}
