//! Extended risk analytics (beyond the paper's metric set): Sortino,
//! downside deviation, VaR/ES and annualised figures for the classic
//! baselines plus any cached neural runs on a chosen dataset.

use ppn_bench::{fnum, run_baselines, TableWriter};
use ppn_market::risk::{self, frequency};
use ppn_market::{run_backtest, test_range, Dataset, Preset};

fn main() {
    let run = ppn_bench::start_run("risk_report");
    let preset = Preset::CryptoA;
    let ds = Dataset::load(preset);
    let range = test_range(&ds);
    let mut table = TableWriter::new(
        "Extended risk report — Crypto-A test split (psi = 0.25%)",
        &["Algo", "Sortino", "DownDev(%)", "VaR95(%)", "ES95(%)", "AnnVol(%)"],
    );
    // Gather per-period log returns per strategy via a fresh backtest (the
    // baseline runner only returns aggregate metrics + wealth curves).
    let _ = run_baselines(preset, 0.0025); // warm determinism check
    for mut p in ppn_baselines::standard_suite(&ds, range.clone()) {
        let r = run_backtest(&ds, p.as_mut(), 0.0025, range.clone());
        let logs: Vec<f64> = r.records.iter().map(|x| x.net_log_return).collect();
        let (_, std) = ppn_market::mean_std(&logs);
        table.row(vec![
            r.name.clone(),
            fnum(risk::sortino_ratio(&logs, 0.0) * 100.0),
            fnum(risk::downside_deviation(&logs, 0.0) * 100.0),
            fnum(risk::value_at_risk(&logs, 0.95) * 100.0),
            fnum(risk::expected_shortfall(&logs, 0.95) * 100.0),
            fnum(risk::annualized_volatility(std, frequency::CRYPTO_30MIN) * 100.0),
        ]);
    }
    table.finish("risk_report.md");
    let _ = run.finish();
}
