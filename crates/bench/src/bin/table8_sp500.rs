//! Table 8: generalisation to the stock market — all methods on the
//! S&P500-like daily dataset (APV, SR%, CR, TO).

use ppn_bench::{default_config, fnum, run_baselines, train_and_backtest, TableWriter};
use ppn_core::Variant;
use ppn_market::Preset;

fn main() {
    let run = ppn_bench::start_run("table8_sp500");
    let mut table = TableWriter::new(
        "Table 8 — Performance comparisons on the S&P500-like dataset",
        &["Algos", "APV", "SR(%)", "CR", "TO"],
    );

    for (name, m, _) in run_baselines(Preset::Sp500, 0.0025) {
        table.row(vec![name, fnum(m.apv), fnum(m.sharpe_pct), fnum(m.calmar), fnum(m.turnover)]);
    }
    for v in [Variant::Eiie, Variant::PpnI, Variant::Ppn] {
        ppn_obs::obs_info!("[table8] {} on S&P500 ...", v.name());
        let res = train_and_backtest(&default_config(Preset::Sp500, v));
        let m = res.metrics;
        table.row(vec![
            v.name().to_string(),
            fnum(m.apv),
            fnum(m.sharpe_pct),
            fnum(m.calmar),
            fnum(m.turnover),
        ]);
    }
    table.finish("table8.md");
    let _ = run.finish();
}
