//! Load + soak probe for the ppn-serve event-driven inference server.
//!
//! Starts an in-process server backed by a seeded PPN-LSTM and drives it
//! with **persistent keep-alive clients** fanned out on the
//! `ppn_tensor::par` worker pool, in three phases:
//!
//! 1. **Levels** — closed-loop request/response at several concurrency
//!    levels: client-side p50/p99 latency, throughput, mean forward-pass
//!    batch size, and bit-identity of every served weight vector against
//!    the direct single-sample `PolicyNet::act` path.
//! 2. **Soak** — sustained closed-loop load at the top concurrency for a
//!    fixed wall-clock window: latency under saturation (p50/p99/max) and
//!    sustained throughput.
//! 3. **Shed curve** — a second server with a deliberately small decision
//!    queue, driven with pipelined bursts of increasing depth: measures
//!    the 429 shed rate as offered load exceeds capacity, demonstrating
//!    bounded-queue degradation instead of unbounded queueing.
//!
//! Results land in `results/BENCH_serve.json`.
//!
//! `--smoke` runs a single reduced level and asserts instead of writing:
//! 200 responses, simplex outputs, a non-empty `serve.latency_ms`
//! histogram, and a graceful shutdown. `--soak-smoke` runs every phase at
//! reduced scale and writes the JSON (the CI artifact).

use ppn_core::prelude::*;
use ppn_serve::http::{http_request, HttpClient};
use ppn_serve::{DecideRequest, DecideResponse, ModelRegistry, ServeConfig, Server};
use ppn_tensor::par;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

#[derive(serde::Serialize)]
struct LevelSample {
    concurrency: usize,
    requests: usize,
    p50_ms: f64,
    p99_ms: f64,
    rps: f64,
    mean_batch: f64,
    bit_identical: bool,
}

#[derive(serde::Serialize)]
struct SoakSample {
    concurrency: usize,
    duration_s: f64,
    requests: usize,
    rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    max_ms: f64,
    mean_batch: f64,
    shed_429: u64,
}

#[derive(serde::Serialize)]
struct ShedSample {
    pipeline_depth: usize,
    concurrency: usize,
    offered: u64,
    ok_200: u64,
    shed_429: u64,
    shed_rate: f64,
    rps: f64,
}

#[derive(serde::Serialize)]
struct BenchServe {
    model: String,
    assets: usize,
    max_batch: usize,
    queue_cap: usize,
    /// Closed-loop keep-alive levels (one in-flight request per client).
    levels: Vec<LevelSample>,
    /// Sustained closed-loop load at the top level.
    soak: Option<SoakSample>,
    /// Decision-queue capacity of the dedicated shed-curve server.
    shed_queue_cap: usize,
    /// Pipelined overload against the small-queue server.
    shed_curve: Vec<ShedSample>,
}

fn small_cfg(assets: usize) -> NetConfig {
    NetConfig { window: 8, lstm_hidden: 4, tccb_channels: [3, 4, 4], ..NetConfig::paper(assets) }
}

fn probe_inputs(cfg: &NetConfig, salt: u64) -> (Vec<f64>, Vec<f64>) {
    let window: Vec<f64> = (0..cfg.assets * cfg.window * cfg.features)
        .map(|i| 1.0 + 0.003 * ((i as u64 + 7 * salt) as f64 * 0.9).sin())
        .collect();
    let prev = vec![1.0 / (cfg.assets as f64 + 1.0); cfg.assets + 1];
    (window, prev)
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// One closed-loop keep-alive worker: `per_worker` sequential decide
/// requests over a single persistent connection. Returns per-request
/// latencies (ms) and whether every response was 200 with bit-identical
/// weights.
fn closed_loop_worker(
    addr: SocketAddr,
    bodies: &[String],
    expected_bits: &[Vec<u64>],
    worker: usize,
    per_worker: usize,
) -> (Vec<f64>, bool) {
    let mut client = HttpClient::connect(addr).expect("client connects");
    let mut lat = Vec::with_capacity(per_worker);
    let mut ok = true;
    for r in 0..per_worker {
        let salt = (worker * per_worker + r) % bodies.len();
        let t = Instant::now();
        let resp = client.request("POST", "/decide", &bodies[salt]).expect("request transport");
        lat.push(t.elapsed().as_secs_f64() * 1e3);
        if resp.status != 200 {
            println!("  !! status {}: {}", resp.status, resp.body);
            ok = false;
            continue;
        }
        let parsed: DecideResponse =
            serde_json::from_str(&resp.body).expect("response deserializes");
        let bits: Vec<u64> = parsed.weights.iter().map(|w| w.to_bits()).collect();
        if bits != expected_bits[salt] {
            println!("  !! salt {salt}: weights diverged from direct act()");
            ok = false;
        }
    }
    (lat, ok)
}

/// Drives one closed-loop level with `concurrency` keep-alive workers on
/// the par pool and aggregates their samples into a [`LevelSample`].
fn drive_level(
    addr: SocketAddr,
    bodies: &[String],
    expected_bits: &[Vec<u64>],
    concurrency: usize,
    per_worker: usize,
) -> LevelSample {
    let batch_hist = ppn_serve::metrics::batch_size();
    let (count0, sum0) = (batch_hist.count(), batch_hist.sum());
    let t0 = Instant::now();
    let results = par::with_threads(concurrency, || {
        par::par_map(concurrency, |i| {
            closed_loop_worker(addr, bodies, expected_bits, i, per_worker)
        })
    });
    let wall_s = t0.elapsed().as_secs_f64();
    let (count1, sum1) = (batch_hist.count(), batch_hist.sum());
    let mut lat = Vec::new();
    let mut ok = true;
    for (l, o) in results {
        lat.extend(l);
        ok &= o;
    }
    lat.sort_by(|a, b| a.total_cmp(b));
    let batches = count1 - count0;
    let mean_batch = if batches > 0 { (sum1 - sum0) / batches as f64 } else { 0.0 };
    LevelSample {
        concurrency,
        requests: lat.len(),
        p50_ms: percentile(&lat, 0.50),
        p99_ms: percentile(&lat, 0.99),
        rps: lat.len() as f64 / wall_s,
        mean_batch,
        bit_identical: ok,
    }
}

/// Sustained closed-loop load: every worker hammers its keep-alive
/// connection until the shared deadline passes.
fn drive_soak(
    addr: SocketAddr,
    bodies: &[String],
    concurrency: usize,
    duration: Duration,
) -> SoakSample {
    let batch_hist = ppn_serve::metrics::batch_size();
    let shed = ppn_serve::metrics::shed();
    let (count0, sum0, shed0) = (batch_hist.count(), batch_hist.sum(), shed.get());
    let t0 = Instant::now();
    let deadline = t0 + duration;
    let results = par::with_threads(concurrency, || {
        par::par_map(concurrency, |i| {
            let mut client = HttpClient::connect(addr).expect("client connects");
            let mut lat = Vec::new();
            let mut r = 0usize;
            while Instant::now() < deadline {
                let salt = (i + r * concurrency) % bodies.len();
                let t = Instant::now();
                let resp =
                    client.request("POST", "/decide", &bodies[salt]).expect("request transport");
                lat.push(t.elapsed().as_secs_f64() * 1e3);
                assert_eq!(resp.status, 200, "soak decide failed: {}", resp.body);
                r += 1;
            }
            lat
        })
    });
    let wall_s = t0.elapsed().as_secs_f64();
    let (count1, sum1, shed1) = (batch_hist.count(), batch_hist.sum(), shed.get());
    let mut lat: Vec<f64> = results.into_iter().flatten().collect();
    lat.sort_by(|a, b| a.total_cmp(b));
    let batches = count1 - count0;
    SoakSample {
        concurrency,
        duration_s: wall_s,
        requests: lat.len(),
        rps: lat.len() as f64 / wall_s,
        p50_ms: percentile(&lat, 0.50),
        p99_ms: percentile(&lat, 0.99),
        max_ms: lat.last().copied().unwrap_or(f64::NAN),
        mean_batch: if batches > 0 { (sum1 - sum0) / batches as f64 } else { 0.0 },
        shed_429: shed1 - shed0,
    }
}

/// Pipelined overload at one burst depth against the small-queue server:
/// each worker fires `depth` requests back-to-back, then reads the `depth`
/// ordered responses, counting 200s vs 429 sheds.
fn drive_shed_depth(
    addr: SocketAddr,
    bodies: &[String],
    concurrency: usize,
    depth: usize,
    per_worker: usize,
) -> ShedSample {
    let rounds = (per_worker / depth).max(1);
    let t0 = Instant::now();
    let results = par::with_threads(concurrency, || {
        par::par_map(concurrency, |i| {
            let mut client = HttpClient::connect(addr).expect("client connects");
            let (mut ok, mut shed) = (0u64, 0u64);
            for round in 0..rounds {
                for k in 0..depth {
                    let salt = (i + round * depth + k) % bodies.len();
                    client.send("POST", "/decide", &bodies[salt]).expect("send");
                }
                for _ in 0..depth {
                    let resp = client.recv().expect("recv");
                    match resp.status {
                        200 => ok += 1,
                        429 => shed += 1,
                        other => panic!("unexpected status {other} under overload: {}", resp.body),
                    }
                }
            }
            (ok, shed)
        })
    });
    let wall_s = t0.elapsed().as_secs_f64();
    let (mut ok, mut shed) = (0u64, 0u64);
    for (o, s) in results {
        ok += o;
        shed += s;
    }
    let offered = ok + shed;
    ShedSample {
        pipeline_depth: depth,
        concurrency,
        offered,
        ok_200: ok,
        shed_429: shed,
        shed_rate: if offered > 0 { shed as f64 / offered as f64 } else { 0.0 },
        rps: offered as f64 / wall_s,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let soak_smoke = std::env::args().any(|a| a == "--soak-smoke");
    let run = ppn_bench::start_run("serve_probe");

    let cfg = small_cfg(4);
    let mut rng = StdRng::seed_from_u64(42);
    let net = PolicyNet::new(Variant::PpnLstm, cfg.clone(), &mut rng);

    // Precompute the direct single-sample reference before the registry
    // takes ownership of the net.
    let n_inputs = 32;
    let mut bodies = Vec::with_capacity(n_inputs);
    let mut expected_bits = Vec::with_capacity(n_inputs);
    for salt in 0..n_inputs as u64 {
        let (window, prev_action) = probe_inputs(&cfg, salt);
        expected_bits.push(net.act(&window, &prev_action).iter().map(|w| w.to_bits()).collect());
        let req = DecideRequest { model: "probe".to_string(), window, prev_action };
        bodies.push(serde_json::to_string(&req).expect("request serializes"));
    }
    let mk_registry = || {
        let mut rng = StdRng::seed_from_u64(42);
        let registry = std::sync::Arc::new(ModelRegistry::new());
        registry.publish("probe", PolicyNet::new(Variant::PpnLstm, small_cfg(4), &mut rng));
        registry
    };

    let serve_cfg = ServeConfig::default();
    let max_batch = serve_cfg.max_batch;
    let queue_cap = serve_cfg.queue_cap;
    let server = Server::start(mk_registry(), serve_cfg).expect("server starts");
    let addr = server.addr();
    println!("serve_probe: listening on {addr}");

    let (levels, per_worker): (&[usize], usize) = if smoke {
        (&[4], 24)
    } else if soak_smoke {
        (&[1, 4, 16], 64)
    } else {
        (&[1, 2, 4, 8, 16], 500)
    };

    let mut samples = Vec::new();
    for &c in levels {
        let s = drive_level(addr, &bodies, &expected_bits, c, per_worker);
        println!(
            "c={:<3} {:>5} reqs  p50 {:7.3} ms  p99 {:7.3} ms  {:8.1} req/s  mean batch {:.2}  bit_identical={}",
            s.concurrency, s.requests, s.p50_ms, s.p99_ms, s.rps, s.mean_batch, s.bit_identical
        );
        samples.push(s);
    }
    assert!(
        samples.iter().all(|s| s.bit_identical),
        "batched serving diverged from the single-request act() path"
    );

    if smoke {
        assert!(
            ppn_serve::metrics::latency_ms().count() > 0,
            "serve.latency_ms must record observations"
        );
        // Every response already checked bit-identical against act(), whose
        // simplex contract is asserted inside the net; re-check the sums
        // from the wire anyway.
        let (status, body) =
            http_request(addr, "POST", "/decide", &bodies[0]).expect("smoke decide");
        assert_eq!(status, 200, "smoke decide must return 200: {body}");
        let parsed: DecideResponse = serde_json::from_str(&body).expect("smoke body parses");
        let sum: f64 = parsed.weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "served weights must lie on the simplex: {sum}");
        server.shutdown();
        println!("smoke ok: batched serving bit-identical, graceful shutdown clean");
        let _ = run.finish();
        return;
    }

    // Phase 2: sustained saturation at the top concurrency level.
    let soak_dur = if soak_smoke { Duration::from_millis(750) } else { Duration::from_secs(5) };
    let soak = drive_soak(addr, &bodies, 16, soak_dur);
    println!(
        "soak c={} {:.1}s  {:>6} reqs  {:8.1} req/s  p50 {:.3} ms  p99 {:.3} ms  max {:.3} ms  shed {}",
        soak.concurrency, soak.duration_s, soak.requests, soak.rps, soak.p50_ms, soak.p99_ms,
        soak.max_ms, soak.shed_429
    );
    server.shutdown();

    // Phase 3: overload a deliberately tiny queue with pipelined bursts to
    // trace the shed-rate curve — the queue must refuse, never grow.
    let shed_queue_cap = 64;
    let overload_cfg = ServeConfig { queue_cap: shed_queue_cap, ..ServeConfig::default() };
    let overload = Server::start(mk_registry(), overload_cfg).expect("overload server starts");
    let oaddr = overload.addr();
    let depths: &[usize] = if soak_smoke { &[2, 32] } else { &[2, 8, 32, 64] };
    let shed_per_worker = if soak_smoke { 64 } else { 256 };
    let mut shed_curve = Vec::new();
    for &d in depths {
        let s = drive_shed_depth(oaddr, &bodies, 16, d, shed_per_worker);
        println!(
            "shed depth={:<3} offered {:>6}  200s {:>6}  429s {:>6}  shed_rate {:.3}  {:8.1} req/s",
            s.pipeline_depth, s.offered, s.ok_200, s.shed_429, s.shed_rate, s.rps
        );
        shed_curve.push(s);
    }
    overload.shutdown();
    let deepest = shed_curve.last().expect("at least one shed depth");
    assert!(
        deepest.shed_429 > 0,
        "pipelined overload at depth {} must exceed queue cap {shed_queue_cap} and shed",
        deepest.pipeline_depth
    );

    let report = BenchServe {
        model: "PPN-LSTM".to_string(),
        assets: cfg.assets,
        max_batch,
        queue_cap,
        levels: samples,
        soak: Some(soak),
        shed_queue_cap,
        shed_curve,
    };
    std::fs::create_dir_all("results").ok();
    let json = serde_json::to_vec_pretty(&report).expect("report serializes");
    std::fs::write("results/BENCH_serve.json", json).expect("write BENCH_serve.json");
    println!("wrote results/BENCH_serve.json");
    let _ = run.finish();
}
