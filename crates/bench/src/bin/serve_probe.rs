//! Load probe for the ppn-serve micro-batching inference server.
//!
//! Starts an in-process server backed by a seeded PPN-LSTM, then drives it
//! at several client-concurrency levels, fanning requests out on the
//! `ppn_tensor::par` worker pool. For every level it records client-side
//! p50/p99 latency, request throughput, and the mean forward-pass batch
//! size (from the `serve.batch_size` histogram delta), and asserts every
//! served weight vector is bit-identical to the direct single-sample
//! `PolicyNet::act` path. Results land in `results/BENCH_serve.json`.
//!
//! `--smoke` runs a single reduced level and asserts instead of writing:
//! 200 responses, simplex outputs, a non-empty `serve.latency_ms`
//! histogram, and a graceful shutdown.

use ppn_core::prelude::*;
use ppn_serve::http::http_request;
use ppn_serve::{DecideRequest, DecideResponse, ModelRegistry, ServeConfig, Server};
use ppn_tensor::par;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::SocketAddr;
use std::time::Instant;

#[derive(serde::Serialize)]
struct LevelSample {
    concurrency: usize,
    requests: usize,
    p50_ms: f64,
    p99_ms: f64,
    rps: f64,
    mean_batch: f64,
    bit_identical: bool,
}

#[derive(serde::Serialize)]
struct BenchServe {
    model: String,
    assets: usize,
    max_batch: usize,
    levels: Vec<LevelSample>,
}

fn small_cfg(assets: usize) -> NetConfig {
    NetConfig { window: 8, lstm_hidden: 4, tccb_channels: [3, 4, 4], ..NetConfig::paper(assets) }
}

fn probe_inputs(cfg: &NetConfig, salt: u64) -> (Vec<f64>, Vec<f64>) {
    let window: Vec<f64> = (0..cfg.assets * cfg.window * cfg.features)
        .map(|i| 1.0 + 0.003 * ((i as u64 + 7 * salt) as f64 * 0.9).sin())
        .collect();
    let prev = vec![1.0 / (cfg.assets as f64 + 1.0); cfg.assets + 1];
    (window, prev)
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Drives `rounds` waves of `concurrency` simultaneous decide requests.
/// Returns per-request client latencies (ms), the wall time (s), and
/// whether every response was 200 with bit-identical weights.
fn drive_level(
    addr: SocketAddr,
    bodies: &[String],
    expected_bits: &[Vec<u64>],
    concurrency: usize,
    rounds: usize,
) -> (Vec<f64>, f64, bool) {
    let mut latencies = Vec::with_capacity(concurrency * rounds);
    let mut ok = true;
    let t0 = Instant::now();
    for round in 0..rounds {
        let results = par::with_threads(concurrency, || {
            par::par_map(concurrency, |i| {
                let salt = (round * concurrency + i) % bodies.len();
                let t = Instant::now();
                let resp = http_request(addr, "POST", "/decide", &bodies[salt]);
                (salt, t.elapsed().as_secs_f64() * 1e3, resp)
            })
        });
        for (salt, ms, resp) in results {
            latencies.push(ms);
            let (status, body) = resp.expect("request transport");
            if status != 200 {
                println!("  !! status {status}: {body}");
                ok = false;
                continue;
            }
            let parsed: DecideResponse =
                serde_json::from_str(&body).expect("response deserializes");
            let bits: Vec<u64> = parsed.weights.iter().map(|w| w.to_bits()).collect();
            if bits != expected_bits[salt] {
                println!("  !! salt {salt}: weights diverged from direct act()");
                ok = false;
            }
        }
    }
    (latencies, t0.elapsed().as_secs_f64(), ok)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let run = ppn_bench::start_run("serve_probe");

    let cfg = small_cfg(4);
    let mut rng = StdRng::seed_from_u64(42);
    let net = PolicyNet::new(Variant::PpnLstm, cfg.clone(), &mut rng);

    // Precompute the direct single-sample reference before the registry
    // takes ownership of the net.
    let n_inputs = 32;
    let mut bodies = Vec::with_capacity(n_inputs);
    let mut expected_bits = Vec::with_capacity(n_inputs);
    for salt in 0..n_inputs as u64 {
        let (window, prev_action) = probe_inputs(&cfg, salt);
        expected_bits.push(net.act(&window, &prev_action).iter().map(|w| w.to_bits()).collect());
        let req = DecideRequest { model: "probe".to_string(), window, prev_action };
        bodies.push(serde_json::to_string(&req).expect("request serializes"));
    }

    let mut registry = ModelRegistry::new();
    registry.insert("probe", net);
    let serve_cfg = ServeConfig::default();
    let max_batch = serve_cfg.max_batch;
    let server = Server::start(registry, serve_cfg).expect("server starts");
    let addr = server.addr();
    println!("serve_probe: listening on {addr}");

    let levels: &[usize] = if smoke { &[4] } else { &[1, 2, 4, 8, 16] };
    let rounds = if smoke { 3 } else { 20 };
    let batch_hist = ppn_serve::metrics::batch_size();

    let mut samples = Vec::new();
    for &c in levels {
        let (count0, sum0) = (batch_hist.count(), batch_hist.sum());
        let (mut lat, wall_s, ok) = drive_level(addr, &bodies, &expected_bits, c, rounds);
        let (count1, sum1) = (batch_hist.count(), batch_hist.sum());
        lat.sort_by(|a, b| a.total_cmp(b));
        let batches = count1 - count0;
        let mean_batch = if batches > 0 { (sum1 - sum0) / batches as f64 } else { 0.0 };
        let s = LevelSample {
            concurrency: c,
            requests: lat.len(),
            p50_ms: percentile(&lat, 0.50),
            p99_ms: percentile(&lat, 0.99),
            rps: lat.len() as f64 / wall_s,
            mean_batch,
            bit_identical: ok,
        };
        println!(
            "c={:<3} {:>4} reqs  p50 {:7.3} ms  p99 {:7.3} ms  {:8.1} req/s  mean batch {:.2}  bit_identical={}",
            s.concurrency, s.requests, s.p50_ms, s.p99_ms, s.rps, s.mean_batch, s.bit_identical
        );
        samples.push(s);
    }

    assert!(
        samples.iter().all(|s| s.bit_identical),
        "batched serving diverged from the single-request act() path"
    );

    if smoke {
        assert!(
            ppn_serve::metrics::latency_ms().count() > 0,
            "serve.latency_ms must record observations"
        );
        // Every response already checked bit-identical against act(), whose
        // simplex contract is asserted inside the net; re-check the sums
        // from the wire anyway.
        let (status, body) =
            http_request(addr, "POST", "/decide", &bodies[0]).expect("smoke decide");
        assert_eq!(status, 200, "smoke decide must return 200: {body}");
        let parsed: DecideResponse = serde_json::from_str(&body).expect("smoke body parses");
        let sum: f64 = parsed.weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "served weights must lie on the simplex: {sum}");
        server.shutdown();
        println!("smoke ok: batched serving bit-identical, graceful shutdown clean");
    } else {
        server.shutdown();
        let report = BenchServe {
            model: "PPN-LSTM".to_string(),
            assets: cfg.assets,
            max_batch,
            levels: samples,
        };
        std::fs::create_dir_all("results").ok();
        let json = serde_json::to_vec_pretty(&report).expect("report serializes");
        std::fs::write("results/BENCH_serve.json", json).expect("write BENCH_serve.json");
        println!("wrote results/BENCH_serve.json");
    }
    let _ = run.finish();
}
