//! Table 6 / Table Sup.4: cost-sensitivity to the transaction trade-off γ —
//! PPN retrained at γ ∈ {1e−4, 1e−3, 1e−2, 1e−1} on every crypto dataset.
//! The expected shape: turnover decreases monotonically with γ, APV peaks at
//! a moderate γ (the paper's best is 1e−3).

use ppn_bench::{config_at, fnum, train_and_backtest, Budget, TableWriter};
use ppn_core::Variant;
use ppn_market::Preset;

fn main() {
    let run = ppn_bench::start_run("table6_gamma");
    let gammas = [1e-4, 1e-3, 1e-2, 1e-1];
    let presets = [Preset::CryptoA, Preset::CryptoB, Preset::CryptoC, Preset::CryptoD];

    let mut header = vec!["gamma".to_string()];
    for p in presets {
        header.push(format!("{}:APV", p.name()));
        header.push(format!("{}:TO", p.name()));
    }
    let hdr: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = TableWriter::new("Table 6 — PPN under different gamma", &hdr);

    for &gamma in &gammas {
        let mut row = vec![format!("{gamma:.0e}")];
        for &p in &presets {
            ppn_obs::obs_info!("[table6] gamma={gamma:.0e} on {} ...", p.name());
            let mut cfg = config_at(p, Variant::Ppn, Budget::Sweep);
            cfg.gamma = gamma;
            let res = train_and_backtest(&cfg);
            row.push(fnum(res.metrics.apv));
            row.push(fnum(res.metrics.turnover));
        }
        table.row(row);
    }
    table.finish("table6.md");
    let _ = run.finish();
}
