//! Table 6 / Table Sup.4: cost-sensitivity to the transaction trade-off γ —
//! PPN retrained at γ ∈ {1e−4, 1e−3, 1e−2, 1e−1} on every crypto dataset.
//! The expected shape: turnover decreases monotonically with γ, APV peaks at
//! a moderate γ (the paper's best is 1e−3).

use ppn_bench::{config_at, fnum, run_many, Budget, TableWriter};
use ppn_core::Variant;
use ppn_market::Preset;

fn main() {
    let run = ppn_bench::start_run("table6_gamma");
    let gammas = [1e-4, 1e-3, 1e-2, 1e-1];
    let presets = [Preset::CryptoA, Preset::CryptoB, Preset::CryptoC, Preset::CryptoD];

    let mut header = vec!["gamma".to_string()];
    for p in presets {
        header.push(format!("{}:APV", p.name()));
        header.push(format!("{}:TO", p.name()));
    }
    let hdr: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = TableWriter::new("Table 6 — PPN under different gamma", &hdr);

    // Row-major (γ × preset) cell grid, fanned out across the pool.
    let mut cfgs = Vec::new();
    for &gamma in &gammas {
        for &p in &presets {
            let mut cfg = config_at(p, Variant::Ppn, Budget::Sweep);
            cfg.gamma = gamma;
            cfgs.push(cfg);
        }
    }
    ppn_obs::obs_info!("[table6] fanning out {} cells ...", cfgs.len());
    let results = run_many("table6_gamma", &cfgs);

    for (gi, gamma) in gammas.iter().enumerate() {
        let mut row = vec![format!("{gamma:.0e}")];
        for pi in 0..presets.len() {
            let m = &results[gi * presets.len() + pi].metrics;
            row.push(fnum(m.apv));
            row.push(fnum(m.turnover));
        }
        table.row(row);
    }
    table.finish("table6.md");
    let _ = run.finish();
}
