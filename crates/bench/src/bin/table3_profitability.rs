//! Table 3 / Table Sup.1: profitability comparison of all baselines, EIIE,
//! PPN-I and PPN on the four crypto datasets (APV, SR%, CR, TO).

use ppn_bench::{default_config, fnum, run_baselines, start_run, train_and_backtest, TableWriter};
use ppn_core::Variant;
use ppn_market::Preset;

fn main() {
    let run = start_run("table3_profitability");
    let presets = [Preset::CryptoA, Preset::CryptoB, Preset::CryptoC, Preset::CryptoD];
    let nets = [Variant::Eiie, Variant::PpnI, Variant::Ppn];

    let mut header = vec!["Algos".to_string()];
    for p in presets {
        for m in ["APV", "SR(%)", "CR", "TO"] {
            header.push(format!("{}:{}", p.name(), m));
        }
    }
    let hdr: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = TableWriter::new(
        "Table 3 — Performance comparisons on different datasets (psi = 0.25%)",
        &hdr,
    );

    // Classic baselines.
    let base_results: Vec<Vec<(String, ppn_market::Metrics, Vec<f64>)>> =
        presets.iter().map(|&p| run_baselines(p, 0.0025)).collect();
    let names: Vec<String> = base_results[0].iter().map(|(n, ..)| n.clone()).collect();
    for (i, name) in names.iter().enumerate() {
        let mut row = vec![name.clone()];
        for per in &base_results {
            let (_, m, _) = &per[i];
            row.extend([fnum(m.apv), fnum(m.sharpe_pct), fnum(m.calmar), fnum(m.turnover)]);
        }
        table.row(row);
    }

    // Neural strategies (cached).
    for v in nets {
        let mut row = vec![v.name().to_string()];
        for &p in &presets {
            ppn_obs::obs_info!("[table3] {} on {} ...", v.name(), p.name());
            let res = train_and_backtest(&default_config(p, v));
            let m = res.metrics;
            row.extend([fnum(m.apv), fnum(m.sharpe_pct), fnum(m.calmar), fnum(m.turnover)]);
        }
        table.row(row);
    }

    table.finish("table3.md");
    let _ = run.finish();
}
