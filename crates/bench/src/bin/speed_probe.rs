//! Quick throughput probe used while scoping experiment budgets.
use ppn_core::prelude::*;
use ppn_market::{Dataset, Preset};
use std::time::Instant;

fn main() {
    let run = ppn_bench::start_run("speed_probe");
    let ds = Dataset::load(Preset::CryptoA);
    for variant in [Variant::Ppn, Variant::PpnI, Variant::PpnLstm, Variant::Eiie] {
        let cfg = TrainConfig { steps: 10, batch: 24, ..TrainConfig::default() };
        let mut tr = Trainer::new(&ds, variant, RewardConfig::default(), cfg);
        let t0 = Instant::now();
        for _ in 0..10 {
            tr.step();
        }
        ppn_obs::obs_info!(
            "{:<10} {:>8.1} ms/step",
            variant.name(),
            t0.elapsed().as_secs_f64() * 100.0
        );
    }
    let _ = run.finish();
}
