//! Quick throughput probe used while scoping experiment budgets, plus the
//! `PPN_THREADS` sweep behind `results/BENCH_parallel.json`.
//!
//! Default mode times ten training steps per network variant, then sweeps
//! the worker pool over 1/2/4/8 threads on the two dominant kernels (a
//! 256×256×256 matmul and a Table-2-shaped causal conv stack, forward and
//! backward), verifies the outputs are bit-identical to the serial path,
//! and writes the sweep to `results/BENCH_parallel.json`.
//!
//! `--smoke` runs only the sweep and asserts instead of writing: outputs
//! must be bit-identical and 4-thread matmul throughput must not fall below
//! single-thread (a relaxed overhead floor applies on single-core hosts,
//! where no speedup is physically possible).

use ppn_core::prelude::*;
use ppn_market::{Dataset, Preset};
use ppn_tensor::{conv, par, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

#[derive(serde::Serialize)]
struct ThreadSample {
    threads: usize,
    matmul_ms: f64,
    conv_ms: f64,
    matmul_speedup: f64,
    conv_speedup: f64,
    bit_identical: bool,
}

#[derive(serde::Serialize)]
struct BenchParallel {
    available_parallelism: usize,
    matmul_shape: [usize; 3],
    conv_desc: String,
    thread_sweep: Vec<ThreadSample>,
}

/// Fixed deterministic inputs shared by every thread count.
struct Workload {
    a: Tensor,
    b: Tensor,
    x: Tensor,
    w1: Tensor,
    w2: Tensor,
}

const CONV_DESC: &str =
    "two causal dilated convs (16x4x10x30 input, 32ch k=1x3 d=1 then d=2), forward + backward";

impl Workload {
    fn new() -> Self {
        let mut rng = StdRng::seed_from_u64(42);
        Workload {
            a: Tensor::randn(&mut rng, &[256, 256], 1.0),
            b: Tensor::randn(&mut rng, &[256, 256], 1.0),
            // Table-2-shaped feature maps: batch × features × assets × window.
            x: Tensor::randn(&mut rng, &[16, 4, 10, 30], 1.0),
            w1: Tensor::randn(&mut rng, &[32, 4, 1, 3], 0.5),
            w2: Tensor::randn(&mut rng, &[32, 32, 1, 3], 0.25),
        }
    }

    fn matmul(&self) -> Tensor {
        self.a.matmul(&self.b)
    }

    /// DCONV-style stack forward + backward; returns every output and
    /// gradient concatenated for bit-identity comparison.
    fn conv_stack(&self) -> Vec<f64> {
        let (pl1, pr1) = conv::causal_padding(3, 1);
        let y1 = conv::conv2d_forward(&self.x, &self.w1, (1, 1), (0, 0, pl1, pr1));
        let (pl2, pr2) = conv::causal_padding(3, 2);
        let y2 = conv::conv2d_forward(&y1, &self.w2, (1, 2), (0, 0, pl2, pr2));
        let g2 = Tensor::ones(y2.shape());
        let (gx2, gw2) = conv::conv2d_backward(&y1, &self.w2, &g2, (1, 2), (0, 0, pl2, pr2));
        let (gx1, gw1) = conv::conv2d_backward(&self.x, &self.w1, &gx2, (1, 1), (0, 0, pl1, pr1));
        let mut out = Vec::new();
        for t in [&y2, &gx2, &gw2, &gx1, &gw1] {
            out.extend_from_slice(t.data());
        }
        out
    }
}

fn best_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let run = ppn_bench::start_run("speed_probe");

    if !smoke {
        let ds = Dataset::load(Preset::CryptoA);
        for variant in [Variant::Ppn, Variant::PpnI, Variant::PpnLstm, Variant::Eiie] {
            let cfg = TrainConfig { steps: 10, batch: 24, ..TrainConfig::default() };
            let mut tr = Trainer::new(&ds, variant, RewardConfig::default(), cfg);
            let t0 = Instant::now();
            for _ in 0..10 {
                tr.step();
            }
            ppn_obs::obs_info!(
                "{:<10} {:>8.1} ms/step",
                variant.name(),
                t0.elapsed().as_secs_f64() * 100.0
            );
        }
    }

    let wl = Workload::new();
    let reps = if smoke { 2 } else { 5 };
    let avail = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // Serial reference outputs: the exact PPN_THREADS=1 path.
    let ref_mm = par::with_threads(1, || wl.matmul());
    let ref_conv = par::with_threads(1, || wl.conv_stack());

    let mut samples = Vec::new();
    for &t in &[1usize, 2, 4, 8] {
        let (mm, conv_out, matmul_ms, conv_ms) = par::with_threads(t, || {
            let matmul_ms = best_ms(reps, || {
                let _ = wl.matmul();
            });
            let conv_ms = best_ms(reps, || {
                let _ = wl.conv_stack();
            });
            (wl.matmul(), wl.conv_stack(), matmul_ms, conv_ms)
        });
        let bit_identical = bits_eq(mm.data(), ref_mm.data()) && bits_eq(&conv_out, &ref_conv);
        samples.push(ThreadSample {
            threads: t,
            matmul_ms,
            conv_ms,
            matmul_speedup: 0.0,
            conv_speedup: 0.0,
            bit_identical,
        });
    }
    let (base_mm, base_conv) = (samples[0].matmul_ms, samples[0].conv_ms);
    for s in &mut samples {
        s.matmul_speedup = base_mm / s.matmul_ms;
        s.conv_speedup = base_conv / s.conv_ms;
    }

    for s in &samples {
        println!(
            "threads={} matmul {:8.2} ms ({:.2}x)  conv {:8.2} ms ({:.2}x)  bit_identical={}",
            s.threads, s.matmul_ms, s.matmul_speedup, s.conv_ms, s.conv_speedup, s.bit_identical
        );
    }
    assert!(
        samples.iter().all(|s| s.bit_identical),
        "parallel kernels diverged from the serial reference"
    );

    if smoke {
        let t4 = samples.iter().find(|s| s.threads == 4).expect("sweep includes 4 threads");
        // On a multi-core host 4 threads must at least match single-thread
        // throughput on the 256^3 matmul; a single-core host cannot speed
        // up, so only bound the pool's overhead there.
        let floor = if avail >= 2 { 0.95 } else { 0.5 };
        assert!(
            t4.matmul_speedup >= floor,
            "4-thread matmul speedup {:.2}x below {floor}x floor (host parallelism {avail})",
            t4.matmul_speedup
        );
        println!("smoke ok: 4-thread matmul {:.2}x (host parallelism {avail})", t4.matmul_speedup);
    } else {
        let report = BenchParallel {
            available_parallelism: avail,
            matmul_shape: [256, 256, 256],
            conv_desc: CONV_DESC.to_string(),
            thread_sweep: samples,
        };
        std::fs::create_dir_all("results").ok();
        let json = serde_json::to_vec_pretty(&report).expect("report serializes");
        std::fs::write("results/BENCH_parallel.json", json).expect("write BENCH_parallel.json");
        println!("wrote results/BENCH_parallel.json (host parallelism {avail})");
    }
    let _ = run.finish();
}
