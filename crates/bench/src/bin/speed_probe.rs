//! Quick throughput probe used while scoping experiment budgets, plus the
//! `PPN_THREADS` sweep behind `results/BENCH_parallel.json`.
//!
//! Default mode times ten training steps per network variant, then sweeps
//! the worker pool over 1/2/4/8 threads on the two dominant kernels (a
//! 256×256×256 matmul and a Table-2-shaped causal conv stack, forward and
//! backward), verifies the outputs are bit-identical to the serial path,
//! and writes the sweep to `results/BENCH_parallel.json`.
//!
//! `--smoke` runs only the sweeps and asserts instead of writing: outputs
//! must be bit-identical (parallel vs serial, vector vs scalar) and
//! 4-thread matmul throughput must not fall below single-thread (a relaxed
//! overhead floor applies on single-core hosts, where no speedup is
//! physically possible).
//!
//! The second artifact, `results/BENCH_tensor.json`, is the before/after
//! ledger for the aligned-storage + blocked-kernel + buffer-arena work:
//! per-kernel single-thread timings against the pre-refactor baselines
//! recorded below, a scalar-vs-vector comparison under [`simd::force_scalar`],
//! and the arena counters for one training step.

use ppn_core::prelude::*;
use ppn_market::{Dataset, Preset};
use ppn_tensor::{conv, par, simd, storage, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

#[derive(serde::Serialize)]
struct ThreadSample {
    threads: usize,
    matmul_ms: f64,
    conv_ms: f64,
    matmul_speedup: f64,
    conv_speedup: f64,
    bit_identical: bool,
}

#[derive(serde::Serialize)]
struct BenchParallel {
    available_parallelism: usize,
    matmul_shape: [usize; 3],
    conv_desc: String,
    thread_sweep: Vec<ThreadSample>,
}

#[derive(serde::Serialize)]
struct KernelBench {
    name: String,
    baseline_ms: f64,
    after_ms: f64,
    speedup: f64,
}

#[derive(serde::Serialize)]
struct ArenaCounters {
    alloc_bytes: u64,
    arena_hits: u64,
    arena_misses: u64,
}

#[derive(serde::Serialize)]
struct BenchTensor {
    baseline_commit: String,
    simd_compiled: bool,
    simd_active: bool,
    threads: usize,
    kernels: Vec<KernelBench>,
    scalar_matmul_ms: f64,
    scalar_conv_ms: f64,
    scalar_vs_vector_bit_identical: bool,
    trainer_step_arena: ArenaCounters,
}

/// Pre-refactor single-thread timings, measured on this container class at
/// the seed of the aligned-storage PR (commit 0e3f6c6) with the same reps
/// and shapes as the live measurements below. They are the "before" column
/// of `results/BENCH_tensor.json`.
const TENSOR_BASELINES: [(&str, f64); 7] = [
    ("matmul_256x256x256", 4.22),
    ("conv_stack_fwd_bwd", 19.10),
    ("trainer_step_ppn", 251.2),
    ("trainer_step_ppn_i", 107.1),
    ("trainer_step_ppn_lstm", 29.4),
    ("trainer_step_eiie", 21.6),
    ("act_batch_32", 70.12),
];

/// Fixed deterministic inputs shared by every thread count.
struct Workload {
    a: Tensor,
    b: Tensor,
    x: Tensor,
    w1: Tensor,
    w2: Tensor,
}

const CONV_DESC: &str =
    "two causal dilated convs (16x4x10x30 input, 32ch k=1x3 d=1 then d=2), forward + backward";

impl Workload {
    fn new() -> Self {
        let mut rng = StdRng::seed_from_u64(42);
        Workload {
            a: Tensor::randn(&mut rng, &[256, 256], 1.0),
            b: Tensor::randn(&mut rng, &[256, 256], 1.0),
            // Table-2-shaped feature maps: batch × features × assets × window.
            x: Tensor::randn(&mut rng, &[16, 4, 10, 30], 1.0),
            w1: Tensor::randn(&mut rng, &[32, 4, 1, 3], 0.5),
            w2: Tensor::randn(&mut rng, &[32, 32, 1, 3], 0.25),
        }
    }

    fn matmul(&self) -> Tensor {
        self.a.matmul(&self.b)
    }

    /// DCONV-style stack forward + backward; returns every output and
    /// gradient concatenated for bit-identity comparison.
    fn conv_stack(&self) -> Vec<f64> {
        let (pl1, pr1) = conv::causal_padding(3, 1);
        let y1 = conv::conv2d_forward(&self.x, &self.w1, (1, 1), (0, 0, pl1, pr1));
        let (pl2, pr2) = conv::causal_padding(3, 2);
        let y2 = conv::conv2d_forward(&y1, &self.w2, (1, 2), (0, 0, pl2, pr2));
        let g2 = Tensor::ones(y2.shape());
        let (gx2, gw2) = conv::conv2d_backward(&y1, &self.w2, &g2, (1, 2), (0, 0, pl2, pr2));
        let (gx1, gw1) = conv::conv2d_backward(&self.x, &self.w1, &gx2, (1, 1), (0, 0, pl1, pr1));
        let mut out = Vec::new();
        for t in [&y2, &gx2, &gw2, &gx1, &gw1] {
            out.extend_from_slice(t.data());
        }
        out
    }
}

fn best_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn tensor_baseline_ms(name: &str) -> f64 {
    TENSOR_BASELINES
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, ms)| *ms)
        .expect("kernel name present in TENSOR_BASELINES")
}

fn kernel_bench(name: &str, after_ms: f64) -> KernelBench {
    let baseline_ms = tensor_baseline_ms(name);
    KernelBench { name: name.to_string(), baseline_ms, after_ms, speedup: baseline_ms / after_ms }
}

/// Average ms/step over ten fresh-trainer steps — same method and shapes as
/// the pre-refactor baseline measurements in [`TENSOR_BASELINES`].
fn trainer_ms_per_step(ds: &Dataset, variant: Variant) -> f64 {
    let cfg = TrainConfig { steps: 10, batch: 24, ..TrainConfig::default() };
    let mut tr = Trainer::new(ds, variant, RewardConfig::default(), cfg);
    let t0 = Instant::now();
    for _ in 0..10 {
        tr.step();
    }
    t0.elapsed().as_secs_f64() * 100.0
}

/// Best-of-`reps` ms for a 32-row [`PolicyNet::act_batch`] — the serving
/// forward path.
fn act_batch_ms(reps: usize) -> f64 {
    let mut rng = StdRng::seed_from_u64(7);
    let net = PolicyNet::new(Variant::Ppn, NetConfig::paper(10), &mut rng);
    let m1 = net.cfg.assets + 1;
    let wlen = net.cfg.features * net.cfg.assets * net.cfg.window;
    let windows: Vec<Vec<f64>> =
        (0..32).map(|i| (0..wlen).map(|j| 1.0 + 0.001 * ((i * j) % 17) as f64).collect()).collect();
    let prevs: Vec<Vec<f64>> = (0..32)
        .map(|_| {
            let mut v = vec![0.0; m1];
            v[0] = 1.0;
            v
        })
        .collect();
    let _ = net.act_batch(&windows, &prevs); // warmup primes the arena
    best_ms(reps, || {
        let _ = net.act_batch(&windows, &prevs);
    })
}

/// Arena counter deltas over one steady-state trainer step (three warmup
/// steps park the tape buffers first, so the delta shows the reuse rate).
fn trainer_step_arena(ds: &Dataset) -> ArenaCounters {
    let cfg = TrainConfig { steps: 10, batch: 24, ..TrainConfig::default() };
    let mut tr = Trainer::new(ds, Variant::PpnLstm, RewardConfig::default(), cfg);
    for _ in 0..3 {
        tr.step();
    }
    let before = storage::arena_stats();
    tr.step();
    let after = storage::arena_stats();
    ArenaCounters {
        alloc_bytes: after.alloc_bytes - before.alloc_bytes,
        arena_hits: after.arena_hits - before.arena_hits,
        arena_misses: after.arena_misses - before.arena_misses,
    }
}

/// Single-thread per-kernel before/after ledger plus the scalar-vs-vector
/// comparison. Smoke mode asserts bit-identity and returns without writing;
/// full mode also times the trainer variants and the serving forward path
/// and writes `results/BENCH_tensor.json`.
fn tensor_bench(wl: &Workload, smoke: bool) {
    let reps = if smoke { 2 } else { 5 };
    par::with_threads(1, || {
        let matmul_ms = best_ms(reps, || {
            let _ = wl.matmul();
        });
        let conv_ms = best_ms(reps, || {
            let _ = wl.conv_stack();
        });
        let (scalar_mm, scalar_conv, scalar_matmul_ms, scalar_conv_ms) = simd::force_scalar(|| {
            let scalar_matmul_ms = best_ms(reps, || {
                let _ = wl.matmul();
            });
            let scalar_conv_ms = best_ms(reps, || {
                let _ = wl.conv_stack();
            });
            (wl.matmul(), wl.conv_stack(), scalar_matmul_ms, scalar_conv_ms)
        });
        let (vec_mm, vec_conv) = (wl.matmul(), wl.conv_stack());
        let bit_identical =
            bits_eq(vec_mm.data(), scalar_mm.data()) && bits_eq(&vec_conv, &scalar_conv);
        assert!(bit_identical, "vector kernels diverged from the scalar reference");

        println!(
            "tensor: matmul {matmul_ms:8.2} ms (scalar {scalar_matmul_ms:8.2} ms)  conv \
             {conv_ms:8.2} ms (scalar {scalar_conv_ms:8.2} ms)  simd_active={} bit_identical={}",
            simd::enabled(),
            bit_identical
        );
        if smoke {
            println!("smoke ok: scalar/vector bit-identical");
            return;
        }

        let mut kernels = vec![
            kernel_bench("matmul_256x256x256", matmul_ms),
            kernel_bench("conv_stack_fwd_bwd", conv_ms),
        ];
        let ds = Dataset::load(Preset::CryptoA);
        for (name, variant) in [
            ("trainer_step_ppn", Variant::Ppn),
            ("trainer_step_ppn_i", Variant::PpnI),
            ("trainer_step_ppn_lstm", Variant::PpnLstm),
            ("trainer_step_eiie", Variant::Eiie),
        ] {
            kernels.push(kernel_bench(name, trainer_ms_per_step(&ds, variant)));
        }
        kernels.push(kernel_bench("act_batch_32", act_batch_ms(reps)));
        for k in &kernels {
            println!(
                "tensor: {:<22} {:>8.2} ms  (baseline {:>8.2} ms, {:.2}x)",
                k.name, k.after_ms, k.baseline_ms, k.speedup
            );
        }

        let report = BenchTensor {
            baseline_commit: "0e3f6c6".to_string(),
            simd_compiled: cfg!(feature = "simd"),
            simd_active: simd::enabled(),
            threads: 1,
            kernels,
            scalar_matmul_ms,
            scalar_conv_ms,
            scalar_vs_vector_bit_identical: bit_identical,
            trainer_step_arena: trainer_step_arena(&ds),
        };
        std::fs::create_dir_all("results").ok();
        let json = serde_json::to_vec_pretty(&report).expect("report serializes");
        std::fs::write("results/BENCH_tensor.json", json).expect("write BENCH_tensor.json");
        println!("wrote results/BENCH_tensor.json");
    });
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let run = ppn_bench::start_run("speed_probe");

    if !smoke {
        let ds = Dataset::load(Preset::CryptoA);
        for variant in [Variant::Ppn, Variant::PpnI, Variant::PpnLstm, Variant::Eiie] {
            let cfg = TrainConfig { steps: 10, batch: 24, ..TrainConfig::default() };
            let mut tr = Trainer::new(&ds, variant, RewardConfig::default(), cfg);
            let t0 = Instant::now();
            for _ in 0..10 {
                tr.step();
            }
            ppn_obs::obs_info!(
                "{:<10} {:>8.1} ms/step",
                variant.name(),
                t0.elapsed().as_secs_f64() * 100.0
            );
        }
    }

    let wl = Workload::new();
    let reps = if smoke { 2 } else { 5 };
    let avail = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // Serial reference outputs: the exact PPN_THREADS=1 path.
    let ref_mm = par::with_threads(1, || wl.matmul());
    let ref_conv = par::with_threads(1, || wl.conv_stack());

    let mut samples = Vec::new();
    for &t in &[1usize, 2, 4, 8] {
        let (mm, conv_out, matmul_ms, conv_ms) = par::with_threads(t, || {
            let matmul_ms = best_ms(reps, || {
                let _ = wl.matmul();
            });
            let conv_ms = best_ms(reps, || {
                let _ = wl.conv_stack();
            });
            (wl.matmul(), wl.conv_stack(), matmul_ms, conv_ms)
        });
        let bit_identical = bits_eq(mm.data(), ref_mm.data()) && bits_eq(&conv_out, &ref_conv);
        samples.push(ThreadSample {
            threads: t,
            matmul_ms,
            conv_ms,
            matmul_speedup: 0.0,
            conv_speedup: 0.0,
            bit_identical,
        });
    }
    let (base_mm, base_conv) = (samples[0].matmul_ms, samples[0].conv_ms);
    for s in &mut samples {
        s.matmul_speedup = base_mm / s.matmul_ms;
        s.conv_speedup = base_conv / s.conv_ms;
    }

    for s in &samples {
        println!(
            "threads={} matmul {:8.2} ms ({:.2}x)  conv {:8.2} ms ({:.2}x)  bit_identical={}",
            s.threads, s.matmul_ms, s.matmul_speedup, s.conv_ms, s.conv_speedup, s.bit_identical
        );
    }
    assert!(
        samples.iter().all(|s| s.bit_identical),
        "parallel kernels diverged from the serial reference"
    );

    if smoke {
        let t4 = samples.iter().find(|s| s.threads == 4).expect("sweep includes 4 threads");
        // On a multi-core host 4 threads must at least match single-thread
        // throughput on the 256^3 matmul; a single-core host cannot speed
        // up, so only bound the pool's overhead there.
        let floor = if avail >= 2 { 0.95 } else { 0.5 };
        assert!(
            t4.matmul_speedup >= floor,
            "4-thread matmul speedup {:.2}x below {floor}x floor (host parallelism {avail})",
            t4.matmul_speedup
        );
        println!("smoke ok: 4-thread matmul {:.2}x (host parallelism {avail})", t4.matmul_speedup);
    } else {
        let report = BenchParallel {
            available_parallelism: avail,
            matmul_shape: [256, 256, 256],
            conv_desc: CONV_DESC.to_string(),
            thread_sweep: samples,
        };
        std::fs::create_dir_all("results").ok();
        let json = serde_json::to_vec_pretty(&report).expect("report serializes");
        std::fs::write("results/BENCH_parallel.json", json).expect("write BENCH_parallel.json");
        println!("wrote results/BENCH_parallel.json (host parallelism {avail})");
    }

    tensor_bench(&wl, smoke);
    let _ = run.finish();
}
