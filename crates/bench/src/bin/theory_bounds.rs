//! Empirical verification of the paper's theory on live simulated data:
//!
//! * **Proposition 4** — the exact fixed-point cost proportion lies inside
//!   `[ψ/(1+ψ)·L1, ψ/(1−ψ)·L1]` at every backtest step, and the turnover
//!   never exceeds `2(1−ψ)/(1+ψ)`.
//! * **Theorem 2 (shape)** — the per-period growth-rate gap between the
//!   reward-optimal policy and the cost-blind log-optimal surrogate is
//!   bounded by `(9/4)λ + 2γ(1−ψ)/(1+ψ)`; we report the realised gap of the
//!   trained PPN against its λ=γ=0 twin next to the theoretical allowance.

use ppn_bench::{config_at, train_and_backtest, Budget};
use ppn_core::Variant;
use ppn_market::{
    cost_proportion, max_turnover, prop4_bounds, run_backtest, test_range, Dataset, Preset,
};

fn main() {
    let run = ppn_bench::start_run("theory_bounds");
    // --- Proposition 4 on a live backtest trajectory -------------------
    let ds = Dataset::load(Preset::CryptoA);
    let psi = 0.0025;
    let mut olmar = ppn_baselines::Olmar::new(10.0, 5); // a high-turnover policy
    let r = run_backtest(&ds, &mut olmar, psi, test_range(&ds));
    let mut worst_rel: f64 = 0.0;
    let mut prev: Vec<f64> = {
        let mut v = vec![0.0; ds.assets() + 1];
        v[0] = 1.0;
        v
    };
    let mut violations = 0usize;
    for rec in &r.records {
        let sol = cost_proportion(psi, &rec.action, &prev, 1e-13);
        let (lo, hi) = prop4_bounds(psi, &rec.action, &prev);
        if sol.cost < lo - 1e-10 || sol.cost > hi + 1e-10 {
            violations += 1;
        }
        let to: f64 = rec.action.iter().zip(&prev).map(|(a, h)| (a - h).abs()).sum();
        if to > max_turnover(0.0) + 1e-10 {
            violations += 1;
        }
        worst_rel = worst_rel.max((sol.cost - lo).min(hi - sol.cost).abs());
        prev = ppn_market::drifted_weights(&rec.action, ds.relative(rec.t));
    }
    ppn_obs::obs_info!(
        "Proposition 4: {} periods checked, {} bound violations (worst margin {:.2e})",
        r.records.len(),
        violations,
        worst_rel
    );
    assert_eq!(violations, 0, "Proposition 4 violated!");

    // --- Theorem 2 growth-rate gap --------------------------------------
    let (lambda, gamma) = (1e-4, 1e-3);
    let allowance = 2.25 * lambda + 2.0 * gamma * (1.0 - psi) / (1.0 + psi);
    ppn_obs::obs_info!("Theorem 2 allowance per period: (9/4)λ + 2γ(1−ψ)/(1+ψ) = {allowance:.6}");

    let cost_sensitive =
        train_and_backtest(&config_at(Preset::CryptoA, Variant::Ppn, Budget::Sweep));
    let mut blind_cfg = config_at(Preset::CryptoA, Variant::Ppn, Budget::Sweep);
    blind_cfg.lambda = 0.0;
    blind_cfg.gamma = 0.0;
    let cost_blind = train_and_backtest(&blind_cfg);

    let n = cost_sensitive.wealth.len() as f64;
    let g_sens = cost_sensitive.wealth.last().unwrap().ln() / n;
    let g_blind = cost_blind.wealth.last().unwrap().ln() / n;
    let gap = g_blind - g_sens;
    ppn_obs::obs_info!(
        "Realised growth rates: cost-blind {g_blind:.6}, cost-sensitive {g_sens:.6}, gap {gap:.6}"
    );
    ppn_obs::obs_info!(
        "Theorem-2 shape {}: realised gap {:.6} vs allowance {:.6} (the bound constrains the \
         *optimal* policies; trained policies additionally carry optimisation noise)",
        if gap <= allowance { "HOLDS" } else { "EXCEEDED (within training noise)" },
        gap,
        allowance
    );
    let _ = run.finish();
}
