//! Minimal dependency-free SVG line charts for the figure reproductions.
//!
//! Fig. 5 and Fig. 6 of the paper are wealth-curve plots; the figure
//! binaries emit both the raw CSV series and an SVG rendered here. Log-scale
//! y is supported because wealth curves compound.

/// One named series.
pub struct Series {
    /// Legend label.
    pub name: String,
    /// y values (x is the index).
    pub values: Vec<f64>,
}

/// Chart configuration.
pub struct ChartConfig {
    /// Chart title.
    pub title: String,
    /// y-axis label.
    pub y_label: String,
    /// Use log₁₀ scale on y (wealth curves).
    pub log_y: bool,
    /// Canvas width in px.
    pub width: u32,
    /// Canvas height in px.
    pub height: u32,
}

impl Default for ChartConfig {
    fn default() -> Self {
        ChartConfig {
            title: String::new(),
            y_label: "value".into(),
            log_y: false,
            width: 960,
            height: 540,
        }
    }
}

/// A categorical palette that stays readable on white.
const PALETTE: [&str; 10] = [
    "#3778bf", "#e1572a", "#3a923a", "#c03d3e", "#9372b2", "#845b53", "#d684bd", "#797979",
    "#b9bc33", "#2fbfc4",
];

/// Renders the series to an SVG string.
///
/// # Panics
/// Panics if no series or all series are empty, or (with `log_y`) if any
/// value is non-positive.
pub fn render_line_chart(series: &[Series], cfg: &ChartConfig) -> String {
    assert!(!series.is_empty(), "no series to plot");
    let n = series.iter().map(|s| s.values.len()).max().unwrap();
    assert!(n > 1, "series too short to plot");

    let transform = |v: f64| -> f64 {
        if cfg.log_y {
            assert!(v > 0.0, "log-scale chart needs positive values, got {v}");
            v.log10()
        } else {
            v
        }
    };
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for s in series {
        for &v in &s.values {
            let t = transform(v);
            lo = lo.min(t);
            hi = hi.max(t);
        }
    }
    if (hi - lo).abs() < 1e-12 {
        hi = lo + 1.0;
    }

    let (w, h) = (cfg.width as f64, cfg.height as f64);
    let (ml, mr, mt, mb) = (70.0, 160.0, 40.0, 40.0); // margins (legend right)
    let px = |i: usize| ml + (w - ml - mr) * i as f64 / (n - 1) as f64;
    let py = |v: f64| {
        let t = (transform(v) - lo) / (hi - lo);
        h - mb - (h - mt - mb) * t
    };

    let mut svg = String::new();
    svg.push_str(&format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{}" height="{}" viewBox="0 0 {} {}">"#,
        cfg.width, cfg.height, cfg.width, cfg.height
    ));
    svg.push_str(&format!(r#"<rect width="{}" height="{}" fill="white"/>"#, cfg.width, cfg.height));
    svg.push_str(&format!(
        r#"<text x="{}" y="24" font-family="sans-serif" font-size="16" text-anchor="middle">{}</text>"#,
        w / 2.0,
        cfg.title
    ));

    // Axes + y grid lines with labels.
    svg.push_str(&format!(
        r##"<line x1="{ml}" y1="{mt}" x2="{ml}" y2="{}" stroke="#333"/>"##,
        h - mb
    ));
    svg.push_str(&format!(
        r##"<line x1="{ml}" y1="{}" x2="{}" y2="{}" stroke="#333"/>"##,
        h - mb,
        w - mr,
        h - mb
    ));
    for g in 0..=4 {
        let t = lo + (hi - lo) * g as f64 / 4.0;
        let v = if cfg.log_y { 10f64.powf(t) } else { t };
        let y = h - mb - (h - mt - mb) * g as f64 / 4.0;
        svg.push_str(&format!(
            r##"<line x1="{ml}" y1="{y}" x2="{}" y2="{y}" stroke="#ddd"/>"##,
            w - mr
        ));
        svg.push_str(&format!(
            r#"<text x="{}" y="{}" font-family="sans-serif" font-size="11" text-anchor="end">{}</text>"#,
            ml - 6.0,
            y + 4.0,
            if v.abs() >= 100.0 { format!("{v:.0}") } else { format!("{v:.2}") }
        ));
    }
    svg.push_str(&format!(
        r#"<text x="16" y="{}" font-family="sans-serif" font-size="12" transform="rotate(-90 16 {})" text-anchor="middle">{}</text>"#,
        h / 2.0,
        h / 2.0,
        cfg.y_label
    ));

    // Series.
    for (si, s) in series.iter().enumerate() {
        let color = PALETTE[si % PALETTE.len()];
        let mut d = String::from("M");
        for (i, &v) in s.values.iter().enumerate() {
            if i > 0 {
                d.push('L');
            }
            d.push_str(&format!("{:.1},{:.1} ", px(i), py(v)));
        }
        svg.push_str(&format!(
            r#"<path d="{d}" fill="none" stroke="{color}" stroke-width="1.6"/>"#
        ));
        // Legend entry.
        let ly = mt + 18.0 * si as f64;
        svg.push_str(&format!(
            r#"<line x1="{}" y1="{ly}" x2="{}" y2="{ly}" stroke="{color}" stroke-width="3"/>"#,
            w - mr + 10.0,
            w - mr + 34.0
        ));
        svg.push_str(&format!(
            r#"<text x="{}" y="{}" font-family="sans-serif" font-size="12">{}</text>"#,
            w - mr + 40.0,
            ly + 4.0,
            s.name
        ));
    }
    svg.push_str("</svg>");
    svg
}

/// Convenience: render and write to `results/<file>`.
pub fn save_chart(series: &[Series], cfg: &ChartConfig, file: &str) -> std::io::Result<()> {
    let svg = render_line_chart(series, cfg);
    std::fs::create_dir_all("results")?;
    std::fs::write(format!("results/{file}"), svg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_series() -> Vec<Series> {
        vec![
            Series { name: "up".into(), values: (1..50).map(|i| i as f64).collect() },
            Series { name: "flat".into(), values: vec![10.0; 49] },
        ]
    }

    #[test]
    fn renders_valid_svg_with_all_series() {
        let svg = render_line_chart(&demo_series(), &ChartConfig::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains(">up<"));
        assert!(svg.contains(">flat<"));
        assert_eq!(svg.matches("<path").count(), 2);
    }

    #[test]
    fn log_scale_compresses_growth() {
        let series = vec![Series {
            name: "wealth".into(),
            values: (0..100).map(|i| (0.05 * i as f64).exp()).collect(),
        }];
        let cfg = ChartConfig { log_y: true, ..ChartConfig::default() };
        let svg = render_line_chart(&series, &cfg);
        assert!(svg.contains("<path"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn log_scale_rejects_non_positive() {
        let series = vec![Series { name: "bad".into(), values: vec![1.0, 0.0, 2.0] }];
        let cfg = ChartConfig { log_y: true, ..ChartConfig::default() };
        let _ = render_line_chart(&series, &cfg);
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let series = vec![Series { name: "c".into(), values: vec![5.0; 10] }];
        let svg = render_line_chart(&series, &ChartConfig::default());
        assert!(svg.contains("<path"));
        assert!(!svg.contains("NaN"));
    }
}
