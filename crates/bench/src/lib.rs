#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # ppn-bench
//!
//! Experiment harness reproducing every table and figure of the paper's
//! evaluation (see DESIGN.md §3 for the per-experiment index), plus the
//! Criterion microbenches backing the design-choice ablations (DESIGN.md §4).
//!
//! Each table/figure has a dedicated binary under `src/bin/`; results are
//! printed, written to `results/`, and neural training runs are cached under
//! `results/cache/` so shared columns are trained once.

pub mod plot;
pub mod runner;

pub use plot::{render_line_chart, save_chart, ChartConfig, Series};
pub use runner::{
    config_at, default_config, default_steps, fnum, preset_by_name, run_baselines, run_cells,
    run_many, start_run, steps_for, train_and_backtest, variant_by_name, Budget, ExpConfig,
    ExpResult, TableWriter, TELEMETRY_DIR,
};
