//! Experiment orchestration: cached train-and-backtest runs.
//!
//! Several of the paper's tables share columns (the PPN of Table 3 is the
//! PPN of Table 4, the γ=1e−3 row of Table 6, the λ=1e−4 row of Table 7 and
//! the ψ=0.25% column of Table 5), so each unique configuration is trained
//! once and its result persisted under `results/cache/`. Re-running any
//! experiment binary reuses the cache; delete the directory for a cold run.

use ppn_core::prelude::*;
use ppn_market::{run_backtest, test_range, Dataset, Metrics, Preset};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// A fully-specified neural-strategy run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExpConfig {
    /// Dataset preset name (`Preset::name`).
    pub preset: String,
    /// Variant name (`Variant::name`).
    pub variant: String,
    /// Reward λ.
    pub lambda: f64,
    /// Reward γ.
    pub gamma: f64,
    /// Cost rate ψ (used for both training reward and backtest).
    pub psi: f64,
    /// Training steps.
    pub steps: usize,
    /// Batch (trajectory) length.
    pub batch: usize,
    /// Learning rate.
    pub lr: f64,
    /// Seed.
    pub seed: u64,
}

/// Cached result of one run.
#[derive(Debug, Clone, Serialize)]
pub struct ExpResult {
    /// The configuration that produced this result.
    pub config: ExpConfig,
    /// Backtest metrics over the test split.
    pub metrics: Metrics,
    /// Wealth curve over the test split (one point per period).
    pub wealth: Vec<f64>,
    /// Mean reward over the final 10% of training steps.
    pub final_reward: f64,
    /// Wall-clock seconds spent in `train_policy` only.
    pub train_secs: f64,
    /// Wall-clock seconds spent loading/synthesizing the dataset.
    pub synth_secs: f64,
    /// Wall-clock seconds spent in the backtest.
    pub backtest_secs: f64,
}

// Hand-written so cache files from before the timing split (which lack
// `synth_secs`/`backtest_secs`) still deserialize; the derive rejects any
// missing field. Absent timings read back as NaN, never as fake zeros.
impl serde::Deserialize for ExpResult {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {
        let opt_f64 = |name: &str| match v.field(name) {
            Ok(x) => f64::deserialize(x),
            Err(_) => Ok(f64::NAN),
        };
        Ok(ExpResult {
            config: ExpConfig::deserialize(v.field("config")?)?,
            metrics: Metrics::deserialize(v.field("metrics")?)?,
            wealth: Vec::<f64>::deserialize(v.field("wealth")?)?,
            final_reward: f64::deserialize(v.field("final_reward")?)?,
            train_secs: f64::deserialize(v.field("train_secs")?)?,
            synth_secs: opt_f64("synth_secs")?,
            backtest_secs: opt_f64("backtest_secs")?,
        })
    }
}

/// Parses a preset by its display name.
pub fn preset_by_name(name: &str) -> Preset {
    match name {
        "Crypto-A" => Preset::CryptoA,
        "Crypto-B" => Preset::CryptoB,
        "Crypto-C" => Preset::CryptoC,
        "Crypto-D" => Preset::CryptoD,
        "S&P500" => Preset::Sp500,
        other => panic!("unknown preset {other}"),
    }
}

/// Parses a variant by its display name.
pub fn variant_by_name(name: &str) -> Variant {
    match name {
        "PPN" => Variant::Ppn,
        "PPN-I" => Variant::PpnI,
        "PPN-LSTM" => Variant::PpnLstm,
        "PPN-TCB" => Variant::PpnTcb,
        "PPN-TCCB" => Variant::PpnTccb,
        "PPN-TCB-LSTM" => Variant::PpnTcbLstm,
        "PPN-TCCB-LSTM" => Variant::PpnTccbLstm,
        "EIIE" => Variant::Eiie,
        other => panic!("unknown variant {other}"),
    }
}

fn scale_env(base: usize) -> usize {
    let scale: f64 =
        std::env::var("PPN_STEPS_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0);
    ((base as f64) * scale).round().max(10.0) as usize
}

/// Step-budget tier for an experiment. The paper trains every run 1e5 steps
/// on a GPU; on a single CPU core the budgets are tiered by how much each
/// table leans on absolute performance vs relative trends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Budget {
    /// Headline profitability tables (3 and 8).
    Full,
    /// The representation ablation (Table 4 / Fig. 5).
    Ablation,
    /// The γ/λ/ψ sweeps (Tables 5–7 / Fig. 6) where only trends matter.
    Sweep,
}

/// Per-preset step budget at a tier. Scaled by the `PPN_STEPS_SCALE`
/// environment variable (e.g. `4.0` for a 4× longer run).
pub fn steps_for(preset: Preset, budget: Budget) -> usize {
    let base = match (budget, preset) {
        (Budget::Full, Preset::CryptoA) => 1_200,
        (Budget::Full, Preset::CryptoB) => 1_000,
        (Budget::Full, Preset::CryptoC) => 700,
        (Budget::Full, Preset::CryptoD) => 350,
        (Budget::Full, Preset::Sp500) => 180,
        (Budget::Ablation, Preset::CryptoA) => 350,
        (Budget::Ablation, Preset::CryptoB) => 275,
        (Budget::Ablation, Preset::CryptoC) => 200,
        (Budget::Ablation, Preset::CryptoD) => 90,
        (Budget::Ablation, Preset::Sp500) => 120,
        (Budget::Sweep, Preset::CryptoA) => 200,
        (Budget::Sweep, Preset::CryptoB) => 150,
        (Budget::Sweep, Preset::CryptoC) => 75,
        (Budget::Sweep, Preset::CryptoD) => 40,
        (Budget::Sweep, Preset::Sp500) => 60,
    };
    scale_env(base)
}

/// Backwards-compatible alias for the full budget.
pub fn default_steps(preset: Preset) -> usize {
    steps_for(preset, Budget::Full)
}

/// Canonical config for `(preset, variant)` with the paper-default reward at
/// the given budget tier.
///
/// Per-variant training adjustments (the stand-in for the paper's per-method
/// cross-validation): EIIE trains at lr 1e−3 — at the PPN-class lr of 1e−2
/// its ReLU feature maps die — and receives 4× the steps, matching roughly
/// equal wall-clock since its forward/backward is ~16× cheaper.
pub fn config_at(preset: Preset, variant: Variant, budget: Budget) -> ExpConfig {
    let (steps, lr) = match variant {
        Variant::Eiie => (steps_for(preset, budget) * 4, 1e-3),
        _ => (steps_for(preset, budget), 1e-2),
    };
    ExpConfig {
        preset: preset.name().to_string(),
        variant: variant.name().to_string(),
        lambda: 1e-4,
        gamma: 1e-3,
        psi: 0.0025,
        steps,
        batch: 16,
        lr,
        seed: 0,
    }
}

/// Full-budget config (Tables 3 and 8).
pub fn default_config(preset: Preset, variant: Variant) -> ExpConfig {
    config_at(preset, variant, Budget::Full)
}

fn cache_dir() -> PathBuf {
    let dir = std::env::var("PPN_CACHE_DIR").unwrap_or_else(|_| "results/cache".into());
    PathBuf::from(dir)
}

fn cache_path(cfg: &ExpConfig) -> PathBuf {
    // Stable, readable key.
    let key = format!(
        "{}_{}_l{:e}_g{:e}_p{:e}_s{}_b{}_lr{:e}_seed{}",
        cfg.preset,
        cfg.variant,
        cfg.lambda,
        cfg.gamma,
        cfg.psi,
        cfg.steps,
        cfg.batch,
        cfg.lr,
        cfg.seed
    )
    .replace(['&', '/', ' '], "-");
    cache_dir().join(format!("{key}.json"))
}

/// Directory where telemetry (JSONL streams, run manifests) is written.
pub const TELEMETRY_DIR: &str = "results/telemetry";

/// Standard experiment-binary prologue: initialises observability from
/// `PPN_OBS` and opens a run manifest that will land next to the results
/// (`results/telemetry/<name>.manifest.json`) when finished or dropped.
///
/// When `PPN_STATS_ADDR` is set (e.g. `127.0.0.1:9184`), a
/// [`ppn_obs::StatsServer`] is also started there for the lifetime of the
/// process, so the trainer's metrics can be scraped as Prometheus text
/// while a long run is in flight.
pub fn start_run(name: &str) -> ppn_obs::manifest::ManifestGuard {
    ppn_obs::init_from_env();
    ppn_obs::obs_info!(
        "{name}: starting (PPN_OBS={})",
        std::env::var("PPN_OBS").unwrap_or_else(|_| "<unset>".into())
    );
    if let Ok(addr) = std::env::var("PPN_STATS_ADDR") {
        static STATS: std::sync::OnceLock<Option<ppn_obs::StatsServer>> =
            std::sync::OnceLock::new();
        let started = STATS.get_or_init(|| match ppn_obs::StatsServer::start(&addr) {
            Ok(server) => {
                ppn_obs::obs_info!("{name}: stats endpoint on http://{}/metrics", server.addr());
                Some(server)
            }
            Err(e) => {
                ppn_obs::obs_warn!("{name}: PPN_STATS_ADDR={addr} failed to bind: {e}");
                None
            }
        });
        let _ = started;
    }
    ppn_obs::RunManifest::start(name, TELEMETRY_DIR)
}

/// Trains (or loads from cache) and backtests one neural configuration.
pub fn train_and_backtest(cfg: &ExpConfig) -> ExpResult {
    let _span = ppn_obs::span!("experiment.run");
    let path = cache_path(cfg);
    if let Ok(bytes) = std::fs::read(&path) {
        if let Ok(res) = serde_json::from_slice::<ExpResult>(&bytes) {
            ppn_obs::counter("experiment.cache_hits").inc();
            ppn_obs::obs_debug!("cache hit: {}", path.display());
            return res;
        }
    }
    ppn_obs::event!(
        ppn_obs::Level::Debug,
        "experiment.start",
        preset = cfg.preset.as_str(),
        variant = cfg.variant.as_str(),
        steps = cfg.steps,
        seed = cfg.seed,
    );
    let preset = preset_by_name(&cfg.preset);
    let variant = variant_by_name(&cfg.variant);
    let t_synth = std::time::Instant::now();
    let ds = Dataset::load(preset);
    let synth_secs = t_synth.elapsed().as_secs_f64();
    let reward = RewardConfig { lambda: cfg.lambda, gamma: cfg.gamma, psi: cfg.psi };
    let train = TrainConfig {
        steps: cfg.steps,
        batch: cfg.batch,
        lr: cfg.lr,
        seed: cfg.seed,
        ..TrainConfig::default()
    };
    let t0 = std::time::Instant::now();
    let (mut policy, report) = train_policy(&ds, variant, reward, train);
    let train_secs = t0.elapsed().as_secs_f64();
    let t_bt = std::time::Instant::now();
    let bt = run_backtest(&ds, &mut policy, cfg.psi, test_range(&ds));
    let backtest_secs = t_bt.elapsed().as_secs_f64();
    ppn_obs::event!(
        ppn_obs::Level::Info,
        "experiment.finish",
        preset = cfg.preset.as_str(),
        variant = cfg.variant.as_str(),
        train_secs = train_secs,
        synth_secs = synth_secs,
        backtest_secs = backtest_secs,
        final_reward = report.final_reward,
        apv = bt.metrics.apv,
    );
    let res = ExpResult {
        config: cfg.clone(),
        metrics: bt.metrics,
        wealth: bt.wealth_curve(),
        final_reward: report.final_reward,
        train_secs,
        synth_secs,
        backtest_secs,
    };
    let _ = std::fs::create_dir_all(cache_dir());
    if let Ok(js) = serde_json::to_vec_pretty(&res) {
        let _ = std::fs::write(&path, js);
    }
    res
}

/// Filesystem-safe manifest suffix for one experiment cell.
fn cell_label(s: &str) -> String {
    s.replace(['&', '/', ' '], "-")
}

/// Fans `labels.len()` experiment cells out across the shared worker pool
/// (`ppn_tensor::par`, sized by `PPN_THREADS`). Each cell runs under its own
/// run manifest named `<parent>.<label>` in [`TELEMETRY_DIR`], so per-cell
/// provenance and span reports land next to the table output. Results come
/// back in cell order regardless of scheduling; `run(i)` is called exactly
/// once per cell.
pub fn run_cells<T: Send>(
    parent: &str,
    labels: &[String],
    run: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    ppn_tensor::par::par_map(labels.len(), |i| {
        let cell = format!("{parent}.{}", cell_label(&labels[i]));
        let guard = ppn_obs::RunManifest::start(&cell, TELEMETRY_DIR);
        let out = run(i);
        let _ = guard.finish();
        out
    })
}

/// Runs every configuration through [`train_and_backtest`], fanned out via
/// [`run_cells`]. The index prefix keeps manifest names unique even when a
/// sweep varies a parameter (γ, λ, ψ) that the label text does not show.
pub fn run_many(parent: &str, cfgs: &[ExpConfig]) -> Vec<ExpResult> {
    let labels: Vec<String> = cfgs
        .iter()
        .enumerate()
        .map(|(i, c)| format!("{i:02}-{}-{}", c.preset, c.variant))
        .collect();
    run_cells(parent, &labels, |i| train_and_backtest(&cfgs[i]))
}

/// Runs the classic baseline suite over a preset's test split.
pub fn run_baselines(preset: Preset, psi: f64) -> Vec<(String, Metrics, Vec<f64>)> {
    let ds = Dataset::load(preset);
    let range = test_range(&ds);
    ppn_baselines::standard_suite(&ds, range.clone())
        .into_iter()
        .map(|mut p| {
            let r = run_backtest(&ds, p.as_mut(), psi, range.clone());
            (r.name.clone(), r.metrics, r.wealth_curve())
        })
        .collect()
}

/// Simple fixed-width table printer; also returns the rendered string so the
/// binaries can persist it under `results/`.
pub struct TableWriter {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    title: String,
}

impl TableWriter {
    /// New table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        TableWriter {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            title: title.to_string(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// Renders, prints to stdout, and writes `results/<file>`.
    pub fn finish(&self, file: &str) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = format!("# {}\n\n", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {c:>w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        print!("{out}");
        let _ = std::fs::create_dir_all("results");
        let _ = std::fs::write(format!("results/{file}"), &out);
        out
    }
}

/// Formats a float the way the paper's tables do (2 decimals, scientific for
/// very small magnitudes).
pub fn fnum(v: f64) -> String {
    if v != 0.0 && v.abs() < 0.005 {
        format!("{v:.0e}")
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnum_formats_like_the_paper() {
        assert_eq!(fnum(32.04), "32.04");
        assert_eq!(fnum(0.001), "1e-3");
        assert_eq!(fnum(2e-8), "2e-8");
        assert_eq!(fnum(9842.56), "9843");
        assert_eq!(fnum(0.0), "0.00");
        assert_eq!(fnum(-5.85), "-5.85");
    }

    #[test]
    fn budgets_are_ordered() {
        for p in Preset::all() {
            assert!(steps_for(p, Budget::Full) >= steps_for(p, Budget::Ablation));
            assert!(steps_for(p, Budget::Ablation) >= steps_for(p, Budget::Sweep));
        }
    }

    #[test]
    fn eiie_gets_lower_lr_and_more_steps() {
        let e = config_at(Preset::CryptoA, Variant::Eiie, Budget::Full);
        let p = config_at(Preset::CryptoA, Variant::Ppn, Budget::Full);
        assert!(e.lr < p.lr);
        assert_eq!(e.steps, 4 * p.steps);
    }

    #[test]
    fn name_round_trips() {
        for p in Preset::all() {
            assert_eq!(preset_by_name(p.name()), p);
        }
        for v in [
            Variant::Ppn,
            Variant::PpnI,
            Variant::PpnLstm,
            Variant::PpnTcb,
            Variant::PpnTccb,
            Variant::PpnTcbLstm,
            Variant::PpnTccbLstm,
            Variant::Eiie,
        ] {
            assert_eq!(variant_by_name(v.name()), v);
        }
    }

    #[test]
    fn cache_paths_distinguish_configs() {
        let a = config_at(Preset::CryptoA, Variant::Ppn, Budget::Full);
        let mut b = a.clone();
        b.gamma = 0.1;
        assert_ne!(cache_path(&a), cache_path(&b));
        let mut c = a.clone();
        c.seed = 1;
        assert_ne!(cache_path(&a), cache_path(&c));
        let mut d = a.clone();
        d.lr = 0.5;
        assert_ne!(cache_path(&a), cache_path(&d));
    }

    #[test]
    fn exp_result_reads_legacy_cache_without_timing_split() {
        // Checked-in caches predate `synth_secs`/`backtest_secs`; they must
        // keep loading, with the absent timings reported as NaN.
        let cfg = config_at(Preset::CryptoA, Variant::Ppn, Budget::Sweep);
        let legacy = format!(
            concat!(
                r#"{{"config":{},"metrics":{{"apv":1.5,"sharpe_pct":2.0,"calmar":0.5,"#,
                r#""mdd":0.1,"std_pct":0.2,"turnover":0.3}},"#,
                r#""wealth":[1.0,1.5],"final_reward":0.01,"train_secs":3.5}}"#
            ),
            String::from_utf8(serde_json::to_vec(&cfg).unwrap()).unwrap()
        );
        let res: ExpResult = serde_json::from_slice(legacy.as_bytes()).unwrap();
        assert_eq!(res.train_secs, 3.5);
        assert!(res.synth_secs.is_nan());
        assert!(res.backtest_secs.is_nan());
        assert_eq!(res.wealth, vec![1.0, 1.5]);

        // And a fresh result round-trips its timing split exactly.
        let fresh = ExpResult {
            config: cfg,
            metrics: res.metrics,
            wealth: vec![1.0],
            final_reward: 0.25,
            train_secs: 1.0,
            synth_secs: 0.5,
            backtest_secs: 0.25,
        };
        let bytes = serde_json::to_vec(&fresh).unwrap();
        let back: ExpResult = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(back.synth_secs, 0.5);
        assert_eq!(back.backtest_secs, 0.25);
    }

    #[test]
    fn run_cells_preserves_cell_order_across_threads() {
        // Keep the per-cell manifest guards inert so the test writes nothing.
        ppn_obs::init(ppn_obs::ObsConfig::off());
        let labels: Vec<String> = (0..12).map(|i| format!("cell {i}/x")).collect();
        let out =
            ppn_tensor::par::with_threads(4, || run_cells("test_run_cells", &labels, |i| i * 3));
        assert_eq!(out, (0..12).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn table_writer_renders_aligned_markdown() {
        let mut t = TableWriter::new("T", &["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        let dir = std::env::temp_dir().join("ppn_tw_test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = {
            let cwd = std::env::current_dir().unwrap();
            std::env::set_current_dir(&dir).unwrap();
            let out = t.finish("t.md");
            std::env::set_current_dir(cwd).unwrap();
            out
        };
        assert!(out.contains("# T"));
        assert!(out.contains("| a |"));
        assert!(out.lines().count() >= 4);
    }
}

/// Aggregate of a multi-seed repetition of the same configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeedAggregate {
    /// Per-seed results in seed order.
    pub runs: Vec<ExpResult>,
    /// Mean APV across seeds.
    pub apv_mean: f64,
    /// Sample standard deviation of APV across seeds (0 for a single seed).
    pub apv_std: f64,
    /// Mean Sharpe (%) across seeds.
    pub sharpe_mean: f64,
    /// Mean turnover across seeds.
    pub turnover_mean: f64,
}

/// Runs (or loads) `cfg` under `seeds` different seeds and aggregates.
/// Matches the paper's "averaged over N runs with random initialisation
/// seeds" protocol; each seed is cached independently.
pub fn train_and_backtest_seeds(cfg: &ExpConfig, seeds: &[u64]) -> SeedAggregate {
    assert!(!seeds.is_empty());
    let runs: Vec<ExpResult> = seeds
        .iter()
        .map(|&seed| {
            let mut c = cfg.clone();
            c.seed = seed;
            train_and_backtest(&c)
        })
        .collect();
    let apvs: Vec<f64> = runs.iter().map(|r| r.metrics.apv).collect();
    let n = apvs.len() as f64;
    let apv_mean = apvs.iter().sum::<f64>() / n;
    let apv_std = if apvs.len() > 1 {
        (apvs.iter().map(|a| (a - apv_mean).powi(2)).sum::<f64>() / (n - 1.0)).sqrt()
    } else {
        0.0
    };
    let sharpe_mean = runs.iter().map(|r| r.metrics.sharpe_pct).sum::<f64>() / n;
    let turnover_mean = runs.iter().map(|r| r.metrics.turnover).sum::<f64>() / n;
    SeedAggregate { runs, apv_mean, apv_std, sharpe_mean, turnover_mean }
}
