//! Vendored shim for the subset of `criterion` this workspace uses.
//!
//! Implements a plain wall-clock harness behind criterion's API:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size` / `bench_with_input` / `finish`, [`BenchmarkId`], the
//! [`criterion_group!`] / [`criterion_main!`] macros and `black_box`.
//! Statistics are simple (median over samples of an adaptively-sized inner
//! loop); there are no plots, baselines, or outlier analysis.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `<name>/<parameter>` id.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { text: format!("{name}/{parameter}") }
    }

    /// Id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { text: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    pub last_median: Duration,
}

impl Bencher {
    /// Times `routine`, auto-scaling the inner iteration count so each
    /// sample runs for roughly a millisecond.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Calibrate: how many iterations fit in ~1ms?
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as usize;

        let mut medians: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            medians.push(t.elapsed() / per_sample as u32);
        }
        medians.sort();
        self.last_median = medians[medians.len() / 2];
    }
}

fn human(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { samples, last_median: Duration::ZERO };
    f(&mut b);
    println!("{label:<50} median {}", human(b.last_median));
}

/// Top-level benchmark harness.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs a stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), sample_size: self.sample_size, _parent: self }
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Runs a parameterised benchmark within the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something_positive() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut ran = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("conv", 12).to_string(), "conv/12");
        assert_eq!(BenchmarkId::from_parameter("OLMAR").to_string(), "OLMAR");
    }
}
