//! Vendored shim for the subset of `serde_json` this workspace uses:
//! `to_string` / `to_vec` (plus `_pretty` variants), `from_str` /
//! `from_slice`, and the [`Value`] tree. All encoding/decoding lives in the
//! vendored `serde` shim; this crate only adapts its API surface.

pub use serde::{Error, Value};

/// Serializes to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut s = serde::Ser::new();
    value.serialize(&mut s);
    Ok(s.finish())
}

/// Serializes to pretty-printed JSON text.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut s = serde::Ser::pretty();
    value.serialize(&mut s);
    Ok(s.finish())
}

/// Serializes to compact JSON bytes.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Serializes to pretty-printed JSON bytes.
pub fn to_vec_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string_pretty(value).map(String::into_bytes)
}

/// Deserializes from JSON text.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    T::deserialize(&Value::parse(text)?)
}

/// Deserializes from JSON bytes.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error::msg(e.to_string()))?;
    from_str(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_round_trip() {
        let xs = vec![1.0f64, -0.5, 1e-12];
        let bytes = to_vec(&xs).unwrap();
        let back: Vec<f64> = from_slice(&bytes).unwrap();
        assert_eq!(xs, back);
    }

    #[test]
    fn pretty_and_compact_parse_to_the_same_value() {
        let xs = vec![vec![1.0f64, 2.0], vec![3.0]];
        let a: Value = from_slice(&to_vec(&xs).unwrap()).unwrap();
        let b: Value = from_slice(&to_vec_pretty(&xs).unwrap()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn bad_input_is_an_error_not_a_panic() {
        assert!(from_str::<Vec<f64>>("[1.0,").is_err());
        assert!(from_str::<Vec<f64>>("{\"a\":1}").is_err());
        assert!(from_slice::<Vec<f64>>(&[0xff, 0xfe]).is_err());
    }
}
