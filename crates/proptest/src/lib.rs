//! Vendored shim for the subset of `proptest` this workspace uses.
//!
//! Provides the [`Strategy`] trait (`prop_map`, `prop_flat_map`), range and
//! tuple strategies, `prop::collection::vec`, the [`proptest!`] macro with
//! `#![proptest_config(…)]` support, and the `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` assertion macros.
//!
//! Deliberate simplifications versus real proptest:
//!
//! * **No shrinking.** A failing case reports the case index and the fixed
//!   RNG seed; re-running the test deterministically reproduces it.
//! * **Fixed seeding.** Cases are generated from a constant seed mixed with
//!   the case index, so CI failures reproduce locally. Set
//!   `PROPTEST_SEED=<u64>` to explore a different stream.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Per-test configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Outcome of one generated case: failure message or an assumption reject.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assert!` failure — aborts the test.
    Fail(String),
    /// `prop_assume!` reject — the case is skipped, not failed.
    Reject,
}

/// RNG handed to strategies. Wraps the workspace `StdRng` shim.
pub struct TestRng(pub StdRng);

impl TestRng {
    /// Deterministic per-case RNG: constant (or `PROPTEST_SEED`) base seed
    /// mixed with the case index.
    pub fn for_case(case: u64) -> Self {
        let base = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x5EED_CAFE_u64);
        TestRng(StdRng::seed_from_u64(base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.0.gen()
    }

    /// Next raw word (used by integer range strategies).
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates with `self`, then generates from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_strategy!(f64, f32);

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (((rng.next_u64() as u128) % span) as i128 + self.start as i128) as $t
            }
        }
    )*};
}
int_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (S0/0)
    (S0/0, S1/1)
    (S0/0, S1/1, S2/2)
    (S0/0, S1/1, S2/2, S3/3)
    (S0/0, S1/1, S2/2, S3/3, S4/4)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Element-count specification: exact or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy producing `Vec`s of `element` draws.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = (self.size.lo..self.size.hi).generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespace mirror of real proptest's `prop::` path.
pub mod prop {
    pub use crate::collection;
}

/// Runs the body for each generated case; used by the [`proptest!`] macro.
pub fn run_cases(
    test_name: &str,
    cfg: &ProptestConfig,
    mut body: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let mut rejects = 0u64;
    let mut case = 0u64;
    let mut executed = 0u32;
    while executed < cfg.cases {
        let mut rng = TestRng::for_case(case);
        match body(&mut rng) {
            Ok(()) => executed += 1,
            Err(TestCaseError::Reject) => {
                rejects += 1;
                assert!(
                    rejects < 1 + 10 * cfg.cases as u64,
                    "{test_name}: too many prop_assume rejects ({rejects})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{test_name}: property failed at case #{case}: {msg}");
            }
        }
        case += 1;
    }
}

/// Defines property tests: `proptest! { #[test] fn name(x in strat) { … } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            $crate::run_cases(
                stringify!($name),
                &__cfg,
                |__rng| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)*
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{} == {} failed: {:?} vs {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{} == {} failed: {:?} vs {:?}: {}",
                stringify!($left),
                stringify!($right),
                __l,
                __r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// One-stop imports mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..17, y in -2.0..5.0f64) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..5.0).contains(&y));
        }

        #[test]
        fn vec_strategy_respects_sizes(
            v in prop::collection::vec(0.0..1.0f64, 4),
            w in prop::collection::vec(0.0..1.0f64, 1..9),
        ) {
            prop_assert_eq!(v.len(), 4);
            prop_assert!((1..9).contains(&w.len()));
        }

        #[test]
        fn flat_map_links_sizes(
            pair in (1usize..5).prop_flat_map(|n| (Just(n), prop::collection::vec(0.0..1.0f64, n))),
        ) {
            let (n, v) = pair;
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn assume_skips_without_failing(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_case_context() {
        crate::run_cases(
            "demo",
            &ProptestConfig::with_cases(8),
            |_rng| -> Result<(), crate::TestCaseError> {
                crate::prop_assert!(1 == 2);
                Ok(())
            },
        );
    }
}
