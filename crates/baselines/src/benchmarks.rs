//! Market-benchmark strategies: UBAH, Best-in-hindsight, and uniform CRP.

use crate::simplex::uniform;
use ppn_market::{DecisionContext, SequentialPolicy};

/// Uniform Buy-And-Hold: buy the uniform portfolio once and never rebalance.
/// After the first period the action simply tracks the drifted weights, so
/// the turnover stays ~0 (matching the 0.001 TO in the paper's Table Sup.1).
#[derive(Debug, Default)]
pub struct Ubah {
    started: bool,
}

impl SequentialPolicy for Ubah {
    fn name(&self) -> String {
        "UBAH".into()
    }

    fn decide_one(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        if !self.started {
            self.started = true;
            uniform(ctx.dataset.assets() + 1)
        } else {
            ctx.drifted.to_vec()
        }
    }

    fn reset(&mut self) {
        self.started = false;
    }
}

/// Best single asset in hindsight over a fixed evaluation range. This is the
/// paper's "Best" oracle: it needs the future, so the winning asset index is
/// computed at construction from the dataset itself.
#[derive(Debug)]
pub struct BestStock {
    best: usize,
}

impl BestStock {
    /// Finds the asset (cash included) with the largest total return over
    /// `range` of `dataset`'s relatives.
    pub fn new(dataset: &ppn_market::Dataset, range: std::ops::Range<usize>) -> Self {
        let m1 = dataset.assets() + 1;
        let mut totals = vec![0.0f64; m1];
        for t in range {
            for (i, tot) in totals.iter_mut().enumerate() {
                *tot += dataset.relative(t)[i].ln();
            }
        }
        let best = totals
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        BestStock { best }
    }

    /// The selected asset index.
    pub fn asset(&self) -> usize {
        self.best
    }
}

impl SequentialPolicy for BestStock {
    fn name(&self) -> String {
        "Best".into()
    }

    fn decide_one(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        let mut a = vec![0.0; ctx.dataset.assets() + 1];
        a[self.best] = 1.0;
        a
    }
}

/// Uniform Constant Rebalanced Portfolio: rebalance to uniform every period.
#[derive(Debug, Default)]
pub struct Crp;

impl SequentialPolicy for Crp {
    fn name(&self) -> String {
        "CRP".into()
    }

    fn decide_one(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        uniform(ctx.dataset.assets() + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppn_market::{run_backtest, Dataset, Preset};

    #[test]
    fn ubah_has_negligible_turnover() {
        let ds = Dataset::load(Preset::CryptoA);
        let r = run_backtest(&ds, &mut Ubah::default(), 0.0025, 100..400);
        assert!(r.metrics.turnover < 0.01, "TO {}", r.metrics.turnover);
    }

    #[test]
    fn best_beats_ubah_in_hindsight() {
        let ds = Dataset::load(Preset::CryptoA);
        let range = 100..400;
        let mut best = BestStock::new(&ds, range.clone());
        let rb = run_backtest(&ds, &mut best, 0.0, range.clone());
        let ru = run_backtest(&ds, &mut Ubah::default(), 0.0, range);
        assert!(
            rb.metrics.apv >= ru.metrics.apv * 0.999,
            "best {} < ubah {}",
            rb.metrics.apv,
            ru.metrics.apv
        );
    }

    #[test]
    fn best_apv_matches_asset_relatives() {
        let ds = Dataset::load(Preset::CryptoB);
        let range = 200..500;
        let mut best = BestStock::new(&ds, range.clone());
        let idx = best.asset();
        let r = run_backtest(&ds, &mut best, 0.0, range.clone());
        let direct: f64 = range.map(|t| ds.relative(t)[idx]).product();
        // First-period entry is cost-free at ψ=0 so APVs agree exactly.
        assert!((r.metrics.apv - direct).abs() / direct < 1e-9);
    }

    #[test]
    fn crp_actions_always_uniform() {
        let ds = Dataset::load(Preset::CryptoA);
        let r = run_backtest(&ds, &mut Crp, 0.0025, 100..150);
        let n = ds.assets() + 1;
        for rec in &r.records {
            for &w in &rec.action {
                assert!((w - 1.0 / n as f64).abs() < 1e-12);
            }
        }
    }
}
