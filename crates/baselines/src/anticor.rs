//! Anticor (Borodin, El-Yaniv & Gogan, NeurIPS 2004).
//!
//! Anticor compares two adjacent windows of log-relatives and transfers
//! wealth from asset `i` to asset `j` when `i` outperformed `j` in the most
//! recent window *and* the cross-window correlation `corr(LX1[:,i], LX2[:,j])`
//! is positive — betting that the performance spread will anti-correlate and
//! revert. Negative autocorrelations add to the transfer claim exactly as in
//! the original paper.

use crate::simplex::{normalize, uniform};
use ppn_market::{DecisionContext, SequentialPolicy};

/// Anticor with a single window size `w` (the paper's BAH(Anticor) ensemble
/// averages several; one well-chosen `w` captures the behaviour).
pub struct Anticor {
    /// Window length `w` (the comparison uses periods `t−2w+1..t−w` vs `t−w+1..t`).
    pub window: usize,
    b: Vec<f64>,
    seen: usize,
}

impl Anticor {
    /// Anticor with window `w ≥ 2`.
    pub fn new(window: usize) -> Self {
        assert!(window >= 2, "anticor window must be ≥ 2");
        Anticor { window, b: Vec::new(), seen: 0 }
    }

    /// One Anticor weight update given the full relative history.
    fn update(&mut self, history: &[Vec<f64>]) {
        let w = self.window;
        if history.len() < 2 * w {
            return;
        }
        let n = self.b.len();
        let lx = |win: usize, k: usize, i: usize| -> f64 {
            // win 0: periods len−2w..len−w; win 1: len−w..len
            let base = history.len() - 2 * w + win * w;
            history[base + k][i].max(1e-12).ln()
        };
        // Column means and stds.
        let mut mu = [vec![0.0; n], vec![0.0; n]];
        for (win, mu_win) in mu.iter_mut().enumerate() {
            for (i, mv) in mu_win.iter_mut().enumerate() {
                for k in 0..w {
                    *mv += lx(win, k, i);
                }
                *mv /= w as f64;
            }
        }
        let mut sd = [vec![0.0; n], vec![0.0; n]];
        for win in 0..2 {
            for i in 0..n {
                let mut v = 0.0;
                for k in 0..w {
                    v += (lx(win, k, i) - mu[win][i]).powi(2);
                }
                sd[win][i] = (v / (w - 1) as f64).sqrt();
            }
        }
        // Cross-window correlation matrix.
        let mut mcor = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                if sd[0][i] < 1e-12 || sd[1][j] < 1e-12 {
                    continue;
                }
                let mut cov = 0.0;
                for k in 0..w {
                    cov += (lx(0, k, i) - mu[0][i]) * (lx(1, k, j) - mu[1][j]);
                }
                cov /= (w - 1) as f64;
                mcor[i * n + j] = cov / (sd[0][i] * sd[1][j]);
            }
        }
        // Claims: i → j when i beat j recently and they cross-correlate.
        let mut claim = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                if i == j || mu[1][i] <= mu[1][j] || mcor[i * n + j] <= 0.0 {
                    continue;
                }
                let mut c = mcor[i * n + j];
                c += (-mcor[i * n + i]).max(0.0);
                c += (-mcor[j * n + j]).max(0.0);
                claim[i * n + j] = c;
            }
        }
        // Proportional transfers.
        let mut transfer = vec![0.0; n * n];
        for i in 0..n {
            let total: f64 = (0..n).map(|j| claim[i * n + j]).sum();
            if total <= 0.0 {
                continue;
            }
            for j in 0..n {
                transfer[i * n + j] = self.b[i] * claim[i * n + j] / total;
            }
        }
        let mut nb = self.b.clone();
        for i in 0..n {
            for j in 0..n {
                nb[i] -= transfer[i * n + j];
                nb[j] += transfer[i * n + j];
            }
        }
        self.b = normalize(&nb);
    }
}

impl SequentialPolicy for Anticor {
    fn name(&self) -> String {
        "Anticor".into()
    }

    fn decide_one(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        let n = ctx.dataset.assets() + 1;
        if self.b.len() != n {
            self.b = uniform(n);
            self.seen = ctx.history.len().saturating_sub(1);
        }
        while self.seen < ctx.history.len() {
            self.update(&ctx.history[..self.seen + 1]);
            self.seen += 1;
        }
        self.b.clone()
    }

    fn reset(&mut self) {
        self.b.clear();
        self.seen = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::is_simplex;
    use ppn_market::{run_backtest, Dataset, Preset};

    /// Hand-built anti-correlated pair: asset 1 and asset 2 alternate
    /// winning in successive windows.
    fn alternating_history(cycles: usize, w: usize) -> Vec<Vec<f64>> {
        let mut h = Vec::new();
        for c in 0..cycles {
            for _ in 0..w {
                if c % 2 == 0 {
                    h.push(vec![1.0, 1.05, 0.96]);
                } else {
                    h.push(vec![1.0, 0.96, 1.05]);
                }
            }
        }
        h
    }

    #[test]
    fn transfers_away_from_recent_winner() {
        let w = 4;
        let mut ac = Anticor::new(w);
        ac.b = uniform(3);
        let hist = alternating_history(4, w);
        ac.update(&hist);
        // Last window: asset 2 won (index 2), asset 1 lost. With the
        // alternating pattern the cross-correlation favours moving wealth
        // from the winner to the loser.
        assert!(is_simplex(&ac.b, 1e-9));
        assert!(ac.b[1] >= ac.b[2], "{:?}", ac.b);
    }

    #[test]
    fn needs_two_full_windows() {
        let mut ac = Anticor::new(5);
        ac.b = uniform(3);
        let before = ac.b.clone();
        ac.update(&alternating_history(1, 5)); // only one window
        assert_eq!(ac.b, before);
    }

    #[test]
    fn backtest_stays_on_simplex() {
        let ds = Dataset::load(Preset::CryptoB);
        let r = run_backtest(&ds, &mut Anticor::new(10), 0.0025, 100..300);
        for rec in &r.records {
            assert!(is_simplex(&rec.action, 1e-6));
        }
    }
}
