#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # ppn-baselines
//!
//! The thirteen classic online portfolio-selection baselines the paper
//! compares against (§6.1.1): UBAH, Best, CRP, UP, EG, Anticor, ONS, CWMR,
//! PAMR, OLMAR, RMR and WMAMR — all implementing [`ppn_market::Policy`] so
//! they run under the same backtest harness as the neural strategies.
//!
//! ```
//! use ppn_baselines::standard_suite;
//! use ppn_market::{run_backtest, test_range, Dataset, Preset};
//!
//! let ds = Dataset::load(Preset::CryptoA);
//! for mut policy in standard_suite(&ds, test_range(&ds)) {
//!     let result = run_backtest(&ds, policy.as_mut(), 0.0025, ds.split..ds.split + 50);
//!     assert!(result.metrics.apv > 0.0);
//! }
//! ```

pub mod anticor;
pub mod benchmarks;
pub mod cwmr;
pub mod follow_winner;
pub mod linalg;
pub mod mean_reversion;
pub mod ons;
pub mod simplex;

pub use anticor::Anticor;
pub use benchmarks::{BestStock, Crp, Ubah};
pub use cwmr::Cwmr;
pub use follow_winner::{ExponentialGradient, UniversalPortfolios};
pub use mean_reversion::{Olmar, Pamr, Rmr, Wmamr};
pub use ons::Ons;

use ppn_market::{Dataset, Policy};

/// The full baseline suite with the literature-default hyper-parameters, in
/// the row order of the paper's Table 3. `range` is needed by the hindsight
/// `Best` oracle.
pub fn standard_suite(dataset: &Dataset, range: std::ops::Range<usize>) -> Vec<Box<dyn Policy>> {
    vec![
        Box::new(Ubah::default()),
        Box::new(BestStock::new(dataset, range)),
        Box::new(Crp),
        Box::new(UniversalPortfolios::new(300, 11)),
        Box::new(ExponentialGradient::new(0.05)),
        Box::new(Anticor::new(10)),
        Box::new(Ons::new(0.01, 1.0)),
        Box::new(Cwmr::new(0.5, 2.0)),
        Box::new(Pamr::new(0.5)),
        Box::new(Olmar::new(10.0, 5)),
        Box::new(Rmr::new(5.0, 5)),
        Box::new(Wmamr::new(0.5, 5)),
    ]
}
