//! Online Newton Step (Agarwal, Hazan, Kale & Schapire, ICML 2006).
//!
//! ONS performs a Newton-like ascent on the log-wealth objective:
//!
//! ```text
//! g_t   = x_t / (b_tᵀ x_t)                    (gradient of log(bᵀx))
//! A_t   = I + Σ_τ g_τ g_τᵀ
//! b_{t+1} = Π^{A_t}_Δ ( b_t + (1/β) A_t⁻¹ g_t )
//! ```
//!
//! followed by mixing with the uniform portfolio. The generalised projection
//! `Π^{A}` (the `A`-norm projection onto the simplex) has no closed form; we
//! solve it with projected gradient descent, which converges fast for the
//! well-conditioned `A` matrices that arise here.

use crate::linalg::{matvec, rank1_update, scaled_identity, solve};
use crate::simplex::{project_simplex, uniform};
use ppn_market::{portfolio_return, DecisionContext, SequentialPolicy};

/// ONS with parameters `(eta, beta, delta)` following the original paper's
/// notation: `eta` mixes with uniform, `beta` scales the Newton step.
pub struct Ons {
    /// Uniform-mixture weight (paper default 0.01).
    pub eta: f64,
    /// Inverse step size (paper default 1).
    pub beta: f64,
    b: Vec<f64>,
    a: Vec<f64>, // A_t, row-major
    p: Vec<f64>, // un-mixed iterate
    seen: usize,
}

impl Ons {
    /// ONS with mixture `eta` and step scale `beta`.
    pub fn new(eta: f64, beta: f64) -> Self {
        Ons { eta, beta, b: Vec::new(), a: Vec::new(), p: Vec::new(), seen: 0 }
    }

    /// `A`-norm projection of `q` onto the simplex by projected gradient
    /// descent: minimise `(p−q)ᵀA(p−q)`.
    fn project_a(a: &[f64], q: &[f64], iters: usize) -> Vec<f64> {
        let n = q.len();
        // Step size from a cheap upper bound on λ_max(A): row-sum norm.
        let lmax = (0..n)
            .map(|r| (0..n).map(|c| a[r * n + c].abs()).sum::<f64>())
            .fold(0.0f64, f64::max)
            .max(1e-9);
        let step = 1.0 / lmax;
        let mut p = project_simplex(q);
        for _ in 0..iters {
            // ∇ = 2A(p − q)
            let diff: Vec<f64> = p.iter().zip(q).map(|(a, b)| a - b).collect();
            let grad = matvec(a, &diff);
            let moved: Vec<f64> = p.iter().zip(&grad).map(|(pi, gi)| pi - step * gi).collect();
            let next = project_simplex(&moved);
            let shift: f64 = next.iter().zip(&p).map(|(x, y)| (x - y).abs()).sum();
            p = next;
            if shift < 1e-10 {
                break;
            }
        }
        p
    }

    fn update(&mut self, x: &[f64]) {
        let n = x.len();
        let r = portfolio_return(&self.p, x).max(1e-12);
        let g: Vec<f64> = x.iter().map(|&xi| xi / r).collect();
        rank1_update(&mut self.a, &g, 1.0);
        // Newton direction A⁻¹ g.
        let dir = solve(self.a.clone(), g);
        let target: Vec<f64> =
            self.p.iter().zip(&dir).map(|(&pi, &di)| pi + di / self.beta).collect();
        self.p = Self::project_a(&self.a, &target, 100);
        let u = uniform(n);
        self.b =
            self.p.iter().zip(&u).map(|(&pi, &ui)| (1.0 - self.eta) * pi + self.eta * ui).collect();
    }
}

impl SequentialPolicy for Ons {
    fn name(&self) -> String {
        "ONS".into()
    }

    fn decide_one(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        let n = ctx.dataset.assets() + 1;
        if self.b.len() != n {
            self.b = uniform(n);
            self.p = uniform(n);
            self.a = scaled_identity(n, 1.0);
            self.seen = ctx.history.len();
        }
        while self.seen < ctx.history.len() {
            let x = ctx.history[self.seen].clone();
            self.update(&x);
            self.seen += 1;
        }
        self.b.clone()
    }

    fn reset(&mut self) {
        self.b.clear();
        self.a.clear();
        self.p.clear();
        self.seen = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::is_simplex;
    use ppn_market::{run_backtest, Dataset, Preset};

    #[test]
    fn a_projection_matches_euclidean_for_identity() {
        let a = scaled_identity(3, 1.0);
        let q = vec![1.4, -0.3, 0.1];
        let pa = Ons::project_a(&a, &q, 300);
        let pe = project_simplex(&q);
        for (x, y) in pa.iter().zip(&pe) {
            assert!((x - y).abs() < 1e-6, "{pa:?} vs {pe:?}");
        }
    }

    #[test]
    fn a_projection_respects_metric() {
        // Anisotropic A: deviation along the heavy axis is penalised more,
        // so the projection should deviate along the light axis instead.
        let a = vec![100.0, 0.0, 0.0, 1.0];
        let q = vec![0.8, 0.8]; // off-simplex, must lose 0.6 total
        let p = Ons::project_a(&a, &q, 2000);
        assert!(is_simplex(&p, 1e-6));
        // Cheaper to cut the second coordinate (A₂₂ = 1).
        assert!(p[0] > p[1], "{p:?}");
    }

    #[test]
    fn ons_tilts_toward_growth_assets() {
        let mut ons = Ons::new(0.01, 1.0);
        let ds = Dataset::load(Preset::CryptoA);
        let r = run_backtest(&ds, &mut ons, 0.0025, 100..300);
        for rec in &r.records {
            assert!(is_simplex(&rec.action, 1e-6));
        }
        let last = &r.records.last().unwrap().action;
        let n = last.len() as f64;
        let dev: f64 = last.iter().map(|x| (x - 1.0 / n).abs()).sum();
        assert!(dev > 1e-4, "ONS never moved off uniform");
    }
}
