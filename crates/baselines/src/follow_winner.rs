//! Follow-the-winner baselines: Cover's Universal Portfolios and the
//! Exponential Gradient algorithm.

use crate::simplex::{normalize, uniform};
use ppn_market::{portfolio_return, DecisionContext, SequentialPolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Cover's Universal Portfolios (1991), approximated by Monte-Carlo
/// integration over the simplex: sample CRP experts from a flat Dirichlet,
/// track each expert's cumulative wealth incrementally, and play the
/// wealth-weighted average portfolio.
pub struct UniversalPortfolios {
    samples: usize,
    seed: u64,
    experts: Vec<Vec<f64>>,
    wealth: Vec<f64>,
    seen: usize,
}

impl UniversalPortfolios {
    /// `samples` CRP experts drawn with `seed`.
    pub fn new(samples: usize, seed: u64) -> Self {
        UniversalPortfolios { samples, seed, experts: Vec::new(), wealth: Vec::new(), seen: 0 }
    }

    fn init(&mut self, n: usize) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.experts = (0..self.samples)
            .map(|_| {
                // Flat Dirichlet via normalised exponentials.
                let e: Vec<f64> =
                    (0..n).map(|_| -rng.gen_range(f64::MIN_POSITIVE..1.0f64).ln()).collect();
                normalize(&e)
            })
            .collect();
        self.wealth = vec![1.0; self.samples];
        self.seen = 0;
    }
}

impl SequentialPolicy for UniversalPortfolios {
    fn name(&self) -> String {
        "UP".into()
    }

    fn decide_one(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        let n = ctx.dataset.assets() + 1;
        if self.experts.is_empty() || self.experts[0].len() != n {
            self.init(n);
        }
        // Fold in any history periods not yet absorbed.
        while self.seen < ctx.history.len() {
            let x = &ctx.history[self.seen];
            for (e, w) in self.experts.iter().zip(self.wealth.iter_mut()) {
                *w *= portfolio_return(e, x);
            }
            self.seen += 1;
        }
        let total: f64 = self.wealth.iter().sum();
        let mut b = vec![0.0; n];
        for (e, &w) in self.experts.iter().zip(&self.wealth) {
            for (bi, &ei) in b.iter_mut().zip(e) {
                *bi += w * ei;
            }
        }
        if total > 0.0 {
            for bi in &mut b {
                *bi /= total;
            }
            b
        } else {
            uniform(n)
        }
    }

    fn reset(&mut self) {
        self.experts.clear();
        self.wealth.clear();
        self.seen = 0;
    }
}

/// Exponential Gradient (Helmbold et al., 1998):
/// `b_{t+1,i} ∝ b_{t,i} · exp(η · x_{t,i} / (b_tᵀ x_t))`.
pub struct ExponentialGradient {
    /// Learning rate η (0.05 is the literature default).
    pub eta: f64,
    b: Vec<f64>,
    seen: usize,
}

impl ExponentialGradient {
    /// EG with learning rate `eta`.
    pub fn new(eta: f64) -> Self {
        ExponentialGradient { eta, b: Vec::new(), seen: 0 }
    }
}

impl SequentialPolicy for ExponentialGradient {
    fn name(&self) -> String {
        "EG".into()
    }

    fn decide_one(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        let n = ctx.dataset.assets() + 1;
        if self.b.len() != n {
            self.b = uniform(n);
            self.seen = ctx.history.len();
        }
        while self.seen < ctx.history.len() {
            let x = &ctx.history[self.seen];
            let r = portfolio_return(&self.b, x);
            let mut nb: Vec<f64> =
                self.b.iter().zip(x).map(|(&bi, &xi)| bi * (self.eta * xi / r).exp()).collect();
            nb = normalize(&nb);
            self.b = nb;
            self.seen += 1;
        }
        self.b.clone()
    }

    fn reset(&mut self) {
        self.b.clear();
        self.seen = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::is_simplex;
    use ppn_market::{run_backtest, Dataset, Preset};

    #[test]
    fn up_actions_on_simplex() {
        let ds = Dataset::load(Preset::CryptoA);
        let mut up = UniversalPortfolios::new(100, 3);
        let r = run_backtest(&ds, &mut up, 0.0025, 100..200);
        for rec in &r.records {
            assert!(is_simplex(&rec.action, 1e-9));
        }
    }

    #[test]
    fn up_tracks_winning_expert() {
        // On a strongly trending dataset, UP should tilt away from uniform
        // toward the better assets over time.
        let ds = Dataset::load(Preset::CryptoA);
        let mut up = UniversalPortfolios::new(200, 3);
        let r = run_backtest(&ds, &mut up, 0.0, 100..1_500);
        let first = &r.records[0].action;
        let last = &r.records.last().unwrap().action;
        let n = first.len() as f64;
        let dev_first: f64 = first.iter().map(|x| (x - 1.0 / n).abs()).sum();
        let dev_last: f64 = last.iter().map(|x| (x - 1.0 / n).abs()).sum();
        assert!(dev_last > dev_first, "UP never moved: {dev_first} vs {dev_last}");
    }

    #[test]
    fn eg_moves_toward_recent_winner() {
        let ds = Dataset::load(Preset::CryptoA);
        let mut eg = ExponentialGradient::new(0.05);
        let r = run_backtest(&ds, &mut eg, 0.0025, 100..400);
        for rec in &r.records {
            assert!(is_simplex(&rec.action, 1e-9));
        }
        // EG stays close to uniform (multiplicative updates are conservative)
        // but not exactly uniform.
        let last = &r.records.last().unwrap().action;
        let n = last.len() as f64;
        let dev: f64 = last.iter().map(|x| (x - 1.0 / n).abs()).sum();
        assert!(dev > 1e-6 && dev < 1.0);
    }

    #[test]
    fn eg_higher_eta_moves_more() {
        let ds = Dataset::load(Preset::CryptoA);
        let dev = |eta: f64| {
            let mut eg = ExponentialGradient::new(eta);
            let r = run_backtest(&ds, &mut eg, 0.0, 100..400);
            let last = &r.records.last().unwrap().action;
            let n = last.len() as f64;
            last.iter().map(|x| (x - 1.0 / n).abs()).sum::<f64>()
        };
        assert!(dev(0.2) > dev(0.01));
    }
}
