//! Simplex utilities shared by the online-learning baselines.

/// Euclidean projection onto the probability simplex (Duchi et al., 2008).
///
/// Returns the unique `p` minimising `‖p − v‖₂` with `p ≥ 0, Σp = 1`.
// ppn-check: contract(simplex)
pub fn project_simplex(v: &[f64]) -> Vec<f64> {
    let n = v.len();
    assert!(n > 0, "projection of empty vector");
    let mut u: Vec<f64> = v.to_vec();
    u.sort_by(|a, b| b.total_cmp(a));
    let mut css = 0.0;
    let mut rho = 0;
    let mut theta = 0.0;
    for (i, &ui) in u.iter().enumerate() {
        css += ui;
        let t = (css - 1.0) / (i + 1) as f64;
        if ui - t > 0.0 {
            rho = i + 1;
            theta = t;
        }
    }
    let mut p: Vec<f64> = v.iter().map(|&x| (x - theta).max(0.0)).collect();
    // With exact arithmetic rho ≥ 1 and Σp = 1, but for inputs of enormous
    // magnitude `css − 1.0` loses the subtraction entirely and theta
    // degenerates. Renormalise whenever the result drifted off the simplex.
    let s: f64 = p.iter().sum();
    if rho == 0 || !s.is_finite() || (s - 1.0).abs() > 1e-9 {
        if rho == 0 || !s.is_finite() || s <= 0.0 {
            // Put all mass on the largest coordinate(s): the correct limit
            // for inputs whose spread dwarfs the unit budget.
            let mx = u[0];
            let eq = ppn_tensor::approx::exact_eq;
            let ties = v.iter().filter(|&&x| eq(x, mx)).count().max(1);
            let p: Vec<f64> =
                v.iter().map(|&x| if eq(x, mx) { 1.0 / ties as f64 } else { 0.0 }).collect();
            ppn_market::contracts::assert_simplex(&p, "project_simplex (degenerate limit)");
            return p;
        }
        for x in &mut p {
            *x /= s;
        }
    }
    ppn_market::contracts::assert_simplex(&p, "project_simplex");
    p
}

/// Normalises a non-negative vector to sum 1; falls back to uniform when the
/// sum vanishes.
pub fn normalize(v: &[f64]) -> Vec<f64> {
    let s: f64 = v.iter().sum();
    if s <= 0.0 || !s.is_finite() {
        return uniform(v.len());
    }
    v.iter().map(|&x| x / s).collect()
}

/// The uniform portfolio over `n` assets.
pub fn uniform(n: usize) -> Vec<f64> {
    vec![1.0 / n as f64; n]
}

/// True when `v` lies on the simplex within `tol`.
pub fn is_simplex(v: &[f64], tol: f64) -> bool {
    let s: f64 = v.iter().sum();
    (s - 1.0).abs() <= tol && v.iter().all(|&x| x >= -tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_of_simplex_point_is_identity() {
        let p = vec![0.2, 0.3, 0.5];
        let q = project_simplex(&p);
        for (a, b) in p.iter().zip(&q) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn projection_clips_negatives() {
        let q = project_simplex(&[1.5, -0.5, 0.0]);
        assert!(is_simplex(&q, 1e-12));
        assert_eq!(q[1], 0.0);
        assert!(q[0] > q[2]);
    }

    #[test]
    fn projection_known_value() {
        // v = (0.5, 0.5, 1.5): theta = 0.5, p = (0, 0, 1).
        let q = project_simplex(&[0.5, 0.5, 1.5]);
        assert!((q[2] - 1.0).abs() < 1e-12);
        assert!(q[0].abs() < 1e-12 && q[1].abs() < 1e-12);
    }

    #[test]
    fn projection_is_idempotent() {
        let q1 = project_simplex(&[3.0, -1.0, 0.2, 0.9]);
        let q2 = project_simplex(&q1);
        for (a, b) in q1.iter().zip(&q2) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn normalize_falls_back_to_uniform() {
        assert_eq!(normalize(&[0.0, 0.0]), vec![0.5, 0.5]);
        let v = normalize(&[2.0, 6.0]);
        assert!((v[0] - 0.25).abs() < 1e-12);
    }
}
