//! Tiny dense linear-algebra helpers for ONS and CWMR (n ≤ ~65).

/// Solves `A x = b` by Gaussian elimination with partial pivoting.
/// `a` is row-major `n×n` and is consumed as scratch.
///
/// # Panics
/// Panics on a numerically singular system.
pub fn solve(mut a: Vec<f64>, mut b: Vec<f64>) -> Vec<f64> {
    let n = b.len();
    assert_eq!(a.len(), n * n);
    for col in 0..n {
        // Pivot.
        let mut piv = col;
        for r in (col + 1)..n {
            if a[r * n + col].abs() > a[piv * n + col].abs() {
                piv = r;
            }
        }
        assert!(a[piv * n + col].abs() > 1e-12, "singular matrix in solve()");
        if piv != col {
            for c in 0..n {
                a.swap(col * n + c, piv * n + c);
            }
            b.swap(col, piv);
        }
        let d = a[col * n + col];
        for r in (col + 1)..n {
            let f = a[r * n + col] / d;
            if ppn_tensor::approx::is_zero(f) {
                continue;
            }
            for c in col..n {
                a[r * n + c] -= f * a[col * n + c];
            }
            b[r] -= f * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for r in (0..n).rev() {
        let mut s = b[r];
        for c in (r + 1)..n {
            s -= a[r * n + c] * x[c];
        }
        x[r] = s / a[r * n + r];
    }
    x
}

/// `y = A x` for row-major `A`.
pub fn matvec(a: &[f64], x: &[f64]) -> Vec<f64> {
    let n = x.len();
    debug_assert_eq!(a.len(), n * n);
    (0..n).map(|r| (0..n).map(|c| a[r * n + c] * x[c]).sum()).collect()
}

/// Rank-1 update `A += s · v vᵀ` in place.
pub fn rank1_update(a: &mut [f64], v: &[f64], s: f64) {
    let n = v.len();
    debug_assert_eq!(a.len(), n * n);
    for r in 0..n {
        for c in 0..n {
            a[r * n + c] += s * v[r] * v[c];
        }
    }
}

/// Quadratic form `xᵀ A y`.
pub fn quad_form(a: &[f64], x: &[f64], y: &[f64]) -> f64 {
    let n = x.len();
    let mut s = 0.0;
    for r in 0..n {
        let mut row = 0.0;
        for c in 0..n {
            row += a[r * n + c] * y[c];
        }
        s += x[r] * row;
    }
    s
}

/// Identity matrix scaled by `s`.
pub fn scaled_identity(n: usize, s: f64) -> Vec<f64> {
    let mut a = vec![0.0; n * n];
    for i in 0..n {
        a[i * n + i] = s;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_known_system() {
        // [[2,1],[1,3]] x = [5, 10] → x = (1, 3).
        let x = solve(vec![2.0, 1.0, 1.0, 3.0], vec![5.0, 10.0]);
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_with_pivoting() {
        // Leading zero forces a row swap.
        let x = solve(vec![0.0, 1.0, 1.0, 0.0], vec![2.0, 3.0]);
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn matvec_and_quadform_agree() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let x = vec![1.0, -1.0];
        let ax = matvec(&a, &x);
        assert_eq!(ax, vec![-1.0, -1.0]);
        assert!((quad_form(&a, &x, &x) - (x[0] * ax[0] + x[1] * ax[1])).abs() < 1e-12);
    }

    #[test]
    fn rank1_symmetry() {
        let mut a = scaled_identity(3, 1.0);
        rank1_update(&mut a, &[1.0, 2.0, 3.0], 0.5);
        for r in 0..3 {
            for c in 0..3 {
                assert!((a[r * 3 + c] - a[c * 3 + r]).abs() < 1e-15);
            }
        }
        assert!((a[4] - (1.0 + 0.5 * 4.0)).abs() < 1e-15);
    }

    #[test]
    fn solve_inverts_rank1_updated_identity() {
        let mut a = scaled_identity(4, 1.0);
        rank1_update(&mut a, &[0.5, -1.0, 2.0, 0.1], 0.3);
        let b = vec![1.0, 2.0, 3.0, 4.0];
        let x = solve(a.clone(), b.clone());
        let back = matvec(&a, &x);
        for (u, v) in back.iter().zip(&b) {
            assert!((u - v).abs() < 1e-10);
        }
    }
}
