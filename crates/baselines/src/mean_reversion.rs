//! First-order mean-reversion strategies: PAMR, OLMAR, RMR and WMAMR.
//!
//! All four share the passive-aggressive template: build a prediction (or
//! loss signal) from recent relatives, take the closed-form PA step, and
//! project back onto the simplex.

use crate::simplex::{project_simplex, uniform};
use ppn_market::{portfolio_return, DecisionContext, SequentialPolicy};

fn mean(v: &[f64]) -> f64 {
    v.iter().sum::<f64>() / v.len() as f64
}

fn sq_dev_norm(v: &[f64]) -> f64 {
    let m = mean(v);
    v.iter().map(|x| (x - m).powi(2)).sum()
}

/// Passive Aggressive Mean Reversion (Li et al., 2012), PAMR-0 variant:
/// when the last period's return `bᵀx` exceeds `ε`, step *against* `x`.
pub struct Pamr {
    /// Reversion threshold ε (0.5 in the original paper).
    pub epsilon: f64,
    b: Vec<f64>,
    seen: usize,
}

impl Pamr {
    /// PAMR-0 with threshold `epsilon`.
    pub fn new(epsilon: f64) -> Self {
        Pamr { epsilon, b: Vec::new(), seen: 0 }
    }

    fn update(&mut self, x: &[f64]) {
        let loss = (portfolio_return(&self.b, x) - self.epsilon).max(0.0);
        let denom = sq_dev_norm(x);
        if loss > 0.0 && denom > 1e-12 {
            let tau = loss / denom;
            let xm = mean(x);
            let raw: Vec<f64> =
                self.b.iter().zip(x).map(|(&bi, &xi)| bi - tau * (xi - xm)).collect();
            self.b = project_simplex(&raw);
        }
    }
}

impl SequentialPolicy for Pamr {
    fn name(&self) -> String {
        "PAMR".into()
    }

    fn decide_one(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        let n = ctx.dataset.assets() + 1;
        if self.b.len() != n {
            self.b = uniform(n);
            self.seen = ctx.history.len();
        }
        while self.seen < ctx.history.len() {
            let x = ctx.history[self.seen].clone();
            self.update(&x);
            self.seen += 1;
        }
        self.b.clone()
    }

    fn reset(&mut self) {
        self.b.clear();
        self.seen = 0;
    }
}

/// Builds the OLMAR moving-average reversion prediction from the last `w`
/// relatives: `x̃_i = (1/w) Σ_{j=0..w−1} p_{t−j,i}/p_{t,i}`, computed as
/// nested reciprocals of the relatives.
pub fn olmar_prediction(history: &[Vec<f64>], w: usize) -> Vec<f64> {
    let n = history.last().map_or(0, Vec::len);
    let mut pred = vec![1.0; n]; // j = 0 term: p_t / p_t
    let mut cum = vec![1.0; n];
    let avail = history.len().min(w.saturating_sub(1));
    for j in 0..avail {
        let x = &history[history.len() - 1 - j];
        for i in 0..n {
            cum[i] /= x[i].max(1e-12);
            pred[i] += cum[i];
        }
    }
    let count = (avail + 1) as f64;
    for p in &mut pred {
        *p /= count;
    }
    pred
}

/// Shared passive-aggressive step *toward* a prediction `x̃`:
/// `b ← Π( b + λ(x̃ − x̄̃·1) )`, `λ = max(0, (ε − bᵀx̃)/‖x̃ − x̄̃·1‖²)`.
fn pa_step_toward(b: &[f64], pred: &[f64], epsilon: f64) -> Vec<f64> {
    let denom = sq_dev_norm(pred);
    let lam =
        if denom > 1e-12 { ((epsilon - portfolio_return(b, pred)) / denom).max(0.0) } else { 0.0 };
    if ppn_tensor::approx::is_zero(lam) {
        return b.to_vec();
    }
    let pm = mean(pred);
    let raw: Vec<f64> = b.iter().zip(pred).map(|(&bi, &pi)| bi + lam * (pi - pm)).collect();
    project_simplex(&raw)
}

/// On-Line Moving Average Reversion (Li & Hoi, 2012), OLMAR-1.
pub struct Olmar {
    /// Reversion threshold ε (10 in the original paper).
    pub epsilon: f64,
    /// Moving-average window (5 in the original paper).
    pub window: usize,
    b: Vec<f64>,
    seen: usize,
}

impl Olmar {
    /// OLMAR-1 with threshold `epsilon` and MA window `window`.
    pub fn new(epsilon: f64, window: usize) -> Self {
        Olmar { epsilon, window, b: Vec::new(), seen: 0 }
    }
}

impl SequentialPolicy for Olmar {
    fn name(&self) -> String {
        "OLMAR".into()
    }

    fn decide_one(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        let n = ctx.dataset.assets() + 1;
        if self.b.len() != n {
            self.b = uniform(n);
        }
        self.seen = ctx.history.len();
        if !ctx.history.is_empty() {
            let pred = olmar_prediction(ctx.history, self.window);
            self.b = pa_step_toward(&self.b, &pred, self.epsilon);
        }
        self.b.clone()
    }

    fn reset(&mut self) {
        self.b.clear();
        self.seen = 0;
    }
}

/// Geometric (L1) median of a set of price vectors via Weiszfeld iterations.
pub fn l1_median(points: &[Vec<f64>], iters: usize, tol: f64) -> Vec<f64> {
    assert!(!points.is_empty());
    let n = points[0].len();
    // Start from the coordinate-wise mean.
    let mut mu = vec![0.0; n];
    for p in points {
        for i in 0..n {
            mu[i] += p[i];
        }
    }
    for v in &mut mu {
        *v /= points.len() as f64;
    }
    for _ in 0..iters {
        let mut num = vec![0.0; n];
        let mut den = 0.0;
        for p in points {
            let d: f64 = p.iter().zip(&mu).map(|(a, b)| (a - b).powi(2)).sum::<f64>().sqrt();
            if d < 1e-12 {
                // Coincides with a data point: Weiszfeld is stuck; the point
                // itself is a fine estimate for our purposes.
                return p.clone();
            }
            for i in 0..n {
                num[i] += p[i] / d;
            }
            den += 1.0 / d;
        }
        let next: Vec<f64> = num.iter().map(|v| v / den).collect();
        let shift: f64 = next.iter().zip(&mu).map(|(a, b)| (a - b).abs()).sum();
        mu = next;
        if shift < tol {
            break;
        }
    }
    mu
}

/// Robust Median Reversion (Huang et al., 2013): OLMAR with the moving-
/// average prediction replaced by the L1-median of the recent price window.
pub struct Rmr {
    /// Reversion threshold ε (5 in the original paper).
    pub epsilon: f64,
    /// Price window (5 in the original paper).
    pub window: usize,
    b: Vec<f64>,
}

impl Rmr {
    /// RMR with threshold `epsilon` and window `window`.
    pub fn new(epsilon: f64, window: usize) -> Self {
        Rmr { epsilon, window, b: Vec::new() }
    }

    /// Median-based reversion prediction `x̃ = median(p_{t−w+1..t}) / p_t`,
    /// with prices reconstructed from relatives normalised to `p_t = 1`.
    pub fn prediction(history: &[Vec<f64>], w: usize) -> Vec<f64> {
        let n = history.last().map_or(0, Vec::len);
        // prices[j] = p_{t−j} / p_t, j = 0..w−1, carried as a running vector
        let mut cur = vec![1.0; n];
        let mut prices = vec![cur.clone()];
        let avail = history.len().min(w.saturating_sub(1));
        for j in 0..avail {
            let x = &history[history.len() - 1 - j];
            cur = cur.iter().zip(x).map(|(&p, &xi)| p / xi.max(1e-12)).collect();
            prices.push(cur.clone());
        }
        l1_median(&prices, 64, 1e-9)
    }
}

impl SequentialPolicy for Rmr {
    fn name(&self) -> String {
        "RMR".into()
    }

    fn decide_one(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        let n = ctx.dataset.assets() + 1;
        if self.b.len() != n {
            self.b = uniform(n);
        }
        if !ctx.history.is_empty() {
            let pred = Rmr::prediction(ctx.history, self.window);
            self.b = pa_step_toward(&self.b, &pred, self.epsilon);
        }
        self.b.clone()
    }

    fn reset(&mut self) {
        self.b.clear();
    }
}

/// Weighted Moving Average Mean Reversion (Gao & Zhang, 2013): PAMR driven
/// by the equal-weighted moving average of the last `w` relatives instead of
/// the single most recent one.
pub struct Wmamr {
    /// Reversion threshold ε (0.5 as in PAMR).
    pub epsilon: f64,
    /// Averaging window (5 in the original paper).
    pub window: usize,
    b: Vec<f64>,
    seen: usize,
}

impl Wmamr {
    /// WMAMR with threshold `epsilon` and window `window`.
    pub fn new(epsilon: f64, window: usize) -> Self {
        Wmamr { epsilon, window, b: Vec::new(), seen: 0 }
    }

    fn update(&mut self, history: &[Vec<f64>]) {
        let n = self.b.len();
        let w = self.window.min(history.len());
        if w == 0 {
            return;
        }
        let mut avg = vec![0.0; n];
        for x in &history[history.len() - w..] {
            for i in 0..n {
                avg[i] += x[i];
            }
        }
        for v in &mut avg {
            *v /= w as f64;
        }
        let loss = (portfolio_return(&self.b, &avg) - self.epsilon).max(0.0);
        let denom = sq_dev_norm(&avg);
        if loss > 0.0 && denom > 1e-12 {
            let tau = loss / denom;
            let am = mean(&avg);
            let raw: Vec<f64> =
                self.b.iter().zip(&avg).map(|(&bi, &ai)| bi - tau * (ai - am)).collect();
            self.b = project_simplex(&raw);
        }
    }
}

impl SequentialPolicy for Wmamr {
    fn name(&self) -> String {
        "WMAMR".into()
    }

    fn decide_one(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        let n = ctx.dataset.assets() + 1;
        if self.b.len() != n {
            self.b = uniform(n);
            self.seen = ctx.history.len();
        }
        while self.seen < ctx.history.len() {
            self.update(&ctx.history[..self.seen + 1]);
            self.seen += 1;
        }
        self.b.clone()
    }

    fn reset(&mut self) {
        self.b.clear();
        self.seen = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::is_simplex;
    use ppn_market::{run_backtest, Dataset, Preset};

    #[test]
    fn pamr_moves_against_winners() {
        let mut p = Pamr::new(0.5);
        p.b = vec![0.25; 4];
        // Asset 3 rallied: PAMR should cut it.
        p.update(&[1.0, 1.0, 1.0, 1.5]);
        assert!(p.b[3] < 0.25, "{:?}", p.b);
        assert!(is_simplex(&p.b, 1e-9));
    }

    #[test]
    fn pamr_passive_when_return_below_epsilon() {
        let mut p = Pamr::new(0.5);
        p.b = vec![0.25; 4];
        // bᵀx ≈ 0.26 < ε: no update (the "passive" branch).
        p.update(&[0.3, 0.2, 0.3, 0.25]);
        assert_eq!(p.b, vec![0.25; 4]);
    }

    #[test]
    fn olmar_prediction_flat_prices_is_one() {
        let hist = vec![vec![1.0; 3]; 10];
        let pred = olmar_prediction(&hist, 5);
        for p in pred {
            assert!((p - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn olmar_prediction_reverts_after_drop() {
        // Asset 1 halved last period → its MA/price ratio is > 1 (expected
        // to bounce back); asset 2 doubled → ratio < 1.
        let mut hist = vec![vec![1.0, 1.0, 1.0]; 5];
        hist.push(vec![1.0, 0.5, 2.0]);
        let pred = olmar_prediction(&hist, 5);
        assert!(pred[1] > 1.2, "{pred:?}");
        assert!(pred[2] < 0.9, "{pred:?}");
    }

    #[test]
    fn l1_median_of_symmetric_points() {
        let pts = vec![vec![0.0, 0.0], vec![2.0, 0.0], vec![1.0, 1.0], vec![1.0, -1.0]];
        let med = l1_median(&pts, 200, 1e-12);
        assert!((med[0] - 1.0).abs() < 1e-6, "{med:?}");
        assert!(med[1].abs() < 1e-6, "{med:?}");
    }

    #[test]
    fn l1_median_robust_to_outlier() {
        let mut pts = vec![vec![1.0, 1.0]; 9];
        pts.push(vec![100.0, 100.0]);
        let med = l1_median(&pts, 200, 1e-12);
        // The mean would be ~10.9; the median stays at the cluster.
        assert!(med[0] < 1.5, "{med:?}");
    }

    #[test]
    fn all_mean_reversion_policies_stay_on_simplex() {
        let ds = Dataset::load(Preset::CryptoB);
        let mut policies: Vec<Box<dyn ppn_market::Policy>> = vec![
            Box::new(Pamr::new(0.5)),
            Box::new(Olmar::new(10.0, 5)),
            Box::new(Rmr::new(5.0, 5)),
            Box::new(Wmamr::new(0.5, 5)),
        ];
        for p in &mut policies {
            let r = run_backtest(&ds, p.as_mut(), 0.0025, 100..250);
            for rec in &r.records {
                assert!(is_simplex(&rec.action, 1e-6), "{} off simplex", r.name);
            }
        }
    }

    #[test]
    fn olmar_profits_on_mean_reverting_market() {
        // Crypto-B is built strongly mean-reverting: OLMAR should beat CRP
        // before costs, mirroring the paper's Table 3 ordering.
        let ds = Dataset::load(Preset::CryptoB);
        let range = ppn_market::test_range(&ds);
        let r_olmar = run_backtest(&ds, &mut Olmar::new(10.0, 5), 0.0, range.clone());
        let r_crp = run_backtest(&ds, &mut crate::benchmarks::Crp, 0.0, range);
        assert!(
            r_olmar.metrics.apv > r_crp.metrics.apv,
            "OLMAR {} ≤ CRP {}",
            r_olmar.metrics.apv,
            r_crp.metrics.apv
        );
    }
}
