//! Confidence-Weighted Mean Reversion (Li et al., AISTATS 2011), CWMR-Var.
//!
//! CWMR maintains a Gaussian belief `N(μ, Σ)` over portfolios and, after
//! each period, makes the smallest KL-divergence update that makes the
//! *mean-reversion* constraint hold with confidence `φ`:
//!
//! ```text
//! minimise  KL(N(μ,Σ) ‖ N(μ_t,Σ_t))
//! s.t.      μᵀx_t + φ · xᵀΣx_t ≤ ε            (Var linearisation)
//! ```
//!
//! The Lagrangian stationarity conditions give
//!
//! ```text
//! μ'      = μ − λ Σ (x − x̄·1),   x̄ = (1ᵀΣx)/(1ᵀΣ1)
//! Σ'^{-1} = Σ^{-1} + 2λφ x xᵀ    (Sherman–Morrison keeps it closed-form)
//! ```
//!
//! The original paper solves a quadratic for the multiplier λ; we solve the
//! *same* KKT condition numerically by bisection on the (monotone) active-
//! constraint residual, which is simpler to verify and numerically robust.
//! Post-update, μ is projected to the simplex and Σ is renormalised to a
//! constant trace, exactly as in the OLPS reference implementation.

use crate::linalg::{matvec, quad_form};
use crate::simplex::{project_simplex, uniform};
use ppn_market::{DecisionContext, SequentialPolicy};

/// CWMR-Var with numerically-solved multiplier.
pub struct Cwmr {
    /// Reversion threshold ε (0.5 in the original paper).
    pub epsilon: f64,
    /// Confidence parameter φ (2.0 ≈ 95% in the original paper).
    pub phi: f64,
    mu: Vec<f64>,
    sigma: Vec<f64>, // row-major n×n
    seen: usize,
}

impl Cwmr {
    /// CWMR with threshold `epsilon` and confidence `phi`.
    pub fn new(epsilon: f64, phi: f64) -> Self {
        Cwmr { epsilon, phi, mu: Vec::new(), sigma: Vec::new(), seen: 0 }
    }

    fn init(&mut self, n: usize) {
        self.mu = uniform(n);
        // OLPS initialisation: Σ = I / n².
        self.sigma = crate::linalg::scaled_identity(n, 1.0 / (n * n) as f64);
    }

    /// Constraint residual after applying multiplier `lam`:
    /// `f(λ) = μ'(λ)ᵀ x + φ · xᵀ Σ'(λ) x − ε` (monotone decreasing in λ).
    fn residual(&self, x: &[f64], lam: f64) -> f64 {
        let n = x.len();
        let sx = matvec(&self.sigma, x);
        let s1: Vec<f64> = (0..n).map(|r| (0..n).map(|c| self.sigma[r * n + c]).sum()).collect();
        let ones_s_ones: f64 = s1.iter().sum();
        let xbar = s1.iter().zip(x).map(|(a, b)| a * b).sum::<f64>() / ones_s_ones.max(1e-300);
        // μ' = μ − λ Σ (x − x̄ 1)
        let mu_new: Vec<f64> = (0..n).map(|i| self.mu[i] - lam * (sx[i] - xbar * s1[i])).collect();
        // Σ' via Sherman–Morrison on Σ^{-1} + 2λφ xxᵀ.
        let v = quad_form(&self.sigma, x, x);
        let denom = 1.0 + 2.0 * lam * self.phi * v;
        let v_new = v / denom; // xᵀΣ'x
        let m: f64 = mu_new.iter().zip(x).map(|(a, b)| a * b).sum();
        m + self.phi * v_new - self.epsilon
    }

    fn update(&mut self, x: &[f64]) {
        let n = x.len();
        if self.residual(x, 0.0) <= 0.0 {
            return; // constraint already satisfied — passive step
        }
        // Bisection on the monotone residual. λ is capped: beyond ~1e6 the
        // update direction saturates and larger multipliers only amplify
        // floating-point noise.
        let mut hi = 1.0;
        let mut guard = 0;
        while self.residual(x, hi) > 0.0 && guard < 20 {
            hi *= 2.0;
            guard += 1;
        }
        if self.residual(x, hi) > 0.0 {
            // Constraint unreachable at any sane multiplier: the belief has
            // degenerated numerically — restart it rather than blow up.
            self.init(x.len());
            return;
        }
        let mut lo = 0.0;
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if self.residual(x, mid) > 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let lam = hi;

        // Apply the update at λ.
        let sx = matvec(&self.sigma, x);
        let s1: Vec<f64> = (0..n).map(|r| (0..n).map(|c| self.sigma[r * n + c]).sum()).collect();
        let ones_s_ones: f64 = s1.iter().sum();
        let xbar = s1.iter().zip(x).map(|(a, b)| a * b).sum::<f64>() / ones_s_ones.max(1e-300);
        for i in 0..n {
            self.mu[i] -= lam * (sx[i] - xbar * s1[i]);
        }
        // Σ ← Σ − (2λφ / (1 + 2λφ xᵀΣx)) (Σx)(Σx)ᵀ
        let v = quad_form(&self.sigma, x, x);
        let coef = 2.0 * lam * self.phi / (1.0 + 2.0 * lam * self.phi * v);
        for r in 0..n {
            for c in 0..n {
                self.sigma[r * n + c] -= coef * sx[r] * sx[c];
            }
        }
        // Normalise: μ onto the simplex, Σ to constant trace (OLPS style).
        if self.mu.iter().any(|v| !v.is_finite()) || self.sigma.iter().any(|v| !v.is_finite()) {
            // Numerical degeneration (Σ lost positive-definiteness after
            // thousands of rank-1 downdates): restart the belief. This is
            // the same recovery the OLPS toolbox applies.
            self.init(n);
            return;
        }
        self.mu = project_simplex(&self.mu);
        let trace: f64 = (0..n).map(|i| self.sigma[i * n + i]).sum();
        if trace > 1e-12 {
            let target = 1.0 / n as f64; // keep tr(Σ) = 1/n
            let s = target / trace;
            for v in &mut self.sigma {
                *v *= s;
            }
        } else {
            self.init(n);
        }
    }
}

impl SequentialPolicy for Cwmr {
    fn name(&self) -> String {
        "CWMR".into()
    }

    fn decide_one(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        let n = ctx.dataset.assets() + 1;
        if self.mu.len() != n {
            self.init(n);
            self.seen = ctx.history.len();
        }
        while self.seen < ctx.history.len() {
            let x = ctx.history[self.seen].clone();
            self.update(&x);
            self.seen += 1;
        }
        self.mu.clone()
    }

    fn reset(&mut self) {
        self.mu.clear();
        self.sigma.clear();
        self.seen = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::is_simplex;
    use ppn_market::{run_backtest, Dataset, Preset};

    #[test]
    fn passive_when_constraint_satisfied() {
        let mut c = Cwmr::new(0.5, 2.0);
        c.init(4);
        let mu0 = c.mu.clone();
        // Low-return relatives: μᵀx + φV ≈ 0.3 < ε → no update.
        c.update(&[0.3, 0.3, 0.3, 0.3]);
        assert_eq!(c.mu, mu0);
    }

    #[test]
    fn aggressive_update_enforces_constraint() {
        let mut c = Cwmr::new(0.5, 2.0);
        c.init(4);
        let x = [1.0, 1.2, 0.9, 1.1];
        assert!(c.residual(&x, 0.0) > 0.0);
        c.update(&x);
        // After the (pre-normalisation) update the residual at λ=0 would be
        // ~0; after simplex projection μ stays valid.
        assert!(is_simplex(&c.mu, 1e-9));
    }

    #[test]
    fn shifts_weight_to_recent_losers() {
        let mut c = Cwmr::new(0.5, 2.0);
        c.init(3);
        // Asset 2 rallied hard, asset 1 crashed: mean reversion buys 1.
        for _ in 0..3 {
            c.update(&[1.0, 0.7, 1.4]);
        }
        assert!(c.mu[1] > c.mu[2], "{:?}", c.mu);
    }

    #[test]
    fn full_backtest_on_simplex() {
        let ds = Dataset::load(Preset::CryptoA);
        let r = run_backtest(&ds, &mut Cwmr::new(0.5, 2.0), 0.0025, 100..250);
        for rec in &r.records {
            assert!(is_simplex(&rec.action, 1e-6));
        }
    }
}
