//! Long-horizon numerical stability: every baseline must survive a full
//! test-split backtest on every crypto preset without leaving the simplex.

use ppn_baselines::*;
use ppn_market::{run_backtest, test_range, Dataset, Preset};

#[test]
fn all_baselines_survive_full_test_split() {
    for preset in [Preset::CryptoA, Preset::CryptoB, Preset::CryptoC, Preset::CryptoD] {
        let ds = Dataset::load(preset);
        let range = test_range(&ds);
        for mut p in standard_suite(&ds, range.clone()) {
            let r = run_backtest(&ds, p.as_mut(), 0.0025, range.clone());
            assert!(
                r.metrics.apv.is_finite() && r.metrics.apv > 0.0,
                "{} on {}: APV {}",
                r.name,
                preset.name(),
                r.metrics.apv
            );
        }
    }
}
