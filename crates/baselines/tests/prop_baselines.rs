//! Property tests: every baseline must emit simplex actions on arbitrary
//! (valid) relative histories, and the simplex projection must satisfy its
//! optimality characterisation.

use ppn_baselines::simplex::{is_simplex, project_simplex};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn projection_is_on_simplex(v in prop::collection::vec(-5.0..5.0f64, 1..20)) {
        let p = project_simplex(&v);
        prop_assert!(is_simplex(&p, 1e-9), "{p:?}");
    }

    #[test]
    fn projection_is_closest_point(
        pair in (2usize..8).prop_flat_map(|n| (
            prop::collection::vec(-3.0..3.0f64, n),
            prop::collection::vec(0.0..1.0f64, n),
        )),
    ) {
        // The projection must be at least as close as any other simplex point.
        let (v, probe) = pair;
        let p = project_simplex(&v);
        let s: f64 = probe.iter().sum();
        prop_assume!(s > 0.0);
        let q: Vec<f64> = probe.iter().map(|x| x / s).collect();
        let d = |a: &[f64]| -> f64 {
            a.iter().zip(&v).map(|(x, y)| (x - y).powi(2)).sum()
        };
        prop_assert!(d(&p) <= d(&q) + 1e-9, "projection {} vs probe {}", d(&p), d(&q));
    }

    #[test]
    fn projection_translation_invariance(
        v in prop::collection::vec(-3.0..3.0f64, 2..8),
        c in -2.0..2.0f64,
    ) {
        // Adding a constant to every coordinate does not change the result.
        let shifted: Vec<f64> = v.iter().map(|x| x + c).collect();
        let p1 = project_simplex(&v);
        let p2 = project_simplex(&shifted);
        for (a, b) in p1.iter().zip(&p2) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }
}

/// Backtest-level property: run the cheap baselines over random sub-ranges
/// and check all actions are valid portfolios.
#[test]
fn suite_actions_always_valid() {
    use ppn_baselines::*;
    use ppn_market::{run_backtest, Dataset, Policy, Preset};
    let ds = Dataset::load(Preset::CryptoA);
    let mut policies: Vec<Box<dyn Policy>> = vec![
        Box::new(Ubah::default()),
        Box::new(Crp),
        Box::new(ExponentialGradient::new(0.05)),
        Box::new(Pamr::new(0.5)),
        Box::new(Olmar::new(10.0, 5)),
        Box::new(Wmamr::new(0.5, 5)),
    ];
    for start in [60usize, 500, 2_000] {
        for p in &mut policies {
            let r = run_backtest(&ds, p.as_mut(), 0.0025, start..start + 40);
            for rec in &r.records {
                assert!(
                    ppn_baselines::simplex::is_simplex(&rec.action, 1e-6),
                    "{} at t={} off simplex",
                    r.name,
                    rec.t
                );
                assert!(rec.wealth > 0.0 && rec.wealth.is_finite());
            }
        }
    }
}
