//! PPN-AC: the DDPG actor-critic comparison of §7.2 / Table 9.
//!
//! The paper argues that value-function approximation is ill-suited to this
//! MDP (the action does not influence the state, and the decision process is
//! non-stationary) and shows empirically that a DDPG-trained PPN ("PPN-AC")
//! underperforms the direct-policy-gradient PPN. This module implements that
//! comparison system: the actor *is* a [`PolicyNet`], the critic is a small
//! convolutional Q-network, and training uses the standard DDPG loop —
//! replay buffer, target networks with soft updates, deterministic policy
//! gradient through the critic.

use crate::batch::WindowBatch;
use crate::config::{NetConfig, RewardConfig};
use crate::ppn::{PolicyNet, Variant};
use ppn_market::{Dataset, TradingEnv};
use ppn_tensor::layers::{Conv2dLayer, ConvKind, Dense};
use ppn_tensor::{clip_global_norm, Adam, Binding, Graph, NodeId, Optimizer, ParamStore};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Q-network: window features + proposed action → scalar value.
pub struct Critic {
    /// Parameters of the critic.
    pub store: ParamStore,
    conv1: Conv2dLayer,
    conv2: Conv2dLayer,
    fuse: Conv2dLayer,
    head1: Dense,
    head2: Dense,
}

impl Critic {
    /// Fresh critic for the given architecture config.
    pub fn new<R: Rng>(cfg: NetConfig, rng: &mut R) -> Self {
        let mut store = ParamStore::new();
        let conv1 = Conv2dLayer::new(
            &mut store,
            rng,
            "q.conv1",
            cfg.features,
            8,
            (1, 3),
            (1, 1),
            ConvKind::Valid,
        );
        let conv2 = Conv2dLayer::new(
            &mut store,
            rng,
            "q.conv2",
            8,
            16,
            (1, cfg.window - 2),
            (1, 1),
            ConvKind::Valid,
        );
        // 16 feature channels + 1 action channel fused per asset.
        let fuse =
            Conv2dLayer::new(&mut store, rng, "q.fuse", 17, 4, (1, 1), (1, 1), ConvKind::Valid);
        let head1 = Dense::new(&mut store, rng, "q.head1", 4 * cfg.assets + 1, 32);
        let head2 = Dense::new(&mut store, rng, "q.head2", 32, 1);
        Critic { store, conv1, conv2, fuse, head1, head2 }
    }

    /// `Q(s, a)`: `batch` carries the states; `actions` is a `(B, m+1)`
    /// node (cash first). Returns `(B, 1)`.
    pub fn forward(
        &self,
        g: &mut Graph,
        bind: &Binding,
        batch: &WindowBatch,
        actions: NodeId,
    ) -> NodeId {
        let b = batch.batch;
        let m = batch.m;
        let x = g.leaf(batch.conv_input.clone());
        let h = self.conv1.forward(g, bind, x);
        let h = g.relu(h);
        let h = self.conv2.forward(g, bind, h); // (B, 16, m, 1)
        let h = g.relu(h);
        // Risky action slice as an extra channel.
        let risky = g.slice(actions, 1, 1, m + 1); // (B, m)
        let risky4 = g.reshape(risky, &[b, 1, m, 1]);
        let fused_in = g.concat(&[h, risky4], 1); // (B, 17, m, 1)
        let f = self.fuse.forward(g, bind, fused_in); // (B, 4, m, 1)
        let f = g.relu(f);
        let flat = g.reshape(f, &[b, 4 * m]);
        // Cash weight enters the head directly.
        let cash = g.slice(actions, 1, 0, 1); // (B, 1)
        let head_in = g.concat(&[flat, cash], 1);
        let h1 = self.head1.forward(g, bind, head_in);
        let h1 = g.relu(h1);
        self.head2.forward(g, bind, h1)
    }
}

/// One replay transition.
#[derive(Clone)]
struct Transition {
    window: Vec<f64>,
    prev_action: Vec<f64>,
    action: Vec<f64>,
    reward: f64,
    next_window: Vec<f64>,
}

/// DDPG hyper-parameters.
#[derive(Debug, Clone)]
pub struct DdpgConfig {
    /// Environment steps (and gradient updates once the buffer warms up).
    pub steps: usize,
    /// Replay capacity.
    pub buffer: usize,
    /// Minibatch size.
    pub batch: usize,
    /// Discount factor.
    pub discount: f64,
    /// Target-network soft-update rate τ.
    pub tau: f64,
    /// Actor learning rate.
    pub actor_lr: f64,
    /// Critic learning rate.
    pub critic_lr: f64,
    /// Initial exploration mixing weight (decays linearly to 0).
    pub explore: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DdpgConfig {
    fn default() -> Self {
        DdpgConfig {
            steps: 600,
            buffer: 2_000,
            batch: 16,
            discount: 0.99,
            tau: 0.01,
            actor_lr: 1e-4,
            critic_lr: 1e-3,
            explore: 0.3,
            seed: 0,
        }
    }
}

/// DDPG trainer producing a PPN-AC policy.
pub struct DdpgTrainer<'a> {
    dataset: &'a Dataset,
    /// The actor network (a PPN).
    pub actor: PolicyNet,
    actor_target: PolicyNet,
    critic: Critic,
    critic_target: Critic,
    cfg: DdpgConfig,
    reward_cfg: RewardConfig,
    buffer: Vec<Transition>,
    rng: StdRng,
    actor_opt: Adam,
    critic_opt: Adam,
}

impl<'a> DdpgTrainer<'a> {
    /// Builds actor/critic pairs with aligned target copies.
    pub fn new(
        dataset: &'a Dataset,
        variant: Variant,
        reward_cfg: RewardConfig,
        cfg: DdpgConfig,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let net_cfg = NetConfig::paper(dataset.assets());
        let actor = PolicyNet::new(variant, net_cfg.clone(), &mut rng);
        let mut actor_target = PolicyNet::new(variant, net_cfg.clone(), &mut rng);
        actor_target.store.copy_from(&actor.store);
        let critic = Critic::new(net_cfg.clone(), &mut rng);
        let mut critic_target = Critic::new(net_cfg, &mut rng);
        critic_target.store.copy_from(&critic.store);
        let actor_opt = Adam::new(cfg.actor_lr);
        let critic_opt = Adam::new(cfg.critic_lr);
        DdpgTrainer {
            dataset,
            actor,
            actor_target,
            critic,
            critic_target,
            cfg,
            reward_cfg,
            buffer: Vec::new(),
            rng,
            actor_opt,
            critic_opt,
        }
    }

    fn batch_from(&self, trans: &[&Transition]) -> (WindowBatch, Vec<Vec<f64>>) {
        let windows: Vec<Vec<f64>> = trans.iter().map(|t| t.window.clone()).collect();
        let prevs: Vec<Vec<f64>> = trans.iter().map(|t| t.prev_action.clone()).collect();
        let b = WindowBatch::new(
            &windows,
            &prevs,
            self.dataset.assets(),
            self.actor.cfg.window,
            self.actor.cfg.features,
        );
        (b, prevs)
    }

    fn update_networks(&mut self) -> (f64, f64) {
        let idx: Vec<usize> =
            (0..self.cfg.batch).map(|_| self.rng.gen_range(0..self.buffer.len())).collect();
        let trans: Vec<Transition> = idx.iter().map(|&i| self.buffer[i].clone()).collect();
        let refs: Vec<&Transition> = trans.iter().collect();
        let bsz = refs.len();
        let m1 = self.dataset.assets() + 1;

        // ----- Targets: y = r + γ Q'(s', μ'(s')) — no gradients needed.
        let next_windows: Vec<Vec<f64>> = refs.iter().map(|t| t.next_window.clone()).collect();
        let next_prevs: Vec<Vec<f64>> = refs.iter().map(|t| t.action.clone()).collect();
        let next_batch = WindowBatch::new(
            &next_windows,
            &next_prevs,
            self.dataset.assets(),
            self.actor.cfg.window,
            self.actor.cfg.features,
        );
        let mut y = vec![0.0; bsz];
        {
            let mut g = Graph::new();
            let ab = self.actor_target.store.bind_frozen(&mut g);
            let qb = self.critic_target.store.bind_frozen(&mut g);
            let next_a = self.actor_target.forward(&mut g, &ab, &next_batch, false, &mut self.rng);
            let q_next = self.critic_target.forward(&mut g, &qb, &next_batch, next_a);
            for (i, t) in refs.iter().enumerate() {
                y[i] = t.reward + self.cfg.discount * g.value(q_next).data()[i];
            }
        }

        // ----- Critic update: minimise MSE(Q(s,a), y).
        let (state_batch, _) = self.batch_from(&refs);
        let actions_flat: Vec<f64> = refs.iter().flat_map(|t| t.action.clone()).collect();
        let critic_loss;
        {
            let mut g = Graph::new();
            let qb = self.critic.store.bind(&mut g);
            let a = g.leaf(ppn_tensor::Tensor::from_vec(&[bsz, m1], actions_flat));
            let q = self.critic.forward(&mut g, &qb, &state_batch, a);
            let target = g.leaf(ppn_tensor::Tensor::from_vec(&[bsz, 1], y));
            let d = g.sub(q, target);
            let sq = g.square(d);
            let loss = g.mean(sq);
            g.backward(loss);
            critic_loss = g.value(loss).item();
            let mut grads = qb.grads(&g);
            clip_global_norm(&mut grads, 5.0);
            self.critic_opt.step(&mut self.critic.store, &grads);
        }

        // ----- Actor update: maximise Q(s, μ(s)) with the critic frozen.
        let actor_obj;
        {
            let mut g = Graph::new();
            let ab = self.actor.store.bind(&mut g);
            let qb = self.critic.store.bind_frozen(&mut g);
            let a = self.actor.forward(&mut g, &ab, &state_batch, true, &mut self.rng);
            let q = self.critic.forward(&mut g, &qb, &state_batch, a);
            let mq = g.mean(q);
            let loss = g.neg(mq);
            g.backward(loss);
            actor_obj = g.value(mq).item();
            let mut grads = ab.grads(&g);
            clip_global_norm(&mut grads, 5.0);
            self.actor_opt.step(&mut self.actor.store, &grads);
        }

        // ----- Soft target updates.
        self.actor_target.store.soft_update_from(&self.actor.store, self.cfg.tau);
        self.critic_target.store.soft_update_from(&self.critic.store, self.cfg.tau);
        (critic_loss, actor_obj)
    }

    /// Runs the DDPG loop and returns the trained actor.
    pub fn train(mut self) -> PolicyNet {
        let k = self.actor.cfg.window;
        let split = self.dataset.split;
        let m1 = self.dataset.assets() + 1;
        let mut env = TradingEnv::new(self.dataset, k, self.reward_cfg.psi, k..split);
        let mut obs = env.reset();
        for step in 0..self.cfg.steps {
            // ε-mixed exploratory action.
            let eps = self.cfg.explore * (1.0 - step as f64 / self.cfg.steps as f64);
            let mut action = self.actor.act(&obs.window, &obs.prev_action);
            if eps > 0.0 {
                let noise: Vec<f64> =
                    (0..m1).map(|_| -self.rng.gen_range(f64::MIN_POSITIVE..1.0f64).ln()).collect();
                let ns: f64 = noise.iter().sum();
                for (a, n) in action.iter_mut().zip(&noise) {
                    *a = (1.0 - eps) * *a + eps * n / ns;
                }
            }
            let prev = obs.prev_action.clone();
            let window = obs.window.clone();
            let out = env.step(&action);
            if out.done {
                obs = env.reset();
            } else {
                obs = env.observe();
            }
            self.buffer.push(Transition {
                window,
                prev_action: prev,
                action,
                reward: out.reward,
                next_window: obs.window.clone(),
            });
            if self.buffer.len() > self.cfg.buffer {
                self.buffer.remove(0);
            }
            if self.buffer.len() >= self.cfg.batch {
                self.update_networks();
            }
        }
        self.actor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppn_market::Preset;

    #[test]
    fn critic_outputs_scalar_per_sample() {
        let cfg = NetConfig { window: 10, ..NetConfig::paper(4) };
        let mut rng = StdRng::seed_from_u64(0);
        let critic = Critic::new(cfg.clone(), &mut rng);
        let windows = vec![vec![1.0; 4 * 10 * 4]; 3];
        let prevs = vec![vec![0.2; 5]; 3];
        let batch = WindowBatch::new(&windows, &prevs, 4, 10, 4);
        let mut g = Graph::new();
        let bind = critic.store.bind(&mut g);
        let a = g.leaf(ppn_tensor::Tensor::full(&[3, 5], 0.2));
        let q = critic.forward(&mut g, &bind, &batch, a);
        assert_eq!(g.value(q).shape(), &[3, 1]);
    }

    #[test]
    fn actor_gradient_flows_through_frozen_critic() {
        let cfg = NetConfig { window: 10, ..NetConfig::paper(3) };
        let mut rng = StdRng::seed_from_u64(1);
        let actor = PolicyNet::new(Variant::PpnLstm, cfg.clone(), &mut rng);
        let critic = Critic::new(cfg.clone(), &mut rng);
        let windows = vec![vec![1.0; 3 * 10 * 4]; 2];
        let prevs = vec![vec![0.25; 4]; 2];
        let batch = WindowBatch::new(&windows, &prevs, 3, 10, 4);
        let mut g = Graph::new();
        let ab = actor.store.bind(&mut g);
        let qb = critic.store.bind_frozen(&mut g);
        let a = actor.forward(&mut g, &ab, &batch, false, &mut rng);
        let q = critic.forward(&mut g, &qb, &batch, a);
        let mq = g.mean(q);
        let loss = g.neg(mq);
        g.backward(loss);
        let actor_grads = ab.grads(&g);
        assert!(actor_grads.iter().all(|gr| gr.is_some()), "actor params unreached");
        let critic_grads = qb.grads(&g);
        assert!(critic_grads.iter().all(|gr| gr.is_none()), "frozen critic got gradients");
    }

    #[test]
    fn short_ddpg_run_produces_usable_actor() {
        let ds = Dataset::load(Preset::CryptoA);
        let cfg = DdpgConfig { steps: 12, batch: 4, ..DdpgConfig::default() };
        let trainer = DdpgTrainer::new(&ds, Variant::PpnLstm, RewardConfig::default(), cfg);
        let actor = trainer.train();
        let w = ds.window(100, actor.cfg.window);
        let a = actor.act(&w, &[1.0 / 13.0; 13]);
        assert!((a.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
