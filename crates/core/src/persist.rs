//! Model checkpointing: save and load trained [`PolicyNet`]s.
//!
//! The checkpoint stores a format version, the variant, the architecture
//! config, and every parameter tensor. Loading rebuilds the architecture
//! deterministically and swaps in the saved weights; parameter registration
//! order is deterministic per variant, so shapes are verified pairwise on
//! load.
//!
//! ## Versioning
//!
//! Checkpoints carry a `schema_version` field. Files written before the
//! field existed parse as version 1 (the current layout); files from a
//! *newer* schema are rejected with a descriptive error instead of being
//! misread.

use crate::config::NetConfig;
use crate::ppn::{PolicyNet, Variant};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// The checkpoint format version this build writes and the newest it reads.
pub const SCHEMA_VERSION: u32 = 1;

/// On-disk representation of a trained network.
#[derive(Serialize)]
pub struct Checkpoint {
    /// Checkpoint format version (see [`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Variant display name.
    pub variant: String,
    /// Architecture configuration.
    pub cfg: NetConfig,
    /// All parameter tensors in registration order.
    pub store: ppn_tensor::ParamStore,
}

// Hand-written so that legacy files without `schema_version` keep loading
// (the derive shim requires every field to be present).
impl Deserialize for Checkpoint {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {
        let schema_version = match v.field("schema_version") {
            Ok(f) => u32::deserialize(f)?,
            // Pre-versioning checkpoints are by definition version 1.
            Err(_) => 1,
        };
        Ok(Checkpoint {
            schema_version,
            variant: String::deserialize(v.field("variant")?)?,
            cfg: NetConfig::deserialize(v.field("cfg")?)?,
            store: ppn_tensor::ParamStore::deserialize(v.field("store")?)?,
        })
    }
}

/// Borrowed view of a checkpoint, so [`PolicyNet::save`] serialises the
/// parameter tensors in place instead of cloning the whole store first.
/// Field order mirrors [`Checkpoint`] exactly; hand-written because the
/// derive shim does not handle lifetimes.
struct CheckpointRef<'a> {
    variant: &'a str,
    cfg: &'a NetConfig,
    store: &'a ppn_tensor::ParamStore,
}

impl Serialize for CheckpointRef<'_> {
    fn serialize(&self, s: &mut serde::Ser) {
        s.begin_obj();
        s.key("schema_version");
        SCHEMA_VERSION.serialize(s);
        s.key("variant");
        self.variant.serialize(s);
        s.key("cfg");
        self.cfg.serialize(s);
        s.key("store");
        self.store.serialize(s);
        s.end_obj();
    }
}

impl PolicyNet {
    /// Serialises the network to a JSON checkpoint at `path`, tagged with
    /// the current [`SCHEMA_VERSION`]. Tensors are serialised borrowed —
    /// no copy of the parameter store is made.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let ck = CheckpointRef { variant: self.variant.name(), cfg: &self.cfg, store: &self.store };
        let json = serde_json::to_vec(&ck).map_err(io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Loads a checkpoint saved by [`PolicyNet::save`].
    ///
    /// # Errors
    /// Fails on I/O problems, malformed JSON, a `schema_version` newer than
    /// this build understands, an unknown variant name, or a parameter
    /// count/shape mismatch against the rebuilt architecture.
    pub fn load(path: impl AsRef<Path>) -> io::Result<PolicyNet> {
        let bytes = std::fs::read(path)?;
        let ck: Checkpoint = serde_json::from_slice(&bytes).map_err(io::Error::other)?;
        if ck.schema_version == 0 || ck.schema_version > SCHEMA_VERSION {
            return Err(io::Error::other(format!(
                "checkpoint schema_version {} is not supported: this build reads versions 1..={SCHEMA_VERSION} \
                 (file written by a newer ppn-core?)",
                ck.schema_version
            )));
        }
        let variant = Variant::from_name(&ck.variant)
            .ok_or_else(|| io::Error::other(format!("unknown variant '{}'", ck.variant)))?;
        // Rebuild the architecture (rng only seeds throwaway initial values).
        let mut rng = rand::rngs::mock::StepRng::new(1, 1);
        let mut net = PolicyNet::new(variant, ck.cfg, &mut rng);
        if net.store.len() != ck.store.len() {
            return Err(io::Error::other(format!(
                "checkpoint has {} parameter tensors, architecture expects {}",
                ck.store.len(),
                net.store.len()
            )));
        }
        for (dst, src) in net.store.ids().zip(ck.store.ids()).collect::<Vec<_>>() {
            let (dshape, sshape) =
                (net.store.value(dst).shape().to_vec(), ck.store.value(src).shape().to_vec());
            if dshape != sshape {
                return Err(io::Error::other(format!(
                    "shape mismatch for '{}': {:?} vs {:?}",
                    ck.store.name(src),
                    dshape,
                    sshape
                )));
            }
            *net.store.value_mut(dst) = ck.store.value(src).clone();
        }
        Ok(net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn save_load_round_trip_preserves_behaviour() {
        let cfg = NetConfig { window: 10, ..NetConfig::paper(4) };
        let mut rng = StdRng::seed_from_u64(11);
        let net = PolicyNet::new(Variant::Ppn, cfg.clone(), &mut rng);
        let window: Vec<f64> =
            (0..cfg.assets * cfg.window * 4).map(|i| 1.0 + 0.002 * (i as f64).sin()).collect();
        let prev = vec![0.2; 5];
        let before = net.act(&window, &prev);

        let dir = std::env::temp_dir().join("ppn_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        net.save(&path).unwrap();
        let loaded = PolicyNet::load(&path).unwrap();
        let after = loaded.act(&window, &prev);
        assert_eq!(before, after, "loaded model must act identically");
        assert_eq!(loaded.variant, Variant::Ppn);
    }

    #[test]
    fn load_rejects_wrong_architecture() {
        let cfg = NetConfig { window: 10, ..NetConfig::paper(4) };
        let mut rng = StdRng::seed_from_u64(12);
        let net = PolicyNet::new(Variant::PpnLstm, cfg, &mut rng);
        let dir = std::env::temp_dir().join("ppn_ckpt_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        net.save(&path).unwrap();
        // Corrupt the variant name.
        let mut ck: Checkpoint = serde_json::from_slice(&std::fs::read(&path).unwrap()).unwrap();
        ck.variant = "NOT-A-NET".into();
        std::fs::write(&path, serde_json::to_vec(&ck).unwrap()).unwrap();
        assert!(PolicyNet::load(&path).is_err());
    }

    #[test]
    fn load_rejects_shape_mismatch() {
        // Use a CCONV variant: its kernel height is the asset count, so a
        // changed `assets` must be caught (pure-LSTM nets share weights
        // across assets and are legitimately asset-count agnostic).
        let cfg = NetConfig { window: 10, ..NetConfig::paper(4) };
        let mut rng = StdRng::seed_from_u64(13);
        let net = PolicyNet::new(Variant::Ppn, cfg, &mut rng);
        let dir = std::env::temp_dir().join("ppn_ckpt_test3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        net.save(&path).unwrap();
        let mut ck: Checkpoint = serde_json::from_slice(&std::fs::read(&path).unwrap()).unwrap();
        // Claim a different asset count: first-layer shapes no longer match.
        ck.cfg.assets = 7;
        std::fs::write(&path, serde_json::to_vec(&ck).unwrap()).unwrap();
        assert!(PolicyNet::load(&path).is_err());
    }
}
