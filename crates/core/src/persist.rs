//! Model checkpointing: save and load trained [`PolicyNet`]s.
//!
//! The checkpoint stores the variant, the architecture config, and every
//! parameter tensor. Loading rebuilds the architecture deterministically and
//! swaps in the saved weights; parameter registration order is deterministic
//! per variant, so shapes are verified pairwise on load.

use crate::config::NetConfig;
use crate::ppn::{PolicyNet, Variant};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// On-disk representation of a trained network.
#[derive(Serialize, Deserialize)]
pub struct Checkpoint {
    /// Variant display name.
    pub variant: String,
    /// Architecture configuration.
    pub cfg: NetConfig,
    /// All parameter tensors in registration order.
    pub store: ppn_tensor::ParamStore,
}

impl PolicyNet {
    /// Serialises the network to a JSON checkpoint at `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let ck = Checkpoint {
            variant: self.variant.name().to_string(),
            cfg: self.cfg.clone(),
            store: {
                // Serialize from a reference without cloning tensors twice:
                // ParamStore is plain data, serde needs an owned or borrowed
                // value — borrow works via a helper struct below.
                let mut fresh = ppn_tensor::ParamStore::new();
                for id in self.store.ids() {
                    fresh.add(self.store.name(id), self.store.value(id).clone());
                }
                fresh
            },
        };
        let json = serde_json::to_vec(&ck).map_err(io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Loads a checkpoint saved by [`PolicyNet::save`].
    ///
    /// # Errors
    /// Fails on I/O problems, malformed JSON, an unknown variant name, or a
    /// parameter count/shape mismatch against the rebuilt architecture.
    pub fn load(path: impl AsRef<Path>) -> io::Result<PolicyNet> {
        let bytes = std::fs::read(path)?;
        let ck: Checkpoint = serde_json::from_slice(&bytes).map_err(io::Error::other)?;
        let variant = Variant::from_name(&ck.variant)
            .ok_or_else(|| io::Error::other(format!("unknown variant '{}'", ck.variant)))?;
        // Rebuild the architecture (rng only seeds throwaway initial values).
        let mut rng = rand::rngs::mock::StepRng::new(1, 1);
        let mut net = PolicyNet::new(variant, ck.cfg, &mut rng);
        if net.store.len() != ck.store.len() {
            return Err(io::Error::other(format!(
                "checkpoint has {} parameter tensors, architecture expects {}",
                ck.store.len(),
                net.store.len()
            )));
        }
        for (dst, src) in net.store.ids().zip(ck.store.ids()).collect::<Vec<_>>() {
            let (dshape, sshape) =
                (net.store.value(dst).shape().to_vec(), ck.store.value(src).shape().to_vec());
            if dshape != sshape {
                return Err(io::Error::other(format!(
                    "shape mismatch for '{}': {:?} vs {:?}",
                    ck.store.name(src),
                    dshape,
                    sshape
                )));
            }
            *net.store.value_mut(dst) = ck.store.value(src).clone();
        }
        Ok(net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn save_load_round_trip_preserves_behaviour() {
        let cfg = NetConfig { window: 10, ..NetConfig::paper(4) };
        let mut rng = StdRng::seed_from_u64(11);
        let net = PolicyNet::new(Variant::Ppn, cfg.clone(), &mut rng);
        let window: Vec<f64> =
            (0..cfg.assets * cfg.window * 4).map(|i| 1.0 + 0.002 * (i as f64).sin()).collect();
        let prev = vec![0.2; 5];
        let before = net.act(&window, &prev);

        let dir = std::env::temp_dir().join("ppn_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        net.save(&path).unwrap();
        let loaded = PolicyNet::load(&path).unwrap();
        let after = loaded.act(&window, &prev);
        assert_eq!(before, after, "loaded model must act identically");
        assert_eq!(loaded.variant, Variant::Ppn);
    }

    #[test]
    fn load_rejects_wrong_architecture() {
        let cfg = NetConfig { window: 10, ..NetConfig::paper(4) };
        let mut rng = StdRng::seed_from_u64(12);
        let net = PolicyNet::new(Variant::PpnLstm, cfg, &mut rng);
        let dir = std::env::temp_dir().join("ppn_ckpt_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        net.save(&path).unwrap();
        // Corrupt the variant name.
        let mut ck: Checkpoint = serde_json::from_slice(&std::fs::read(&path).unwrap()).unwrap();
        ck.variant = "NOT-A-NET".into();
        std::fs::write(&path, serde_json::to_vec(&ck).unwrap()).unwrap();
        assert!(PolicyNet::load(&path).is_err());
    }

    #[test]
    fn load_rejects_shape_mismatch() {
        // Use a CCONV variant: its kernel height is the asset count, so a
        // changed `assets` must be caught (pure-LSTM nets share weights
        // across assets and are legitimately asset-count agnostic).
        let cfg = NetConfig { window: 10, ..NetConfig::paper(4) };
        let mut rng = StdRng::seed_from_u64(13);
        let net = PolicyNet::new(Variant::Ppn, cfg, &mut rng);
        let dir = std::env::temp_dir().join("ppn_ckpt_test3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        net.save(&path).unwrap();
        let mut ck: Checkpoint = serde_json::from_slice(&std::fs::read(&path).unwrap()).unwrap();
        // Claim a different asset count: first-layer shapes no longer match.
        ck.cfg.assets = 7;
        std::fs::write(&path, serde_json::to_vec(&ck).unwrap()).unwrap();
        assert!(PolicyNet::load(&path).is_err());
    }
}
