//! Numerical contracts for the training stack.
//!
//! Re-exports the `debug_assert`-backed invariant checks from
//! [`ppn_market::contracts`] so network, reward and trainer code tags its
//! hot paths (`// ppn-check: contract(simplex)` / `contract(finite)`)
//! against one shared implementation. See the `ppn-check` crate for the
//! lint that enforces the tag ↔ assertion pairing.

pub use ppn_market::contracts::{
    assert_finite, assert_simplex, assert_simplex_rows, simplex_violation, SIMPLEX_NEG_TOL,
    SIMPLEX_TOL,
};
