//! Architecture and training hyper-parameters.

use serde::{Deserialize, Serialize};

/// Network hyper-parameters, defaulting to the paper's Table 2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetConfig {
    /// Number of risky assets `m`.
    pub assets: usize,
    /// Price-window length `k` (paper: 30).
    pub window: usize,
    /// Price features per period `d` (paper: 4 = OHLC).
    pub features: usize,
    /// LSTM hidden width (paper: 16).
    pub lstm_hidden: usize,
    /// Channel widths of the three TCCB blocks (paper: 8, 16, 16).
    pub tccb_channels: [usize; 3],
    /// Dilation rates of the three TCCB blocks (paper: 1, 2, 4).
    pub tccb_dilations: [usize; 3],
    /// Dropout rate inside the correlation net (paper: 0.2).
    pub dropout: f64,
    /// Fixed cash bias concatenated into the decision features (paper: 0).
    pub cash_bias: f64,
    /// EIIE feature maps after its second convolution (EIIE paper: 20).
    pub eiie_channels: usize,
}

impl NetConfig {
    /// Paper-default configuration for `m` assets.
    pub fn paper(assets: usize) -> Self {
        NetConfig {
            assets,
            window: 30,
            features: 4,
            lstm_hidden: 16,
            tccb_channels: [8, 16, 16],
            tccb_dilations: [1, 2, 4],
            dropout: 0.2,
            cash_bias: 0.0,
            eiie_channels: 20,
        }
    }
}

/// Reward hyper-parameters (Eqn. 1) and the trading cost rate.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RewardConfig {
    /// Risk trade-off λ (paper sweeps 1e−4..1e−1; best 1e−4 on Crypto-A).
    pub lambda: f64,
    /// Transaction-cost trade-off γ (paper's best: 1e−3).
    pub gamma: f64,
    /// Proportional transaction-cost rate ψ (paper: 0.25%).
    pub psi: f64,
}

impl Default for RewardConfig {
    fn default() -> Self {
        RewardConfig { lambda: 1e-4, gamma: 1e-3, psi: 0.0025 }
    }
}

/// Direct-policy-gradient training configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Gradient steps (paper: 1e5 on GPU; CPU repro default is much smaller).
    pub steps: usize,
    /// Trajectory length per online stochastic batch.
    pub batch: usize,
    /// Adam learning rate (paper: 1e−3).
    pub lr: f64,
    /// Global gradient-norm clip.
    pub clip: f64,
    /// Geometric-sampling decay for batch starts (EIIE-style bias toward the
    /// most recent training data). 0 = uniform sampling.
    pub sample_bias: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig { steps: 1_500, batch: 16, lr: 1e-2, clip: 5.0, sample_bias: 5e-4, seed: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table2() {
        let c = NetConfig::paper(12);
        assert_eq!(c.window, 30);
        assert_eq!(c.features, 4);
        assert_eq!(c.lstm_hidden, 16);
        assert_eq!(c.tccb_channels, [8, 16, 16]);
        assert_eq!(c.tccb_dilations, [1, 2, 4]);
        assert_eq!(c.cash_bias, 0.0);
    }

    #[test]
    fn reward_defaults_match_paper_best() {
        let r = RewardConfig::default();
        assert_eq!(r.gamma, 1e-3);
        assert_eq!(r.psi, 0.0025);
    }
}
