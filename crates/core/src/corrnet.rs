//! Correlation information net (§4.3): a stack of Temporal Correlational
//! Convolution Blocks (TCCB) followed by the `Conv4` time-collapse.
//!
//! Each TCCB is (Table 2):
//!
//! ```text
//! DCONV (1×3, dilation r, causal)  → dropout → ReLU
//! DCONV (1×3, dilation r, causal)  → dropout → ReLU
//! CCONV (m×1, SAME over assets)    → dropout → ReLU      [TCCB only]
//! ```
//!
//! The degenerate **TCB** block drops the CCONV — it models each asset's
//! series independently and is the paper's ablation for the value of the
//! asset-correlation pathway (PPN-I uses it).

use crate::batch::WindowBatch;
use ppn_tensor::layers::{Conv2dLayer, ConvKind};
use ppn_tensor::{Binding, Graph, NodeId, ParamStore};
use rand::Rng;

/// Whether blocks include the correlational convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorrMode {
    /// Full TCCB blocks (dilated causal + correlational convolutions).
    Tccb,
    /// TCB blocks (dilated causal convolutions only).
    Tcb,
}

struct Block {
    dconv1: Conv2dLayer,
    dconv2: Conv2dLayer,
    cconv: Option<Conv2dLayer>,
}

/// The convolutional feature stream.
pub struct CorrNet {
    blocks: Vec<Block>,
    conv4: Option<Conv2dLayer>,
    out_channels: usize,
    dropout: f64,
}

impl CorrNet {
    /// Builds the three-block net of Table 2 for `m` assets, including the
    /// `Conv4` time collapse.
    #[allow(clippy::too_many_arguments)]
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        rng: &mut R,
        name: &str,
        mode: CorrMode,
        assets: usize,
        window: usize,
        features: usize,
        channels: &[usize; 3],
        dilations: &[usize; 3],
        dropout: f64,
    ) -> Self {
        Self::build(
            store, rng, name, mode, assets, window, features, channels, dilations, dropout, true,
        )
    }

    /// Builds the block stack **without** `Conv4` — used by the cascade
    /// variants whose time axis is consumed by a downstream LSTM instead.
    #[allow(clippy::too_many_arguments)]
    pub fn new_blocks_only<R: Rng>(
        store: &mut ParamStore,
        rng: &mut R,
        name: &str,
        mode: CorrMode,
        assets: usize,
        window: usize,
        features: usize,
        channels: &[usize; 3],
        dilations: &[usize; 3],
        dropout: f64,
    ) -> Self {
        Self::build(
            store, rng, name, mode, assets, window, features, channels, dilations, dropout, false,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn build<R: Rng>(
        store: &mut ParamStore,
        rng: &mut R,
        name: &str,
        mode: CorrMode,
        assets: usize,
        window: usize,
        features: usize,
        channels: &[usize; 3],
        dilations: &[usize; 3],
        dropout: f64,
        with_conv4: bool,
    ) -> Self {
        let mut blocks = Vec::with_capacity(3);
        let mut c_in = features;
        for (bi, (&c_out, &dil)) in channels.iter().zip(dilations).enumerate() {
            let dconv1 = Conv2dLayer::new(
                store,
                rng,
                &format!("{name}.b{bi}.dconv1"),
                c_in,
                c_out,
                (1, 3),
                (1, dil),
                ConvKind::DilatedCausal,
            );
            let dconv2 = Conv2dLayer::new(
                store,
                rng,
                &format!("{name}.b{bi}.dconv2"),
                c_out,
                c_out,
                (1, 3),
                (1, dil),
                ConvKind::DilatedCausal,
            );
            let cconv = (mode == CorrMode::Tccb).then(|| {
                Conv2dLayer::new(
                    store,
                    rng,
                    &format!("{name}.b{bi}.cconv"),
                    c_out,
                    c_out,
                    (assets, 1),
                    (1, 1),
                    ConvKind::CorrelationalSame,
                )
            });
            blocks.push(Block { dconv1, dconv2, cconv });
            c_in = c_out;
        }
        let conv4 = with_conv4.then(|| {
            Conv2dLayer::new(
                store,
                rng,
                &format!("{name}.conv4"),
                c_in,
                c_in,
                (1, window),
                (1, 1),
                ConvKind::Valid,
            )
        });
        CorrNet { blocks, conv4, out_channels: c_in, dropout }
    }

    /// Output channel count after the blocks (and Conv4).
    pub fn channels(&self) -> usize {
        self.out_channels
    }

    /// Runs the block stack only, keeping the time axis:
    /// `(B, d, m, k) → (B, C, m, k)`. Used by the cascade variants.
    pub fn forward_blocks<R: Rng>(
        &self,
        g: &mut Graph,
        bind: &Binding,
        x: NodeId,
        training: bool,
        rng: &mut R,
    ) -> NodeId {
        let mut h = x;
        for b in &self.blocks {
            h = b.dconv1.forward(g, bind, h);
            h = g.dropout(h, self.dropout, training, rng);
            h = g.relu(h);
            h = b.dconv2.forward(g, bind, h);
            h = g.dropout(h, self.dropout, training, rng);
            h = g.relu(h);
            if let Some(cc) = &b.cconv {
                h = cc.forward(g, bind, h);
                h = g.dropout(h, self.dropout, training, rng);
                h = g.relu(h);
            }
        }
        h
    }

    /// Full stream including the `Conv4` time collapse:
    /// `(B, d, m, k) → (B, C, m, 1)`.
    ///
    /// # Panics
    /// Panics if the net was built with [`CorrNet::new_blocks_only`].
    pub fn forward<R: Rng>(
        &self,
        g: &mut Graph,
        bind: &Binding,
        batch: &WindowBatch,
        training: bool,
        rng: &mut R,
    ) -> NodeId {
        // ppn-check: allow(no-panic) documented precondition — see `# Panics` above
        let conv4 = self.conv4.as_ref().expect("CorrNet built without Conv4");
        let x = g.leaf(batch.conv_input.clone());
        let h = self.forward_blocks(g, bind, x, training, rng);
        let y = conv4.forward(g, bind, h);
        g.relu(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn batch(m: usize, k: usize) -> WindowBatch {
        let d = 4;
        let w: Vec<f64> = (0..m * k * d).map(|i| 1.0 + (i as f64 * 0.37).sin() * 0.01).collect();
        let prev = vec![1.0 / (m as f64 + 1.0); m + 1];
        WindowBatch::new(&[w], &[prev], m, k, d)
    }

    fn net(mode: CorrMode, m: usize, k: usize) -> (ParamStore, CorrNet) {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let net = CorrNet::new(
            &mut store,
            &mut rng,
            "corr",
            mode,
            m,
            k,
            4,
            &[8, 16, 16],
            &[1, 2, 4],
            0.2,
        );
        (store, net)
    }

    #[test]
    fn tccb_shapes_match_table2() {
        let (m, k) = (12, 30);
        let (store, net) = net(CorrMode::Tccb, m, k);
        let b = batch(m, k);
        let mut g = Graph::new();
        let bind = store.bind(&mut g);
        let mut rng = StdRng::seed_from_u64(1);
        let blocks = {
            let x = g.leaf(b.conv_input.clone());
            net.forward_blocks(&mut g, &bind, x, false, &mut rng)
        };
        assert_eq!(g.value(blocks).shape(), &[1, 16, m, k]);
        let out = net.forward(&mut g, &bind, &b, false, &mut rng);
        assert_eq!(g.value(out).shape(), &[1, 16, m, 1]);
    }

    #[test]
    fn tcb_keeps_assets_independent_but_tccb_mixes() {
        let (m, k) = (4, 16);
        for (mode, expect_mix) in [(CorrMode::Tcb, false), (CorrMode::Tccb, true)] {
            let (store, net) = net(mode, m, k);
            let run = |w: Vec<f64>| {
                let prev = vec![1.0 / (m as f64 + 1.0); m + 1];
                let b = WindowBatch::new(&[w], &[prev], m, k, 4);
                let mut g = Graph::new();
                let bind = store.bind(&mut g);
                let mut rng = StdRng::seed_from_u64(2);
                let out = net.forward(&mut g, &bind, &b, false, &mut rng);
                g.value(out).clone()
            };
            let w0: Vec<f64> = (0..m * k * 4).map(|i| 1.0 + 0.001 * i as f64).collect();
            let mut w1 = w0.clone();
            for v in &mut w1[(m - 1) * k * 4..] {
                *v += 0.3; // perturb only the last asset
            }
            let a = run(w0);
            let b2 = run(w1);
            let asset0_changed = (0..16).any(|c| a.at(&[0, c, 0, 0]) != b2.at(&[0, c, 0, 0]));
            assert_eq!(
                asset0_changed, expect_mix,
                "{mode:?}: cross-asset influence should be {expect_mix}"
            );
        }
    }

    #[test]
    fn causality_no_future_influence_on_block_features() {
        // Perturbing the last period must not change block features at
        // earlier time positions.
        let (m, k) = (3, 12);
        let (store, net) = net(CorrMode::Tccb, m, k);
        let run = |w: Vec<f64>| {
            let prev = vec![0.25; m + 1];
            let b = WindowBatch::new(&[w], &[prev], m, k, 4);
            let mut g = Graph::new();
            let bind = store.bind(&mut g);
            let mut rng = StdRng::seed_from_u64(3);
            let x = g.leaf(b.conv_input.clone());
            let h = net.forward_blocks(&mut g, &bind, x, false, &mut rng);
            g.value(h).clone()
        };
        let w0: Vec<f64> = (0..m * k * 4).map(|i| 1.0 + 0.001 * i as f64).collect();
        let mut w1 = w0.clone();
        // Perturb the final period of every asset (last d entries per asset row).
        for i in 0..m {
            for f in 0..4 {
                w1[i * k * 4 + (k - 1) * 4 + f] += 1.0;
            }
        }
        let a = run(w0);
        let b2 = run(w1);
        for c in 0..16 {
            for i in 0..m {
                for t in 0..k - 1 {
                    assert_eq!(
                        a.at(&[0, c, i, t]),
                        b2.at(&[0, c, i, t]),
                        "future leaked into (c={c}, i={i}, t={t})"
                    );
                }
            }
        }
    }

    #[test]
    fn dropout_active_only_in_training() {
        let (m, k) = (3, 12);
        let (store, net) = net(CorrMode::Tccb, m, k);
        let b = batch(m, k);
        let eval = |seed: u64| {
            let mut g = Graph::new();
            let bind = store.bind(&mut g);
            let mut rng = StdRng::seed_from_u64(seed);
            let out = net.forward(&mut g, &bind, &b, false, &mut rng);
            g.value(out).clone()
        };
        // Eval mode is deterministic across rng seeds.
        assert_eq!(eval(1).data(), eval(2).data());
        // Training mode differs between seeds (dropout masks differ).
        let train = |seed: u64| {
            let mut g = Graph::new();
            let bind = store.bind(&mut g);
            let mut rng = StdRng::seed_from_u64(seed);
            let out = net.forward(&mut g, &bind, &b, true, &mut rng);
            g.value(out).clone()
        };
        assert_ne!(train(1).data(), train(2).data());
    }
}
