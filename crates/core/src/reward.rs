//! The cost-sensitive reward function, Eqn. (1) of the paper:
//!
//! ```text
//! R = (1/T) Σ_t r̂^c_t  −  λ σ²(r̂^c_t)  −  (γ/T) Σ_t ‖a_t − â_{t−1}‖₁
//! ```
//!
//! where `r̂^c_t = log(a_tᵀx_t · (1 − c_t))` is the rebalanced log-return.
//! During training the cost proportion uses the differentiable Proposition-4
//! surrogate `c_t ≈ ψ‖a_t − â_{t−1}‖₁` (the exact `c_t` is an implicit fixed
//! point; the surrogate brackets it per Prop. 4, and evaluation always uses
//! the exact solver from `ppn_market::cost`).

use ppn_tensor::{Graph, NodeId, Tensor};

/// Graph nodes of the assembled reward (useful for logging components).
pub struct RewardNodes {
    /// The scalar reward `R` (maximise).
    pub reward: NodeId,
    /// The scalar loss `−R` (minimise — feed to `backward`).
    pub loss: NodeId,
    /// Mean rebalanced log-return component.
    pub mean_log_return: NodeId,
    /// Variance (risk) component before the λ weight.
    pub variance: NodeId,
    /// Mean L1 turnover component before the γ weight.
    pub mean_turnover: NodeId,
}

/// Builds the cost-sensitive reward over a trajectory batch.
///
/// * `actions` — `(T, m+1)` node (the policy outputs; differentiable).
/// * `relatives` — `(T, m+1)` price relatives `x_t` (constant leaf data).
/// * `drifted` — `(T, m+1)` pre-rebalance holdings `â_{t−1}` (constant;
///   the trainer reads them from the portfolio-vector memory).
/// * `lambda`, `gamma` — the reward trade-offs.
/// * `psi` — transaction-cost rate for the surrogate `c_t`.
///
/// # Panics
/// Panics on shape mismatches.
// ppn-check: contract(finite)
pub fn cost_sensitive_reward(
    g: &mut Graph,
    actions: NodeId,
    relatives: &Tensor,
    drifted: &Tensor,
    lambda: f64,
    gamma: f64,
    psi: f64,
) -> RewardNodes {
    let shape = g.value(actions).shape().to_vec();
    assert_eq!(shape.len(), 2, "actions must be (T, m+1)");
    assert_eq!(relatives.shape(), &shape[..], "relatives shape");
    assert_eq!(drifted.shape(), &shape[..], "drifted shape");

    let x = g.leaf(relatives.clone());
    let hat = g.leaf(drifted.clone());

    // Gross returns a_tᵀ x_t → (T,)
    let prod = g.mul(actions, x);
    let gross = g.sum_axis(prod, 1);

    // Turnover ‖a_t − â_{t−1}‖₁ → (T,)
    let diff = g.sub(actions, hat);
    let absdiff = g.abs(diff);
    let turnover = g.sum_axis(absdiff, 1);

    // Surrogate cost c_t = ψ·turnover; net return = gross·(1 − c).
    let cost = g.scale(turnover, psi);
    let one_minus_c = g.neg(cost);
    let one_minus_c = g.add_scalar(one_minus_c, 1.0);
    let net = g.mul(gross, one_minus_c);
    let log_net = g.log(net);

    let mean_log_return = g.mean(log_net);
    let variance = g.variance(log_net);
    let mean_turnover = g.mean(turnover);

    let risk_term = g.scale(variance, lambda);
    let to_term = g.scale(mean_turnover, gamma);
    let r1 = g.sub(mean_log_return, risk_term);
    let reward = g.sub(r1, to_term);
    let loss = g.neg(reward);
    // Theorems 1–2 require finite log-returns; catch NaN/inf at the source.
    crate::contracts::assert_finite(&[g.value(reward).item()], "cost_sensitive_reward");

    RewardNodes { reward, loss, mean_log_return, variance, mean_turnover }
}

/// Evaluates the same reward outside the graph (for tests and logging),
/// returning `(reward, mean_log_return, variance, mean_turnover)`.
// ppn-check: contract(finite)
pub fn reward_value(
    actions: &[Vec<f64>],
    relatives: &[Vec<f64>],
    drifted: &[Vec<f64>],
    lambda: f64,
    gamma: f64,
    psi: f64,
) -> (f64, f64, f64, f64) {
    let t = actions.len();
    assert!(t > 0 && relatives.len() == t && drifted.len() == t);
    let mut logs = Vec::with_capacity(t);
    let mut tos = Vec::with_capacity(t);
    for i in 0..t {
        let gross: f64 = actions[i].iter().zip(&relatives[i]).map(|(a, x)| a * x).sum();
        let to: f64 = actions[i].iter().zip(&drifted[i]).map(|(a, h)| (a - h).abs()).sum();
        logs.push((gross * (1.0 - psi * to)).ln());
        tos.push(to);
    }
    let mean = logs.iter().sum::<f64>() / t as f64;
    let var = logs.iter().map(|l| (l - mean).powi(2)).sum::<f64>() / t as f64;
    let mto = tos.iter().sum::<f64>() / t as f64;
    crate::contracts::assert_finite(&[mean, var, mto], "reward_value");
    (mean - lambda * var - gamma * mto, mean, var, mto)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppn_tensor::ParamStore;

    fn uniform_rows(t: usize, n: usize) -> Tensor {
        Tensor::full(&[t, n], 1.0 / n as f64)
    }

    #[test]
    fn graph_and_closed_form_agree() {
        let t = 4;
        let n = 3;
        let actions = vec![
            vec![0.2, 0.5, 0.3],
            vec![0.1, 0.6, 0.3],
            vec![0.4, 0.3, 0.3],
            vec![0.3, 0.3, 0.4],
        ];
        let relatives = vec![
            vec![1.0, 1.05, 0.98],
            vec![1.0, 0.97, 1.10],
            vec![1.0, 1.01, 1.00],
            vec![1.0, 0.95, 1.02],
        ];
        let drifted = vec![
            vec![1.0, 0.0, 0.0],
            vec![0.2, 0.52, 0.28],
            vec![0.1, 0.58, 0.32],
            vec![0.4, 0.28, 0.32],
        ];
        let (lambda, gamma, psi) = (0.1, 0.01, 0.0025);
        let (expect, ..) = reward_value(&actions, &relatives, &drifted, lambda, gamma, psi);

        let flat = |rows: &[Vec<f64>]| -> Vec<f64> { rows.concat() };
        let mut g = Graph::new();
        let a = g.param(Tensor::from_vec(&[t, n], flat(&actions)));
        let nodes = cost_sensitive_reward(
            &mut g,
            a,
            &Tensor::from_vec(&[t, n], flat(&relatives)),
            &Tensor::from_vec(&[t, n], flat(&drifted)),
            lambda,
            gamma,
            psi,
        );
        assert!((g.value(nodes.reward).item() - expect).abs() < 1e-12);
        assert!((g.value(nodes.loss).item() + expect).abs() < 1e-12);
    }

    #[test]
    fn no_trade_flat_market_reward_is_zero() {
        let t = 5;
        let n = 4;
        let a = uniform_rows(t, n);
        let mut g = Graph::new();
        let an = g.param(a.clone());
        let nodes = cost_sensitive_reward(&mut g, an, &Tensor::ones(&[t, n]), &a, 0.1, 0.1, 0.0025);
        assert!(g.value(nodes.reward).item().abs() < 1e-12);
        assert!(g.value(nodes.mean_turnover).item().abs() < 1e-12);
    }

    #[test]
    fn gamma_penalises_turnover() {
        // Same trajectory, different γ: higher γ ⇒ lower reward when trades happen.
        let t = 3;
        let n = 3;
        let actions = Tensor::from_vec(&[t, n], vec![0.0, 1.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 1.0]);
        let relatives = Tensor::ones(&[t, n]);
        let drifted = uniform_rows(t, n);
        let r = |gamma: f64| {
            let mut g = Graph::new();
            let a = g.param(actions.clone());
            let nodes = cost_sensitive_reward(&mut g, a, &relatives, &drifted, 0.0, gamma, 0.0);
            g.value(nodes.reward).item()
        };
        assert!(r(0.1) < r(0.001));
    }

    #[test]
    fn lambda_penalises_volatile_returns() {
        let t = 4;
        let n = 2;
        // Volatile: alternate big win / big loss. Calm: steady small win.
        let actions = Tensor::from_vec(&[t, n], vec![0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0]);
        let volatile = Tensor::from_vec(&[t, n], vec![1.0, 1.5, 1.0, 0.7, 1.0, 1.5, 1.0, 0.7]);
        let calm = Tensor::from_vec(&[t, n], vec![1.0, 1.02, 1.0, 1.02, 1.0, 1.02, 1.0, 1.02]);
        let drifted = Tensor::from_vec(&[t, n], vec![0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0]);
        let r = |x: &Tensor, lambda: f64| {
            let mut g = Graph::new();
            let a = g.param(actions.clone());
            let nodes = cost_sensitive_reward(&mut g, a, x, &drifted, lambda, 0.0, 0.0);
            g.value(nodes.reward).item()
        };
        // Risk penalty hits the volatile stream but not the calm one.
        let drop_volatile = r(&volatile, 0.0) - r(&volatile, 1.0);
        let drop_calm = r(&calm, 0.0) - r(&calm, 1.0);
        assert!(drop_volatile > drop_calm + 1e-6);
    }

    #[test]
    fn reward_gradient_flows_to_actions() {
        let t = 3;
        let n = 3;
        let mut store = ParamStore::new();
        let a0 = store
            .add("a", Tensor::from_vec(&[t, n], vec![0.3, 0.4, 0.3, 0.3, 0.4, 0.3, 0.3, 0.4, 0.3]));
        let relatives =
            Tensor::from_vec(&[t, n], vec![1.0, 1.1, 0.9, 1.0, 1.2, 0.8, 1.0, 1.05, 0.95]);
        let drifted = Tensor::full(&[t, n], 1.0 / 3.0);
        let report = ppn_tensor::gradcheck::gradcheck(
            &mut store,
            |g, bind| {
                let nodes = cost_sensitive_reward(
                    g,
                    bind.node(a0),
                    &relatives,
                    &drifted,
                    0.05,
                    0.01,
                    0.0025,
                );
                nodes.loss
            },
            1e-6,
            1,
        );
        assert!(report.max_rel_err < 1e-6, "{report:?}");
    }
}
