//! Direct policy gradient training (§5.1) with the online stochastic batch
//! method and portfolio-vector memory (Remark 3; the mechanism originates in
//! the EIIE framework the paper builds on).
//!
//! The trainer keeps one stored action per training period (the PVM). Each
//! step it samples a contiguous trajectory, feeds every period's window plus
//! the *stored* previous action, assembles the cost-sensitive reward over
//! the trajectory, ascends its gradient, and writes the fresh actions back
//! to the PVM. Because the zero-market-impact assumption decouples actions
//! from state transitions, the same price segment can be re-evaluated under
//! new policies indefinitely — that is what makes this data-efficient.

use crate::batch::WindowBatch;
use crate::config::{NetConfig, RewardConfig, TrainConfig};
use crate::ppn::{PolicyNet, Variant};
use crate::reward::cost_sensitive_reward;
use ppn_market::{drifted_weights, DatasetHandle};
use ppn_tensor::{clip_global_norm, Adam, Optimizer, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-step training telemetry.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct StepStats {
    /// Cost-sensitive reward of the sampled batch.
    pub reward: f64,
    /// Mean rebalanced log-return component.
    pub mean_log_return: f64,
    /// Risk (variance) component.
    pub variance: f64,
    /// Mean L1 turnover component.
    pub mean_turnover: f64,
    /// Pre-clip gradient norm.
    pub grad_norm: f64,
}

/// Aggregate training summary.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Reward trace, one entry per step.
    pub rewards: Vec<f64>,
    /// Full telemetry trace, one [`StepStats`] per step.
    pub steps: Vec<StepStats>,
    /// Mean reward over the final 10% of steps; `f64::NAN` when the run had
    /// zero steps (no reward is defined over an empty trace).
    pub final_reward: f64,
}

impl TrainReport {
    /// Serializes the full step trace as JSON Lines — one
    /// `{"step":…,"reward":…,…}` object per line, ready for `jq`.
    ///
    /// All rows stream into a single buffer; no per-row allocation.
    pub fn to_jsonl(&self) -> String {
        use serde::{Ser, Serialize};
        #[derive(serde::Serialize)]
        struct Row {
            step: u64,
            reward: f64,
            mean_log_return: f64,
            variance: f64,
            mean_turnover: f64,
            grad_norm: f64,
        }
        let mut s = Ser::new();
        for (i, st) in self.steps.iter().enumerate() {
            Row {
                step: i as u64,
                reward: st.reward,
                mean_log_return: st.mean_log_return,
                variance: st.variance,
                mean_turnover: st.mean_turnover,
                grad_norm: st.grad_norm,
            }
            .serialize(&mut s);
            s.raw("\n");
        }
        s.finish()
    }

    /// Writes [`TrainReport::to_jsonl`] to `path`, creating parent dirs.
    ///
    /// # Errors
    /// Returns [`std::io::ErrorKind::InvalidInput`] when the step trace is
    /// empty — writing a zero-line JSONL file would silently look like a
    /// successful export of a run that never happened — and propagates any
    /// filesystem error.
    pub fn write_jsonl(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        if self.steps.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "refusing to write empty step trace (0 training steps)",
            ));
        }
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_jsonl())
    }
}

/// Trains a [`PolicyNet`] on a dataset's training split.
pub struct Trainer<'a> {
    /// The dataset being learned — borrowed for offline training, or
    /// `Arc`-shared so the trainer can own it across a stream thread
    /// boundary (see [`ppn_market::DatasetHandle`]).
    pub dataset: DatasetHandle<'a>,
    /// The network under training.
    pub net: PolicyNet,
    /// Reward configuration (λ, γ, ψ).
    pub reward_cfg: RewardConfig,
    /// Optimisation configuration.
    pub train_cfg: TrainConfig,
    pvm: Vec<Vec<f64>>,
    opt: Adam,
    rng: StdRng,
    horizon: usize,
    /// Tape reused across steps: resetting (rather than dropping) it keeps
    /// its node arena, and the tensor buffers it releases each step are
    /// rebound from the thread-local storage arena on the next sweep.
    tape: ppn_tensor::Graph,
}

impl<'a> Trainer<'a> {
    /// Builds a trainer with a freshly-initialised network. Accepts either
    /// `&Dataset` (offline) or `Arc<Dataset>` (owned, `'static`).
    pub fn new(
        dataset: impl Into<DatasetHandle<'a>>,
        variant: Variant,
        reward_cfg: RewardConfig,
        train_cfg: TrainConfig,
    ) -> Self {
        let dataset = dataset.into();
        let mut rng = StdRng::seed_from_u64(train_cfg.seed);
        let cfg = NetConfig::paper(dataset.assets());
        let net = PolicyNet::new(variant, cfg, &mut rng);
        Self::with_net(dataset, net, reward_cfg, train_cfg)
    }

    /// Builds a trainer around an existing network (custom `NetConfig`s).
    pub fn with_net(
        dataset: impl Into<DatasetHandle<'a>>,
        net: PolicyNet,
        reward_cfg: RewardConfig,
        train_cfg: TrainConfig,
    ) -> Self {
        let dataset = dataset.into();
        let m1 = dataset.assets() + 1;
        let uniform = vec![1.0 / m1 as f64; m1];
        let pvm = vec![uniform; dataset.split];
        let opt = Adam::new(train_cfg.lr);
        let rng = StdRng::seed_from_u64(train_cfg.seed ^ 0x5EED);
        let horizon = dataset.split;
        Trainer {
            dataset,
            net,
            reward_cfg,
            train_cfg,
            pvm,
            opt,
            rng,
            horizon,
            tape: ppn_tensor::Graph::new(),
        }
    }

    /// Last period (exclusive) the trainer may sample outcomes from.
    /// Defaults to the dataset's train/test split.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Extends the sampling horizon for online rolling training. Periods up
    /// to (but excluding) `t` become available; the portfolio-vector memory
    /// grows accordingly. Capped at the dataset's relative count.
    pub fn extend_horizon(&mut self, t: usize) {
        let t = t.min(self.dataset.relatives.len());
        if t <= self.horizon {
            return;
        }
        let m1 = self.dataset.assets() + 1;
        let uniform = vec![1.0 / m1 as f64; m1];
        self.pvm.resize(t, uniform);
        self.horizon = t;
    }

    /// Earliest period with a full window *and* a PVM predecessor.
    fn min_start(&self) -> usize {
        self.net.cfg.window
    }

    /// Latest admissible batch start.
    fn max_start(&self) -> usize {
        self.horizon - self.train_cfg.batch
    }

    /// Samples a batch start, geometrically biased toward recent data when
    /// `sample_bias > 0` (EIIE-style).
    fn sample_start(&mut self) -> usize {
        let lo = self.min_start();
        let hi = self.max_start();
        assert!(hi > lo, "training split too small for the batch size");
        if self.train_cfg.sample_bias <= 0.0 {
            return self.rng.gen_range(lo..hi);
        }
        let beta = self.train_cfg.sample_bias;
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let offset = (u.ln() / (1.0 - beta).ln()).floor() as usize;
        hi.saturating_sub(offset).max(lo).min(hi - 1)
    }

    /// Runs one gradient step; returns telemetry.
    // ppn-check: contract(simplex)
    pub fn step(&mut self) -> StepStats {
        let _span = ppn_obs::span!("train.step");
        // Trace tree for this step (inert unless sampled in by
        // `PPN_TRACE_SAMPLE`): synth → forward → backward → PVM writeback,
        // all children of one `train.step` root, rendered by `ppn-trace`.
        let trace_root = ppn_obs::TraceSpan::root("train.step");
        let tctx = trace_root.context();
        let wall = ppn_obs::clock::now();
        let t0 = self.sample_start();
        let tn = self.train_cfg.batch;
        let m1 = self.dataset.assets() + 1;
        let k = self.net.cfg.window;

        // Assemble the trajectory inputs from dataset + PVM.
        let mut windows = Vec::with_capacity(tn);
        let mut prevs = Vec::with_capacity(tn);
        let mut drifted = Vec::with_capacity(tn * m1);
        let mut rels = Vec::with_capacity(tn * m1);
        for b in 0..tn {
            let t = t0 + b;
            windows.push(self.dataset.window(t, k));
            let prev = self.pvm[t - 1].clone();
            let hat = drifted_weights(&prev, self.dataset.relative(t - 1));
            drifted.extend_from_slice(&hat);
            rels.extend_from_slice(self.dataset.relative(t));
            prevs.push(prev);
        }
        let batch =
            WindowBatch::new(&windows, &prevs, self.dataset.assets(), k, self.net.cfg.features);
        let rel_t = Tensor::from_vec(&[tn, m1], rels);
        let hat_t = Tensor::from_vec(&[tn, m1], drifted);
        let t_synth = ppn_obs::clock::now();
        tctx.emit_span("train.synth", wall, t_synth);

        // Forward + reward + backward on the reused tape (taken out of
        // `self` so the borrow checker allows `self.net` access below).
        let mut g = std::mem::take(&mut self.tape);
        g.reset();
        let bind = self.net.store.bind(&mut g);
        let actions = self.net.forward(&mut g, &bind, &batch, true, &mut self.rng);
        let nodes = cost_sensitive_reward(
            &mut g,
            actions,
            &rel_t,
            &hat_t,
            self.reward_cfg.lambda,
            self.reward_cfg.gamma,
            self.reward_cfg.psi,
        );
        let t_forward = ppn_obs::clock::now();
        tctx.emit_span("train.forward", t_synth, t_forward);
        g.backward(nodes.loss);
        let mut grads = bind.grads(&g);
        let grad_norm = clip_global_norm(&mut grads, self.train_cfg.clip);
        self.opt.step(&mut self.net.store, &grads);
        let t_backward = ppn_obs::clock::now();
        tctx.emit_span("train.backward", t_forward, t_backward);

        // Write the new actions back into the PVM.
        let a = g.value(actions);
        for b in 0..tn {
            let row = a.data()[b * m1..(b + 1) * m1].to_vec();
            crate::contracts::assert_simplex(&row, "Trainer::step PVM writeback");
            self.pvm[t0 + b] = row;
        }
        tctx.emit_span("train.pvm_writeback", t_backward, ppn_obs::clock::now());

        let stats = StepStats {
            reward: g.value(nodes.reward).item(),
            mean_log_return: g.value(nodes.mean_log_return).item(),
            variance: g.value(nodes.variance).item(),
            mean_turnover: g.value(nodes.mean_turnover).item(),
            grad_norm,
        };
        self.tape = g;
        if ppn_obs::metrics_enabled() {
            ppn_obs::counter("train.steps").inc();
            ppn_obs::histogram("train.grad_norm", &[0.1, 0.5, 1.0, 2.5, 5.0, 10.0, 50.0])
                .observe(stats.grad_norm);
            ppn_obs::histogram("train.turnover", &[0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0])
                .observe(stats.mean_turnover);
            ppn_obs::histogram(
                "train.step_ms",
                &[1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0],
            )
            .observe(wall.elapsed().as_secs_f64() * 1e3);
        }
        stats
    }

    /// Runs the configured number of steps.
    ///
    /// A zero-step configuration is a no-op: the report comes back with
    /// empty traces and `final_reward = f64::NAN` (see
    /// [`TrainReport::final_reward`]) rather than panicking.
    pub fn train(&mut self) -> TrainReport {
        let total = self.train_cfg.steps;
        if total == 0 {
            return TrainReport { rewards: Vec::new(), steps: Vec::new(), final_reward: f64::NAN };
        }
        let mut rewards = Vec::with_capacity(total);
        let mut steps = Vec::with_capacity(total);
        // Per-epoch progress cadence: ~10 summaries over the run.
        let epoch = (total / 10).max(1);
        for i in 0..total {
            let s = self.step();
            ppn_obs::event!(
                ppn_obs::Level::Trace,
                "train.step",
                step = i,
                reward = s.reward,
                mean_log_return = s.mean_log_return,
                variance = s.variance,
                mean_turnover = s.mean_turnover,
                grad_norm = s.grad_norm,
            );
            if (i + 1) % epoch == 0 || i + 1 == total {
                let lo = (i + 1).saturating_sub(epoch);
                let window = &steps[lo..];
                let mean = |f: fn(&StepStats) -> f64| {
                    (window.iter().map(f).sum::<f64>() + f(&s)) / (window.len() + 1) as f64
                };
                ppn_obs::event!(
                    ppn_obs::Level::Debug,
                    "train.epoch",
                    step = i + 1,
                    steps_total = total,
                    mean_reward = mean(|x| x.reward),
                    mean_turnover = mean(|x| x.mean_turnover),
                    mean_grad_norm = mean(|x| x.grad_norm),
                );
            }
            rewards.push(s.reward);
            steps.push(s);
        }
        let tail = (rewards.len() / 10).max(1);
        let final_reward = rewards[rewards.len() - tail..].iter().sum::<f64>() / tail as f64;
        ppn_obs::event!(
            ppn_obs::Level::Debug,
            "train.finish",
            steps = total,
            final_reward = final_reward,
        );
        TrainReport { rewards, steps, final_reward }
    }

    /// Consumes the trainer, returning the trained network.
    pub fn into_net(self) -> PolicyNet {
        self.net
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppn_market::{Dataset, Preset};

    fn small_train_cfg(steps: usize) -> TrainConfig {
        TrainConfig { steps, batch: 8, lr: 1e-3, clip: 5.0, sample_bias: 0.0, seed: 1 }
    }

    #[test]
    fn step_produces_finite_telemetry_and_updates_pvm() {
        let ds = Dataset::load(Preset::CryptoA);
        let mut tr =
            Trainer::new(&ds, Variant::PpnLstm, RewardConfig::default(), small_train_cfg(1));
        let before = tr.pvm.clone();
        let s = tr.step();
        assert!(s.reward.is_finite() && s.grad_norm.is_finite());
        assert!(s.variance >= 0.0);
        assert!(s.mean_turnover >= 0.0);
        let changed = tr.pvm.iter().zip(&before).filter(|(a, b)| a != b).count();
        assert_eq!(changed, tr.train_cfg.batch, "exactly the batch rows change");
        // PVM rows stay on the simplex.
        for row in &tr.pvm {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn training_improves_batch_reward() {
        // On the momentum-rich Crypto-A training data, even a short run
        // should push the average batch reward above the initial level.
        let ds = Dataset::load(Preset::CryptoA);
        let mut tr =
            Trainer::new(&ds, Variant::PpnLstm, RewardConfig::default(), small_train_cfg(60));
        let report = tr.train();
        let head: f64 = report.rewards[..10].iter().sum::<f64>() / 10.0;
        assert!(
            report.final_reward > head - 5e-4,
            "reward regressed: head {head} final {}",
            report.final_reward
        );
    }

    #[test]
    fn zero_step_train_returns_empty_report() {
        // Regression: `train()` used to underflow on `rewards[len - tail..]`
        // when configured with zero steps.
        let ds = Dataset::load(Preset::CryptoA);
        let mut tr =
            Trainer::new(&ds, Variant::PpnLstm, RewardConfig::default(), small_train_cfg(0));
        let report = tr.train();
        assert!(report.rewards.is_empty());
        assert!(report.steps.is_empty());
        assert!(report.final_reward.is_nan(), "empty run must report NaN final reward");
        assert!(report.to_jsonl().is_empty());
    }

    #[test]
    fn write_jsonl_rejects_empty_step_trace() {
        let report = TrainReport { rewards: Vec::new(), steps: Vec::new(), final_reward: f64::NAN };
        let dir = std::env::temp_dir().join("ppn_trainer_empty_jsonl_test");
        let err = report.write_jsonl(dir.join("steps.jsonl")).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        assert!(!dir.join("steps.jsonl").exists(), "no file may be created on refusal");
    }

    #[test]
    fn to_jsonl_streams_rows_identical_to_per_row_serialization() {
        let steps = vec![
            StepStats {
                reward: 0.25,
                mean_log_return: 0.5,
                variance: 0.125,
                mean_turnover: 0.0625,
                grad_norm: 2.0,
            },
            StepStats {
                reward: f64::NAN, // non-finite must still round-trip as null
                mean_log_return: -0.5,
                variance: 0.0,
                mean_turnover: 1.0,
                grad_norm: 0.5,
            },
        ];
        let report = TrainReport { rewards: vec![0.25, f64::NAN], steps, final_reward: 0.25 };
        let text = report.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for (i, line) in lines.iter().enumerate() {
            let v = serde_json::from_str::<serde::Value>(line).unwrap();
            let step = v.field("step").unwrap();
            assert_eq!(step, &serde::Value::Num(i as f64));
            assert!(v.field("grad_norm").is_ok());
        }
        assert_eq!(v_num(lines[0], "reward"), 0.25);
        assert!(lines[1].contains("\"reward\":null"));
    }

    fn v_num(line: &str, key: &str) -> f64 {
        match serde_json::from_str::<serde::Value>(line).unwrap().field(key).unwrap() {
            serde::Value::Num(n) => *n,
            other => panic!("expected number for {key}, got {other:?}"),
        }
    }

    #[test]
    fn geometric_sampling_prefers_recent_starts() {
        let ds = Dataset::load(Preset::CryptoA);
        let mut cfg = small_train_cfg(0);
        cfg.sample_bias = 0.01;
        let mut tr = Trainer::new(&ds, Variant::PpnLstm, RewardConfig::default(), cfg);
        let hi = tr.max_start();
        let lo = tr.min_start();
        let draws: Vec<usize> = (0..500).map(|_| tr.sample_start()).collect();
        let mean = draws.iter().sum::<usize>() as f64 / draws.len() as f64;
        assert!(draws.iter().all(|&s| (lo..hi).contains(&s)));
        assert!(mean > (lo + hi) as f64 / 2.0, "mean start {mean} not biased to the end");
    }
}
