//! Online rolling training: keep learning *during* the test period.
//!
//! The paper's protocol trains offline and freezes the policy for the test
//! split. The EIIE framework it builds on additionally supports online
//! learning — after each live period the newly-observed data joins the
//! training set and a few gradient steps run before the next decision. This
//! module implements that extension (DESIGN.md lists it as an optional
//! feature) as a [`SequentialPolicy`] wrapper — the gradient steps between
//! decisions make it inherently sequential, so it opts out of batching and
//! reaches the backtest harness through the blanket
//! `Policy for SequentialPolicy` impl.
//!
//! Zero look-ahead by construction: at period `t` the trainer may only
//! sample windows whose *outcome* relative `x_{t'}` has `t' < t`.

use crate::config::{RewardConfig, TrainConfig};
use crate::ppn::Variant;
use crate::trainer::Trainer;
use ppn_market::{DatasetHandle, DecisionContext, SequentialPolicy, Weights};

/// A policy that performs `steps_per_period` gradient updates between
/// consecutive live decisions, on data up to (but excluding) the current
/// period.
pub struct OnlineNetPolicy<'a> {
    trainer: Trainer<'a>,
    /// Gradient steps between decisions.
    pub steps_per_period: usize,
    last_seen: usize,
}

impl<'a> OnlineNetPolicy<'a> {
    /// Pre-trains on the training split, then keeps adapting online.
    ///
    /// Accepts `&Dataset` for the classic borrowed flow or `Arc<Dataset>`
    /// for an owned `OnlineNetPolicy<'static>` that can move across thread
    /// boundaries (the `ppn-stream` updater owns its policy this way).
    pub fn new(
        dataset: impl Into<DatasetHandle<'a>>,
        variant: Variant,
        reward: RewardConfig,
        pretrain: TrainConfig,
        steps_per_period: usize,
    ) -> Self {
        let mut trainer = Trainer::new(dataset, variant, reward, pretrain);
        trainer.train();
        OnlineNetPolicy { trainer, steps_per_period, last_seen: 0 }
    }

    /// Wraps an already-built (and typically pre-trained) trainer. Use with
    /// [`Trainer::with_net`] when a custom `NetConfig` is needed — the
    /// streaming updater uses small windows for sub-millisecond steps.
    pub fn from_trainer(trainer: Trainer<'a>, steps_per_period: usize) -> Self {
        OnlineNetPolicy { trainer, steps_per_period, last_seen: 0 }
    }

    /// Access the underlying trainer (e.g. to extract the network after a
    /// backtest).
    pub fn trainer(&self) -> &Trainer<'a> {
        &self.trainer
    }

    /// Mutable access to the underlying trainer (checkpoint extraction and
    /// horizon management in the streaming updater).
    pub fn trainer_mut(&mut self) -> &mut Trainer<'a> {
        &mut self.trainer
    }
}

impl SequentialPolicy for OnlineNetPolicy<'_> {
    fn name(&self) -> String {
        format!("{}-online", self.trainer.net.variant.name())
    }

    fn decide_one(&mut self, ctx: &DecisionContext<'_>) -> Weights {
        // Extend the trainable horizon to everything strictly before `t`,
        // then adapt.
        if ctx.t > self.last_seen {
            self.trainer.extend_horizon(ctx.t);
            self.last_seen = ctx.t;
            for _ in 0..self.steps_per_period {
                self.trainer.step();
            }
        }
        let window = ctx.dataset.window(ctx.t, self.trainer.net.cfg.window);
        let mut a = self.trainer.net.act(&window, ctx.prev_action);
        let s: f64 = a.iter().sum();
        for w in &mut a {
            *w /= s;
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppn_market::{run_backtest, Dataset, Preset};

    #[test]
    fn arc_constructor_yields_static_policy() {
        use std::sync::Arc;
        let ds = Arc::new(Dataset::load(Preset::CryptoA));
        let pretrain = TrainConfig { steps: 2, batch: 8, ..TrainConfig::default() };
        let p: OnlineNetPolicy<'static> = OnlineNetPolicy::new(
            Arc::clone(&ds),
            Variant::PpnLstm,
            RewardConfig::default(),
            pretrain,
            1,
        );
        // An owned policy must be movable across a thread boundary.
        fn assert_send<T: Send + 'static>(_: &T) {}
        assert_send(&p);
    }

    #[test]
    fn online_policy_backtests_validly() {
        let ds = Dataset::load(Preset::CryptoA);
        let pretrain = TrainConfig { steps: 10, batch: 8, ..TrainConfig::default() };
        let mut p =
            OnlineNetPolicy::new(&ds, Variant::PpnLstm, RewardConfig::default(), pretrain, 1);
        let r = run_backtest(&ds, &mut p, 0.0025, ds.split..ds.split + 25);
        assert_eq!(r.records.len(), 25);
        for rec in &r.records {
            let s: f64 = rec.action.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
        assert!(r.metrics.apv.is_finite() && r.metrics.apv > 0.0);
    }

    #[test]
    fn horizon_never_includes_current_period() {
        // The trainer's sampling ceiling must stay strictly below the
        // decision period (no label leakage).
        let ds = Dataset::load(Preset::CryptoA);
        let pretrain = TrainConfig { steps: 5, batch: 8, ..TrainConfig::default() };
        let mut p =
            OnlineNetPolicy::new(&ds, Variant::PpnLstm, RewardConfig::default(), pretrain, 1);
        let _ = run_backtest(&ds, &mut p, 0.0025, ds.split..ds.split + 10);
        assert!(p.trainer.horizon() <= ds.split + 9);
    }
}
