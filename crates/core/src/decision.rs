//! Decision-making module (§4.4): feature fusion + recursive previous
//! action + fixed cash bias + 1×1 "voting" convolution + softmax.
//!
//! Matching Table 2's concatenation row, the module:
//! 1. concatenates all extracted feature maps with the previous risky
//!    portfolio along the channel axis → `(B, C+1, m, 1)`;
//! 2. prepends a constant cash row along the asset axis → `(B, C+1, m+1, 1)`;
//! 3. applies a 1×1 convolution (one vote per feature channel) and a softmax
//!    over the `m+1` assets.

use ppn_tensor::layers::{Conv2dLayer, ConvKind};
use ppn_tensor::{Binding, Graph, NodeId, ParamStore, Tensor};
use rand::Rng;

/// The final scoring head.
pub struct DecisionModule {
    conv: Conv2dLayer,
    total_channels: usize,
    cash_bias: f64,
}

impl DecisionModule {
    /// `feature_channels` is the channel sum of the fused streams
    /// (excluding the +1 previous-action channel added here).
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        rng: &mut R,
        name: &str,
        feature_channels: usize,
        cash_bias: f64,
    ) -> Self {
        let total = feature_channels + 1;
        let conv = Conv2dLayer::new(store, rng, name, total, 1, (1, 1), (1, 1), ConvKind::Valid);
        DecisionModule { conv, total_channels: total, cash_bias }
    }

    /// Fuses features and produces the `(B, m+1)` portfolio (softmax rows).
    ///
    /// * `features` — stream outputs, each `(B, C_i, m, 1)`.
    /// * `prev_risky` — `(B, 1, m, 1)` previous risky weights.
    pub fn forward(
        &self,
        g: &mut Graph,
        bind: &Binding,
        features: &[NodeId],
        prev_risky: NodeId,
    ) -> NodeId {
        assert!(!features.is_empty());
        let shape = g.value(features[0]).shape().to_vec();
        let (b, m) = (shape[0], shape[2]);
        let mut parts: Vec<NodeId> = features.to_vec();
        parts.push(prev_risky);
        let fused = g.concat(&parts, 1); // (B, C+1, m, 1)
        debug_assert_eq!(g.value(fused).shape()[1], self.total_channels);
        // Cash row: constant bias replicated across channels.
        let cash = g.leaf(Tensor::full(&[b, self.total_channels, 1, 1], self.cash_bias));
        let full = g.concat(&[cash, fused], 2); // (B, C+1, m+1, 1); cash is row 0
        let votes = self.conv.forward(g, bind, full); // (B, 1, m+1, 1)
        let logits = g.reshape(votes, &[b, m + 1]);
        g.softmax(logits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(feature_channels: usize) -> (ParamStore, DecisionModule) {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let dm = DecisionModule::new(&mut store, &mut rng, "dec", feature_channels, 0.0);
        (store, dm)
    }

    #[test]
    fn output_is_simplex_rows() {
        let (store, dm) = setup(32);
        let mut g = Graph::new();
        let bind = store.bind(&mut g);
        let mut rng = StdRng::seed_from_u64(1);
        let f1 = g.leaf(Tensor::randn(&mut rng, &[2, 16, 5, 1], 1.0));
        let f2 = g.leaf(Tensor::randn(&mut rng, &[2, 16, 5, 1], 1.0));
        let prev = g.leaf(Tensor::full(&[2, 1, 5, 1], 0.2));
        let out = dm.forward(&mut g, &bind, &[f1, f2], prev);
        let v = g.value(out);
        assert_eq!(v.shape(), &[2, 6]);
        for r in 0..2 {
            let s: f64 = v.data()[r * 6..(r + 1) * 6].iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
            assert!(v.data()[r * 6..(r + 1) * 6].iter().all(|&p| p > 0.0));
        }
    }

    #[test]
    fn cash_slot_is_index_zero() {
        // With zero features and a large positive bias on the cash row, the
        // softmax should favour index 0 when the conv weights are positive.
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let dm = DecisionModule::new(&mut store, &mut rng, "dec", 1, 5.0);
        let mut g = Graph::new();
        let bind = store.bind(&mut g);
        let f = g.leaf(Tensor::zeros(&[1, 1, 3, 1]));
        let prev = g.leaf(Tensor::zeros(&[1, 1, 3, 1]));
        let out = dm.forward(&mut g, &bind, &[f], prev);
        let v = g.value(out);
        // Risky logits are exactly the conv bias (zero init); the cash logit
        // is bias-weighted. Either way all risky entries are identical.
        assert!((v.data()[1] - v.data()[2]).abs() < 1e-12);
        assert!((v.data()[2] - v.data()[3]).abs() < 1e-12);
    }

    #[test]
    fn recursive_input_influences_decision() {
        let (store, dm) = setup(4);
        let mut rng = StdRng::seed_from_u64(3);
        let feat = Tensor::randn(&mut rng, &[1, 4, 4, 1], 1.0);
        let run = |prev_val: f64| {
            let mut g = Graph::new();
            let bind = store.bind(&mut g);
            let f = g.leaf(feat.clone());
            let prev = g.leaf(Tensor::full(&[1, 1, 4, 1], prev_val));
            let out = dm.forward(&mut g, &bind, &[f], prev);
            g.value(out).clone()
        };
        let a = run(0.0);
        let b = run(0.9);
        assert!(a.max_abs_diff(&b) > 1e-9, "previous action ignored");
    }
}
