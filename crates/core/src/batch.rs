//! Input-batch assembly for the policy networks.
//!
//! A [`WindowBatch`] packages one batch of normalised price windows into the
//! three layouts the network streams consume:
//!
//! * per-timestep matrices `(B·m, d)` for the shared-weight LSTM,
//! * an NCHW tensor `(B, d, m, k)` for the convolutional correlation net,
//! * the recursive previous action (risky part only) as `(B, 1, m, 1)`.

use ppn_tensor::Tensor;

/// One forward batch.
pub struct WindowBatch {
    /// Batch size `B`.
    pub batch: usize,
    /// Risky asset count `m`.
    pub m: usize,
    /// Window length `k`.
    pub k: usize,
    /// Price features `d`.
    pub d: usize,
    /// `k` tensors of shape `(B·m, d)` in time order.
    pub seq_steps: Vec<Tensor>,
    /// `(B, d, m, k)` NCHW tensor.
    pub conv_input: Tensor,
    /// `(B, 1, m, 1)` previous risky weights `a_{t−1,1..m}`.
    pub prev_risky: Tensor,
}

impl WindowBatch {
    /// Builds a batch.
    ///
    /// * `windows[b]` — row-major `(m, k, d)` buffer (as produced by
    ///   `ppn_market::Dataset::window`).
    /// * `prev_actions[b]` — the full `m+1` previous portfolio (cash first);
    ///   only the risky tail is packed.
    ///
    /// # Panics
    /// Panics on inconsistent lengths.
    pub fn new(
        windows: &[Vec<f64>],
        prev_actions: &[Vec<f64>],
        m: usize,
        k: usize,
        d: usize,
    ) -> Self {
        let b = windows.len();
        assert!(b > 0, "empty batch");
        assert_eq!(prev_actions.len(), b);
        for w in windows {
            assert_eq!(w.len(), m * k * d, "window buffer has wrong size");
        }
        for a in prev_actions {
            assert_eq!(a.len(), m + 1, "prev action must include cash");
        }

        // Per-timestep (B*m, d) matrices.
        let mut seq_steps = Vec::with_capacity(k);
        for t in 0..k {
            let mut buf = Vec::with_capacity(b * m * d);
            for w in windows {
                for i in 0..m {
                    let base = i * k * d + t * d;
                    buf.extend_from_slice(&w[base..base + d]);
                }
            }
            seq_steps.push(Tensor::from_vec(&[b * m, d], buf));
        }

        // NCHW (B, d, m, k).
        let mut conv = Vec::with_capacity(b * d * m * k);
        for w in windows {
            for c in 0..d {
                for i in 0..m {
                    for t in 0..k {
                        conv.push(w[i * k * d + t * d + c]);
                    }
                }
            }
        }
        let conv_input = Tensor::from_vec(&[b, d, m, k], conv);

        // (B, 1, m, 1) risky previous weights.
        let mut prev = Vec::with_capacity(b * m);
        for a in prev_actions {
            prev.extend_from_slice(&a[1..]);
        }
        let prev_risky = Tensor::from_vec(&[b, 1, m, 1], prev);

        WindowBatch { batch: b, m, k, d, seq_steps, conv_input, prev_risky }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_window(m: usize, k: usize, d: usize, scale: f64) -> Vec<f64> {
        (0..m * k * d).map(|i| scale + i as f64).collect()
    }

    #[test]
    fn layouts_agree() {
        let (m, k, d) = (3, 4, 2);
        let w = toy_window(m, k, d, 0.0);
        let prev = vec![0.4, 0.3, 0.2, 0.1];
        let batch =
            WindowBatch::new(std::slice::from_ref(&w), std::slice::from_ref(&prev), m, k, d);

        assert_eq!(batch.seq_steps.len(), k);
        assert_eq!(batch.seq_steps[0].shape(), &[m, d]);
        assert_eq!(batch.conv_input.shape(), &[1, d, m, k]);
        assert_eq!(batch.prev_risky.shape(), &[1, 1, m, 1]);

        // Cross-check one coordinate: asset 1, time 2, feature 1.
        let expect = w[k * d + 2 * d + 1];
        assert_eq!(batch.seq_steps[2].at(&[1, 1]), expect);
        assert_eq!(batch.conv_input.at(&[0, 1, 1, 2]), expect);
    }

    #[test]
    fn prev_action_drops_cash() {
        let (m, k, d) = (2, 2, 1);
        let b = WindowBatch::new(&[toy_window(m, k, d, 0.0)], &[vec![0.5, 0.3, 0.2]], m, k, d);
        assert_eq!(b.prev_risky.data(), &[0.3, 0.2]);
    }

    #[test]
    fn batch_dimension_stacks() {
        let (m, k, d) = (2, 3, 2);
        let w0 = toy_window(m, k, d, 0.0);
        let w1 = toy_window(m, k, d, 100.0);
        let prev = vec![vec![1.0, 0.0, 0.0], vec![0.0, 0.5, 0.5]];
        let b = WindowBatch::new(&[w0.clone(), w1.clone()], &prev, m, k, d);
        assert_eq!(b.seq_steps[0].shape(), &[2 * m, d]);
        // Second sample's rows come after the first's.
        assert_eq!(b.seq_steps[0].at(&[m, 0]), w1[0]);
        assert_eq!(b.conv_input.at(&[1, 0, 0, 0]), w1[0]);
    }
}
