//! Sequential information net (§4.2): one LSTM shared across assets.
//!
//! Each asset's `(k, d)` price window is run through the same LSTM (assets
//! folded into the batch dimension) and the final hidden state becomes that
//! asset's sequential feature vector. Output is reshaped to the NCHW feature
//! map `(B, H, m, 1)` so it concatenates with the correlation-net features.

use crate::batch::WindowBatch;
use ppn_tensor::layers::Lstm;
use ppn_tensor::{Binding, Graph, NodeId, ParamStore};
use rand::Rng;

/// LSTM feature stream.
pub struct SeqNet {
    lstm: Lstm,
    hidden: usize,
}

impl SeqNet {
    /// Registers the LSTM parameters under `name`.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        rng: &mut R,
        name: &str,
        features: usize,
        hidden: usize,
    ) -> Self {
        SeqNet { lstm: Lstm::new(store, rng, name, features, hidden), hidden }
    }

    /// Output channel count.
    pub fn channels(&self) -> usize {
        self.hidden
    }

    /// Runs the stream; returns `(B, H, m, 1)`.
    pub fn forward(&self, g: &mut Graph, bind: &Binding, batch: &WindowBatch) -> NodeId {
        let steps: Vec<NodeId> = batch.seq_steps.iter().map(|t| g.leaf(t.clone())).collect();
        let h = self.lstm.forward(g, bind, &steps); // (B·m, H)
        let h3 = g.reshape(h, &[batch.batch, batch.m, self.hidden]);
        let hp = g.permute(h3, &[0, 2, 1]); // (B, H, m)
        g.reshape(hp, &[batch.batch, self.hidden, batch.m, 1])
    }

    /// Cascade entry point: runs the LSTM over externally-provided timestep
    /// nodes (used by the TCB-LSTM / TCCB-LSTM cascade variants) and returns
    /// the `(B, H, m, 1)` feature map.
    pub fn forward_steps(
        &self,
        g: &mut Graph,
        bind: &Binding,
        steps: &[NodeId],
        batch: usize,
        m: usize,
    ) -> NodeId {
        let h = self.lstm.forward(g, bind, steps);
        let h3 = g.reshape(h, &[batch, m, self.hidden]);
        let hp = g.permute(h3, &[0, 2, 1]);
        g.reshape(hp, &[batch, self.hidden, m, 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_shape_matches_table2() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let net = SeqNet::new(&mut store, &mut rng, "seq", 4, 16);
        let (m, k, d) = (5, 30, 4);
        let windows = vec![vec![1.0; m * k * d]; 2];
        let prev = vec![vec![1.0 / (m as f64 + 1.0); m + 1]; 2];
        let batch = WindowBatch::new(&windows, &prev, m, k, d);
        let mut g = Graph::new();
        let bind = store.bind(&mut g);
        let out = net.forward(&mut g, &bind, &batch);
        assert_eq!(g.value(out).shape(), &[2, 16, 5, 1]);
    }

    #[test]
    fn assets_processed_independently() {
        // Changing asset 1's series must not change asset 0's feature.
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let net = SeqNet::new(&mut store, &mut rng, "seq", 2, 4);
        let (m, k, d) = (2, 5, 2);
        let run = |w: Vec<f64>| {
            let batch = WindowBatch::new(&[w], &[vec![0.4, 0.3, 0.3]], m, k, d);
            let mut g = Graph::new();
            let bind = store.bind(&mut g);
            let out = net.forward(&mut g, &bind, &batch);
            g.value(out).clone()
        };
        let mut w1: Vec<f64> = (0..m * k * d).map(|i| 1.0 + 0.01 * i as f64).collect();
        let base = run(w1.clone());
        for v in &mut w1[k * d..] {
            *v += 0.5; // perturb only asset 1
        }
        let pert = run(w1);
        for c in 0..4 {
            assert_eq!(base.at(&[0, c, 0, 0]), pert.at(&[0, c, 0, 0]), "asset 0 leaked");
            assert_ne!(base.at(&[0, c, 1, 0]), pert.at(&[0, c, 1, 0]), "asset 1 unchanged");
        }
    }
}
