//! The Portfolio Policy Network and every ablation variant from the paper's
//! Table 4, plus the EIIE comparison network.
//!
//! | Variant | sequential stream | convolutional stream | fusion |
//! |---|---|---|---|
//! | `Ppn` | LSTM | TCCB ×3 + Conv4 | two-stream parallel |
//! | `PpnI` | LSTM | TCB ×3 + Conv4 | two-stream parallel |
//! | `PpnLstm` | LSTM | — | single stream |
//! | `PpnTcb` | — | TCB + Conv4 | single stream |
//! | `PpnTccb` | — | TCCB + Conv4 | single stream |
//! | `PpnTcbLstm` | LSTM *after* TCB blocks | TCB (no Conv4) | cascade |
//! | `PpnTccbLstm` | LSTM *after* TCCB blocks | TCCB (no Conv4) | cascade |
//! | `Eiie` | — | EIIE 2-layer CNN | (Jiang et al. 2017) |

use crate::batch::WindowBatch;
use crate::config::NetConfig;
use crate::corrnet::{CorrMode, CorrNet};
use crate::decision::DecisionModule;
use crate::seqnet::SeqNet;
use ppn_tensor::layers::{Conv2dLayer, ConvKind};
use ppn_tensor::{Binding, Graph, NodeId, ParamStore};
use rand::Rng;

thread_local! {
    /// Per-thread inference tape reused by [`PolicyNet::act_batch`].
    static ACT_TAPE: std::cell::RefCell<Graph> = std::cell::RefCell::new(Graph::new());
}

/// Network variant (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Variant {
    /// Full two-stream PPN (LSTM ∥ TCCB).
    Ppn,
    /// Independent-asset PPN (LSTM ∥ TCB).
    PpnI,
    /// LSTM stream only.
    PpnLstm,
    /// TCB stream only.
    PpnTcb,
    /// TCCB stream only.
    PpnTccb,
    /// Cascade: TCB blocks feeding an LSTM.
    PpnTcbLstm,
    /// Cascade: TCCB blocks feeding an LSTM.
    PpnTccbLstm,
    /// The EIIE CNN of Jiang et al. (2017), the paper's strongest baseline.
    Eiie,
}

impl Variant {
    /// Display name used in the result tables.
    pub fn name(self) -> &'static str {
        match self {
            Variant::Ppn => "PPN",
            Variant::PpnI => "PPN-I",
            Variant::PpnLstm => "PPN-LSTM",
            Variant::PpnTcb => "PPN-TCB",
            Variant::PpnTccb => "PPN-TCCB",
            Variant::PpnTcbLstm => "PPN-TCB-LSTM",
            Variant::PpnTccbLstm => "PPN-TCCB-LSTM",
            Variant::Eiie => "EIIE",
        }
    }

    /// Parses a variant from its display name.
    pub fn from_name(name: &str) -> Option<Variant> {
        [
            Variant::Ppn,
            Variant::PpnI,
            Variant::PpnLstm,
            Variant::PpnTcb,
            Variant::PpnTccb,
            Variant::PpnTcbLstm,
            Variant::PpnTccbLstm,
            Variant::Eiie,
        ]
        .into_iter()
        .find(|v| v.name() == name)
    }

    /// All PPN ablation variants in the row order of Table 4.
    pub fn table4_order() -> [Variant; 7] {
        [
            Variant::PpnLstm,
            Variant::PpnTcb,
            Variant::PpnTccb,
            Variant::PpnTcbLstm,
            Variant::PpnTccbLstm,
            Variant::PpnI,
            Variant::Ppn,
        ]
    }
}

enum Arch {
    TwoStream { seq: SeqNet, corr: CorrNet },
    SeqOnly { seq: SeqNet },
    ConvOnly { corr: CorrNet },
    Cascade { corr: CorrNet, seq: SeqNet },
    Eiie { conv1: Conv2dLayer, conv2: Conv2dLayer },
}

/// A trainable portfolio policy: owns its parameters and produces simplex
/// portfolios from [`WindowBatch`]es.
pub struct PolicyNet {
    /// The architecture variant.
    pub variant: Variant,
    /// Architecture configuration.
    pub cfg: NetConfig,
    /// The network's parameters.
    pub store: ParamStore,
    arch: Arch,
    decision: DecisionModule,
}

impl PolicyNet {
    /// Builds a network with freshly-initialised parameters.
    pub fn new<R: Rng>(variant: Variant, cfg: NetConfig, rng: &mut R) -> Self {
        let mut store = ParamStore::new();
        let mk_corr = |store: &mut ParamStore, rng: &mut R, mode: CorrMode| {
            CorrNet::new(
                store,
                rng,
                "corr",
                mode,
                cfg.assets,
                cfg.window,
                cfg.features,
                &cfg.tccb_channels,
                &cfg.tccb_dilations,
                cfg.dropout,
            )
        };
        let (arch, feat_channels) = match variant {
            Variant::Ppn | Variant::PpnI => {
                let mode = if variant == Variant::Ppn { CorrMode::Tccb } else { CorrMode::Tcb };
                let corr = mk_corr(&mut store, rng, mode);
                let seq = SeqNet::new(&mut store, rng, "seq", cfg.features, cfg.lstm_hidden);
                let ch = seq.channels() + corr.channels();
                (Arch::TwoStream { seq, corr }, ch)
            }
            Variant::PpnLstm => {
                let seq = SeqNet::new(&mut store, rng, "seq", cfg.features, cfg.lstm_hidden);
                let ch = seq.channels();
                (Arch::SeqOnly { seq }, ch)
            }
            Variant::PpnTcb | Variant::PpnTccb => {
                let mode = if variant == Variant::PpnTccb { CorrMode::Tccb } else { CorrMode::Tcb };
                let corr = mk_corr(&mut store, rng, mode);
                let ch = corr.channels();
                (Arch::ConvOnly { corr }, ch)
            }
            Variant::PpnTcbLstm | Variant::PpnTccbLstm => {
                let mode =
                    if variant == Variant::PpnTccbLstm { CorrMode::Tccb } else { CorrMode::Tcb };
                let corr = CorrNet::new_blocks_only(
                    &mut store,
                    rng,
                    "corr",
                    mode,
                    cfg.assets,
                    cfg.window,
                    cfg.features,
                    &cfg.tccb_channels,
                    &cfg.tccb_dilations,
                    cfg.dropout,
                );
                // Cascade LSTM consumes the blocks' channel output per period.
                let seq = SeqNet::new(
                    &mut store,
                    rng,
                    "seq",
                    // ppn-check: allow(no-panic) NetConfig always carries at least one TCCB block
                    *cfg.tccb_channels.last().expect("tccb_channels is non-empty"),
                    cfg.lstm_hidden,
                );
                let ch = seq.channels();
                (Arch::Cascade { corr, seq }, ch)
            }
            Variant::Eiie => {
                let conv1 = Conv2dLayer::new(
                    &mut store,
                    rng,
                    "eiie.conv1",
                    cfg.features,
                    8,
                    (1, 3),
                    (1, 1),
                    ConvKind::Valid,
                );
                let conv2 = Conv2dLayer::new(
                    &mut store,
                    rng,
                    "eiie.conv2",
                    8,
                    cfg.eiie_channels,
                    (1, cfg.window - 2),
                    (1, 1),
                    ConvKind::Valid,
                );
                let ch = cfg.eiie_channels;
                (Arch::Eiie { conv1, conv2 }, ch)
            }
        };
        let decision =
            DecisionModule::new(&mut store, rng, "decision", feat_channels, cfg.cash_bias);
        PolicyNet { variant, cfg, store, arch, decision }
    }

    /// Forward pass: returns the `(B, m+1)` portfolio node (softmax rows,
    /// cash at column 0).
    // ppn-check: contract(simplex)
    pub fn forward<R: Rng>(
        &self,
        g: &mut Graph,
        bind: &Binding,
        batch: &WindowBatch,
        training: bool,
        rng: &mut R,
    ) -> NodeId {
        let _span = ppn_obs::span!("net.forward");
        let features: Vec<NodeId> = match &self.arch {
            Arch::TwoStream { seq, corr } => {
                let f_seq = seq.forward(g, bind, batch);
                let f_corr = corr.forward(g, bind, batch, training, rng);
                vec![f_seq, f_corr]
            }
            Arch::SeqOnly { seq } => vec![seq.forward(g, bind, batch)],
            Arch::ConvOnly { corr } => vec![corr.forward(g, bind, batch, training, rng)],
            Arch::Cascade { corr, seq } => {
                let x = g.leaf(batch.conv_input.clone());
                let h = corr.forward_blocks(g, bind, x, training, rng); // (B, C, m, k)
                let c = g.value(h).shape()[1];
                // Slice each period into a (B·m, C) LSTM step.
                let steps: Vec<NodeId> = (0..batch.k)
                    .map(|t| {
                        let st = g.slice(h, 3, t, t + 1); // (B, C, m, 1)
                        let r = g.reshape(st, &[batch.batch, c, batch.m]);
                        let p = g.permute(r, &[0, 2, 1]); // (B, m, C)
                        g.reshape(p, &[batch.batch * batch.m, c])
                    })
                    .collect();
                vec![seq.forward_steps(g, bind, &steps, batch.batch, batch.m)]
            }
            Arch::Eiie { conv1, conv2 } => {
                let x = g.leaf(batch.conv_input.clone());
                let h = conv1.forward(g, bind, x);
                let h = g.relu(h);
                let h = conv2.forward(g, bind, h); // (B, C, m, 1)
                vec![g.relu(h)]
            }
        };
        let prev = g.leaf(batch.prev_risky.clone());
        let out = self.decision.forward(g, bind, &features, prev);
        crate::contracts::assert_simplex_rows(
            g.value(out).data(),
            batch.m + 1,
            "PolicyNet::forward",
        );
        out
    }

    /// Deep-copies the network: rebuilds the architecture and copies every
    /// parameter tensor. Same rebuild idiom as [`PolicyNet::load`] — the
    /// registration order of a `(variant, cfg)` pair is deterministic, so
    /// pairwise copy is exact and the copy acts bit-identically. This is
    /// how the streaming updater publishes immutable candidates while the
    /// trainer keeps mutating its own parameters.
    pub fn snapshot(&self) -> PolicyNet {
        let mut rng = rand::rngs::mock::StepRng::new(1, 1);
        let mut net = PolicyNet::new(self.variant, self.cfg.clone(), &mut rng);
        debug_assert_eq!(net.store.len(), self.store.len());
        for (dst, src) in net.store.ids().zip(self.store.ids()).collect::<Vec<_>>() {
            *net.store.value_mut(dst) = self.store.value(src).clone();
        }
        net
    }

    /// Convenience single-sample evaluation (no dropout, no gradient):
    /// returns the `m+1` portfolio for one window. The simplex contract is
    /// enforced inside [`PolicyNet::act_batch`], which this delegates to.
    pub fn act(&self, window: &[f64], prev_action: &[f64]) -> Vec<f64> {
        let mut out = self.act_batch(&[window.to_vec()], &[prev_action.to_vec()]);
        debug_assert_eq!(out.len(), 1);
        out.pop().unwrap_or_default()
    }

    /// Batched evaluation (no dropout, no gradient): one forward pass over
    /// all samples, returning an `m+1` portfolio per window.
    ///
    /// Every kernel in the forward pass accumulates each output row
    /// independently of the batch dimension, so each returned portfolio is
    /// bit-identical to what [`PolicyNet::act`] produces for the same
    /// `(window, prev_action)` pair — the property the `ppn-serve`
    /// micro-batcher relies on.
    // ppn-check: contract(simplex)
    pub fn act_batch(&self, windows: &[Vec<f64>], prev_actions: &[Vec<f64>]) -> Vec<Vec<f64>> {
        assert_eq!(windows.len(), prev_actions.len(), "act_batch input length mismatch");
        if windows.is_empty() {
            return Vec::new();
        }
        let batch = WindowBatch::new(
            windows,
            prev_actions,
            self.cfg.assets,
            self.cfg.window,
            self.cfg.features,
        );
        // Reuse one tape per serving thread: reset keeps the node arena,
        // and released tensor buffers are rebound from the storage arena on
        // the next call instead of hitting the allocator.
        let mut g = ACT_TAPE.try_with(std::cell::RefCell::take).unwrap_or_default();
        g.reset();
        let bind = self.store.bind(&mut g);
        // Dropout disabled → rng unused; any cheap source works.
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        let out = self.forward(&mut g, &bind, &batch, false, &mut rng);
        let data = g.value(out).data();
        let row = self.cfg.assets + 1;
        let actions: Vec<Vec<f64>> = data
            .chunks(row)
            .map(|r| {
                crate::contracts::assert_simplex(r, "PolicyNet::act_batch");
                r.to_vec()
            })
            .collect();
        let _ = ACT_TAPE.try_with(|cell| *cell.borrow_mut() = g);
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_batch(cfg: &NetConfig, b: usize) -> WindowBatch {
        let (m, k, d) = (cfg.assets, cfg.window, cfg.features);
        let windows: Vec<Vec<f64>> = (0..b)
            .map(|s| (0..m * k * d).map(|i| 1.0 + 0.01 * ((i + s) as f64 * 0.7).sin()).collect())
            .collect();
        let prev = vec![vec![1.0 / (m as f64 + 1.0); m + 1]; b];
        WindowBatch::new(&windows, &prev, m, k, d)
    }

    #[test]
    fn every_variant_outputs_simplex() {
        let cfg = NetConfig { window: 12, ..NetConfig::paper(5) };
        let variants = [
            Variant::Ppn,
            Variant::PpnI,
            Variant::PpnLstm,
            Variant::PpnTcb,
            Variant::PpnTccb,
            Variant::PpnTcbLstm,
            Variant::PpnTccbLstm,
            Variant::Eiie,
        ];
        for v in variants {
            let mut rng = StdRng::seed_from_u64(9);
            let net = PolicyNet::new(v, cfg.clone(), &mut rng);
            let batch = toy_batch(&cfg, 2);
            let mut g = Graph::new();
            let bind = net.store.bind(&mut g);
            let out = net.forward(&mut g, &bind, &batch, false, &mut rng);
            let val = g.value(out);
            assert_eq!(val.shape(), &[2, 6], "{v:?}");
            for r in 0..2 {
                let s: f64 = val.data()[r * 6..(r + 1) * 6].iter().sum();
                assert!((s - 1.0).abs() < 1e-9, "{v:?} row sum {s}");
            }
        }
    }

    #[test]
    fn act_matches_forward() {
        let cfg = NetConfig { window: 10, ..NetConfig::paper(4) };
        let mut rng = StdRng::seed_from_u64(4);
        let net = PolicyNet::new(Variant::Ppn, cfg.clone(), &mut rng);
        let window: Vec<f64> =
            (0..cfg.assets * cfg.window * 4).map(|i| 1.0 + 0.001 * i as f64).collect();
        let prev = vec![0.2; 5];
        let a = net.act(&window, &prev);
        assert_eq!(a.len(), 5);
        assert!((a.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Deterministic in eval mode.
        assert_eq!(a, net.act(&window, &prev));
    }

    #[test]
    fn act_batch_rows_are_bit_identical_to_single_sample_act() {
        let cfg = NetConfig { window: 8, lstm_hidden: 4, ..NetConfig::paper(3) };
        for v in [Variant::Ppn, Variant::PpnLstm, Variant::PpnTccbLstm, Variant::Eiie] {
            let mut rng = StdRng::seed_from_u64(11);
            let net = PolicyNet::new(v, cfg.clone(), &mut rng);
            let (m, k, d) = (cfg.assets, cfg.window, cfg.features);
            let windows: Vec<Vec<f64>> = (0..5)
                .map(|s| {
                    (0..m * k * d).map(|i| 1.0 + 0.02 * ((i * (s + 1)) as f64).cos()).collect()
                })
                .collect();
            let prevs: Vec<Vec<f64>> = (0..5)
                .map(|s| {
                    let mut p = vec![1.0; m + 1];
                    p[s % (m + 1)] += 1.0;
                    let t: f64 = p.iter().sum();
                    p.iter().map(|w| w / t).collect()
                })
                .collect();
            let batched = net.act_batch(&windows, &prevs);
            assert_eq!(batched.len(), 5, "{v:?}");
            for i in 0..5 {
                let single = net.act(&windows[i], &prevs[i]);
                // Bitwise, not approximate: the serving micro-batcher
                // depends on batch size not perturbing decisions.
                let a: Vec<u64> = batched[i].iter().map(|x| x.to_bits()).collect();
                let b: Vec<u64> = single.iter().map(|x| x.to_bits()).collect();
                assert_eq!(a, b, "{v:?} row {i} differs between batched and single");
            }
        }
        // Empty input short-circuits without building a WindowBatch.
        let mut rng = StdRng::seed_from_u64(11);
        let net = PolicyNet::new(Variant::PpnLstm, cfg, &mut rng);
        assert!(net.act_batch(&[], &[]).is_empty());
    }

    #[test]
    fn param_counts_scale_with_variant() {
        let cfg = NetConfig { window: 12, ..NetConfig::paper(6) };
        let count = |v: Variant| {
            let mut rng = StdRng::seed_from_u64(0);
            PolicyNet::new(v, cfg.clone(), &mut rng).store.num_scalars()
        };
        // Two-stream has strictly more parameters than either single stream.
        assert!(count(Variant::Ppn) > count(Variant::PpnLstm));
        assert!(count(Variant::Ppn) > count(Variant::PpnTccb));
        // TCCB adds the correlational kernels over TCB.
        assert!(count(Variant::PpnTccb) > count(Variant::PpnTcb));
    }

    #[test]
    fn gradients_reach_all_parameters() {
        let cfg = NetConfig { window: 10, ..NetConfig::paper(3) };
        for v in [Variant::Ppn, Variant::PpnTccbLstm, Variant::Eiie] {
            let mut rng = StdRng::seed_from_u64(5);
            let net = PolicyNet::new(v, cfg.clone(), &mut rng);
            let batch = toy_batch(&cfg, 2);
            let mut g = Graph::new();
            let bind = net.store.bind(&mut g);
            let out = net.forward(&mut g, &bind, &batch, false, &mut rng);
            // Arbitrary scalar objective touching every output.
            let w = g.leaf(ppn_tensor::Tensor::randn(&mut rng, &[2, 4], 1.0));
            let p = g.mul(out, w);
            let s = g.sum(p);
            g.backward(s);
            let grads = bind.grads(&g);
            let reached = grads.iter().filter(|gr| gr.is_some()).count();
            assert_eq!(
                reached,
                net.store.len(),
                "{v:?}: {reached}/{} params reached",
                net.store.len()
            );
        }
    }

    #[test]
    fn ppn_forward_backward_gradcheck_spotcheck() {
        // End-to-end finite-difference check through the full two-stream
        // network (subsampled — the net has thousands of scalars). `forward`
        // only reads the architecture, so the store can be moved out and
        // driven by the gradcheck harness.
        let cfg = NetConfig {
            window: 8,
            lstm_hidden: 4,
            tccb_channels: [3, 4, 4],
            ..NetConfig::paper(3)
        };
        let mut rng = StdRng::seed_from_u64(6);
        let mut net = PolicyNet::new(Variant::Ppn, cfg.clone(), &mut rng);
        let batch = toy_batch(&cfg, 1);
        let weights = ppn_tensor::Tensor::from_vec(&[1, 4], vec![0.3, -0.2, 0.8, -0.5]);
        let mut store = std::mem::take(&mut net.store);
        // Shift conv biases away from the ReLU kink: central differences
        // straddling a kink disagree with the (correct) subgradient and
        // would produce spurious errors.
        let ids: Vec<_> = store.ids().collect();
        for id in ids {
            if store.name(id).ends_with(".b") && store.name(id).contains("conv") {
                for v in store.value_mut(id).data_mut() {
                    *v += 0.5;
                }
            }
        }
        let report = ppn_tensor::gradcheck::gradcheck(
            &mut store,
            |g, bind| {
                let mut rng = rand::rngs::mock::StepRng::new(0, 1);
                let out = net.forward(g, bind, &batch, false, &mut rng);
                let w = g.leaf(weights.clone());
                let p = g.mul(out, w);
                g.sum(p)
            },
            1e-5,
            97,
        );
        assert!(report.checked > 10, "too few coordinates checked");
        assert!(report.max_rel_err < 1e-4, "{report:?}");
    }
}

/// Per-variant end-to-end gradient certification (ReLU kinks avoided by
/// shifting conv biases — see the note in `ppn::tests`).
#[cfg(test)]
mod variant_gradcheck {
    use super::*;
    use crate::batch::WindowBatch;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_batch(cfg: &NetConfig, b: usize) -> WindowBatch {
        let (m, k, d) = (cfg.assets, cfg.window, cfg.features);
        let windows: Vec<Vec<f64>> = (0..b)
            .map(|s| (0..m * k * d).map(|i| 1.0 + 0.01 * ((i + s) as f64 * 0.7).sin()).collect())
            .collect();
        let prev = vec![vec![1.0 / (m as f64 + 1.0); m + 1]; b];
        WindowBatch::new(&windows, &prev, m, k, d)
    }

    fn check(v: Variant) -> f64 {
        let cfg = NetConfig {
            window: 8,
            lstm_hidden: 4,
            tccb_channels: [3, 4, 4],
            ..NetConfig::paper(3)
        };
        let mut rng = StdRng::seed_from_u64(6);
        let mut net = PolicyNet::new(v, cfg.clone(), &mut rng);
        let batch = toy_batch(&cfg, 1);
        let weights = ppn_tensor::Tensor::from_vec(&[1, 4], vec![0.3, -0.2, 0.8, -0.5]);
        let mut store = std::mem::take(&mut net.store);
        // Push conv biases away from the ReLU kink to test the kink hypothesis.
        let ids: Vec<_> = store.ids().collect();
        for id in ids {
            if store.name(id).ends_with(".b") && store.name(id).contains("conv") {
                for v in store.value_mut(id).data_mut() {
                    *v += 0.5;
                }
            }
        }
        let report = ppn_tensor::gradcheck::gradcheck(
            &mut store,
            |g, bind| {
                let mut rng = rand::rngs::mock::StepRng::new(0, 1);
                let out = net.forward(g, bind, &batch, false, &mut rng);
                let w = g.leaf(weights.clone());
                let p = g.mul(out, w);
                g.sum(p)
            },
            1e-5,
            37,
        );
        ppn_obs::obs_debug!("{v:?}: {report:?}");
        report.max_rel_err
    }

    #[test]
    fn per_variant() {
        for v in [Variant::PpnLstm, Variant::PpnTcb, Variant::PpnTccb, Variant::Eiie] {
            let err = check(v);
            assert!(err < 1e-6, "{v:?} gradcheck failed: {err}");
        }
    }
}
