#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # ppn-core
//!
//! The paper's primary contribution: the **cost-sensitive Portfolio Policy
//! Network** (PPN) and everything needed to train and evaluate it.
//!
//! * [`ppn::PolicyNet`] — the two-stream architecture of §4 (LSTM sequential
//!   information net ∥ TCCB correlation information net ∥ recursive decision
//!   module) and every ablation variant of Table 4, plus the EIIE baseline.
//! * [`reward`] — the cost-sensitive reward of Eqn. (1) with the λ risk and
//!   γ transaction-cost trade-offs (Theorems 1–2 give its near-optimality).
//! * [`trainer::Trainer`] — direct policy gradient with the online
//!   stochastic batch method and portfolio-vector memory (§5.1, Remark 3).
//! * [`ddpg::DdpgTrainer`] — the PPN-AC actor-critic comparison of §7.2.
//! * [`policy::NetPolicy`] — adapter running trained networks under the
//!   shared `ppn_market` backtest harness.
//!
//! ## Quickstart
//!
//! ```no_run
//! use ppn_core::prelude::*;
//! use ppn_market::{run_backtest, test_range, Dataset, Preset};
//!
//! let ds = Dataset::load(Preset::CryptoA);
//! let train = TrainConfig { steps: 200, ..TrainConfig::default() };
//! let (mut policy, _report) = train_policy(&ds, Variant::Ppn, RewardConfig::default(), train);
//! let result = run_backtest(&ds, &mut policy, 0.0025, test_range(&ds));
//! println!("APV {:.2}", result.metrics.apv);
//! ```

/// Mini-batch sampling over price-relative windows (§5.1).
pub mod batch;
/// Network, reward and training hyper-parameter bundles.
pub mod config;
/// Debug-build numerical contracts (simplex/finite invariants).
pub mod contracts;
/// TCCB correlation information net (§4.2) and its ablations.
pub mod corrnet;
/// PPN-AC actor-critic comparison trainer (§7.2).
pub mod ddpg;
/// Recursive decision module fusing both streams (§4.3).
pub mod decision;
/// Online rolling-retrain policy wrapper (Remark 3).
pub mod online;
/// Checkpoint serialization for trained parameter stores.
pub mod persist;
/// Adapters running trained networks as backtest policies.
pub mod policy;
/// The Portfolio Policy Network and its Table-4 variants.
pub mod ppn;
/// Cost-sensitive reward of Eqn. (1) and its building blocks.
pub mod reward;
/// LSTM sequential information net (§4.1).
pub mod seqnet;
/// Direct policy-gradient trainer with portfolio-vector memory (§5.1).
pub mod trainer;

/// One-stop imports for examples and the experiment harness.
pub mod prelude {
    pub use crate::config::{NetConfig, RewardConfig, TrainConfig};
    pub use crate::ddpg::{DdpgConfig, DdpgTrainer};
    pub use crate::online::OnlineNetPolicy;
    pub use crate::policy::{train_policy, NetPolicy};
    pub use crate::ppn::{PolicyNet, Variant};
    pub use crate::trainer::{TrainReport, Trainer};
}

pub use prelude::*;
