//! # ppn-core
//!
//! The paper's primary contribution: the **cost-sensitive Portfolio Policy
//! Network** (PPN) and everything needed to train and evaluate it.
//!
//! * [`ppn::PolicyNet`] — the two-stream architecture of §4 (LSTM sequential
//!   information net ∥ TCCB correlation information net ∥ recursive decision
//!   module) and every ablation variant of Table 4, plus the EIIE baseline.
//! * [`reward`] — the cost-sensitive reward of Eqn. (1) with the λ risk and
//!   γ transaction-cost trade-offs (Theorems 1–2 give its near-optimality).
//! * [`trainer::Trainer`] — direct policy gradient with the online
//!   stochastic batch method and portfolio-vector memory (§5.1, Remark 3).
//! * [`ddpg::DdpgTrainer`] — the PPN-AC actor-critic comparison of §7.2.
//! * [`policy::NetPolicy`] — adapter running trained networks under the
//!   shared `ppn_market` backtest harness.
//!
//! ## Quickstart
//!
//! ```no_run
//! use ppn_core::prelude::*;
//! use ppn_market::{run_backtest, test_range, Dataset, Preset};
//!
//! let ds = Dataset::load(Preset::CryptoA);
//! let train = TrainConfig { steps: 200, ..TrainConfig::default() };
//! let (mut policy, _report) = train_policy(&ds, Variant::Ppn, RewardConfig::default(), train);
//! let result = run_backtest(&ds, &mut policy, 0.0025, test_range(&ds));
//! println!("APV {:.2}", result.metrics.apv);
//! ```

pub mod batch;
pub mod config;
pub mod corrnet;
pub mod ddpg;
pub mod decision;
pub mod online;
pub mod persist;
pub mod policy;
pub mod ppn;
pub mod reward;
pub mod seqnet;
pub mod trainer;

/// One-stop imports for examples and the experiment harness.
pub mod prelude {
    pub use crate::config::{NetConfig, RewardConfig, TrainConfig};
    pub use crate::ddpg::{DdpgConfig, DdpgTrainer};
    pub use crate::online::OnlineNetPolicy;
    pub use crate::policy::{train_policy, NetPolicy};
    pub use crate::ppn::{PolicyNet, Variant};
    pub use crate::trainer::{TrainReport, Trainer};
}

pub use prelude::*;
