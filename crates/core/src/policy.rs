//! Adapters exposing trained networks as [`ppn_market::Policy`] so they run
//! under the shared backtest harness next to the classic baselines.

use crate::config::{RewardConfig, TrainConfig};
use crate::ppn::{PolicyNet, Variant};
use crate::trainer::{TrainReport, Trainer};
use ppn_market::{Dataset, DecisionContext, Policy, Weights};

/// A trained policy network wrapped for backtesting.
pub struct NetPolicy {
    /// The trained network.
    pub net: PolicyNet,
}

impl NetPolicy {
    /// Wraps a trained network.
    pub fn new(net: PolicyNet) -> Self {
        NetPolicy { net }
    }
}

impl Policy for NetPolicy {
    fn name(&self) -> String {
        self.net.variant.name().to_string()
    }

    fn decide_batch(&mut self, ctxs: &[DecisionContext<'_>]) -> Vec<Weights> {
        let windows: Vec<Vec<f64>> =
            ctxs.iter().map(|ctx| ctx.dataset.window(ctx.t, self.net.cfg.window)).collect();
        let prevs: Vec<Vec<f64>> = ctxs.iter().map(|ctx| ctx.prev_action.to_vec()).collect();
        let mut actions = self.net.act_batch(&windows, &prevs);
        for a in &mut actions {
            // Guard against tiny softmax round-off drifting off the simplex.
            let s: f64 = a.iter().sum();
            for w in a.iter_mut() {
                *w /= s;
            }
        }
        actions
    }
}

/// Trains `variant` on `dataset` and returns the wrapped policy plus the
/// training report. This is the one-call entry point the experiment
/// harnesses use.
pub fn train_policy(
    dataset: &Dataset,
    variant: Variant,
    reward_cfg: RewardConfig,
    train_cfg: TrainConfig,
) -> (NetPolicy, TrainReport) {
    let mut trainer = Trainer::new(dataset, variant, reward_cfg, train_cfg);
    let report = trainer.train();
    (NetPolicy::new(trainer.into_net()), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppn_market::{run_backtest, Preset};

    #[test]
    fn untrained_net_still_backtests_validly() {
        let ds = Dataset::load(Preset::CryptoA);
        let mut rng = rand::rngs::mock::StepRng::new(7, 11);
        let net = PolicyNet::new(
            Variant::PpnLstm,
            crate::config::NetConfig::paper(ds.assets()),
            &mut rng,
        );
        let mut policy = NetPolicy::new(net);
        let r = run_backtest(&ds, &mut policy, 0.0025, ds.split..ds.split + 30);
        assert_eq!(r.records.len(), 30);
        for rec in &r.records {
            let s: f64 = rec.action.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
            assert!(rec.wealth.is_finite() && rec.wealth > 0.0);
        }
    }
}
