//! Checkpoint persistence contract: round-trips across every [`Variant`],
//! schema versioning (legacy files, future rejection), and the load-time
//! error paths (truncation, shape mismatch, unknown variant).

use ppn_core::config::NetConfig;
use ppn_core::persist::{Checkpoint, SCHEMA_VERSION};
use ppn_core::ppn::{PolicyNet, Variant};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Serialize, Value};
use std::path::PathBuf;

const ALL_VARIANTS: [Variant; 8] = [
    Variant::Ppn,
    Variant::PpnI,
    Variant::PpnLstm,
    Variant::PpnTcb,
    Variant::PpnTccb,
    Variant::PpnTcbLstm,
    Variant::PpnTccbLstm,
    Variant::Eiie,
];

fn small_cfg(assets: usize) -> NetConfig {
    NetConfig { window: 8, lstm_hidden: 4, tccb_channels: [3, 4, 4], ..NetConfig::paper(assets) }
}

fn tmp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ppn_persist_roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn probe_inputs(cfg: &NetConfig) -> (Vec<f64>, Vec<f64>) {
    let window: Vec<f64> = (0..cfg.assets * cfg.window * cfg.features)
        .map(|i| 1.0 + 0.003 * (i as f64 * 0.9).sin())
        .collect();
    let prev = vec![1.0 / (cfg.assets as f64 + 1.0); cfg.assets + 1];
    (window, prev)
}

#[test]
fn every_variant_round_trips_bitwise() {
    for (i, v) in ALL_VARIANTS.into_iter().enumerate() {
        let cfg = small_cfg(3);
        let mut rng = StdRng::seed_from_u64(100 + i as u64);
        let net = PolicyNet::new(v, cfg.clone(), &mut rng);
        let (window, prev) = probe_inputs(&cfg);
        let before = net.act(&window, &prev);

        let path = tmp_path(&format!("rt_{i}.json"));
        net.save(&path).unwrap();
        let loaded = PolicyNet::load(&path).unwrap();
        assert_eq!(loaded.variant, v);

        let after = loaded.act(&window, &prev);
        let a: Vec<u64> = before.iter().map(|x| x.to_bits()).collect();
        let b: Vec<u64> = after.iter().map(|x| x.to_bits()).collect();
        assert_eq!(a, b, "{v:?}: loaded net must act bit-identically");
    }
}

#[test]
fn saved_checkpoint_is_tagged_with_current_schema_version() {
    let mut rng = StdRng::seed_from_u64(1);
    let net = PolicyNet::new(Variant::PpnLstm, small_cfg(3), &mut rng);
    let path = tmp_path("tagged.json");
    net.save(&path).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let v = Value::parse(&text).unwrap();
    match v.field("schema_version").unwrap() {
        Value::Num(n) => assert_eq!(*n, SCHEMA_VERSION as f64),
        other => panic!("schema_version is not a number: {other:?}"),
    }
}

#[test]
fn legacy_checkpoint_without_schema_version_loads_as_v1() {
    let mut rng = StdRng::seed_from_u64(2);
    let net = PolicyNet::new(Variant::PpnTccb, small_cfg(3), &mut rng);
    let (window, prev) = probe_inputs(&net.cfg);
    let before = net.act(&window, &prev);

    let path = tmp_path("legacy.json");
    net.save(&path).unwrap();
    // Strip the version field, emulating a file written before versioning.
    let text = std::fs::read_to_string(&path).unwrap();
    let stripped = match Value::parse(&text).unwrap() {
        Value::Obj(pairs) => {
            Value::Obj(pairs.into_iter().filter(|(k, _)| k != "schema_version").collect())
        }
        other => panic!("checkpoint is not an object: {other:?}"),
    };
    std::fs::write(&path, serde_json::to_vec(&stripped).unwrap()).unwrap();

    let loaded = PolicyNet::load(&path).unwrap();
    assert_eq!(loaded.act(&window, &prev), before);
}

#[test]
fn future_schema_version_is_rejected_with_descriptive_error() {
    let mut rng = StdRng::seed_from_u64(3);
    let net = PolicyNet::new(Variant::PpnLstm, small_cfg(3), &mut rng);
    let path = tmp_path("future.json");
    net.save(&path).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let bumped = match Value::parse(&text).unwrap() {
        Value::Obj(mut pairs) => {
            for (k, v) in pairs.iter_mut() {
                if k == "schema_version" {
                    *v = Value::Num((SCHEMA_VERSION + 1) as f64);
                }
            }
            Value::Obj(pairs)
        }
        other => panic!("checkpoint is not an object: {other:?}"),
    };
    std::fs::write(&path, serde_json::to_vec(&bumped).unwrap()).unwrap();

    let msg = match PolicyNet::load(&path) {
        Err(e) => e.to_string(),
        Ok(_) => panic!("future schema_version must not load"),
    };
    assert!(msg.contains("schema_version"), "undescriptive error: {msg}");
    assert!(msg.contains(&(SCHEMA_VERSION + 1).to_string()), "missing offending version: {msg}");
}

#[test]
fn zero_schema_version_is_rejected() {
    let mut rng = StdRng::seed_from_u64(4);
    let net = PolicyNet::new(Variant::PpnLstm, small_cfg(3), &mut rng);
    let path = tmp_path("zero.json");
    net.save(&path).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let zeroed =
        text.replacen(&format!("\"schema_version\":{SCHEMA_VERSION}"), "\"schema_version\":0", 1);
    assert_ne!(zeroed, text, "substitution must hit the version field");
    std::fs::write(&path, zeroed).unwrap();
    assert!(PolicyNet::load(&path).is_err());
}

#[test]
fn truncated_checkpoint_fails_to_load() {
    let mut rng = StdRng::seed_from_u64(5);
    let net = PolicyNet::new(Variant::Eiie, small_cfg(3), &mut rng);
    let path = tmp_path("trunc.json");
    net.save(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    assert!(PolicyNet::load(&path).is_err());
}

#[test]
fn unknown_variant_name_is_reported() {
    let mut rng = StdRng::seed_from_u64(6);
    let net = PolicyNet::new(Variant::PpnTcb, small_cfg(3), &mut rng);
    let path = tmp_path("unknown_variant.json");
    net.save(&path).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, text.replacen("\"PPN-TCB\"", "\"PPN-QUANTUM\"", 1)).unwrap();
    let msg = match PolicyNet::load(&path) {
        Err(e) => e.to_string(),
        Ok(_) => panic!("unknown variant must not load"),
    };
    assert!(msg.contains("PPN-QUANTUM"), "error should name the variant: {msg}");
}

#[test]
fn shape_mismatch_against_rebuilt_architecture_is_rejected() {
    let mut rng = StdRng::seed_from_u64(7);
    let net = PolicyNet::new(Variant::Ppn, small_cfg(4), &mut rng);
    let path = tmp_path("shape.json");
    net.save(&path).unwrap();
    // Re-claim a different asset count: the CCONV kernels' height is the
    // asset count, so the stored tensors no longer fit the rebuilt net.
    let text = std::fs::read_to_string(&path).unwrap();
    let v = Value::parse(&text).unwrap();
    let mut ck_pairs = match v {
        Value::Obj(pairs) => pairs,
        other => panic!("checkpoint is not an object: {other:?}"),
    };
    for (k, val) in ck_pairs.iter_mut() {
        if k == "cfg" {
            if let Value::Obj(cfg_pairs) = val {
                for (ck, cv) in cfg_pairs.iter_mut() {
                    if ck == "assets" {
                        *cv = Value::Num(7.0);
                    }
                }
            }
        }
    }
    std::fs::write(&path, serde_json::to_vec(&Value::Obj(ck_pairs)).unwrap()).unwrap();
    assert!(PolicyNet::load(&path).is_err());
}

#[test]
fn owned_checkpoint_serialization_matches_borrowed_save() {
    // `save` goes through the borrowed CheckpointRef; the owned Checkpoint
    // (used by tools that edit checkpoints) must produce byte-identical
    // JSON so the two paths cannot drift apart.
    let mut rng = StdRng::seed_from_u64(8);
    let net = PolicyNet::new(Variant::PpnI, small_cfg(3), &mut rng);
    let path = tmp_path("owned_vs_borrowed.json");
    net.save(&path).unwrap();
    let saved = std::fs::read(&path).unwrap();

    let owned = Checkpoint {
        schema_version: SCHEMA_VERSION,
        variant: net.variant.name().to_string(),
        cfg: net.cfg.clone(),
        store: {
            let mut s = ppn_tensor::ParamStore::new();
            for id in net.store.ids() {
                s.add(net.store.name(id), net.store.value(id).clone());
            }
            s
        },
    };
    let mut ser = serde::Ser::new();
    owned.serialize(&mut ser);
    assert_eq!(saved, ser.finish().into_bytes());
}
