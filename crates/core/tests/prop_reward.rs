//! Property-based tests for the cost-sensitive reward (Eqn. 1).

use ppn_core::reward::{cost_sensitive_reward, reward_value};
use ppn_tensor::{Graph, Tensor};
use proptest::prelude::*;

/// Random simplex rows `(t, n)` flattened.
fn simplex_rows(t: usize, n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.01..1.0f64, n), t).prop_map(|rows| {
        rows.into_iter()
            .map(|r| {
                let s: f64 = r.iter().sum();
                r.into_iter().map(|x| x / s).collect()
            })
            .collect()
    })
}

/// Random relatives in the theorems' band (cash pinned at 1).
fn relative_rows(t: usize, n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.5..2.0f64, n), t).prop_map(|rows| {
        rows.into_iter()
            .map(|mut r| {
                r[0] = 1.0;
                r
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn graph_matches_closed_form(
        seed in 0u64..1000,
        lambda in 0.0..0.5f64,
        gamma in 0.0..0.5f64,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (t, n) = (5usize, 4usize);
        let mk_simplex = |rng: &mut rand::rngs::StdRng| -> Vec<f64> {
            let raw: Vec<f64> = (0..n).map(|_| rng.gen_range(0.01..1.0)).collect();
            let s: f64 = raw.iter().sum();
            raw.into_iter().map(|x| x / s).collect()
        };
        let actions: Vec<Vec<f64>> = (0..t).map(|_| mk_simplex(&mut rng)).collect();
        let drifted: Vec<Vec<f64>> = (0..t).map(|_| mk_simplex(&mut rng)).collect();
        let relatives: Vec<Vec<f64>> = (0..t)
            .map(|_| {
                let mut r: Vec<f64> = (0..n).map(|_| rng.gen_range(0.6..1.6)).collect();
                r[0] = 1.0;
                r
            })
            .collect();
        let psi = 0.0025;
        let (expect, ..) = reward_value(&actions, &relatives, &drifted, lambda, gamma, psi);
        let flat = |rows: &[Vec<f64>]| rows.concat();
        let mut g = Graph::new();
        let a = g.param(Tensor::from_vec(&[t, n], flat(&actions)));
        let nodes = cost_sensitive_reward(
            &mut g,
            a,
            &Tensor::from_vec(&[t, n], flat(&relatives)),
            &Tensor::from_vec(&[t, n], flat(&drifted)),
            lambda,
            gamma,
            psi,
        );
        prop_assert!((g.value(nodes.reward).item() - expect).abs() < 1e-10);
    }

    #[test]
    fn reward_monotone_decreasing_in_lambda_and_gamma(
        pair in (2usize..6, 3usize..6).prop_flat_map(|(t, n)| {
            (simplex_rows(t, n), simplex_rows(t, n), relative_rows(t, n))
        }),
        l1 in 0.0..0.2f64,
        dl in 0.001..0.2f64,
    ) {
        let (actions, drifted, relatives) = pair;
        let r = |lambda: f64, gamma: f64| {
            reward_value(&actions, &relatives, &drifted, lambda, gamma, 0.0025).0
        };
        // Variance and turnover are non-negative, so increasing either
        // trade-off can never increase the reward.
        prop_assert!(r(l1 + dl, 0.0) <= r(l1, 0.0) + 1e-12);
        prop_assert!(r(0.0, l1 + dl) <= r(0.0, l1) + 1e-12);
    }

    #[test]
    fn components_have_correct_signs(
        pair in (2usize..6, 3usize..6).prop_flat_map(|(t, n)| {
            (simplex_rows(t, n), simplex_rows(t, n), relative_rows(t, n))
        }),
    ) {
        let (actions, drifted, relatives) = pair;
        let (_, _mean, var, to) =
            reward_value(&actions, &relatives, &drifted, 0.1, 0.1, 0.0025);
        prop_assert!(var >= 0.0);
        prop_assert!(to >= 0.0);
        // Turnover per period is at most 2 for simplex pairs.
        prop_assert!(to <= 2.0 + 1e-12);
    }

    #[test]
    fn holding_the_drifted_portfolio_has_zero_turnover_penalty(
        pair in (2usize..6, 3usize..6).prop_flat_map(|(t, n)| {
            (simplex_rows(t, n), relative_rows(t, n))
        }),
        gamma in 0.0..1.0f64,
    ) {
        let (holdings, relatives) = pair;
        // actions == drifted: the γ term must vanish and ψ cost must be 0.
        let (r_g, _, _, to) =
            reward_value(&holdings, &relatives, &holdings, 0.0, gamma, 0.0025);
        let (r_0, ..) = reward_value(&holdings, &relatives, &holdings, 0.0, 0.0, 0.0025);
        prop_assert!(to.abs() < 1e-12);
        prop_assert!((r_g - r_0).abs() < 1e-12);
    }
}
