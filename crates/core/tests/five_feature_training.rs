//! The paper's §3 extension: d = 5 inputs (OHLC + volume). The architecture
//! is parameterised over `features`, so a five-feature PPN trains end to end.

use ppn_core::batch::WindowBatch;
use ppn_core::prelude::*;
use ppn_core::reward::cost_sensitive_reward;
use ppn_market::{drifted_weights, Dataset, Preset};
use ppn_tensor::{clip_global_norm, Adam, Graph, Optimizer, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn five_feature_ppn_trains_end_to_end() {
    let ds = Dataset::load(Preset::CryptoA);
    let m = ds.assets();
    let k = 12;
    let cfg = NetConfig { features: 5, window: k, ..NetConfig::paper(m) };
    let mut rng = StdRng::seed_from_u64(3);
    let net = PolicyNet::new(Variant::Ppn, cfg, &mut rng);

    let m1 = m + 1;
    let uniform = vec![1.0 / m1 as f64; m1];
    let mut opt = Adam::new(1e-3);
    let mut net = net;
    let mut last_reward = f64::NAN;
    for step in 0..3 {
        let t0 = 100 + step * 8;
        let tn = 6;
        let mut windows = Vec::new();
        let mut prevs = Vec::new();
        let mut rels = Vec::new();
        let mut hats = Vec::new();
        for b in 0..tn {
            let t = t0 + b;
            windows.push(ds.window_with_volume(t, k));
            prevs.push(uniform.clone());
            rels.extend_from_slice(ds.relative(t));
            hats.extend_from_slice(&drifted_weights(&uniform, ds.relative(t - 1)));
        }
        let batch = WindowBatch::new(&windows, &prevs, m, k, 5);
        let mut g = Graph::new();
        let bind = net.store.bind(&mut g);
        let actions = net.forward(&mut g, &bind, &batch, true, &mut rng);
        assert_eq!(g.value(actions).shape(), &[tn, m1]);
        let nodes = cost_sensitive_reward(
            &mut g,
            actions,
            &Tensor::from_vec(&[tn, m1], rels),
            &Tensor::from_vec(&[tn, m1], hats),
            1e-4,
            1e-3,
            0.0025,
        );
        g.backward(nodes.loss);
        let mut grads = bind.grads(&g);
        clip_global_norm(&mut grads, 5.0);
        opt.step(&mut net.store, &grads);
        last_reward = g.value(nodes.reward).item();
    }
    assert!(last_reward.is_finite());
}
