//! Vendored shim for the subset of `serde` this workspace uses.
//!
//! The build environment has no registry access, so this crate provides a
//! self-contained JSON-only serialization framework under serde's names:
//! [`Serialize`] / [`Deserialize`] traits, re-exported derive macros (from
//! the sibling hand-rolled `serde_derive` shim), a streaming JSON writer
//! ([`Ser`]) and a parsed JSON tree ([`Value`]). The sibling `serde_json`
//! shim builds `to_vec` / `from_slice` / … on top of these.
//!
//! Intentional deviations from real serde, acceptable for this repo:
//!
//! * JSON is the only data format (every consumer here is JSON).
//! * Numbers are carried as `f64`, exact for integers up to 2^53 — far
//!   beyond any seed, step count or timestamp stored by the workspace.
//! * Non-finite floats serialize as `null` and deserialize back as `NAN`
//!   (real serde_json errors instead); telemetry streams prefer lossy
//!   round-trips over aborting a run.
//! * Derives support named-field structs and unit-variant enums — the only
//!   shapes the workspace derives.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// New error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde shim: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Streaming JSON writer. Derive-generated `Serialize` impls call the
/// `begin_*`/`key`/`elem` methods; commas and (optionally) indentation are
/// handled here.
pub struct Ser {
    out: String,
    pretty: bool,
    depth: usize,
    has_item: Vec<bool>,
}

impl Ser {
    /// Compact writer.
    pub fn new() -> Self {
        Ser { out: String::new(), pretty: false, depth: 0, has_item: Vec::new() }
    }

    /// Pretty (2-space indented) writer.
    pub fn pretty() -> Self {
        Ser { pretty: true, ..Ser::new() }
    }

    /// Consumes the writer, returning the JSON text.
    pub fn finish(self) -> String {
        self.out
    }

    /// Appends `text` verbatim, outside any escaping or comma tracking.
    /// For writers that emit multiple top-level values into one buffer
    /// (e.g. JSONL needs a literal `\n` between records); only meaningful
    /// at depth 0, between complete values.
    pub fn raw(&mut self, text: &str) {
        self.out.push_str(text);
    }

    fn newline_indent(&mut self) {
        if self.pretty {
            self.out.push('\n');
            for _ in 0..self.depth {
                self.out.push_str("  ");
            }
        }
    }

    fn before_item(&mut self) {
        if let Some(h) = self.has_item.last_mut() {
            if *h {
                self.out.push(',');
            }
            *h = true;
        }
        if self.depth > 0 {
            self.newline_indent();
        }
    }

    /// Opens a JSON object.
    pub fn begin_obj(&mut self) {
        self.out.push('{');
        self.depth += 1;
        self.has_item.push(false);
    }

    /// Writes an object key; the value must follow immediately.
    pub fn key(&mut self, name: &str) {
        self.before_item();
        self.write_escaped(name);
        self.out.push(':');
        if self.pretty {
            self.out.push(' ');
        }
    }

    /// Closes the current object.
    pub fn end_obj(&mut self) {
        let had = self.has_item.pop().unwrap_or(false);
        self.depth -= 1;
        if had {
            self.newline_indent();
        }
        self.out.push('}');
    }

    /// Opens a JSON array.
    pub fn begin_arr(&mut self) {
        self.out.push('[');
        self.depth += 1;
        self.has_item.push(false);
    }

    /// Starts an array element; the value must follow immediately.
    pub fn elem(&mut self) {
        self.before_item();
    }

    /// Closes the current array.
    pub fn end_arr(&mut self) {
        let had = self.has_item.pop().unwrap_or(false);
        self.depth -= 1;
        if had {
            self.newline_indent();
        }
        self.out.push(']');
    }

    /// Writes `null`.
    pub fn write_null(&mut self) {
        self.out.push_str("null");
    }

    /// Writes a boolean literal.
    pub fn write_bool(&mut self, v: bool) {
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// Writes a finite float (non-finite becomes `null`).
    pub fn write_f64(&mut self, v: f64) {
        if v.is_finite() {
            // `{}` on f64 is shortest-roundtrip in Rust; force a decimal
            // point or exponent so the token reads back as a float.
            let s = format!("{v}");
            self.out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                self.out.push_str(".0");
            }
        } else {
            self.write_null();
        }
    }

    /// Writes an unsigned integer.
    pub fn write_u64(&mut self, v: u64) {
        self.out.push_str(&v.to_string());
    }

    /// Writes a signed integer.
    pub fn write_i64(&mut self, v: i64) {
        self.out.push_str(&v.to_string());
    }

    /// Writes an escaped JSON string.
    pub fn write_str(&mut self, s: &str) {
        self.write_escaped(s);
    }

    fn write_escaped(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }
}

impl Default for Ser {
    fn default() -> Self {
        Ser::new()
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object value.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Obj(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::msg(format!("missing field `{name}`"))),
            other => Err(Error::msg(format!("expected object with `{name}`, got {other:?}"))),
        }
    }

    /// Parses JSON text.
    pub fn parse(text: &str) -> Result<Value, Error> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error::msg(format!("trailing input at byte {}", p.pos)));
        }
        Ok(v)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(Error::msg(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let k = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let v = self.value()?;
                    pairs.push((k, v));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(pairs));
                        }
                        _ => return Err(Error::msg(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::msg(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("non-utf8 number"))?;
        text.parse::<f64>().map(Value::Num).map_err(|_| Error::msg(format!("bad number `{text}`")))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("bad \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| Error::msg("bad \\u"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u digits"))?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(Error::msg(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("non-utf8 string"))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

/// JSON-serializable types.
pub trait Serialize {
    /// Writes `self` into the JSON writer.
    fn serialize(&self, s: &mut Ser);
}

/// JSON-deserializable types.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a parsed JSON value.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

impl Serialize for bool {
    fn serialize(&self, s: &mut Ser) {
        s.write_bool(*self);
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn serialize(&self, s: &mut Ser) {
        s.write_f64(*self);
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Num(n) => Ok(*n),
            Value::Null => Ok(f64::NAN),
            other => Err(Error::msg(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self, s: &mut Ser) {
        s.write_f64(*self as f64);
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        f64::deserialize(v).map(|x| x as f32)
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, s: &mut Ser) {
                s.write_u64(*self as u64);
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as $t),
                    other => Err(Error::msg(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other))),
                }
            }
        }
    )*};
}
impl_uint!(usize, u64, u32, u16, u8);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, s: &mut Ser) {
                s.write_i64(*self as i64);
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) if n.fract() == 0.0 => Ok(*n as $t),
                    other => Err(Error::msg(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other))),
                }
            }
        }
    )*};
}
impl_int!(isize, i64, i32, i16, i8);

impl Serialize for String {
    fn serialize(&self, s: &mut Ser) {
        s.write_str(self);
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for &str {
    fn serialize(&self, s: &mut Ser) {
        s.write_str(self);
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, s: &mut Ser) {
        self.as_slice().serialize(s);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, s: &mut Ser) {
        s.begin_arr();
        for item in self {
            s.elem();
            item.serialize(s);
        }
        s.end_arr();
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self, s: &mut Ser) {
        self.as_slice().serialize(s);
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::deserialize(v)?;
        if items.len() != N {
            return Err(Error::msg(format!("expected {N} elements, got {}", items.len())));
        }
        let mut out = [T::default(); N];
        out.copy_from_slice(&items);
        Ok(out)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, s: &mut Ser) {
        match self {
            Some(v) => v.serialize(s),
            None => s.write_null(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for BTreeMap<String, T> {
    fn serialize(&self, s: &mut Ser) {
        s.begin_obj();
        for (k, v) in self {
            s.key(k);
            v.serialize(s);
        }
        s.end_obj();
    }
}

impl<T: Deserialize> Deserialize for BTreeMap<String, T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Obj(pairs) => {
                pairs.iter().map(|(k, v)| Ok((k.clone(), T::deserialize(v)?))).collect()
            }
            other => Err(Error::msg(format!("expected object, got {other:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, s: &mut Ser) {
        (**self).serialize(s);
    }
}

impl Serialize for Value {
    fn serialize(&self, s: &mut Ser) {
        match self {
            Value::Null => s.write_null(),
            Value::Bool(b) => s.write_bool(*b),
            Value::Num(n) => s.write_f64(*n),
            Value::Str(t) => s.write_str(t),
            Value::Arr(items) => {
                s.begin_arr();
                for item in items {
                    s.elem();
                    item.serialize(s);
                }
                s.end_arr();
            }
            Value::Obj(pairs) => {
                s.begin_obj();
                for (k, v) in pairs {
                    s.key(k);
                    v.serialize(s);
                }
                s.end_obj();
            }
        }
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_produces_valid_nested_json() {
        let mut s = Ser::new();
        s.begin_obj();
        s.key("a");
        s.write_u64(1);
        s.key("b");
        s.begin_arr();
        s.elem();
        s.write_f64(0.5);
        s.elem();
        s.write_null();
        s.end_arr();
        s.end_obj();
        assert_eq!(s.finish(), r#"{"a":1,"b":[0.5,null]}"#);
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let mut s = Ser::new();
        s.begin_obj();
        s.key("name");
        s.write_str("line\nbreak \"q\"");
        s.key("xs");
        vec![1.5f64, -2.0, 3e-9].serialize(&mut s);
        s.end_obj();
        let text = s.finish();
        let v = Value::parse(&text).unwrap();
        assert_eq!(v.field("name").unwrap(), &Value::Str("line\nbreak \"q\"".into()));
        let xs = Vec::<f64>::deserialize(v.field("xs").unwrap()).unwrap();
        assert_eq!(xs, vec![1.5, -2.0, 3e-9]);
    }

    #[test]
    fn floats_keep_a_float_token() {
        let mut s = Ser::new();
        s.write_f64(3.0);
        assert_eq!(s.finish(), "3.0");
    }

    #[test]
    fn non_finite_serializes_null_and_reads_back_nan() {
        let mut s = Ser::new();
        f64::NAN.serialize(&mut s);
        let text = s.finish();
        assert_eq!(text, "null");
        assert!(f64::deserialize(&Value::parse(&text).unwrap()).unwrap().is_nan());
    }

    #[test]
    fn pretty_output_is_indented_and_parseable() {
        let mut s = Ser::pretty();
        s.begin_obj();
        s.key("k");
        s.begin_arr();
        s.elem();
        s.write_u64(1);
        s.end_arr();
        s.end_obj();
        let text = s.finish();
        assert!(text.contains("\n  "));
        Value::parse(&text).unwrap();
    }

    #[test]
    fn unicode_and_escapes_survive() {
        let original = "héllo \u{1F600} \t end";
        let mut s = Ser::new();
        original.serialize(&mut s);
        let v = Value::parse(&s.finish()).unwrap();
        assert_eq!(String::deserialize(&v).unwrap(), original);
    }
}
