//! Finite-difference certification of every differentiable op on the tape.
//!
//! Each test builds a small composite loss exercising one op (plus the
//! reductions needed to reach a scalar) and compares analytic gradients to
//! central differences via `ppn_tensor::gradcheck`.

use ppn_tensor::gradcheck::gradcheck;
use ppn_tensor::{Graph, NodeId, ParamStore, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

const EPS: f64 = 1e-5;
const TOL: f64 = 1e-6;

fn store_with(shapes: &[&[usize]], seed: u64) -> ParamStore {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut store = ParamStore::new();
    for (i, s) in shapes.iter().enumerate() {
        store.add(format!("p{i}"), Tensor::randn(&mut rng, s, 0.5));
    }
    store
}

fn check<F>(store: &mut ParamStore, f: F)
where
    F: FnMut(&mut Graph, &ppn_tensor::Binding) -> NodeId,
{
    let report = gradcheck(store, f, EPS, 1);
    assert!(report.max_rel_err < TOL, "gradcheck failed: {report:?}");
}

fn pid(store: &ParamStore, i: usize) -> ppn_tensor::ParamId {
    store.ids().nth(i).unwrap()
}

#[test]
fn add_with_broadcast() {
    let mut s = store_with(&[&[2, 3], &[3]], 1);
    let (a, b) = (pid(&s, 0), pid(&s, 1));
    check(&mut s, |g, bind| {
        let y = g.add(bind.node(a), bind.node(b));
        let sq = g.square(y);
        g.sum(sq)
    });
}

#[test]
fn sub_with_broadcast() {
    let mut s = store_with(&[&[2, 3], &[2, 1]], 2);
    let (a, b) = (pid(&s, 0), pid(&s, 1));
    check(&mut s, |g, bind| {
        let y = g.sub(bind.node(a), bind.node(b));
        let sq = g.square(y);
        g.sum(sq)
    });
}

#[test]
fn mul_with_broadcast() {
    let mut s = store_with(&[&[2, 3], &[3]], 3);
    let (a, b) = (pid(&s, 0), pid(&s, 1));
    check(&mut s, |g, bind| {
        let y = g.mul(bind.node(a), bind.node(b));
        g.sum(y)
    });
}

#[test]
fn div_grad() {
    let mut s = ParamStore::new();
    let a = s.add("a", Tensor::from_vec(&[3], vec![1.0, -2.0, 0.5]));
    let b = s.add("b", Tensor::from_vec(&[3], vec![2.0, 3.0, 1.5])); // away from 0
    check(&mut s, |g, bind| {
        let y = g.div(bind.node(a), bind.node(b));
        g.sum(y)
    });
}

#[test]
fn neg_scale_addscalar() {
    let mut s = store_with(&[&[4]], 4);
    let a = pid(&s, 0);
    check(&mut s, |g, bind| {
        let n = g.neg(bind.node(a));
        let sc = g.scale(n, 2.5);
        let ad = g.add_scalar(sc, 1.0);
        let sq = g.square(ad);
        g.sum(sq)
    });
}

#[test]
fn matmul_grad() {
    let mut s = store_with(&[&[3, 4], &[4, 2]], 5);
    let (a, b) = (pid(&s, 0), pid(&s, 1));
    check(&mut s, |g, bind| {
        let y = g.matmul(bind.node(a), bind.node(b));
        let sq = g.square(y);
        g.sum(sq)
    });
}

#[test]
fn sigmoid_grad() {
    let mut s = store_with(&[&[5]], 6);
    let a = pid(&s, 0);
    check(&mut s, |g, bind| {
        let y = g.sigmoid(bind.node(a));
        g.sum(y)
    });
}

#[test]
fn tanh_grad() {
    let mut s = store_with(&[&[5]], 7);
    let a = pid(&s, 0);
    check(&mut s, |g, bind| {
        let y = g.tanh(bind.node(a));
        let sq = g.square(y);
        g.sum(sq)
    });
}

#[test]
fn relu_grad_away_from_kink() {
    let mut s = ParamStore::new();
    let a = s.add("a", Tensor::from_vec(&[4], vec![1.0, -1.0, 2.0, -0.5]));
    check(&mut s, |g, bind| {
        let y = g.relu(bind.node(a));
        g.sum(y)
    });
}

#[test]
fn exp_log_grad() {
    let mut s = ParamStore::new();
    let a = s.add("a", Tensor::from_vec(&[3], vec![0.2, 1.0, -0.3]));
    check(&mut s, |g, bind| {
        let e = g.exp(bind.node(a)); // strictly positive → safe log
        let l = g.log(e);
        let sq = g.square(l);
        g.sum(sq)
    });
}

#[test]
fn abs_grad_away_from_kink() {
    let mut s = ParamStore::new();
    let a = s.add("a", Tensor::from_vec(&[4], vec![1.0, -2.0, 0.7, -0.1]));
    check(&mut s, |g, bind| {
        let y = g.abs(bind.node(a));
        g.sum(y)
    });
}

#[test]
fn sqrt_grad() {
    let mut s = ParamStore::new();
    let a = s.add("a", Tensor::from_vec(&[3], vec![0.5, 2.0, 4.0]));
    check(&mut s, |g, bind| {
        let y = g.sqrt(bind.node(a));
        g.sum(y)
    });
}

#[test]
fn softmax_grad() {
    let mut s = store_with(&[&[2, 4]], 8);
    let a = pid(&s, 0);
    // Weighted sum so the softmax gradient is non-trivial.
    let w = Tensor::from_vec(&[2, 4], vec![1., -1., 2., 0.5, -0.3, 1.2, 0., 2.]);
    check(&mut s, move |g, bind| {
        let y = g.softmax(bind.node(a));
        let wn = g.leaf(w.clone());
        let p = g.mul(y, wn);
        g.sum(p)
    });
}

#[test]
fn mean_variance_grad() {
    let mut s = store_with(&[&[6]], 9);
    let a = pid(&s, 0);
    check(&mut s, |g, bind| {
        let m = g.mean(bind.node(a));
        let v = g.variance(bind.node(a));
        g.add(m, v)
    });
}

#[test]
fn sum_axis_grad() {
    let mut s = store_with(&[&[2, 3, 4]], 10);
    let a = pid(&s, 0);
    check(&mut s, |g, bind| {
        let y = g.sum_axis(bind.node(a), 1);
        let sq = g.square(y);
        g.sum(sq)
    });
}

#[test]
fn concat_slice_grad() {
    let mut s = store_with(&[&[2, 2], &[2, 3]], 11);
    let (a, b) = (pid(&s, 0), pid(&s, 1));
    check(&mut s, |g, bind| {
        let c = g.concat(&[bind.node(a), bind.node(b)], 1);
        let sl = g.slice(c, 1, 1, 4);
        let sq = g.square(sl);
        g.sum(sq)
    });
}

#[test]
fn reshape_permute_grad() {
    let mut s = store_with(&[&[2, 3, 4]], 12);
    let a = pid(&s, 0);
    check(&mut s, |g, bind| {
        let p = g.permute(bind.node(a), &[2, 0, 1]);
        let r = g.reshape(p, &[4, 6]);
        let sq = g.square(r);
        g.sum(sq)
    });
}

#[test]
fn conv2d_dilated_causal_grad() {
    let mut s = store_with(&[&[1, 2, 3, 8], &[4, 2, 1, 3]], 13);
    let (x, w) = (pid(&s, 0), pid(&s, 1));
    check(&mut s, |g, bind| {
        // Causal over W: left pad = dilation*(k-1).
        let y = g.conv2d(bind.node(x), bind.node(w), (1, 2), (0, 0, 4, 0));
        let sq = g.square(y);
        g.sum(sq)
    });
}

#[test]
fn conv2d_same_over_assets_grad() {
    let mut s = store_with(&[&[1, 2, 5, 4], &[3, 2, 5, 1]], 14);
    let (x, w) = (pid(&s, 0), pid(&s, 1));
    check(&mut s, |g, bind| {
        let y = g.conv2d(bind.node(x), bind.node(w), (1, 1), (2, 2, 0, 0));
        let sq = g.square(y);
        g.sum(sq)
    });
}

#[test]
fn lstm_end_to_end_grad() {
    use ppn_tensor::layers::Lstm;
    let mut rng = StdRng::seed_from_u64(15);
    let mut s = ParamStore::new();
    let lstm = Lstm::new(&mut s, &mut rng, "lstm", 3, 4);
    let xs: Vec<Tensor> = (0..4).map(|_| Tensor::randn(&mut rng, &[2, 3], 0.5)).collect();
    let report = gradcheck(
        &mut s,
        move |g, bind| {
            let ids: Vec<NodeId> = xs.iter().map(|t| g.leaf(t.clone())).collect();
            let h = lstm.forward(g, bind, &ids);
            let sq = g.square(h);
            g.sum(sq)
        },
        EPS,
        3, // subsample: the LSTM has a few hundred scalars
    );
    assert!(report.max_rel_err < 1e-5, "{report:?}");
}

#[test]
fn dense_chain_grad() {
    use ppn_tensor::layers::Dense;
    let mut rng = StdRng::seed_from_u64(16);
    let mut s = ParamStore::new();
    let d1 = Dense::new(&mut s, &mut rng, "d1", 3, 5);
    let d2 = Dense::new(&mut s, &mut rng, "d2", 5, 1);
    let x = Tensor::randn(&mut rng, &[4, 3], 1.0);
    check(&mut s, move |g, bind| {
        let xn = g.leaf(x.clone());
        let h = d1.forward(g, bind, xn);
        let h = g.tanh(h);
        let y = d2.forward(g, bind, h);
        let sq = g.square(y);
        g.sum(sq)
    });
}
