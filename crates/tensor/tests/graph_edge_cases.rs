//! Edge-case coverage for the autodiff tape beyond the op-by-op gradchecks.

use ppn_tensor::{Graph, ParamStore, Tensor};

#[test]
fn tape_reset_allows_reuse() {
    let mut g = Graph::new();
    let x = g.param(Tensor::scalar(2.0));
    let y = g.square(x);
    g.backward(y);
    assert_eq!(g.grad(x).unwrap().item(), 4.0);
    let n_before = g.len();
    g.reset();
    assert!(g.is_empty());
    // Fresh computation on the same tape object.
    let x2 = g.param(Tensor::scalar(3.0));
    let y2 = g.square(x2);
    g.backward(y2);
    assert_eq!(g.grad(x2).unwrap().item(), 6.0);
    assert!(g.len() <= n_before);
}

#[test]
fn backward_with_custom_seed_scales_grad() {
    let mut g = Graph::new();
    let x = g.param(Tensor::from_vec(&[2], vec![1.0, 2.0]));
    let y = g.square(x);
    let s = g.sum(y);
    g.backward_with(s, Tensor::scalar(10.0));
    assert_eq!(g.grad(x).unwrap().data(), &[20.0, 40.0]);
}

#[test]
fn repeated_backward_does_not_accumulate_across_calls() {
    let mut g = Graph::new();
    let x = g.param(Tensor::scalar(3.0));
    let y = g.square(x);
    g.backward(y);
    let g1 = g.grad(x).unwrap().item();
    g.backward(y);
    let g2 = g.grad(x).unwrap().item();
    assert_eq!(g1, g2, "backward must reset gradients, not accumulate");
}

#[test]
fn concat_three_tensors_middle_axis() {
    let mut g = Graph::new();
    let a = g.param(Tensor::from_vec(&[2, 1, 2], vec![1., 2., 3., 4.]));
    let b = g.param(Tensor::from_vec(&[2, 2, 2], vec![5., 6., 7., 8., 9., 10., 11., 12.]));
    let c = g.param(Tensor::from_vec(&[2, 1, 2], vec![13., 14., 15., 16.]));
    let cat = g.concat(&[a, b, c], 1);
    assert_eq!(g.value(cat).shape(), &[2, 4, 2]);
    // Forward layout: [a-row, b-rows, c-row] per outer index.
    assert_eq!(g.value(cat).at(&[0, 0, 0]), 1.0);
    assert_eq!(g.value(cat).at(&[0, 1, 0]), 5.0);
    assert_eq!(g.value(cat).at(&[0, 3, 1]), 14.0);
    assert_eq!(g.value(cat).at(&[1, 3, 0]), 15.0);
    // Gradient routes back to the right pieces.
    let sl = g.slice(cat, 1, 3, 4); // only c's row
    let s = g.sum(sl);
    g.backward(s);
    assert_eq!(g.grad(a).unwrap().data(), &[0.0; 4]);
    assert_eq!(g.grad(b).unwrap().data(), &[0.0; 8]);
    assert_eq!(g.grad(c).unwrap().data(), &[1.0; 4]);
}

#[test]
fn diamond_graph_accumulates_both_paths() {
    // z = x² + x³ → dz/dx = 2x + 3x².
    let mut g = Graph::new();
    let x = g.param(Tensor::scalar(2.0));
    let sq = g.square(x);
    let cube0 = g.mul(sq, x);
    let z = g.add(sq, cube0);
    g.backward(z);
    assert_eq!(g.grad(x).unwrap().item(), 2.0 * 2.0 + 3.0 * 4.0);
}

#[test]
fn deep_chain_is_numerically_stable() {
    // 60 tanh layers: gradients vanish but stay finite.
    let mut g = Graph::new();
    let x = g.param(Tensor::from_vec(&[4], vec![0.1, -0.2, 0.3, -0.4]));
    let mut h = x;
    for _ in 0..60 {
        h = g.tanh(h);
    }
    let s = g.sum(h);
    g.backward(s);
    let grad = g.grad(x).unwrap();
    assert!(grad.all_finite());
    assert!(grad.l2_norm() < 1.0);
}

#[test]
fn scalar_broadcast_against_tensor() {
    let mut g = Graph::new();
    let x = g.param(Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]));
    let m = g.mean(x); // scalar
    let centered = g.sub(x, m);
    let s = g.sum(centered);
    // Σ(x − mean) ≡ 0 and its gradient is identically zero.
    assert!(g.value(s).item().abs() < 1e-12);
    g.backward(s);
    for &v in g.grad(x).unwrap().data() {
        assert!(v.abs() < 1e-12);
    }
}

#[test]
fn sum_axis_all_axes_round_trip() {
    let mut g = Graph::new();
    let x = g.param(Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]));
    let rows = g.sum_axis(x, 0); // (3,)
    let total = g.sum_axis(rows, 0); // scalar-ish (shape [])
    assert_eq!(g.value(total).item(), 21.0);
    g.backward(total);
    assert_eq!(g.grad(x).unwrap().data(), &[1.0; 6]);
}

#[test]
fn frozen_binding_blocks_gradients() {
    let mut store = ParamStore::new();
    let w = store.add("w", Tensor::scalar(2.0));
    let mut g = Graph::new();
    let frozen = store.bind_frozen(&mut g);
    let y = g.square(frozen.node(w));
    g.backward(y);
    assert!(frozen.grads(&g)[0].is_none());
}

#[test]
fn relu_kink_subgradient_is_zero() {
    let mut g = Graph::new();
    let x = g.param(Tensor::from_vec(&[1], vec![0.0]));
    let y = g.relu(x);
    let s = g.sum(y);
    g.backward(s);
    assert_eq!(g.grad(x).unwrap().item(), 0.0);
}

#[test]
fn softmax_saturated_inputs_stay_finite() {
    let mut g = Graph::new();
    let x = g.param(Tensor::from_vec(&[1, 3], vec![1e6, -1e6, 0.0]));
    let y = g.softmax(x);
    let v = g.value(y);
    assert!(v.all_finite());
    assert!((v.data()[0] - 1.0).abs() < 1e-12);
    let s = g.sum(y);
    g.backward(s);
    assert!(g.grad(x).unwrap().all_finite());
}
