//! Bit-identity of the pooled kernels across thread counts.
//!
//! The worker pool (`ppn_tensor::par`) promises that `matmul`,
//! `conv2d_forward` and `conv2d_backward` produce byte-for-byte identical
//! results at every thread count. These tests compare `PPN_THREADS=1`
//! against a 4-thread pool over randomized shapes (including empty and 1×1
//! edges) and run the finite-difference gradcheck harness under the pooled
//! kernels.

use ppn_tensor::conv::{causal_padding, conv2d_backward, conv2d_forward, same_padding};
use ppn_tensor::gradcheck::gradcheck;
use ppn_tensor::par::with_threads;
use ppn_tensor::{ParamStore, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bits(t: &Tensor) -> Vec<u64> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

fn assert_bit_identical(serial: &Tensor, pooled: &Tensor, what: &str) {
    assert_eq!(serial.shape(), pooled.shape(), "{what}: shape mismatch");
    assert_eq!(bits(serial), bits(pooled), "{what}: bits diverged across thread counts");
}

/// Random matmul operands. Dims reach past the serial-fallback threshold
/// (2·n·k·m ≥ 2¹⁶) so a meaningful share of cases exercise real fan-out,
/// and include degenerate `k = 0` inner dims and 1×1 cases.
fn matmul_case() -> impl Strategy<Value = ((usize, usize, usize), Vec<f64>, Vec<f64>)> {
    (1usize..48, 0usize..48, 1usize..48).prop_flat_map(|(n, k, m)| {
        (
            Just((n, k, m)),
            prop::collection::vec(-10.0..10.0f64, n * k),
            prop::collection::vec(-10.0..10.0f64, k * m),
        )
    })
}

/// Random NCHW conv case: geometry plus input/kernel data. Kernel extents
/// stay within the causal-padded input, so every case is valid.
type ConvCase = (((usize, usize, usize), (usize, usize), (usize, usize)), Vec<f64>, Vec<f64>);

fn conv_case() -> impl Strategy<Value = ConvCase> {
    ((1usize..4, 1usize..4, 1usize..9), (1usize..4, 1usize..4), (1usize..10, 1usize..13))
        .prop_flat_map(|(bc, kk, hw)| {
            let ((b, cin, cout), (kh, kw), (h, w)) = (bc, kk, hw);
            (
                Just((bc, kk, hw)),
                prop::collection::vec(-5.0..5.0f64, b * cin * h * w),
                prop::collection::vec(-5.0..5.0f64, cout * cin * kh * kw),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_bit_identical_across_threads(case in matmul_case()) {
        let ((n, k, m), a, b) = case;
        let ta = Tensor::from_vec(&[n, k], a);
        let tb = Tensor::from_vec(&[k, m], b);
        let serial = with_threads(1, || ta.matmul(&tb));
        let pooled = with_threads(4, || ta.matmul(&tb));
        assert_bit_identical(&serial, &pooled, "matmul");
    }

    #[test]
    fn conv_forward_and_gradients_bit_identical_across_threads(case in conv_case()) {
        let (((b, cin, cout), (kh, kw), (h, w)), xd, wd) = case;
        let x = Tensor::from_vec(&[b, cin, h, w], xd);
        let kern = Tensor::from_vec(&[cout, cin, kh, kw], wd);
        // Causal padding on both axes keeps every kernel extent valid.
        let pad = (kh - 1, 0, kw - 1, 0);
        let (ys, yp) = (
            with_threads(1, || conv2d_forward(&x, &kern, (1, 1), pad)),
            with_threads(4, || conv2d_forward(&x, &kern, (1, 1), pad)),
        );
        assert_bit_identical(&ys, &yp, "conv2d_forward");

        let gout = Tensor::ones(ys.shape());
        let (gxs, gws) = with_threads(1, || conv2d_backward(&x, &kern, &gout, (1, 1), pad));
        let (gxp, gwp) = with_threads(4, || conv2d_backward(&x, &kern, &gout, (1, 1), pad));
        assert_bit_identical(&gxs, &gxp, "conv2d grad_x");
        assert_bit_identical(&gws, &gwp, "conv2d grad_w");
    }
}

#[test]
fn empty_and_unit_matmul_edges() {
    for t in [1usize, 4] {
        // k = 0: well-defined all-zero output.
        let a = Tensor::from_vec(&[3, 0], vec![]);
        let b = Tensor::from_vec(&[0, 2], vec![]);
        let y = with_threads(t, || a.matmul(&b));
        assert_eq!(y.shape(), &[3, 2]);
        assert!(y.data().iter().all(|&v| v == 0.0));
        // 1×1 matmul.
        let a1 = Tensor::from_vec(&[1, 1], vec![3.0]);
        let b1 = Tensor::from_vec(&[1, 1], vec![-0.5]);
        assert_eq!(with_threads(t, || a1.matmul(&b1)).data(), &[-1.5]);
    }
}

#[test]
fn unit_conv_edges_match_across_threads() {
    // 1×1 everything: single batch, channel, pixel, kernel.
    let x = Tensor::from_vec(&[1, 1, 1, 1], vec![2.5]);
    let w = Tensor::from_vec(&[1, 1, 1, 1], vec![-2.0]);
    for t in [1usize, 4] {
        let y = with_threads(t, || conv2d_forward(&x, &w, (1, 1), (0, 0, 0, 0)));
        assert_eq!(y.data(), &[-5.0]);
        let (gx, gw) = with_threads(t, || {
            conv2d_backward(&x, &w, &Tensor::ones(&[1, 1, 1, 1]), (1, 1), (0, 0, 0, 0))
        });
        assert_eq!(gx.data(), &[-2.0]);
        assert_eq!(gw.data(), &[2.5]);
    }
}

#[test]
fn dilated_same_conv_bit_identical_across_threads() {
    // The paper's DCONV/CCONV padding modes at a size large enough to
    // exercise real fan-out.
    let mut rng = StdRng::seed_from_u64(99);
    let x = Tensor::randn(&mut rng, &[4, 3, 8, 30], 1.0);
    let w = Tensor::randn(&mut rng, &[16, 3, 8, 3], 0.5);
    let (pt, pb) = same_padding(8, 1);
    let (pl, pr) = causal_padding(3, 2);
    let pad = (pt, pb, pl, pr);
    let serial = with_threads(1, || conv2d_forward(&x, &w, (1, 2), pad));
    let pooled = with_threads(4, || conv2d_forward(&x, &w, (1, 2), pad));
    assert_bit_identical(&serial, &pooled, "dilated SAME conv");
    let gout = Tensor::ones(serial.shape());
    let (gxs, gws) = with_threads(1, || conv2d_backward(&x, &w, &gout, (1, 2), pad));
    let (gxp, gwp) = with_threads(4, || conv2d_backward(&x, &w, &gout, (1, 2), pad));
    assert_bit_identical(&gxs, &gxp, "dilated SAME grad_x");
    assert_bit_identical(&gws, &gwp, "dilated SAME grad_w");
}

#[test]
fn gradcheck_passes_under_pooled_kernels() {
    // Finite-difference certification of the conv + matmul backward rules
    // while the 4-thread pool is active.
    let mut rng = StdRng::seed_from_u64(21);
    let mut store = ParamStore::new();
    let x = store.add("x", Tensor::randn(&mut rng, &[2, 2, 3, 8], 0.5));
    let w = store.add("w", Tensor::randn(&mut rng, &[4, 2, 1, 3], 0.5));
    let report = with_threads(4, || {
        gradcheck(
            &mut store,
            |g, bind| {
                let y = g.conv2d(bind.node(x), bind.node(w), (1, 2), (0, 0, 4, 0));
                let sq = g.square(y);
                g.sum(sq)
            },
            1e-5,
            1,
        )
    });
    assert!(report.max_rel_err < 1e-6, "gradcheck under pool failed: {report:?}");
}
