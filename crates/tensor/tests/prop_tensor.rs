//! Property-based tests for the tensor substrate.

use ppn_tensor::{Graph, ParamStore, Tensor};
use proptest::prelude::*;

fn finite_vec(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0..100.0f64, n)
}

proptest! {
    #[test]
    fn add_commutes(a in finite_vec(12), b in finite_vec(12)) {
        let ta = Tensor::from_vec(&[3, 4], a);
        let tb = Tensor::from_vec(&[3, 4], b);
        prop_assert_eq!(ta.add(&tb), tb.add(&ta));
    }

    #[test]
    fn mul_with_ones_is_identity(a in finite_vec(10)) {
        let t = Tensor::from_vec(&[2, 5], a);
        prop_assert_eq!(t.mul(&Tensor::ones(&[2, 5])), t.clone());
        prop_assert_eq!(t.add(&Tensor::zeros(&[2, 5])), t);
    }

    #[test]
    fn matmul_distributes_over_add(a in finite_vec(6), b in finite_vec(6), c in finite_vec(6)) {
        let ta = Tensor::from_vec(&[2, 3], a);
        let tb = Tensor::from_vec(&[3, 2], b);
        let tc = Tensor::from_vec(&[3, 2], c);
        let lhs = ta.matmul(&tb.add(&tc));
        let rhs = ta.matmul(&tb).add(&ta.matmul(&tc));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-9);
    }

    #[test]
    fn matmul_transpose_identity(a in finite_vec(6), b in finite_vec(6)) {
        // (AB)ᵀ = Bᵀ Aᵀ
        let ta = Tensor::from_vec(&[2, 3], a);
        let tb = Tensor::from_vec(&[3, 2], b);
        let lhs = ta.matmul(&tb).transpose2();
        let rhs = tb.transpose2().matmul(&ta.transpose2());
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-9);
    }

    #[test]
    fn softmax_is_simplex(a in finite_vec(8)) {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(&[2, 4], a));
        let y = g.softmax(x);
        let v = g.value(y);
        for &p in v.data() {
            prop_assert!((0.0..=1.0).contains(&p));
        }
        for r in 0..2 {
            let s: f64 = v.data()[r * 4..(r + 1) * 4].iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn softmax_shift_invariance(a in finite_vec(5), shift in -50.0..50.0f64) {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(&[1, 5], a.clone()));
        let y1 = g.softmax(x);
        let xs = g.leaf(Tensor::from_vec(&[1, 5], a.iter().map(|v| v + shift).collect()));
        let y2 = g.softmax(xs);
        prop_assert!(g.value(y1).max_abs_diff(g.value(y2)) < 1e-9);
    }

    #[test]
    fn sum_axis_total_matches_sum(a in finite_vec(24)) {
        let t = Tensor::from_vec(&[2, 3, 4], a);
        for axis in 0..3 {
            prop_assert!((t.sum_axis(axis).sum() - t.sum()).abs() < 1e-9);
        }
    }

    #[test]
    fn permute_preserves_multiset(a in finite_vec(24)) {
        let t = Tensor::from_vec(&[2, 3, 4], a);
        let p = t.permute(&[2, 0, 1]);
        let mut x: Vec<f64> = t.data().to_vec();
        let mut y: Vec<f64> = p.data().to_vec();
        x.sort_by(f64::total_cmp);
        y.sort_by(f64::total_cmp);
        prop_assert_eq!(x, y);
    }

    #[test]
    fn reshape_roundtrip(a in finite_vec(12)) {
        let t = Tensor::from_vec(&[3, 4], a);
        prop_assert_eq!(t.reshape(&[2, 6]).reshape(&[3, 4]), t);
    }

    #[test]
    fn backward_linear_in_seed(a in finite_vec(4), k in 0.1..10.0f64) {
        // grad(k·f) = k·grad(f): run backward twice with scaled losses.
        let run = |scale: f64| {
            let mut g = Graph::new();
            let mut store = ParamStore::new();
            let w = store.add("w", Tensor::from_vec(&[4], a.clone()));
            let bind = store.bind(&mut g);
            let sq = g.square(bind.node(w));
            let s = g.sum(sq);
            let s = g.scale(s, scale);
            g.backward(s);
            bind.grads(&g)[0].clone().unwrap()
        };
        let g1 = run(1.0);
        let gk = run(k);
        prop_assert!(gk.max_abs_diff(&g1.scale(k)) < 1e-9 * (1.0 + g1.l2_norm() * k));
    }
}
