//! Property tests for the optimisers.

use ppn_tensor::{Adam, Graph, Optimizer, ParamStore, Sgd, Tensor};
use proptest::prelude::*;

fn quad_step(store: &mut ParamStore, opt: &mut dyn Optimizer, target: f64) -> f64 {
    let ids: Vec<_> = store.ids().collect();
    let w = ids[0];
    let mut g = Graph::new();
    let bind = store.bind(&mut g);
    let c = g.add_scalar(bind.node(w), -target);
    let sq = g.square(c);
    let loss = g.sum(sq);
    g.backward(loss);
    let val = g.value(loss).item();
    let grads = bind.grads(&g);
    opt.step(store, &grads);
    val
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sgd_strictly_decreases_convex_loss(
        start in -10.0..10.0f64,
        target in -5.0..5.0f64,
    ) {
        prop_assume!((start - target).abs() > 1e-3);
        let mut store = ParamStore::new();
        store.add("w", Tensor::scalar(start));
        let mut opt = Sgd::new(0.05);
        let l0 = quad_step(&mut store, &mut opt, target);
        let l1 = quad_step(&mut store, &mut opt, target);
        prop_assert!(l1 < l0, "loss rose: {l0} -> {l1}");
    }

    #[test]
    fn adam_first_step_size_is_lr_bounded(
        start in -10.0..10.0f64,
        lr in 0.001..0.5f64,
    ) {
        prop_assume!(start.abs() > 1e-3);
        // Adam's bias-corrected first update has magnitude ≈ lr regardless
        // of the raw gradient scale.
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::scalar(start));
        let mut opt = Adam::new(lr);
        quad_step(&mut store, &mut opt, 0.0);
        let moved = (store.value(w).item() - start).abs();
        prop_assert!(moved <= lr * 1.001, "moved {moved} > lr {lr}");
        prop_assert!(moved >= lr * 0.5, "moved {moved} ≪ lr {lr}");
    }

    #[test]
    fn adam_is_gradient_scale_invariant_on_first_step(
        scale in 0.1..100.0f64,
    ) {
        // Two losses differing by a constant factor produce the same first
        // Adam update.
        let run = |s: f64| {
            let mut store = ParamStore::new();
            let w = store.add("w", Tensor::scalar(2.0));
            let mut opt = Adam::new(0.1);
            let mut g = Graph::new();
            let bind = store.bind(&mut g);
            let sq = g.square(bind.node(w));
            let loss = g.scale(sq, s);
            g.backward(loss);
            opt.step(&mut store, &bind.grads(&g));
            store.value(w).item()
        };
        prop_assert!((run(1.0) - run(scale)).abs() < 1e-9);
    }

    #[test]
    fn soft_update_converges_geometrically(tau in 0.01..0.5f64) {
        let mut tgt = ParamStore::new();
        tgt.add("w", Tensor::scalar(0.0));
        let mut src = ParamStore::new();
        src.add("w", Tensor::scalar(1.0));
        for _ in 0..200 {
            tgt.soft_update_from(&src, tau);
        }
        let ids: Vec<_> = tgt.ids().collect();
        let v = tgt.value(ids[0]).item();
        let expect = 1.0 - (1.0 - tau).powi(200);
        prop_assert!((v - expect).abs() < 1e-9, "{v} vs {expect}");
    }
}
