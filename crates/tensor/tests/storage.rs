//! Integration tests for the aligned storage layer, the buffer-reuse arena,
//! and the scalar/vector kernel bit-identity guarantee.
//!
//! These run with and without the `simd` cargo feature (CI exercises both);
//! without it the vector paths are compiled out and the comparisons are
//! trivially identical.

use ppn_tensor::gradcheck::gradcheck;
use ppn_tensor::{conv, par, simd, storage, Graph, ParamStore, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn aligned32(ptr: *const f64) -> bool {
    (ptr as usize).is_multiple_of(32)
}

#[test]
fn alignment_survives_construction_growth_clone_and_serde() {
    let mut rng = StdRng::seed_from_u64(11);
    let t = Tensor::randn(&mut rng, &[7, 13], 1.0);
    assert!(aligned32(t.data().as_ptr()));

    // Incremental growth across several size classes stays aligned.
    let mut s = storage::Storage::with_capacity(1);
    for i in 0..5000 {
        s.push(i as f64 * 0.5);
        debug_assert!(aligned32(s.as_ptr()));
    }
    assert!(aligned32(s.as_ptr()));
    assert_eq!(s.len(), 5000);
    assert_eq!(s[4999], 4999.0 * 0.5);

    let c = t.clone();
    assert!(aligned32(c.data().as_ptr()));
    assert_eq!(c, t);

    // Serde round-trip re-enters through Storage::from_slice: aligned, and
    // values survive exactly (randn values are short decimals' worth of
    // noise, so compare bitwise).
    let json = serde_json::to_vec(&t).expect("tensor serializes");
    let back: Tensor = serde_json::from_slice(&json).expect("tensor deserializes");
    assert_eq!(back.shape(), t.shape());
    assert!(aligned32(back.data().as_ptr()));
    for (a, b) in back.data().iter().zip(t.data()) {
        assert!((a - b).abs() < 1e-12);
    }
}

/// One forward + backward sweep over a small composite loss on a reused
/// tape. Returns the sampled value-buffer pointers and the loss bits.
fn sweep(
    g: &mut Graph,
    store: &mut ParamStore,
    w: ppn_tensor::ParamId,
    v: ppn_tensor::ParamId,
) -> (Vec<usize>, u64) {
    g.reset();
    let bind = store.bind(g);
    let y = g.matmul(bind.node(w), bind.node(v));
    let sq = g.square(y);
    let loss = g.sum(sq);
    g.backward(loss);
    let ptrs =
        [y, sq, loss].iter().map(|&n| g.value(n).data().as_ptr() as usize).collect::<Vec<_>>();
    (ptrs, g.value(loss).item().to_bits())
}

#[test]
fn arena_reuses_tape_buffers_across_sweeps() {
    let mut rng = StdRng::seed_from_u64(5);
    let mut store = ParamStore::new();
    let w = store.add("w", Tensor::randn(&mut rng, &[6, 17], 0.5));
    let v = store.add("v", Tensor::randn(&mut rng, &[17, 9], 0.5));
    let mut g = Graph::new();

    // Sweep 0 populates the arena from the system allocator; everything
    // after runs on recycled buffers.
    let (ptrs0, bits0) = sweep(&mut g, &mut store, w, v);
    let after_warmup = storage::arena_stats();

    let mut seen: Vec<Vec<usize>> = vec![ptrs0];
    let mut repeated = false;
    for _ in 0..11 {
        let (ptrs, bits) = sweep(&mut g, &mut store, w, v);
        assert_eq!(bits, bits0, "buffer reuse changed the loss bits");
        repeated |= seen.contains(&ptrs);
        seen.push(ptrs);
    }
    let steady = storage::arena_stats();

    // Same pointers: no sweep after the first touched the system allocator
    // or missed the arena — every buffer the tape ran on was rebound from
    // the pool sweep 0 created — and the sampled pointer vectors cycle
    // through that fixed pool (an exact repeat of an earlier sweep).
    assert_eq!(steady.alloc_bytes, after_warmup.alloc_bytes, "later sweeps hit the allocator");
    assert_eq!(steady.arena_misses, after_warmup.arena_misses, "later sweeps missed the arena");
    assert!(steady.arena_hits > after_warmup.arena_hits, "later sweeps never hit the arena");
    assert!(repeated, "pointer vectors never revisited an earlier sweep's buffers: {seen:x?}");
}

#[test]
fn gradcheck_passes_on_arena_recycled_buffers() {
    let mut rng = StdRng::seed_from_u64(17);
    let mut store = ParamStore::new();
    let a = store.add("a", Tensor::randn(&mut rng, &[3, 4], 0.5));
    let b = store.add("b", Tensor::randn(&mut rng, &[4, 2], 0.5));

    // Prime the arena with a couple of tape sweeps so the gradcheck's many
    // forward evaluations run on recycled (previously-written) buffers.
    let mut g = Graph::new();
    for _ in 0..2 {
        g.reset();
        let bind = store.bind(&mut g);
        let y = g.matmul(bind.node(a), bind.node(b));
        let sq = g.square(y);
        let loss = g.sum(sq);
        g.backward(loss);
    }
    drop(g);

    let report = gradcheck(
        &mut store,
        |g, bind| {
            let y = g.matmul(bind.node(a), bind.node(b));
            let r = g.relu(y);
            let sq = g.square(r);
            g.sum(sq)
        },
        1e-5,
        1,
    );
    assert!(report.max_rel_err < 1e-6, "gradcheck failed on recycled buffers: {report:?}");
}

#[test]
fn scalar_and_vector_kernels_bit_identical_on_random_shapes() {
    let mut rng = StdRng::seed_from_u64(23);
    for round in 0..6 {
        let n = rng.gen_range(1..40);
        let k = rng.gen_range(1..40);
        let m = rng.gen_range(1..40);
        let a = Tensor::randn(&mut rng, &[n, k], 1.0);
        let b = Tensor::randn(&mut rng, &[k, m], 1.0);

        let bsz = rng.gen_range(1..4);
        let cin = rng.gen_range(1..4);
        let cout = rng.gen_range(1..5);
        let h = rng.gen_range(1..4);
        let w = rng.gen_range(4..24);
        let kw = rng.gen_range(1..4);
        let dil = rng.gen_range(1..3);
        let x = Tensor::randn(&mut rng, &[bsz, cin, h, w], 1.0);
        let wt = Tensor::randn(&mut rng, &[cout, cin, 1, kw], 0.5);
        let (pl, pr) = conv::causal_padding(kw, dil);

        for threads in [1usize, 4] {
            par::with_threads(threads, || {
                let mm = a.matmul(&b);
                let y = conv::conv2d_forward(&x, &wt, (1, dil), (0, 0, pl, pr));
                let go = Tensor::ones(y.shape());
                let (gx, gw) = conv::conv2d_backward(&x, &wt, &go, (1, dil), (0, 0, pl, pr));

                let (smm, sy, sgx, sgw) = simd::force_scalar(|| {
                    let smm = a.matmul(&b);
                    let sy = conv::conv2d_forward(&x, &wt, (1, dil), (0, 0, pl, pr));
                    let (sgx, sgw) = conv::conv2d_backward(&x, &wt, &go, (1, dil), (0, 0, pl, pr));
                    (smm, sy, sgx, sgw)
                });
                for (name, got, want) in [
                    ("matmul", &mm, &smm),
                    ("conv_fwd", &y, &sy),
                    ("gx", &gx, &sgx),
                    ("gw", &gw, &sgw),
                ] {
                    assert_eq!(got.shape(), want.shape());
                    for (gv, wv) in got.data().iter().zip(want.data()) {
                        assert_eq!(
                            gv.to_bits(),
                            wv.to_bits(),
                            "{name} diverged (round {round}, threads {threads})"
                        );
                    }
                }
            });
        }
    }
}
