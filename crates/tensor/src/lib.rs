// `deny` rather than `forbid`: the `storage` and `simd` modules carry the
// crate's only audited `unsafe` (aligned allocation + AVX2 intrinsics) under
// a module-level `allow`; everything else still refuses unsafe code. The
// ppn-check `no-unsafe` rule audits every unsafe line in those two modules.
#![deny(unsafe_code)]
#![warn(missing_docs)]
//! # ppn-tensor
//!
//! A minimal, dependency-light reverse-mode autodiff engine that serves as
//! the deep-learning substrate for the Rust reproduction of *"Cost-Sensitive
//! Portfolio Selection via Deep Reinforcement Learning"* (Zhang et al.).
//!
//! The paper implements its Portfolio Policy Network in TensorFlow; Rust has
//! no comparable batteries-included framework offline, so this crate rebuilds
//! exactly the pieces the paper's architecture (Table 2) needs:
//!
//! * a dense row-major [`Tensor`] over `f64`,
//! * an eager, tape-based [`Graph`] with reverse-mode [`Graph::backward`],
//! * dilated **causal** and correlational **SAME** 2-D convolutions
//!   ([`layers::Conv2dLayer`]), an [`layers::Lstm`], dense layers, dropout
//!   and softmax,
//! * [`Adam`]/[`Sgd`] optimisers over a persistent [`ParamStore`],
//! * a finite-difference [`gradcheck`](gradcheck::gradcheck) harness used by
//!   the test suites to certify every backward rule,
//! * a scoped worker pool ([`par`]) behind the `PPN_THREADS` environment
//!   variable that parallelises the dominant kernels (`matmul`, the conv
//!   forward/backward) with bit-identical results at every thread count,
//! * a 32-byte-aligned backing store with a thread-local buffer-reuse
//!   arena ([`storage`]) and register-blocked AXPY kernels ([`simd`],
//!   optional AVX2 behind the `simd` cargo feature, `PPN_SIMD=0` kill
//!   switch) — all bit-identical to the naive scalar loops.
//!
//! ## Quickstart
//!
//! ```
//! use ppn_tensor::{Graph, ParamStore, Adam, Optimizer, Tensor};
//!
//! let mut store = ParamStore::new();
//! let w = store.add("w", Tensor::scalar(5.0));
//! let mut opt = Adam::new(0.2);
//! for _ in 0..300 {
//!     let mut g = Graph::new();
//!     let bind = store.bind(&mut g);
//!     let centered = g.add_scalar(bind.node(w), -1.5);
//!     let loss = g.square(centered);
//!     g.backward(loss);
//!     opt.step(&mut store, &bind.grads(&g));
//! }
//! assert!((store.value(w).item() - 1.5).abs() < 1e-2);
//! ```

pub mod approx;
pub mod conv;
pub mod gradcheck;
pub mod graph;
pub mod init;
pub mod layers;
pub mod optim;
pub mod par;
pub mod shape;
pub mod simd;
pub mod storage;
pub mod tensor;

pub use graph::{Graph, NodeId};
pub use optim::{clip_global_norm, Adam, Binding, Optimizer, ParamId, ParamStore, Sgd};
pub use tensor::Tensor;
