//! Whitelisted floating-point comparison helpers.
//!
//! Exact `f64` equality is banned across the workspace by the `float-eq`
//! lint (`ppn-check`): a `==` between floats is almost always a latent bug
//! once values have been through arithmetic. The legitimate uses — sentinel
//! checks against an exact literal, tolerance comparisons — are funnelled
//! through this module, the single place where raw float comparison is
//! permitted (files named `approx.rs` are the rule's whitelist).

/// True when `x` is exactly `+0.0` or `-0.0`.
///
/// For *sentinel* checks only — e.g. "was a zero cost rate configured?" —
/// where the value is a passed-through literal, never the result of
/// arithmetic. For "is this numerically negligible" use [`near_zero`].
#[inline]
#[allow(clippy::float_cmp)]
pub fn is_zero(x: f64) -> bool {
    x == 0.0
}

/// True when `a` and `b` are exactly equal as IEEE-754 values.
///
/// For comparing *copied* values only (e.g. tie detection against a value
/// taken from the same array) — never results of separate arithmetic.
#[inline]
#[allow(clippy::float_cmp)]
pub fn exact_eq(a: f64, b: f64) -> bool {
    a == b
}

/// True when `|x| <= tol`.
#[inline]
pub fn near_zero(x: f64, tol: f64) -> bool {
    x.abs() <= tol
}

/// True when `a` and `b` are within `tol` of each other absolutely.
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

/// True when `a` and `b` agree to `tol` relative to their magnitude
/// (falling back to absolute comparison near zero).
#[inline]
pub fn rel_eq(a: f64, b: f64, tol: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= tol * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_checks() {
        assert!(is_zero(0.0));
        assert!(is_zero(-0.0));
        assert!(!is_zero(1e-300));
        assert!(near_zero(1e-12, 1e-9));
        assert!(!near_zero(1e-6, 1e-9));
    }

    #[test]
    fn approx_checks() {
        assert!(approx_eq(1.0, 1.0 + 1e-10, 1e-9));
        assert!(!approx_eq(1.0, 1.1, 1e-9));
        assert!(rel_eq(1e12, 1e12 * (1.0 + 1e-10), 1e-9));
        assert!(!rel_eq(1.0, 2.0, 1e-9));
    }
}
