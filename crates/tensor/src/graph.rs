//! Reverse-mode autodiff tape.
//!
//! A [`Graph`] is a flat arena of nodes. Builder methods evaluate eagerly
//! (each node's value is computed at construction), so by the time
//! [`Graph::backward`] runs, every forward value is already in place and the
//! tape is in topological order by construction — backward is a single
//! reverse sweep.
//!
//! ## Buffer reuse across steps
//!
//! Training replays the same network structure every step, so the tape's
//! buffer population is identical sweep after sweep. The reuse plan is
//! implicit in tensor lifetimes: [`Graph::reset`] (and the grad clear at
//! the top of [`Graph::backward_with`]) drops each node's tensors, which
//! parks their aligned buffers in the thread-local size-bucketed arena
//! ([`crate::storage`]); the next sweep's node outputs and gradients then
//! rebind those exact buffers (same size class → same free-list, LIFO).
//! After the first step a steady-state trainer loop allocates nothing —
//! observable via the `tensor.arena_hits` / `tensor.alloc_bytes` counters
//! flushed at the end of every backward sweep, and via [`Graph::tape_stats`].
//! Within a sweep, backward arms write into recycled buffers through
//! [`crate::tensor::Tensor::add_assign`] instead of allocating fresh
//! intermediates (the `ppn-check` `no-hot-alloc` rule keeps it that way).
//!
//! Typical training-step usage:
//!
//! ```
//! use ppn_tensor::{Graph, Tensor};
//! let mut g = Graph::new();
//! let w = g.param(Tensor::from_vec(&[2, 1], vec![0.5, -0.5]));
//! let x = g.leaf(Tensor::from_vec(&[1, 2], vec![1.0, 2.0]));
//! let y = g.matmul(x, w);
//! let loss = g.mean(y);
//! g.backward(loss);
//! assert_eq!(g.grad(w).unwrap().data(), &[1.0, 2.0]);
//! ```

use crate::conv::{conv2d_backward, conv2d_forward, Dilation, Padding};
use crate::shape;
use crate::storage::Storage;
use crate::tensor::Tensor;
use rand::Rng;

/// Handle to a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub(crate) usize);

#[derive(Debug, Clone)]
#[allow(dead_code)] // some payloads (e.g. the AddScalar constant) exist for Debug introspection only
enum Op {
    Leaf,
    Add(NodeId, NodeId),
    Sub(NodeId, NodeId),
    Mul(NodeId, NodeId),
    Div(NodeId, NodeId),
    Neg(NodeId),
    Scale(NodeId, f64),
    AddScalar(NodeId, f64),
    MatMul(NodeId, NodeId),
    Sigmoid(NodeId),
    Tanh(NodeId),
    Relu(NodeId),
    Exp(NodeId),
    Log(NodeId),
    Abs(NodeId),
    Square(NodeId),
    Sqrt(NodeId),
    Softmax(NodeId),
    Sum(NodeId),
    Mean(NodeId),
    SumAxis(NodeId, usize),
    Concat(Vec<NodeId>, usize),
    Slice { x: NodeId, axis: usize, start: usize, end: usize },
    Reshape(NodeId),
    Permute(NodeId, Vec<usize>),
    Conv2d { x: NodeId, w: NodeId, dilation: Dilation, pad: Padding },
}

struct Node {
    op: Op,
    value: Tensor,
    grad: Option<Tensor>,
    requires_grad: bool,
}

/// Reverse-mode autodiff tape. See the module docs for usage.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

/// Size summary of a tape, reported by [`Graph::tape_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TapeStats {
    /// Nodes on the tape.
    pub nodes: usize,
    /// Total elements across all node forward values.
    pub value_elems: usize,
    /// Total elements across all live gradients.
    pub grad_elems: usize,
}

impl Graph {
    /// Empty tape.
    pub fn new() -> Self {
        Graph { nodes: Vec::with_capacity(256) }
    }

    /// Number of nodes currently on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Clears the tape for reuse, keeping its node allocation. Dropping the
    /// nodes parks their value/grad buffers in the thread-local arena, so
    /// the next sweep over the same network rebinds them instead of
    /// allocating (see the module docs).
    pub fn reset(&mut self) {
        self.nodes.clear();
    }

    /// Aggregate tape size: what the buffer-reuse plan holds live.
    pub fn tape_stats(&self) -> TapeStats {
        let mut s = TapeStats { nodes: self.nodes.len(), ..TapeStats::default() };
        for n in &self.nodes {
            s.value_elems += n.value.len();
            s.grad_elems += n.grad.as_ref().map_or(0, Tensor::len);
        }
        s
    }

    fn push(&mut self, op: Op, value: Tensor, requires_grad: bool) -> NodeId {
        debug_assert!(value.all_finite(), "non-finite forward value from {op:?}");
        self.nodes.push(Node { op, value, grad: None, requires_grad });
        NodeId(self.nodes.len() - 1)
    }

    fn rg(&self, id: NodeId) -> bool {
        self.nodes[id.0].requires_grad
    }

    /// Forward value of a node.
    pub fn value(&self, id: NodeId) -> &Tensor {
        &self.nodes[id.0].value
    }

    /// Gradient of a node after [`Graph::backward`]; `None` if the node does
    /// not require grad or was not reached.
    pub fn grad(&self, id: NodeId) -> Option<&Tensor> {
        self.nodes[id.0].grad.as_ref()
    }

    // ------------------------------------------------------------------
    // Leaves
    // ------------------------------------------------------------------

    /// Constant leaf (no gradient).
    pub fn leaf(&mut self, t: Tensor) -> NodeId {
        self.push(Op::Leaf, t, false)
    }

    /// Trainable leaf (receives a gradient).
    pub fn param(&mut self, t: Tensor) -> NodeId {
        self.push(Op::Leaf, t, true)
    }

    // ------------------------------------------------------------------
    // Elementwise / scalar
    // ------------------------------------------------------------------

    /// Elementwise addition with broadcasting.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).add(self.value(b));
        let rg = self.rg(a) || self.rg(b);
        self.push(Op::Add(a, b), v, rg)
    }

    /// Elementwise subtraction with broadcasting.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).sub(self.value(b));
        let rg = self.rg(a) || self.rg(b);
        self.push(Op::Sub(a, b), v, rg)
    }

    /// Elementwise multiplication with broadcasting.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).mul(self.value(b));
        let rg = self.rg(a) || self.rg(b);
        self.push(Op::Mul(a, b), v, rg)
    }

    /// Elementwise division with broadcasting.
    pub fn div(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).div(self.value(b));
        let rg = self.rg(a) || self.rg(b);
        self.push(Op::Div(a, b), v, rg)
    }

    /// Negation.
    pub fn neg(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x).scale(-1.0);
        let rg = self.rg(x);
        self.push(Op::Neg(x), v, rg)
    }

    /// Multiplies every element by a constant.
    pub fn scale(&mut self, x: NodeId, s: f64) -> NodeId {
        let v = self.value(x).scale(s);
        let rg = self.rg(x);
        self.push(Op::Scale(x, s), v, rg)
    }

    /// Adds a constant to every element.
    pub fn add_scalar(&mut self, x: NodeId, s: f64) -> NodeId {
        let v = self.value(x).map(|v| v + s);
        let rg = self.rg(x);
        self.push(Op::AddScalar(x, s), v, rg)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x).map(|v| 1.0 / (1.0 + (-v).exp()));
        let rg = self.rg(x);
        self.push(Op::Sigmoid(x), v, rg)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x).map(f64::tanh);
        let rg = self.rg(x);
        self.push(Op::Tanh(x), v, rg)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x).map(|v| v.max(0.0));
        let rg = self.rg(x);
        self.push(Op::Relu(x), v, rg)
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x).map(f64::exp);
        let rg = self.rg(x);
        self.push(Op::Exp(x), v, rg)
    }

    /// Elementwise natural logarithm.
    ///
    /// # Panics
    /// Debug-asserts that every input element is positive.
    pub fn log(&mut self, x: NodeId) -> NodeId {
        debug_assert!(self.value(x).data().iter().all(|&v| v > 0.0), "log of non-positive value");
        let v = self.value(x).map(f64::ln);
        let rg = self.rg(x);
        self.push(Op::Log(x), v, rg)
    }

    /// Elementwise absolute value (subgradient 0 at 0).
    pub fn abs(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x).map(f64::abs);
        let rg = self.rg(x);
        self.push(Op::Abs(x), v, rg)
    }

    /// Elementwise square.
    pub fn square(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x).map(|v| v * v);
        let rg = self.rg(x);
        self.push(Op::Square(x), v, rg)
    }

    /// Elementwise square root.
    pub fn sqrt(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x).map(f64::sqrt);
        let rg = self.rg(x);
        self.push(Op::Sqrt(x), v, rg)
    }

    // ------------------------------------------------------------------
    // Linear algebra / shape
    // ------------------------------------------------------------------

    /// 2-D matrix product.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).matmul(self.value(b));
        let rg = self.rg(a) || self.rg(b);
        self.push(Op::MatMul(a, b), v, rg)
    }

    /// Numerically-stable softmax along the **last** axis.
    pub fn softmax(&mut self, x: NodeId) -> NodeId {
        let t = self.value(x);
        let shape = t.shape().to_vec();
        // ppn-check: allow(no-panic) invariant: every graph tensor has rank >= 1
        let last = *shape.last().expect("softmax needs rank >= 1");
        let rows = t.len() / last;
        let mut out = Storage::uninit(t.len());
        for r in 0..rows {
            let row = &t.data()[r * last..(r + 1) * last];
            let mx = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let mut z = 0.0;
            for (j, &v) in row.iter().enumerate() {
                let e = (v - mx).exp();
                out[r * last + j] = e;
                z += e;
            }
            for j in 0..last {
                out[r * last + j] /= z;
            }
        }
        let rg = self.rg(x);
        self.push(Op::Softmax(x), Tensor::from_storage(&shape, out), rg)
    }

    /// Sum of all elements (scalar output).
    pub fn sum(&mut self, x: NodeId) -> NodeId {
        let v = Tensor::scalar(self.value(x).sum());
        let rg = self.rg(x);
        self.push(Op::Sum(x), v, rg)
    }

    /// Mean of all elements (scalar output).
    pub fn mean(&mut self, x: NodeId) -> NodeId {
        let v = Tensor::scalar(self.value(x).mean());
        let rg = self.rg(x);
        self.push(Op::Mean(x), v, rg)
    }

    /// Sum-reduction of one axis (axis removed from the shape).
    pub fn sum_axis(&mut self, x: NodeId, axis: usize) -> NodeId {
        let v = self.value(x).sum_axis(axis);
        let rg = self.rg(x);
        self.push(Op::SumAxis(x, axis), v, rg)
    }

    /// Population variance of all elements (scalar), composed from
    /// differentiable primitives so it backpropagates.
    pub fn variance(&mut self, x: NodeId) -> NodeId {
        let m = self.mean(x);
        let d = self.sub(x, m);
        let sq = self.square(d);
        self.mean(sq)
    }

    /// Concatenation along `axis`.
    ///
    /// # Panics
    /// Panics if shapes differ anywhere except `axis`.
    pub fn concat(&mut self, xs: &[NodeId], axis: usize) -> NodeId {
        assert!(!xs.is_empty(), "concat of zero tensors");
        let first = self.value(xs[0]).shape().to_vec();
        let mut out_shape = first.clone();
        let mut total = 0;
        for &x in xs {
            let s = self.value(x).shape();
            assert_eq!(s.len(), first.len(), "concat rank mismatch");
            for (d, (&a, &b)) in first.iter().zip(s.iter()).enumerate() {
                if d != axis {
                    assert_eq!(a, b, "concat dim {d} mismatch: {first:?} vs {s:?}");
                }
            }
            total += s[axis];
        }
        out_shape[axis] = total;
        // Copy contiguous (mid·inner) chunks per outer index.
        let outer: usize = first[..axis].iter().product();
        let inner: usize = first[axis + 1..].iter().product();
        let row_out = total * inner;
        let mut out = Storage::uninit(outer * row_out);
        let mut base = 0usize;
        for &x in xs {
            let t = self.value(x);
            let mid = t.shape()[axis];
            let chunk = mid * inner;
            for o in 0..outer {
                out[o * row_out + base..o * row_out + base + chunk]
                    .copy_from_slice(&t.data()[o * chunk..(o + 1) * chunk]);
            }
            base += chunk;
        }
        let rg = xs.iter().any(|&x| self.rg(x));
        self.push(Op::Concat(xs.to_vec(), axis), Tensor::from_storage(&out_shape, out), rg)
    }

    /// Sub-range `start..end` of `axis`.
    pub fn slice(&mut self, x: NodeId, axis: usize, start: usize, end: usize) -> NodeId {
        let shape = self.value(x).shape().to_vec();
        assert!(
            axis < shape.len() && start < end && end <= shape[axis],
            "slice {start}..{end} axis {axis} of {shape:?}"
        );
        let mut out_shape = shape.clone();
        out_shape[axis] = end - start;
        let outer: usize = shape[..axis].iter().product();
        let mid = shape[axis];
        let inner: usize = shape[axis + 1..].iter().product();
        let take = (end - start) * inner;
        let mut out = Storage::uninit(outer * take);
        {
            let data = self.value(x).data();
            for o in 0..outer {
                let row = o * mid * inner + start * inner;
                out[o * take..(o + 1) * take].copy_from_slice(&data[row..row + take]);
            }
        }
        let rg = self.rg(x);
        self.push(Op::Slice { x, axis, start, end }, Tensor::from_storage(&out_shape, out), rg)
    }

    /// Shape change preserving element order.
    pub fn reshape(&mut self, x: NodeId, shape: &[usize]) -> NodeId {
        let v = self.value(x).reshape(shape);
        let rg = self.rg(x);
        self.push(Op::Reshape(x), v, rg)
    }

    /// Axis permutation.
    pub fn permute(&mut self, x: NodeId, perm: &[usize]) -> NodeId {
        let v = self.value(x).permute(perm);
        let rg = self.rg(x);
        self.push(Op::Permute(x, perm.to_vec()), v, rg)
    }

    // ------------------------------------------------------------------
    // Convolution / dropout
    // ------------------------------------------------------------------

    /// Stride-1 2-D convolution (NCHW input, OIHW kernel) with dilation and
    /// explicit zero padding.
    pub fn conv2d(&mut self, x: NodeId, w: NodeId, dilation: Dilation, pad: Padding) -> NodeId {
        let v = conv2d_forward(self.value(x), self.value(w), dilation, pad);
        let rg = self.rg(x) || self.rg(w);
        self.push(Op::Conv2d { x, w, dilation, pad }, v, rg)
    }

    /// Inverted dropout. In training mode each element is zeroed with
    /// probability `p` and survivors are scaled by `1/(1-p)`; in eval mode it
    /// is the identity.
    pub fn dropout<R: Rng>(&mut self, x: NodeId, p: f64, training: bool, rng: &mut R) -> NodeId {
        assert!((0.0..1.0).contains(&p), "dropout rate {p}");
        if !training || crate::approx::is_zero(p) {
            return x;
        }
        let keep = 1.0 - p;
        let mask_t = {
            let t = self.value(x);
            let data = t
                .data()
                .iter()
                .map(|_| if rng.gen::<f64>() < keep { 1.0 / keep } else { 0.0 })
                .collect();
            Tensor::from_vec(t.shape(), data)
        };
        let mask = self.leaf(mask_t);
        self.mul(x, mask)
    }

    // ------------------------------------------------------------------
    // Backward
    // ------------------------------------------------------------------

    /// Runs the reverse sweep from `output`, which must be a scalar node.
    /// Gradients accumulate into every `requires_grad` node reachable from it.
    ///
    /// # Panics
    /// Panics if `output` is not a scalar.
    pub fn backward(&mut self, output: NodeId) {
        assert_eq!(
            self.value(output).len(),
            1,
            "backward needs a scalar output, got {:?}",
            self.value(output).shape()
        );
        self.backward_with(output, Tensor::from_vec(self.value(output).shape(), vec![1.0]));
    }

    /// Reverse sweep with an explicit seed gradient for `output`.
    pub fn backward_with(&mut self, output: NodeId, seed: Tensor) {
        assert_eq!(seed.shape(), self.value(output).shape(), "seed shape mismatch");
        for n in &mut self.nodes {
            n.grad = None;
        }
        self.nodes[output.0].grad = Some(seed);
        for i in (0..=output.0).rev() {
            if !self.nodes[i].requires_grad {
                continue;
            }
            let Some(g) = self.nodes[i].grad.take() else { continue };
            self.propagate(i, &g);
            self.nodes[i].grad = Some(g);
        }
        crate::storage::flush_obs_counters();
    }

    fn accumulate(&mut self, id: NodeId, delta: Tensor) {
        if !self.nodes[id.0].requires_grad {
            return;
        }
        match &mut self.nodes[id.0].grad {
            // Same-shape accumulation reuses the existing buffer in place
            // (bit-identical to `g.add(&delta)` for equal shapes).
            Some(g) if g.shape() == delta.shape() => g.add_assign(&delta),
            Some(g) => *g = g.add(&delta),
            slot @ None => *slot = Some(delta),
        }
    }

    /// Reduces `grad` (shaped like the broadcast output) back down to
    /// `target` by summing over broadcast dimensions.
    fn reduce_to(grad: &Tensor, target: &[usize]) -> Tensor {
        grad.reduce_broadcast(target)
    }

    fn propagate(&mut self, i: usize, g: &Tensor) {
        let op = self.nodes[i].op.clone();
        match op {
            Op::Leaf => {}
            Op::Add(a, b) => {
                let ga = Self::reduce_to(g, self.value(a).shape());
                let gb = Self::reduce_to(g, self.value(b).shape());
                self.accumulate(a, ga);
                self.accumulate(b, gb);
            }
            Op::Sub(a, b) => {
                let ga = Self::reduce_to(g, self.value(a).shape());
                let gb = Self::reduce_to(&g.scale(-1.0), self.value(b).shape());
                self.accumulate(a, ga);
                self.accumulate(b, gb);
            }
            Op::Mul(a, b) => {
                let ga = Self::reduce_to(&g.mul(self.value(b)), self.value(a).shape());
                let gb = Self::reduce_to(&g.mul(self.value(a)), self.value(b).shape());
                self.accumulate(a, ga);
                self.accumulate(b, gb);
            }
            Op::Div(a, b) => {
                // Borrow the operand values in a scope that ends before the
                // mutable accumulate calls — no defensive clones.
                let (ga, gb) = {
                    let va = self.value(a);
                    let vb = self.value(b);
                    let ga = Self::reduce_to(&g.div(vb), va.shape());
                    let gb_full = g.mul(va).div(&vb.mul(vb)).scale(-1.0);
                    (ga, Self::reduce_to(&gb_full, vb.shape()))
                };
                self.accumulate(a, ga);
                self.accumulate(b, gb);
            }
            Op::Neg(x) => self.accumulate(x, g.scale(-1.0)),
            Op::Scale(x, s) => self.accumulate(x, g.scale(s)),
            Op::AddScalar(x, _) => self.accumulate(x, g.clone()),
            Op::MatMul(a, b) => {
                // dA = G Bᵀ, dB = Aᵀ G
                let ga = g.matmul(&self.value(b).transpose2());
                let gb = self.value(a).transpose2().matmul(g);
                self.accumulate(a, ga);
                self.accumulate(b, gb);
            }
            Op::Sigmoid(x) => {
                let y = &self.nodes[i].value;
                let d = y.map(|v| v * (1.0 - v));
                self.accumulate(x, g.mul(&d));
            }
            Op::Tanh(x) => {
                let y = &self.nodes[i].value;
                let d = y.map(|v| 1.0 - v * v);
                self.accumulate(x, g.mul(&d));
            }
            Op::Relu(x) => {
                let d = self.value(x).map(|v| if v > 0.0 { 1.0 } else { 0.0 });
                self.accumulate(x, g.mul(&d));
            }
            Op::Exp(x) => {
                let gx = g.mul(&self.nodes[i].value);
                self.accumulate(x, gx);
            }
            Op::Log(x) => {
                let d = self.value(x).map(|v| 1.0 / v);
                self.accumulate(x, g.mul(&d));
            }
            Op::Abs(x) => {
                let d = self.value(x).map(|v| {
                    if v > 0.0 {
                        1.0
                    } else if v < 0.0 {
                        -1.0
                    } else {
                        0.0
                    }
                });
                self.accumulate(x, g.mul(&d));
            }
            Op::Square(x) => {
                let d = self.value(x).scale(2.0);
                self.accumulate(x, g.mul(&d));
            }
            Op::Sqrt(x) => {
                let y = &self.nodes[i].value;
                let d = y.map(|v| 0.5 / v.max(1e-300));
                self.accumulate(x, g.mul(&d));
            }
            Op::Softmax(x) => {
                // Per-row: dx = y ⊙ (g − ⟨g, y⟩)
                let gx = {
                    let y = &self.nodes[i].value;
                    // ppn-check: allow(no-panic) invariant: softmax output keeps its input's rank >= 1
                    let last = *y.shape().last().expect("softmax output has rank >= 1");
                    let rows = y.len() / last;
                    let mut dx = Storage::uninit(y.len());
                    for r in 0..rows {
                        let yr = &y.data()[r * last..(r + 1) * last];
                        let gr = &g.data()[r * last..(r + 1) * last];
                        let dot: f64 = yr.iter().zip(gr).map(|(a, b)| a * b).sum();
                        for j in 0..last {
                            dx[r * last + j] = yr[j] * (gr[j] - dot);
                        }
                    }
                    Tensor::from_storage(y.shape(), dx)
                };
                self.accumulate(x, gx);
            }
            Op::Sum(x) => {
                let gx = Tensor::full(self.value(x).shape(), g.item());
                self.accumulate(x, gx);
            }
            Op::Mean(x) => {
                let n = self.value(x).len() as f64;
                let gx = Tensor::full(self.value(x).shape(), g.item() / n);
                self.accumulate(x, gx);
            }
            Op::SumAxis(x, axis) => {
                // Broadcast the reduced gradient back along the removed axis.
                let xs = self.value(x).shape().to_vec();
                let outer: usize = xs[..axis].iter().product();
                let mid = xs[axis];
                let inner: usize = xs[axis + 1..].iter().product();
                let mut gx = Storage::uninit(outer * mid * inner);
                for o in 0..outer {
                    let src = &g.data()[o * inner..(o + 1) * inner];
                    for m in 0..mid {
                        gx[(o * mid + m) * inner..(o * mid + m + 1) * inner].copy_from_slice(src);
                    }
                }
                self.accumulate(x, Tensor::from_storage(&xs, gx));
            }
            Op::Concat(xs, axis) => {
                let out_shape = self.nodes[i].value.shape().to_vec();
                let outer: usize = out_shape[..axis].iter().product();
                let inner: usize = out_shape[axis + 1..].iter().product();
                let row_out = out_shape[axis] * inner;
                let mut base = 0usize;
                for x in xs {
                    let s = self.value(x).shape().to_vec();
                    let chunk = s[axis] * inner;
                    let mut gx = Storage::uninit(outer * chunk);
                    for o in 0..outer {
                        gx[o * chunk..(o + 1) * chunk].copy_from_slice(
                            &g.data()[o * row_out + base..o * row_out + base + chunk],
                        );
                    }
                    base += chunk;
                    self.accumulate(x, Tensor::from_storage(&s, gx));
                }
            }
            Op::Slice { x, axis, start, end } => {
                let s = self.value(x).shape().to_vec();
                let outer: usize = s[..axis].iter().product();
                let mid = s[axis];
                let inner: usize = s[axis + 1..].iter().product();
                let take = (end - start) * inner;
                // Zeroed, not uninit: only the sliced range is overwritten.
                let mut gx = Storage::zeroed(outer * mid * inner);
                for o in 0..outer {
                    let dst = o * mid * inner + start * inner;
                    gx[dst..dst + take].copy_from_slice(&g.data()[o * take..(o + 1) * take]);
                }
                self.accumulate(x, Tensor::from_storage(&s, gx));
            }
            Op::Reshape(x) => {
                let s = self.value(x).shape().to_vec();
                self.accumulate(x, g.reshape(&s));
            }
            Op::Permute(x, perm) => {
                // Inverse permutation routes the gradient back; the inverse
                // lives in stack scratch.
                let gx = shape::with_dims(perm.len(), |inv| {
                    for (i, &p) in perm.iter().enumerate() {
                        inv[p] = i;
                    }
                    g.permute(inv)
                });
                self.accumulate(x, gx);
            }
            Op::Conv2d { x, w, dilation, pad } => {
                let (gx, gw) = conv2d_backward(self.value(x), self.value(w), g, dilation, pad);
                self.accumulate(x, gx);
                self.accumulate(w, gw);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_chain_rule() {
        // f(x) = (2x + 1)^2 at x = 3 → f = 49, f' = 2·7·2 = 28.
        let mut g = Graph::new();
        let x = g.param(Tensor::scalar(3.0));
        let y = g.scale(x, 2.0);
        let y = g.add_scalar(y, 1.0);
        let f = g.square(y);
        g.backward(f);
        assert_eq!(g.value(f).item(), 49.0);
        assert_eq!(g.grad(x).unwrap().item(), 28.0);
    }

    #[test]
    fn fanout_accumulates() {
        // f = x·x + x → f' = 2x + 1.
        let mut g = Graph::new();
        let x = g.param(Tensor::scalar(5.0));
        let xx = g.mul(x, x);
        let f = g.add(xx, x);
        g.backward(f);
        assert_eq!(g.grad(x).unwrap().item(), 11.0);
    }

    #[test]
    fn matmul_grads() {
        let mut g = Graph::new();
        let a = g.param(Tensor::from_vec(&[2, 2], vec![1., 2., 3., 4.]));
        let b = g.param(Tensor::from_vec(&[2, 2], vec![5., 6., 7., 8.]));
        let c = g.matmul(a, b);
        let s = g.sum(c);
        g.backward(s);
        // d(sum AB)/dA = 1 Bᵀ → rows are column sums of Bᵀ.
        assert_eq!(g.grad(a).unwrap().data(), &[11., 15., 11., 15.]);
        assert_eq!(g.grad(b).unwrap().data(), &[4., 4., 6., 6.]);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_grad_sums_to_zero() {
        let mut g = Graph::new();
        let x = g.param(Tensor::from_vec(&[2, 3], vec![1., 2., 3., 0.1, 0.2, 0.3]));
        let y = g.softmax(x);
        for r in 0..2 {
            let row: f64 = g.value(y).data()[r * 3..(r + 1) * 3].iter().sum();
            assert!((row - 1.0).abs() < 1e-12);
        }
        // Gradient of any scalar through softmax sums to 0 per row
        // (softmax output lives on the simplex).
        let w = g.leaf(Tensor::from_vec(&[2, 3], vec![1., -2., 0.5, 3., 1., -1.]));
        let p = g.mul(y, w);
        let s = g.sum(p);
        g.backward(s);
        let gx = g.grad(x).unwrap();
        for r in 0..2 {
            let row: f64 = gx.data()[r * 3..(r + 1) * 3].iter().sum();
            assert!(row.abs() < 1e-12, "row {r} grad sum {row}");
        }
    }

    #[test]
    fn variance_value_and_grad() {
        let mut g = Graph::new();
        let x = g.param(Tensor::from_vec(&[4], vec![1., 2., 3., 4.]));
        let v = g.variance(x);
        g.backward(v);
        assert!((g.value(v).item() - 1.25).abs() < 1e-12);
        // d var / dx_i = 2 (x_i - mean) / n
        let expect = [-0.75, -0.25, 0.25, 0.75];
        for (a, b) in g.grad(x).unwrap().data().iter().zip(expect) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn broadcast_add_reduces_grad() {
        let mut g = Graph::new();
        let x = g.param(Tensor::zeros(&[2, 3]));
        let b = g.param(Tensor::zeros(&[3]));
        let y = g.add(x, b);
        let s = g.sum(y);
        g.backward(s);
        assert_eq!(g.grad(b).unwrap().shape(), &[3]);
        assert_eq!(g.grad(b).unwrap().data(), &[2., 2., 2.]);
    }

    #[test]
    fn concat_slice_roundtrip_grads() {
        let mut g = Graph::new();
        let a = g.param(Tensor::from_vec(&[2, 1], vec![1., 2.]));
        let b = g.param(Tensor::from_vec(&[2, 2], vec![3., 4., 5., 6.]));
        let c = g.concat(&[a, b], 1); // (2,3)
        let sl = g.slice(c, 1, 1, 3); // drops a's column
        let s = g.sum(sl);
        g.backward(s);
        assert_eq!(g.grad(a).unwrap().data(), &[0., 0.]);
        assert_eq!(g.grad(b).unwrap().data(), &[1., 1., 1., 1.]);
    }

    #[test]
    fn dropout_eval_is_identity_and_train_scales() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(3);
        let mut g = Graph::new();
        let x = g.param(Tensor::ones(&[1000]));
        let y = g.dropout(x, 0.5, false, &mut rng);
        assert_eq!(y, x); // eval mode: same node
        let z = g.dropout(x, 0.5, true, &mut rng);
        let m = g.value(z).mean();
        assert!((m - 1.0).abs() < 0.1, "inverted dropout keeps the mean, got {m}");
    }

    #[test]
    fn backward_requires_scalar() {
        let mut g = Graph::new();
        let x = g.param(Tensor::ones(&[2]));
        let y = g.scale(x, 2.0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut g2 = Graph::new();
            let x2 = g2.param(Tensor::ones(&[2]));
            g2.backward(x2);
        }));
        assert!(result.is_err());
        let s = g.sum(y);
        g.backward(s); // fine
    }

    #[test]
    fn grad_not_tracked_for_leaves() {
        let mut g = Graph::new();
        let c = g.leaf(Tensor::scalar(2.0));
        let x = g.param(Tensor::scalar(3.0));
        let y = g.mul(c, x);
        g.backward(y);
        assert!(g.grad(c).is_none());
        assert_eq!(g.grad(x).unwrap().item(), 2.0);
    }
}
