//! Finite-difference gradient checking.
//!
//! Used throughout the test suites to certify every op and every model's
//! backward pass: we perturb each parameter scalar by ±ε, re-run the forward
//! closure, and compare the central difference against the analytic gradient.

use crate::graph::{Graph, NodeId};
use crate::optim::{Binding, ParamStore};

/// Result of a gradient check.
#[derive(Debug)]
pub struct GradCheckReport {
    /// Largest absolute error over all checked coordinates.
    pub max_abs_err: f64,
    /// Largest relative error (|ad − fd| / max(1, |ad|, |fd|)).
    pub max_rel_err: f64,
    /// Number of coordinates compared.
    pub checked: usize,
}

/// Checks analytic gradients of `loss_fn` against central finite differences.
///
/// `loss_fn` must build a scalar loss from a fresh graph and binding; it is
/// called `2·n + 1` times where `n` is the number of checked coordinates.
/// `stride` subsamples coordinates for large parameter sets (1 = check all).
///
/// # Panics
/// Panics if `loss_fn` produces a non-scalar node.
pub fn gradcheck<F>(
    store: &mut ParamStore,
    mut loss_fn: F,
    eps: f64,
    stride: usize,
) -> GradCheckReport
where
    F: FnMut(&mut Graph, &Binding) -> NodeId,
{
    // Analytic pass.
    let mut g = Graph::new();
    let bind = store.bind(&mut g);
    let loss = loss_fn(&mut g, &bind);
    assert_eq!(g.value(loss).len(), 1, "gradcheck needs a scalar loss");
    g.backward(loss);
    let analytic = bind.grads(&g);

    let ids: Vec<_> = store.ids().collect();
    let mut max_abs: f64 = 0.0;
    let mut max_rel: f64 = 0.0;
    let mut checked = 0;
    for (pi, id) in ids.iter().enumerate() {
        let n = store.value(*id).len();
        for ci in (0..n).step_by(stride.max(1)) {
            let orig = store.value(*id).data()[ci];
            let eval = |store: &mut ParamStore, v: f64, loss_fn: &mut F| {
                store.value_mut(*id).data_mut()[ci] = v;
                let mut g = Graph::new();
                let bind = store.bind(&mut g);
                let l = loss_fn(&mut g, &bind);
                let out = g.value(l).item();
                store.value_mut(*id).data_mut()[ci] = orig;
                out
            };
            let fp = eval(store, orig + eps, &mut loss_fn);
            let fm = eval(store, orig - eps, &mut loss_fn);
            let fd = (fp - fm) / (2.0 * eps);
            let ad = analytic[pi].as_ref().map_or(0.0, |t| t.data()[ci]);
            let abs = (fd - ad).abs();
            let rel = abs / 1f64.max(ad.abs()).max(fd.abs());
            max_abs = max_abs.max(abs);
            max_rel = max_rel.max(rel);
            checked += 1;
        }
    }
    GradCheckReport { max_abs_err: max_abs, max_rel_err: max_rel, checked }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn passes_on_correct_gradient() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(&[3], vec![0.3, -0.7, 1.1]));
        let report = gradcheck(
            &mut store,
            |g, bind| {
                let x = bind.node(w);
                let s = g.square(x);
                let e = g.exp(x);
                let t = g.add(s, e);
                g.sum(t)
            },
            1e-6,
            1,
        );
        assert_eq!(report.checked, 3);
        assert!(report.max_rel_err < 1e-6, "{report:?}");
    }

    #[test]
    fn detects_wrong_gradient() {
        // Simulate a broken backward by checking against a deliberately
        // different loss for the finite difference: gradcheck should report
        // a large error if gradients were wrong. Here we instead verify the
        // checker's sensitivity by using |x| at 0 where the subgradient (0)
        // differs from one-sided slopes.
        let mut store = ParamStore::new();
        store.add("w", Tensor::from_vec(&[1], vec![1e-9]));
        let ids: Vec<_> = store.ids().collect();
        let w = ids[0];
        let report = gradcheck(
            &mut store,
            |g, bind| {
                let a = g.abs(bind.node(w));
                g.sum(a)
            },
            1e-6,
            1,
        );
        // Near the kink the finite difference is ~0 (symmetric), so abs still
        // agrees; sanity: the check ran.
        assert_eq!(report.checked, 1);
    }
}
