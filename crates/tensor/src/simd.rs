//! Vectorized AXPY primitives shared by the matmul and conv kernels.
//!
//! The scalar paths here are the reference semantics: every kernel output
//! element accumulates its terms in ascending-`k` order with separate
//! multiply and add. The optional AVX2 paths (behind the `simd` cargo
//! feature) perform the *same* operations per lane — `_mm256_mul_pd`
//! followed by `_mm256_add_pd`, never a fused multiply-add — so each output
//! element sees the identical sequence of IEEE-754 roundings and the result
//! is bit-identical to the scalar path. The storage layer guarantees
//! 32-byte-aligned buffer bases, which keeps the (unaligned-encoded) loads
//! on cache-line-friendly addresses for the common full-row case.
//!
//! Runtime controls: the intrinsics engage only when the `simd` feature is
//! compiled in, the CPU reports AVX2, and `PPN_SIMD` is not set to `0`
//! (kill switch, read once). [`force_scalar`] scopes the scalar path for
//! bit-identity tests.

#![allow(unsafe_code)] // audited: runtime-detection-gated intrinsic calls only, see no-unsafe rule

use std::cell::Cell;

thread_local! {
    /// Nesting depth of [`force_scalar`] scopes; > 0 disables intrinsics.
    static FORCE_SCALAR: Cell<u32> = const { Cell::new(0) };
}

/// Runs `f` with the intrinsics paths disabled on this thread (nestable,
/// panic-safe). Used by the bit-identity tests and `speed_probe` to compare
/// scalar and vector kernels inside one process.
pub fn force_scalar<R>(f: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            FORCE_SCALAR.with(|c| c.set(c.get() - 1));
        }
    }
    FORCE_SCALAR.with(|c| c.set(c.get() + 1));
    let _guard = Guard;
    f()
}

/// Whether the vectorized paths will be taken by the calling thread.
pub fn enabled() -> bool {
    simd_available() && FORCE_SCALAR.with(Cell::get) == 0
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
fn simd_available() -> bool {
    use std::sync::OnceLock;
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        let killed = std::env::var("PPN_SIMD").is_ok_and(|v| v.trim() == "0");
        !killed && std::arch::is_x86_feature_detected!("avx2")
    })
}

#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
fn simd_available() -> bool {
    false
}

/// A hoisted dispatch decision. [`enabled`] reads a thread-local and a
/// `OnceLock` — cheap once, but measurable when an inner loop issues millions
/// of short AXPYs (the conv kernels run ~30-element rows). Kernels call
/// [`Dispatch::capture`] once per plane/row-block and branch on the captured
/// bool instead, which the compiler keeps in a register.
#[derive(Clone, Copy)]
pub struct Dispatch {
    #[cfg_attr(not(all(feature = "simd", target_arch = "x86_64")), allow(dead_code))]
    use_avx2: bool,
}

impl Dispatch {
    /// Snapshots [`enabled`] for the calling thread.
    #[inline]
    pub fn capture() -> Dispatch {
        Dispatch { use_avx2: enabled() }
    }

    /// `o[j] += a * x[j]` over the common length of `o` and `x`.
    #[inline]
    pub fn axpy(self, o: &mut [f64], x: &[f64], a: f64) {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if self.use_avx2 {
            // SAFETY: use_avx2 implies AVX2 was detected at runtime.
            unsafe { avx2::axpy(o, x, a) };
            return;
        }
        for (ov, &xv) in o.iter_mut().zip(x) {
            *ov += a * xv;
        }
    }

    /// Four simultaneous AXPYs sharing one source row:
    /// `o[r][j] += a[r] * b[j]`. The shared `b` row is loaded once per `j`,
    /// which is what makes the 4-row-blocked matmul register-friendly.
    #[inline]
    pub fn axpy4(self, o: [&mut [f64]; 4], b: &[f64], a: [f64; 4]) {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if self.use_avx2 {
            // SAFETY: use_avx2 implies AVX2 was detected at runtime.
            unsafe { avx2::axpy4(o, b, a) };
            return;
        }
        let [o0, o1, o2, o3] = o;
        let n = b.len().min(o0.len()).min(o1.len()).min(o2.len()).min(o3.len());
        // Explicit reslicing lets the compiler elide per-index bounds checks.
        let (b, o0, o1, o2, o3) = (&b[..n], &mut o0[..n], &mut o1[..n], &mut o2[..n], &mut o3[..n]);
        for j in 0..n {
            let bv = b[j];
            o0[j] += a[0] * bv;
            o1[j] += a[1] * bv;
            o2[j] += a[2] * bv;
            o3[j] += a[3] * bv;
        }
    }
}

/// `o[j] += a * x[j]` with a fresh per-call dispatch decision. Inner loops
/// should hoist via [`Dispatch::capture`] instead.
#[inline]
pub fn axpy(o: &mut [f64], x: &[f64], a: f64) {
    Dispatch::capture().axpy(o, x, a);
}

/// Four simultaneous AXPYs with a fresh per-call dispatch decision. Inner
/// loops should hoist via [`Dispatch::capture`] instead.
#[inline]
pub fn axpy4(o: [&mut [f64]; 4], b: &[f64], a: [f64; 4]) {
    Dispatch::capture().axpy4(o, b, a);
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx2 {
    use core::arch::x86_64::{
        _mm256_add_pd, _mm256_loadu_pd, _mm256_mul_pd, _mm256_set1_pd, _mm256_storeu_pd,
    };

    /// # Safety
    /// Caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy(o: &mut [f64], x: &[f64], a: f64) {
        let n = o.len().min(x.len());
        let op = o.as_mut_ptr();
        let xp = x.as_ptr();
        // SAFETY: all accesses below stay within the first n elements of
        // `o` and `x`; mul+add per lane matches the scalar `a * x + o`.
        unsafe {
            let av = _mm256_set1_pd(a);
            let mut i = 0;
            while i + 4 <= n {
                let prod = _mm256_mul_pd(av, _mm256_loadu_pd(xp.add(i)));
                _mm256_storeu_pd(op.add(i), _mm256_add_pd(_mm256_loadu_pd(op.add(i)), prod));
                i += 4;
            }
            while i < n {
                *op.add(i) += a * *xp.add(i);
                i += 1;
            }
        }
    }

    /// # Safety
    /// Caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy4(o: [&mut [f64]; 4], b: &[f64], a: [f64; 4]) {
        let [o0, o1, o2, o3] = o;
        let n = b.len().min(o0.len()).min(o1.len()).min(o2.len()).min(o3.len());
        let bp = b.as_ptr();
        let ops = [o0.as_mut_ptr(), o1.as_mut_ptr(), o2.as_mut_ptr(), o3.as_mut_ptr()];
        // SAFETY: all accesses stay within the first n elements of each
        // slice; per-row mul+add matches the scalar loop exactly.
        unsafe {
            let avs = [
                _mm256_set1_pd(a[0]),
                _mm256_set1_pd(a[1]),
                _mm256_set1_pd(a[2]),
                _mm256_set1_pd(a[3]),
            ];
            let mut j = 0;
            while j + 4 <= n {
                let bv = _mm256_loadu_pd(bp.add(j));
                for r in 0..4 {
                    let prod = _mm256_mul_pd(avs[r], bv);
                    _mm256_storeu_pd(
                        ops[r].add(j),
                        _mm256_add_pd(_mm256_loadu_pd(ops[r].add(j)), prod),
                    );
                }
                j += 4;
            }
            while j < n {
                let bv = *bp.add(j);
                for r in 0..4 {
                    *ops[r].add(j) += a[r] * bv;
                }
                j += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ref_axpy(o: &mut [f64], x: &[f64], a: f64) {
        for (ov, &xv) in o.iter_mut().zip(x) {
            *ov += a * xv;
        }
    }

    #[test]
    fn axpy_matches_reference_bitwise() {
        for n in [0usize, 1, 3, 4, 7, 8, 33] {
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() * 1e3).collect();
            let mut o1: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).cos()).collect();
            let mut o2 = o1.clone();
            axpy(&mut o1, &x, 1.7e-3);
            ref_axpy(&mut o2, &x, 1.7e-3);
            for (a, b) in o1.iter().zip(o2.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn axpy4_matches_four_scalar_axpys_bitwise() {
        for n in [0usize, 1, 4, 5, 16, 29] {
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.73).sin()).collect();
            let a = [0.5, -1.25, 3.0e-4, 7.75];
            let mut rows: Vec<Vec<f64>> =
                (0..4).map(|r| (0..n).map(|i| ((i + r) as f64 * 0.19).cos()).collect()).collect();
            let mut expect = rows.clone();
            let [r0, r1, r2, r3] = &mut rows[..] else { unreachable!() };
            axpy4([r0, r1, r2, r3], &b, a);
            for (r, row) in expect.iter_mut().enumerate() {
                ref_axpy(row, &b, a[r]);
            }
            for (got, want) in rows.iter().zip(expect.iter()) {
                for (g, w) in got.iter().zip(want.iter()) {
                    assert_eq!(g.to_bits(), w.to_bits(), "n={n}");
                }
            }
        }
    }

    #[test]
    fn force_scalar_nests_and_restores() {
        let outer = enabled();
        force_scalar(|| {
            assert!(!enabled());
            force_scalar(|| assert!(!enabled()));
            assert!(!enabled());
        });
        assert_eq!(enabled(), outer);
    }
}
