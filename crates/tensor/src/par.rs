//! Scoped worker pool: the workspace's only thread-spawning module.
//!
//! Every parallel region in the workspace funnels through here (the
//! `ppn-check` `no-thread` rule enforces it). The pool is deliberately
//! simple: each parallel region opens a [`std::thread::scope`], workers pull
//! work items off a `parking_lot`-locked queue, and the region joins before
//! returning — no detached threads, no cross-region state beyond the
//! configured thread count.
//!
//! ## Thread count
//!
//! The effective count comes from, in priority order:
//!
//! 1. a scoped [`with_threads`] override (used by tests and the
//!    `speed_probe` sweep to compare thread counts inside one process),
//! 2. the `PPN_THREADS` environment variable (read once, cached),
//! 3. [`std::thread::available_parallelism`].
//!
//! `PPN_THREADS=1` is the exact serial path: no threads are spawned and the
//! calling thread runs every item inline.
//!
//! ## Determinism
//!
//! The pool only distributes *disjoint* work: every output element is
//! written by exactly one worker, and each kernel built on the pool keeps
//! its per-element floating-point accumulation order identical to the
//! serial loop (see `Tensor::matmul` and `conv::conv2d_forward`). Results
//! are therefore bit-identical across thread counts, including the serial
//! path — the queue order only decides *who* computes a chunk, never *how*.

use parking_lot::Mutex;
use std::cell::Cell;
use std::sync::OnceLock;

/// Upper bound on the pool size; guards against absurd `PPN_THREADS`.
pub const MAX_THREADS: usize = 64;

static GLOBAL_THREADS: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// Scoped override installed by [`with_threads`]; 0 = no override.
    static OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Thread count from `PPN_THREADS` (cached on first read), falling back to
/// the machine's available parallelism. Values outside `1..=MAX_THREADS`
/// (and unparseable ones) fall back to the default.
fn global_threads() -> usize {
    *GLOBAL_THREADS.get_or_init(|| {
        std::env::var("PPN_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| (1..=MAX_THREADS).contains(&n))
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(MAX_THREADS)
            })
    })
}

/// The effective worker count for parallel regions started by this thread.
pub fn threads() -> usize {
    let o = OVERRIDE.with(Cell::get);
    if o > 0 {
        o
    } else {
        global_threads()
    }
}

/// Runs `f` with the effective thread count forced to `n` on this thread
/// (clamped to `1..=MAX_THREADS`), restoring the previous setting afterwards
/// — including on panic. Lets one process compare thread counts directly;
/// the override does not propagate into spawned workers, but kernels never
/// nest parallel regions, so that is unobservable.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let prev = OVERRIDE.with(Cell::get);
    let _restore = Restore(prev);
    OVERRIDE.with(|o| o.set(n.clamp(1, MAX_THREADS)));
    f()
}

/// Drains `items` through `f` on up to [`threads`] scoped workers (the
/// calling thread included). Serial and single-item inputs run inline
/// without spawning.
fn dispatch<I: Send>(items: Vec<I>, f: impl Fn(I) + Sync) {
    let t = threads().min(items.len());
    if t <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let queue = Mutex::new(items.into_iter());
    let worker = || loop {
        // Pop under the lock, run outside it.
        let item = queue.lock().next();
        match item {
            Some(item) => f(item),
            None => break,
        }
    };
    std::thread::scope(|s| {
        for _ in 1..t {
            s.spawn(worker);
        }
        worker();
    });
}

/// Splits `data` into contiguous chunks of `chunk_len` elements (the last
/// chunk may be shorter) and calls `f(chunk_index, chunk)` for each, spread
/// across the pool. Chunks are disjoint `&mut` slices, so workers can never
/// observe each other's writes.
///
/// # Panics
/// Panics if `chunk_len` is zero.
pub fn par_chunks_mut<T: Send>(
    data: &mut [T],
    chunk_len: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    assert!(chunk_len > 0, "par_chunks_mut chunk_len must be positive");
    // Serial / single-chunk fast path: no chunk-list allocation, no queue.
    if threads() <= 1 || data.len() <= chunk_len {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let chunks: Vec<(usize, &mut [T])> = data.chunks_mut(chunk_len).enumerate().collect();
    dispatch(chunks, |(i, chunk)| f(i, chunk));
}

/// Evaluates `f(0..n)` across the pool, returning the results in index
/// order. The index→result mapping is fixed, so the output is independent
/// of scheduling.
pub fn par_map<T: Send>(n: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    if threads().min(n) <= 1 {
        return (0..n).map(f).collect();
    }
    let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
    dispatch((0..n).collect(), |i| {
        let out = f(i);
        results.lock().push((i, out));
    });
    let mut pairs = results.into_inner();
    pairs.sort_by_key(|&(i, _)| i);
    debug_assert_eq!(pairs.len(), n);
    pairs.into_iter().map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn with_threads_overrides_and_restores() {
        let before = threads();
        with_threads(3, || assert_eq!(threads(), 3));
        assert_eq!(threads(), before);
        // Clamped at both ends.
        with_threads(0, || assert_eq!(threads(), 1));
        with_threads(10_000, || assert_eq!(threads(), MAX_THREADS));
    }

    #[test]
    fn with_threads_restores_after_panic() {
        let before = threads();
        let r = std::panic::catch_unwind(|| with_threads(5, || panic!("boom")));
        assert!(r.is_err());
        assert_eq!(threads(), before);
    }

    #[test]
    fn par_chunks_mut_visits_every_chunk_once() {
        for t in [1, 2, 4] {
            let mut data = vec![0u32; 37];
            with_threads(t, || {
                par_chunks_mut(&mut data, 5, |i, chunk| {
                    for v in chunk.iter_mut() {
                        *v += i as u32 + 1;
                    }
                });
            });
            for (j, v) in data.iter().enumerate() {
                assert_eq!(*v, (j / 5) as u32 + 1, "t={t} j={j}");
            }
        }
    }

    #[test]
    fn par_chunks_mut_handles_empty_input() {
        let mut data: Vec<f64> = Vec::new();
        par_chunks_mut(&mut data, 4, |_, _| panic!("no chunks expected"));
    }

    #[test]
    fn par_map_returns_in_index_order() {
        for t in [1, 2, 8] {
            let out = with_threads(t, || par_map(23, |i| i * i));
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>(), "t={t}");
        }
    }

    #[test]
    fn all_items_run_exactly_once_under_contention() {
        let count = AtomicUsize::new(0);
        with_threads(4, || {
            par_map(100, |_| count.fetch_add(1, Ordering::Relaxed));
        });
        assert_eq!(count.load(Ordering::Relaxed), 100);
    }
}
