//! Parameter storage and first-order optimisers.
//!
//! Parameters outlive the per-step tape: a [`ParamStore`] owns the weights,
//! [`ParamStore::bind`] inserts them into a fresh [`Graph`] for one forward/
//! backward pass, and an [`Optimizer`] consumes the gradients gathered by
//! [`Binding::grads`].
//!
//! ```
//! use ppn_tensor::{Graph, ParamStore, Adam, Optimizer, Tensor};
//! let mut store = ParamStore::new();
//! let w = store.add("w", Tensor::scalar(2.0));
//! let mut opt = Adam::new(0.1);
//! for _ in 0..200 {
//!     let mut g = Graph::new();
//!     let bind = store.bind(&mut g);
//!     let loss = g.square(bind.node(w));
//!     g.backward(loss);
//!     let grads = bind.grads(&g);
//!     opt.step(&mut store, &grads);
//! }
//! assert!(store.value(w).item().abs() < 1e-2);
//! ```

use crate::graph::{Graph, NodeId};
use crate::tensor::Tensor;

/// Handle to a parameter in a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(usize);

#[derive(serde::Serialize, serde::Deserialize)]
struct Param {
    name: String,
    value: Tensor,
}

/// Owns a model's trainable weights across training steps.
#[derive(Default, serde::Serialize, serde::Deserialize)]
pub struct ParamStore {
    params: Vec<Param>,
}

/// The `ParamId → NodeId` mapping produced by one [`ParamStore::bind`] call.
pub struct Binding {
    nodes: Vec<NodeId>,
}

impl ParamStore {
    /// Empty store.
    pub fn new() -> Self {
        ParamStore { params: Vec::new() }
    }

    /// Registers a parameter, returning its handle.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        self.params.push(Param { name: name.into(), value });
        ParamId(self.params.len() - 1)
    }

    /// Number of parameters tensors.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total scalar count across all parameter tensors.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].value
    }

    /// Mutable access (used by optimisers and target-network copies).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.params[id.0].value
    }

    /// Registered name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.params[id.0].name
    }

    /// All parameter handles in registration order.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.params.len()).map(ParamId)
    }

    /// Inserts every parameter into `g` as a trainable leaf.
    pub fn bind(&self, g: &mut Graph) -> Binding {
        let nodes = self.params.iter().map(|p| g.param(p.value.clone())).collect();
        Binding { nodes }
    }

    /// Inserts every parameter into `g` as a **frozen** (constant) leaf.
    /// Used when one network's output feeds another's loss but must not
    /// receive gradients (e.g. the critic during DDPG actor updates).
    pub fn bind_frozen(&self, g: &mut Graph) -> Binding {
        let nodes = self.params.iter().map(|p| g.leaf(p.value.clone())).collect();
        Binding { nodes }
    }

    /// Copies all values from another store (shapes must match). Used for
    /// target networks in DDPG.
    pub fn copy_from(&mut self, other: &ParamStore) {
        assert_eq!(self.params.len(), other.params.len());
        for (a, b) in self.params.iter_mut().zip(&other.params) {
            assert_eq!(a.value.shape(), b.value.shape(), "copy_from shape mismatch on {}", a.name);
            a.value = b.value.clone();
        }
    }

    /// Soft update `θ ← τ·θ_src + (1−τ)·θ` (DDPG target tracking).
    pub fn soft_update_from(&mut self, src: &ParamStore, tau: f64) {
        assert_eq!(self.params.len(), src.params.len());
        for (dst, s) in self.params.iter_mut().zip(&src.params) {
            dst.value = s.value.scale(tau).add(&dst.value.scale(1.0 - tau));
        }
    }
}

impl Binding {
    /// Graph node for a parameter.
    pub fn node(&self, id: ParamId) -> NodeId {
        self.nodes[id.0]
    }

    /// Gathers gradients after `Graph::backward`, in registration order.
    /// Parameters not reached by the sweep yield `None`.
    pub fn grads(&self, g: &Graph) -> Vec<Option<Tensor>> {
        self.nodes.iter().map(|&n| g.grad(n).cloned()).collect()
    }
}

/// Clips gradients to a maximum global L2 norm; returns the pre-clip norm.
pub fn clip_global_norm(grads: &mut [Option<Tensor>], max_norm: f64) -> f64 {
    let mut sq = 0.0;
    for g in grads.iter().flatten() {
        sq += g.data().iter().map(|x| x * x).sum::<f64>();
    }
    let norm = sq.sqrt();
    if norm > max_norm && norm > 0.0 {
        let s = max_norm / norm;
        for g in grads.iter_mut().flatten() {
            *g = g.scale(s);
        }
    }
    norm
}

/// A first-order optimiser over a [`ParamStore`].
pub trait Optimizer {
    /// Applies one update given gradients in registration order.
    fn step(&mut self, store: &mut ParamStore, grads: &[Option<Tensor>]);
}

/// Plain stochastic gradient descent (optionally with momentum).
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
    /// Momentum coefficient; 0 disables momentum.
    pub momentum: f64,
    velocity: Vec<Option<Tensor>>,
}

impl Sgd {
    /// SGD with the given learning rate and no momentum.
    pub fn new(lr: f64) -> Self {
        Sgd { lr, momentum: 0.0, velocity: Vec::new() }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f64, momentum: f64) -> Self {
        Sgd { lr, momentum, velocity: Vec::new() }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore, grads: &[Option<Tensor>]) {
        self.velocity.resize(grads.len(), None);
        for (i, id) in store.ids().enumerate().collect::<Vec<_>>() {
            let Some(g) = &grads[i] else { continue };
            let update = if self.momentum > 0.0 {
                let v = match &self.velocity[i] {
                    Some(v) => v.scale(self.momentum).add(g),
                    None => g.clone(),
                };
                self.velocity[i] = Some(v.clone());
                v
            } else {
                g.clone()
            };
            let w = store.value_mut(id);
            *w = w.sub(&update.scale(self.lr));
        }
    }
}

/// Adam (Kingma & Ba). The paper trains PPN with Adam at lr 1e−3.
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical floor.
    pub eps: f64,
    t: u64,
    m: Vec<Option<Tensor>>,
    v: Vec<Option<Tensor>>,
}

impl Adam {
    /// Adam with default betas (0.9, 0.999).
    pub fn new(lr: f64) -> Self {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore, grads: &[Option<Tensor>]) {
        self.t += 1;
        self.m.resize(grads.len(), None);
        self.v.resize(grads.len(), None);
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, id) in store.ids().enumerate().collect::<Vec<_>>() {
            let Some(g) = &grads[i] else { continue };
            let m = match &self.m[i] {
                Some(m) => m.scale(self.beta1).add(&g.scale(1.0 - self.beta1)),
                None => g.scale(1.0 - self.beta1),
            };
            let v = match &self.v[i] {
                Some(v) => v.scale(self.beta2).add(&g.mul(g).scale(1.0 - self.beta2)),
                None => g.mul(g).scale(1.0 - self.beta2),
            };
            self.m[i] = Some(m.clone());
            self.v[i] = Some(v.clone());
            let mhat = m.scale(1.0 / bc1);
            let vhat = v.scale(1.0 / bc2);
            let eps = self.eps;
            let update = mhat.zip(&vhat, |mh, vh| mh / (vh.sqrt() + eps));
            let w = store.value_mut(id);
            *w = w.sub(&update.scale(self.lr));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn quadratic_loss(store: &ParamStore, w: ParamId) -> (Graph, Binding, NodeId) {
        let mut g = Graph::new();
        let bind = store.bind(&mut g);
        // loss = sum((w - 3)^2)
        let t = g.add_scalar(bind.node(w), -3.0);
        let sq = g.square(t);
        let loss = g.sum(sq);
        (g, bind, loss)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(&[3], vec![0.0, 10.0, -4.0]));
        let mut opt = Sgd::new(0.1);
        for _ in 0..100 {
            let (mut g, bind, loss) = quadratic_loss(&store, w);
            g.backward(loss);
            opt.step(&mut store, &bind.grads(&g));
        }
        for &x in store.value(w).data() {
            assert!((x - 3.0).abs() < 1e-6, "{x}");
        }
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(&[2], vec![-8.0, 8.0]));
        let mut opt = Adam::new(0.3);
        for _ in 0..400 {
            let (mut g, bind, loss) = quadratic_loss(&store, w);
            g.backward(loss);
            opt.step(&mut store, &bind.grads(&g));
        }
        for &x in store.value(w).data() {
            assert!((x - 3.0).abs() < 1e-3, "{x}");
        }
    }

    #[test]
    fn momentum_accelerates() {
        let run = |mut opt: Sgd| {
            let mut store = ParamStore::new();
            let w = store.add("w", Tensor::scalar(10.0));
            for _ in 0..30 {
                let (mut g, bind, loss) = quadratic_loss(&store, w);
                g.backward(loss);
                opt.step(&mut store, &bind.grads(&g));
            }
            (store.value(w).item() - 3.0).abs()
        };
        let plain = run(Sgd::new(0.01));
        let mom = run(Sgd::with_momentum(0.01, 0.9));
        assert!(mom < plain, "momentum {mom} vs plain {plain}");
    }

    #[test]
    fn clip_reduces_norm() {
        let mut grads = vec![Some(Tensor::from_vec(&[2], vec![3.0, 4.0])), None];
        let pre = clip_global_norm(&mut grads, 1.0);
        assert!((pre - 5.0).abs() < 1e-12);
        let post: f64 = grads[0].as_ref().unwrap().l2_norm();
        assert!((post - 1.0).abs() < 1e-12);
        // Under the cap: untouched.
        let mut small = vec![Some(Tensor::from_vec(&[1], vec![0.5]))];
        clip_global_norm(&mut small, 1.0);
        assert_eq!(small[0].as_ref().unwrap().item(), 0.5);
    }

    #[test]
    fn soft_update_interpolates() {
        let mut a = ParamStore::new();
        a.add("w", Tensor::scalar(0.0));
        let mut b = ParamStore::new();
        let wb = b.add("w", Tensor::scalar(10.0));
        a.soft_update_from(&b, 0.1);
        assert!((a.value(ParamId(0)).item() - 1.0).abs() < 1e-12);
        let _ = wb;
    }

    #[test]
    fn unreached_params_untouched() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::scalar(1.0));
        let u = store.add("unused", Tensor::scalar(42.0));
        let mut g = Graph::new();
        let bind = store.bind(&mut g);
        let loss = g.square(bind.node(w));
        g.backward(loss);
        let grads = bind.grads(&g);
        assert!(grads[1].is_none());
        Adam::new(0.1).step(&mut store, &grads);
        assert_eq!(store.value(u).item(), 42.0);
    }
}
