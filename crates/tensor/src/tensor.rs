//! Dense row-major `f64` tensor.
//!
//! This is the value type flowing through the autodiff graph. It is
//! deliberately simple: owned 32-byte-aligned [`Storage`], eager ops, no
//! views. The PPN workloads are small (m ≤ 64 assets, k = 30 periods, ≤ 16
//! channels), so clarity and testability win over zero-copy cleverness —
//! but the backing store and the matmul inner loop are tuned (alignment,
//! register blocking, arena reuse; see [`crate::storage`] and
//! [`crate::simd`]) because they dominate every trainer step.

use crate::shape::{self, broadcast, numel};
use crate::storage::Storage;

/// Per-output-dim source strides for a broadcast operand, written into
/// `dst` (length `out.len()`): 0 where the operand's dim is 1 (or absent),
/// its row-major stride otherwise. Allocation-free: `dst` comes from the
/// caller's [`shape::with_dims`] scratch.
fn broadcast_strides_into(src: &[usize], out: &[usize], dst: &mut [usize]) {
    debug_assert_eq!(dst.len(), out.len());
    let skip = out.len() - src.len();
    for d in dst[..skip].iter_mut() {
        *d = 0;
    }
    shape::strides_into(src, &mut dst[skip..]);
    for (d, &s) in dst[skip..].iter_mut().zip(src) {
        if s == 1 {
            *d = 0;
        }
    }
}
use rand::Rng;
use serde::{Deserialize, Error, Ser, Serialize, Value};
use std::fmt;

/// A dense, row-major, `f64` n-dimensional array.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Storage,
}

impl Tensor {
    /// Builds a tensor from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(shape: &[usize], data: Vec<f64>) -> Self {
        assert_eq!(
            numel(shape),
            data.len(),
            "shape {:?} wants {} elements, got {}",
            shape,
            numel(shape),
            data.len()
        );
        Tensor { shape: shape.to_vec(), data: Storage::from_slice(&data) }
    }

    /// Builds a tensor directly over an aligned buffer (internal fast path;
    /// callers must have sized the buffer to the shape).
    pub(crate) fn from_storage(shape: &[usize], data: Storage) -> Self {
        debug_assert_eq!(numel(shape), data.len());
        Tensor { shape: shape.to_vec(), data }
    }

    /// A scalar tensor (empty shape).
    pub fn scalar(v: f64) -> Self {
        Tensor { shape: vec![], data: Storage::filled(1, v) }
    }

    /// All-zeros tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor { shape: shape.to_vec(), data: Storage::zeroed(numel(shape)) }
    }

    /// All-ones tensor.
    pub fn ones(shape: &[usize]) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Constant-filled tensor.
    pub fn full(shape: &[usize], v: f64) -> Self {
        Tensor { shape: shape.to_vec(), data: Storage::filled(numel(shape), v) }
    }

    /// Standard-normal-filled tensor scaled by `std`.
    pub fn randn<R: Rng>(rng: &mut R, shape: &[usize], std: f64) -> Self {
        let n = numel(shape);
        let mut data = Storage::with_capacity(n);
        // Box–Muller; rand 0.8's Standard distribution gives uniforms.
        while data.len() < n {
            let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.gen::<f64>();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < n {
                data.push(r * theta.sin() * std);
            }
        }
        Tensor { shape: shape.to_vec(), data }
    }

    /// Shape of the tensor. Empty slice means scalar.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat read-only view of the buffer.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Flat mutable view of the buffer.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the tensor returning its buffer as a plain `Vec` (copies;
    /// the aligned storage itself returns to the arena).
    pub fn into_vec(self) -> Vec<f64> {
        self.data.to_vec()
    }

    /// Value of a scalar tensor (or any single-element tensor).
    ///
    /// # Panics
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f64 {
        assert_eq!(self.data.len(), 1, "item() on tensor of shape {:?}", self.shape);
        self.data[0]
    }

    /// Element at a multi-index.
    pub fn at(&self, idx: &[usize]) -> f64 {
        self.data[shape::offset(&self.shape, idx)]
    }

    /// Mutable element at a multi-index.
    pub fn at_mut(&mut self, idx: &[usize]) -> &mut f64 {
        let off = shape::offset(&self.shape, idx);
        &mut self.data[off]
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    /// Panics if element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        assert_eq!(numel(shape), self.data.len(), "reshape {:?} -> {:?}", self.shape, shape);
        Tensor { shape: shape.to_vec(), data: self.data.clone() }
    }

    /// Applies `f` elementwise, producing a new tensor.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Tensor {
        let mut data = Storage::uninit(self.data.len());
        for (d, &x) in data.iter_mut().zip(self.data.iter()) {
            *d = f(x);
        }
        Tensor { shape: self.shape.clone(), data }
    }

    /// Elementwise binary op with NumPy-style broadcasting.
    ///
    /// # Panics
    /// Panics if shapes are not broadcast-compatible.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f64, f64) -> f64) -> Tensor {
        if self.shape == other.shape {
            let mut data = Storage::uninit(self.data.len());
            for (d, (&a, &b)) in data.iter_mut().zip(self.data.iter().zip(other.data.iter())) {
                *d = f(a, b);
            }
            return Tensor { shape: self.shape.clone(), data };
        }
        let out_shape = broadcast(&self.shape, &other.shape)
            // ppn-check: allow(no-panic) documented precondition — see `# Panics` above
            .unwrap_or_else(|| panic!("broadcast {:?} vs {:?}", self.shape, other.shape));
        // Odometer walk with per-dim source strides (0 on broadcast dims):
        // no per-element index vectors, single pass over the output. The
        // stride/index scratch lives on the stack (rank ≤ MAX_RANK).
        let rank = out_shape.len();
        let n = numel(&out_shape);
        let mut data = Storage::uninit(n);
        shape::with_dims(3 * rank, |scratch| {
            let (sa, rest) = scratch.split_at_mut(rank);
            let (sb, idx) = rest.split_at_mut(rank);
            broadcast_strides_into(&self.shape, &out_shape, sa);
            broadcast_strides_into(&other.shape, &out_shape, sb);
            let mut oa = 0usize;
            let mut ob = 0usize;
            for out in data.iter_mut() {
                *out = f(self.data[oa], other.data[ob]);
                // Advance the odometer, updating offsets incrementally.
                for d in (0..rank).rev() {
                    idx[d] += 1;
                    oa += sa[d];
                    ob += sb[d];
                    if idx[d] < out_shape[d] {
                        break;
                    }
                    oa -= sa[d] * idx[d];
                    ob -= sb[d] * idx[d];
                    idx[d] = 0;
                }
            }
        });
        Tensor { shape: out_shape, data }
    }

    /// In-place elementwise addition of a same-shape tensor; the
    /// allocation-free gradient-accumulation path (bit-identical to
    /// `self.add(other)` for equal shapes).
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Elementwise addition (broadcasting).
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise subtraction (broadcasting).
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise multiplication (broadcasting).
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// Elementwise division (broadcasting).
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a / b)
    }

    /// Scales every element.
    pub fn scale(&self, s: f64) -> Tensor {
        self.map(|x| x * s)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all elements. Zero for empty tensors.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Maximum element. `NEG_INFINITY` for empty tensors.
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum element. `INFINITY` for empty tensors.
    pub fn min(&self) -> f64 {
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// 2-D matrix multiplication: `(n,k) x (k,m) -> (n,m)`.
    ///
    /// Row-blocked across the [`crate::par`] worker pool and cache-blocked
    /// over `k`. Every output element accumulates over `k` in ascending
    /// order regardless of blocking or thread count, so results are
    /// bit-identical from `PPN_THREADS=1` to any pool size.
    ///
    /// # Panics
    /// Panics unless both operands are rank 2 with matching inner dims.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul lhs rank {:?}", self.shape);
        assert_eq!(other.rank(), 2, "matmul rhs rank {:?}", other.shape);
        let (n, k) = (self.shape[0], self.shape[1]);
        let (k2, m) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dims {:?} x {:?}", self.shape, other.shape);
        let timer = kernel_timer();
        let mut out = Storage::zeroed(n * m);
        let a = &self.data[..];
        let b = &other.data[..];
        let rows_per_chunk = matmul_rows_per_chunk(n, k, m);
        crate::par::par_chunks_mut(&mut out, (rows_per_chunk * m).max(1), |ci, block| {
            matmul_rows(a, b, ci * rows_per_chunk, block, k, m);
        });
        observe_kernel_ms("tensor.matmul_ms", timer);
        Tensor { shape: vec![n, m], data: out }
    }

    /// 2-D transpose.
    ///
    /// # Panics
    /// Panics unless the tensor is rank 2.
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "transpose2 on {:?}", self.shape);
        let (n, m) = (self.shape[0], self.shape[1]);
        let mut out = Storage::uninit(n * m);
        for i in 0..n {
            for j in 0..m {
                out[j * n + i] = self.data[i * m + j];
            }
        }
        Tensor { shape: vec![m, n], data: out }
    }

    /// General axis permutation. `perm` must be a permutation of `0..rank`.
    pub fn permute(&self, perm: &[usize]) -> Tensor {
        assert_eq!(perm.len(), self.rank(), "permute {:?} on {:?}", perm, self.shape);
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            assert!(p < perm.len() && !seen[p], "invalid permutation {perm:?}");
            seen[p] = true;
        }
        let rank = perm.len();
        let out_shape: Vec<usize> = perm.iter().map(|&p| self.shape[p]).collect();
        // Walk the output in order; the source offset follows an odometer
        // with strides permuted from the input layout. All stride/index
        // scratch is stack-allocated.
        let n = self.data.len();
        let mut data = Storage::uninit(n);
        shape::with_dims(3 * rank, |scratch| {
            let (in_strides, rest) = scratch.split_at_mut(rank);
            let (src_strides, idx) = rest.split_at_mut(rank);
            shape::strides_into(&self.shape, in_strides);
            for (d, &p) in perm.iter().enumerate() {
                src_strides[d] = in_strides[p];
            }
            let mut off = 0usize;
            for out in data.iter_mut() {
                *out = self.data[off];
                for d in (0..rank).rev() {
                    idx[d] += 1;
                    off += src_strides[d];
                    if idx[d] < out_shape[d] {
                        break;
                    }
                    off -= src_strides[d] * idx[d];
                    idx[d] = 0;
                }
            }
        });
        Tensor { shape: out_shape, data }
    }

    /// Reduces one axis by summation, removing it from the shape.
    pub fn sum_axis(&self, axis: usize) -> Tensor {
        assert!(axis < self.rank(), "sum_axis {axis} on {:?}", self.shape);
        let mut out_shape = self.shape.clone();
        out_shape.remove(axis);
        let outer: usize = self.shape[..axis].iter().product();
        let mid = self.shape[axis];
        let inner: usize = self.shape[axis + 1..].iter().product();
        let mut out = Storage::zeroed(outer * inner);
        for o in 0..outer {
            for m in 0..mid {
                let src = &self.data[(o * mid + m) * inner..(o * mid + m + 1) * inner];
                let dst = &mut out[o * inner..(o + 1) * inner];
                for (d, s) in dst.iter_mut().zip(src) {
                    *d += s;
                }
            }
        }
        Tensor { shape: out_shape, data: out }
    }

    /// L1 norm of the whole buffer.
    pub fn l1_norm(&self) -> f64 {
        self.data.iter().map(|x| x.abs()).sum()
    }

    /// L2 norm of the whole buffer.
    pub fn l2_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// True when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Sums this tensor down to `target` shape, inverting a broadcast: the
    /// gradient counterpart of [`Tensor::zip`]'s broadcasting.
    ///
    /// # Panics
    /// Panics if `target` does not broadcast to this tensor's shape.
    pub fn reduce_broadcast(&self, target: &[usize]) -> Tensor {
        if self.shape == target {
            return self.clone();
        }
        assert_eq!(
            broadcast(target, &self.shape).as_deref(),
            Some(&self.shape[..]),
            "reduce_broadcast {:?} -> {target:?}",
            self.shape
        );
        let rank = self.shape.len();
        let mut out = Storage::zeroed(numel(target));
        shape::with_dims(2 * rank, |scratch| {
            let (st, idx) = scratch.split_at_mut(rank);
            broadcast_strides_into(target, &self.shape, st);
            let mut off = 0usize;
            for &v in self.data.iter() {
                out[off] += v;
                for d in (0..rank).rev() {
                    idx[d] += 1;
                    off += st[d];
                    if idx[d] < self.shape[d] {
                        break;
                    }
                    off -= st[d] * idx[d];
                    idx[d] = 0;
                }
            }
        });
        Tensor { shape: target.to_vec(), data: out }
    }

    /// Max absolute difference against another tensor of the same shape.
    pub fn max_abs_diff(&self, other: &Tensor) -> f64 {
        assert_eq!(self.shape, other.shape);
        self.data.iter().zip(other.data.iter()).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max)
    }
}

/// Histogram buckets (milliseconds) shared by the per-kernel timers.
pub(crate) const KERNEL_MS_BUCKETS: [f64; 9] = [0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0];

/// Starts a wall-clock timer when the metrics registry is live; `None`
/// keeps the disabled path free of even the `Instant::now` call.
pub(crate) fn kernel_timer() -> Option<std::time::Instant> {
    ppn_obs::metrics_enabled().then(ppn_obs::clock::now)
}

/// Records a kernel duration (in ms) into the named `ppn_obs` histogram.
pub(crate) fn observe_kernel_ms(name: &str, timer: Option<std::time::Instant>) {
    if let Some(t0) = timer {
        ppn_obs::histogram(name, &KERNEL_MS_BUCKETS).observe(t0.elapsed().as_secs_f64() * 1e3);
    }
}

/// Work below this many flops stays on the calling thread: scoped-spawn
/// overhead (tens of microseconds) would dominate the kernel itself.
pub(crate) const PAR_MIN_FLOPS: usize = 1 << 16;

/// Output rows per pool chunk: the whole matrix when the problem is too
/// small to parallelise, otherwise ~4 chunks per worker for load balance.
fn matmul_rows_per_chunk(n: usize, k: usize, m: usize) -> usize {
    let flops = 2usize.saturating_mul(n).saturating_mul(k).saturating_mul(m);
    let t = crate::par::threads();
    if t <= 1 || flops < PAR_MIN_FLOPS {
        return n.max(1);
    }
    n.div_ceil(t * 4).max(1)
}

/// Computes output rows `i0..` of `a (n,k) × b (k,m)` into `out_block`
/// (`rows × m`, row-major), i-k-j order with two levels of blocking:
///
/// * `k` is tiled (`K_TILE`) so a panel of `b` stays cache-hot across the
///   row sweep,
/// * rows are processed four at a time so each loaded `b` row feeds four
///   accumulator rows ([`crate::simd::axpy4`]), which keeps the unit-stride
///   inner loop register-bound instead of load-bound.
///
/// Every output element still accumulates over `k` in ascending order —
/// blocking only reorders *which element* is updated next, never the term
/// order within an element — so results are bit-identical to the naive
/// triple loop at any block size, thread count, or SIMD setting.
fn matmul_rows(a: &[f64], b: &[f64], i0: usize, out_block: &mut [f64], k: usize, m: usize) {
    const K_TILE: usize = 64;
    if m == 0 {
        return;
    }
    // One dispatch decision per row block, hoisted out of the k-tile loops.
    let simd = crate::simd::Dispatch::capture();
    let rows = out_block.len() / m;
    let mut kb = 0;
    while kb < k {
        let ke = (kb + K_TILE).min(k);
        let mut r = 0;
        while r + 4 <= rows {
            // Four disjoint output rows, one shared b panel.
            let (quad, _) = out_block[r * m..].split_at_mut(4 * m);
            let (o0, rest) = quad.split_at_mut(m);
            let (o1, rest) = rest.split_at_mut(m);
            let (o2, o3) = rest.split_at_mut(m);
            let a0 = &a[(i0 + r) * k..(i0 + r + 1) * k];
            let a1 = &a[(i0 + r + 1) * k..(i0 + r + 2) * k];
            let a2 = &a[(i0 + r + 2) * k..(i0 + r + 3) * k];
            let a3 = &a[(i0 + r + 3) * k..(i0 + r + 4) * k];
            for kk in kb..ke {
                let brow = &b[kk * m..(kk + 1) * m];
                simd.axpy4(
                    [&mut *o0, &mut *o1, &mut *o2, &mut *o3],
                    brow,
                    [a0[kk], a1[kk], a2[kk], a3[kk]],
                );
            }
            r += 4;
        }
        while r < rows {
            let arow = &a[(i0 + r) * k..(i0 + r + 1) * k];
            let orow = &mut out_block[r * m..(r + 1) * m];
            for kk in kb..ke {
                simd.axpy(orow, &b[kk * m..(kk + 1) * m], arow[kk]);
            }
            r += 1;
        }
        kb = ke;
    }
}

// Manual serde impls (the derive macro only handles Vec-backed fields):
// same JSON shape as the old `#[derive]` — `{"shape":[...],"data":[...]}` —
// so existing checkpoints round-trip unchanged.
impl Serialize for Tensor {
    fn serialize(&self, s: &mut Ser) {
        s.begin_obj();
        s.key("shape");
        self.shape.serialize(s);
        s.key("data");
        s.begin_arr();
        for &v in self.data.iter() {
            s.elem();
            s.write_f64(v);
        }
        s.end_arr();
        s.end_obj();
    }
}

impl Deserialize for Tensor {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let shape = Vec::<usize>::deserialize(v.field("shape")?)?;
        let data = Vec::<f64>::deserialize(v.field("data")?)?;
        if numel(&shape) != data.len() {
            return Err(Error::msg(format!(
                "tensor shape {:?} wants {} elements, got {}",
                shape,
                numel(&shape),
                data.len()
            )));
        }
        Ok(Tensor { shape, data: Storage::from_slice(&data) })
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.data.len() <= 16 {
            write!(f, " {:?}", self.data)
        } else {
            write!(f, " [{:.4}, {:.4}, …; n={}]", self.data[0], self.data[1], self.data.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.at(&[1, 2]), 6.0);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(Tensor::scalar(7.0).item(), 7.0);
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn from_vec_len_mismatch_panics() {
        let _ = Tensor::from_vec(&[2, 2], vec![1.0]);
    }

    #[test]
    fn broadcasting_add() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let row = Tensor::from_vec(&[3], vec![10., 20., 30.]);
        let r = a.add(&row);
        assert_eq!(r.data(), &[11., 22., 33., 14., 25., 36.]);
        let col = Tensor::from_vec(&[2, 1], vec![100., 200.]);
        let r = a.add(&col);
        assert_eq!(r.data(), &[101., 102., 103., 204., 205., 206.]);
    }

    #[test]
    fn matmul_matches_manual() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(&[3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(&[2, 2], vec![1., 2., 3., 4.]);
        let i = Tensor::from_vec(&[2, 2], vec![1., 0., 0., 1.]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose2().transpose2(), a);
        assert_eq!(a.transpose2().at(&[2, 1]), 6.0);
    }

    #[test]
    fn permute_matches_transpose() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.permute(&[1, 0]), a.transpose2());
        let b = Tensor::from_vec(&[1, 2, 3], (0..6).map(|x| x as f64).collect());
        let p = b.permute(&[2, 0, 1]);
        assert_eq!(p.shape(), &[3, 1, 2]);
        assert_eq!(p.at(&[2, 0, 1]), b.at(&[0, 1, 2]));
    }

    #[test]
    fn sum_axis_reduces() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.sum_axis(0).data(), &[5., 7., 9.]);
        assert_eq!(a.sum_axis(1).data(), &[6., 15.]);
        assert_eq!(a.sum_axis(1).sum_axis(0).item(), 21.0);
    }

    #[test]
    fn randn_statistics() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = Tensor::randn(&mut rng, &[10_000], 1.0);
        assert!(t.mean().abs() < 0.05, "mean {}", t.mean());
        let var = t.map(|x| x * x).mean() - t.mean() * t.mean();
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn norms() {
        let t = Tensor::from_vec(&[3], vec![3.0, -4.0, 0.0]);
        assert_eq!(t.l1_norm(), 7.0);
        assert_eq!(t.l2_norm(), 5.0);
    }
}
