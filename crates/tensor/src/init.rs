//! Weight initialisers.

use crate::tensor::Tensor;
use rand::Rng;

/// Xavier/Glorot-uniform initialisation for a `(fan_in, fan_out)` matrix
/// shape. For convolution kernels pass the receptive-field-adjusted fans.
pub fn xavier_uniform<R: Rng>(
    rng: &mut R,
    shape: &[usize],
    fan_in: usize,
    fan_out: usize,
) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out) as f64).sqrt();
    let n: usize = shape.iter().product();
    let data = (0..n).map(|_| rng.gen_range(-limit..limit)).collect();
    Tensor::from_vec(shape, data)
}

/// He-normal initialisation (for ReLU stacks).
pub fn he_normal<R: Rng>(rng: &mut R, shape: &[usize], fan_in: usize) -> Tensor {
    Tensor::randn(rng, shape, (2.0 / fan_in as f64).sqrt())
}

/// Fans for an OIHW convolution kernel.
pub fn conv_fans(shape: &[usize]) -> (usize, usize) {
    assert_eq!(shape.len(), 4);
    let rf = shape[2] * shape[3];
    (shape[1] * rf, shape[0] * rf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_within_limit() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = xavier_uniform(&mut rng, &[50, 50], 50, 50);
        let limit = (6.0f64 / 100.0).sqrt();
        assert!(t.data().iter().all(|&x| x.abs() <= limit));
        assert!(t.mean().abs() < 0.02);
    }

    #[test]
    fn he_normal_scale() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = he_normal(&mut rng, &[10_000], 8);
        let var = t.map(|x| x * x).mean();
        assert!((var - 0.25).abs() < 0.02, "var {var}");
    }

    #[test]
    fn conv_fan_computation() {
        assert_eq!(conv_fans(&[8, 4, 1, 3]), (12, 24));
    }
}
