//! Convolution layer wrappers used by the correlation information net.
//!
//! [`Conv2dLayer`] owns an OIHW kernel plus per-channel bias; the padding
//! presets ([`ConvKind`]) encode the three convolution flavours of the
//! paper's Table 2: dilated causal (DCONV), correlational SAME over assets
//! (CCONV), and VALID (Conv4 / decision convolutions).

use crate::conv::{causal_padding, same_padding, Padding};
use crate::graph::{Graph, NodeId};
use crate::init::{conv_fans, xavier_uniform};
use crate::optim::{Binding, ParamId, ParamStore};
use crate::tensor::Tensor;
use rand::Rng;

/// Padding flavour for a [`Conv2dLayer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConvKind {
    /// Causal over the time (W) axis, no padding over assets (H): the DCONV
    /// of §4.3.1. Keeps W fixed, requires KH = 1.
    DilatedCausal,
    /// SAME over the asset (H) axis, no padding over time: the CCONV of
    /// §4.3.2. Keeps H fixed, requires KW = 1.
    CorrelationalSame,
    /// No padding (VALID): Conv4 and the 1×1 decision convolution.
    Valid,
}

/// A stride-1 convolution with bias.
pub struct Conv2dLayer {
    w: ParamId, // (Cout, Cin, KH, KW)
    b: ParamId, // (Cout, 1, 1) — broadcasts over (B, Cout, H', W')
    kind: ConvKind,
    dilation: (usize, usize),
    kh: usize,
    kw: usize,
}

impl Conv2dLayer {
    /// Registers kernel/bias under `name.{w,b}`.
    #[allow(clippy::too_many_arguments)] // mirrors the paper's Table 2 layer spec
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        rng: &mut R,
        name: &str,
        c_in: usize,
        c_out: usize,
        kernel: (usize, usize),
        dilation: (usize, usize),
        kind: ConvKind,
    ) -> Self {
        let (kh, kw) = kernel;
        match kind {
            ConvKind::DilatedCausal => assert_eq!(kh, 1, "DCONV kernels are 1×k"),
            ConvKind::CorrelationalSame => assert_eq!(kw, 1, "CCONV kernels are m×1"),
            ConvKind::Valid => {}
        }
        let shape = [c_out, c_in, kh, kw];
        let (fan_in, fan_out) = conv_fans(&shape);
        let w = store.add(format!("{name}.w"), xavier_uniform(rng, &shape, fan_in, fan_out));
        let b = store.add(format!("{name}.b"), Tensor::zeros(&[c_out, 1, 1]));
        Conv2dLayer { w, b, kind, dilation, kh, kw }
    }

    /// Effective padding for an input of the layer's kind.
    pub fn padding(&self) -> Padding {
        match self.kind {
            ConvKind::DilatedCausal => {
                let (pl, pr) = causal_padding(self.kw, self.dilation.1);
                (0, 0, pl, pr)
            }
            ConvKind::CorrelationalSame => {
                let (pt, pb) = same_padding(self.kh, self.dilation.0);
                (pt, pb, 0, 0)
            }
            ConvKind::Valid => (0, 0, 0, 0),
        }
    }

    /// Applies convolution + bias to `x` of shape `(B, C_in, H, W)`.
    pub fn forward(&self, g: &mut Graph, bind: &Binding, x: NodeId) -> NodeId {
        let y = g.conv2d(x, bind.node(self.w), self.dilation, self.padding());
        g.add(y, bind.node(self.b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layer(
        kind: ConvKind,
        kernel: (usize, usize),
        dil: (usize, usize),
    ) -> (ParamStore, Conv2dLayer) {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let l = Conv2dLayer::new(&mut store, &mut rng, "c", 4, 8, kernel, dil, kind);
        (store, l)
    }

    #[test]
    fn dconv_preserves_time_axis() {
        let (store, l) = layer(ConvKind::DilatedCausal, (1, 3), (1, 4));
        let mut g = Graph::new();
        let bind = store.bind(&mut g);
        let x = g.leaf(Tensor::zeros(&[2, 4, 5, 30]));
        let y = l.forward(&mut g, &bind, x);
        assert_eq!(g.value(y).shape(), &[2, 8, 5, 30]);
    }

    #[test]
    fn cconv_preserves_asset_axis() {
        let (store, l) = {
            let mut rng = StdRng::seed_from_u64(0);
            let mut store = ParamStore::new();
            let l = Conv2dLayer::new(
                &mut store,
                &mut rng,
                "c",
                4,
                8,
                (5, 1),
                (1, 1),
                ConvKind::CorrelationalSame,
            );
            (store, l)
        };
        let mut g = Graph::new();
        let bind = store.bind(&mut g);
        let x = g.leaf(Tensor::zeros(&[2, 4, 5, 30]));
        let y = l.forward(&mut g, &bind, x);
        assert_eq!(g.value(y).shape(), &[2, 8, 5, 30]);
    }

    #[test]
    fn valid_collapses_time() {
        let (store, l) = layer(ConvKind::Valid, (1, 30), (1, 1));
        let mut g = Graph::new();
        let bind = store.bind(&mut g);
        let x = g.leaf(Tensor::zeros(&[1, 4, 5, 30]));
        let y = l.forward(&mut g, &bind, x);
        assert_eq!(g.value(y).shape(), &[1, 8, 5, 1]);
    }
}
