//! Fully-connected layer.

use crate::graph::{Graph, NodeId};
use crate::init::xavier_uniform;
use crate::optim::{Binding, ParamId, ParamStore};
use crate::tensor::Tensor;
use rand::Rng;

/// `y = x·W + b` for `x` of shape `(B, in)`.
pub struct Dense {
    w: ParamId,
    b: ParamId,
    /// Input feature count.
    pub in_dim: usize,
    /// Output feature count.
    pub out_dim: usize,
}

impl Dense {
    /// Registers Xavier-initialised weights under `name.{w,b}`.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        rng: &mut R,
        name: &str,
        in_dim: usize,
        out_dim: usize,
    ) -> Self {
        let w = store
            .add(format!("{name}.w"), xavier_uniform(rng, &[in_dim, out_dim], in_dim, out_dim));
        let b = store.add(format!("{name}.b"), Tensor::zeros(&[out_dim]));
        Dense { w, b, in_dim, out_dim }
    }

    /// Applies the layer inside a bound graph.
    pub fn forward(&self, g: &mut Graph, bind: &Binding, x: NodeId) -> NodeId {
        let wx = g.matmul(x, bind.node(self.w));
        g.add(wx, bind.node(self.b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes_and_bias() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let layer = Dense::new(&mut store, &mut rng, "fc", 3, 5);
        let mut g = Graph::new();
        let bind = store.bind(&mut g);
        let x = g.leaf(Tensor::zeros(&[2, 3]));
        let y = layer.forward(&mut g, &bind, x);
        assert_eq!(g.value(y).shape(), &[2, 5]);
        // Zero input → output equals the bias (zeros at init).
        assert!(g.value(y).data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn trains_linear_regression() {
        use crate::optim::{Adam, Optimizer};
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let layer = Dense::new(&mut store, &mut rng, "fc", 2, 1);
        // Target function: y = 2 x0 - x1 + 0.5
        let xs = Tensor::randn(&mut rng, &[64, 2], 1.0);
        let ys: Vec<f64> = (0..64).map(|i| 2.0 * xs.at(&[i, 0]) - xs.at(&[i, 1]) + 0.5).collect();
        let yt = Tensor::from_vec(&[64, 1], ys);
        let mut opt = Adam::new(0.05);
        let mut last = f64::INFINITY;
        for _ in 0..300 {
            let mut g = Graph::new();
            let bind = store.bind(&mut g);
            let x = g.leaf(xs.clone());
            let y = layer.forward(&mut g, &bind, x);
            let t = g.leaf(yt.clone());
            let d = g.sub(y, t);
            let sq = g.square(d);
            let loss = g.mean(sq);
            g.backward(loss);
            last = g.value(loss).item();
            opt.step(&mut store, &bind.grads(&g));
        }
        assert!(last < 1e-4, "final loss {last}");
    }
}
