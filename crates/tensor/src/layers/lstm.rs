//! LSTM layer (Hochreiter & Schmidhuber 1997), the paper's *sequential
//! information net* backbone (§4.2).
//!
//! The PPN applies one shared LSTM to every asset's price series separately,
//! so callers fold the asset axis into the batch: input timesteps are
//! `(B·m, d)` and the final hidden state `(B·m, H)` is reshaped back to
//! `(B, m, H)` by the caller.

use crate::graph::{Graph, NodeId};
use crate::init::xavier_uniform;
use crate::optim::{Binding, ParamId, ParamStore};
use crate::tensor::Tensor;
use rand::Rng;

/// Single-layer LSTM with a fused `(i, f, ĉ, o)` gate matrix.
pub struct Lstm {
    w: ParamId, // (in, 4H)
    u: ParamId, // (H, 4H)
    b: ParamId, // (4H,)
    /// Input feature count per timestep.
    pub in_dim: usize,
    /// Hidden-state width.
    pub hidden: usize,
}

impl Lstm {
    /// Registers parameters under `name.{w,u,b}`. The forget-gate bias is
    /// initialised to 1 (standard trick for gradient flow on long windows).
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        rng: &mut R,
        name: &str,
        in_dim: usize,
        hidden: usize,
    ) -> Self {
        let w = store
            .add(format!("{name}.w"), xavier_uniform(rng, &[in_dim, 4 * hidden], in_dim, hidden));
        let u = store
            .add(format!("{name}.u"), xavier_uniform(rng, &[hidden, 4 * hidden], hidden, hidden));
        let mut bias = Tensor::zeros(&[4 * hidden]);
        for j in hidden..2 * hidden {
            bias.data_mut()[j] = 1.0; // forget gate
        }
        let b = store.add(format!("{name}.b"), bias);
        Lstm { w, u, b, in_dim, hidden }
    }

    /// Runs the recurrence over `xs` (one `(B, in)` node per timestep) and
    /// returns the final hidden state `(B, H)`.
    ///
    /// # Panics
    /// Panics if `xs` is empty.
    pub fn forward(&self, g: &mut Graph, bind: &Binding, xs: &[NodeId]) -> NodeId {
        assert!(!xs.is_empty(), "LSTM needs at least one timestep");
        let batch = g.value(xs[0]).shape()[0];
        let h0 = g.leaf(Tensor::zeros(&[batch, self.hidden]));
        let c0 = g.leaf(Tensor::zeros(&[batch, self.hidden]));
        let (h, _c) = self.forward_from(g, bind, xs, h0, c0);
        h
    }

    /// Recurrence with explicit initial state; returns `(h_T, c_T)`.
    pub fn forward_from(
        &self,
        g: &mut Graph,
        bind: &Binding,
        xs: &[NodeId],
        h0: NodeId,
        c0: NodeId,
    ) -> (NodeId, NodeId) {
        let hn = self.hidden;
        let (wn, un, bn) = (bind.node(self.w), bind.node(self.u), bind.node(self.b));
        let mut h = h0;
        let mut c = c0;
        for &x in xs {
            let xw = g.matmul(x, wn);
            let hu = g.matmul(h, un);
            let z0 = g.add(xw, hu);
            let z = g.add(z0, bn); // (B, 4H)
            let zi = g.slice(z, 1, 0, hn);
            let zf = g.slice(z, 1, hn, 2 * hn);
            let zc = g.slice(z, 1, 2 * hn, 3 * hn);
            let zo = g.slice(z, 1, 3 * hn, 4 * hn);
            let i = g.sigmoid(zi);
            let f = g.sigmoid(zf);
            let chat = g.tanh(zc);
            let o = g.sigmoid(zo);
            let fc = g.mul(f, c);
            let ic = g.mul(i, chat);
            c = g.add(fc, ic);
            let tc = g.tanh(c);
            h = g.mul(o, tc);
        }
        (h, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Optimizer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn steps(g: &mut Graph, data: &[Tensor]) -> Vec<NodeId> {
        data.iter().map(|t| g.leaf(t.clone())).collect()
    }

    #[test]
    fn output_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let lstm = Lstm::new(&mut store, &mut rng, "lstm", 4, 16);
        let mut g = Graph::new();
        let bind = store.bind(&mut g);
        let xs: Vec<Tensor> = (0..30).map(|_| Tensor::randn(&mut rng, &[3, 4], 1.0)).collect();
        let ids = steps(&mut g, &xs);
        let h = lstm.forward(&mut g, &bind, &ids);
        assert_eq!(g.value(h).shape(), &[3, 16]);
        assert!(g.value(h).data().iter().all(|v| v.abs() <= 1.0), "h bounded by tanh");
    }

    #[test]
    fn longer_history_changes_state() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let lstm = Lstm::new(&mut store, &mut rng, "lstm", 2, 8);
        let xs: Vec<Tensor> = (0..5).map(|_| Tensor::randn(&mut rng, &[1, 2], 1.0)).collect();
        let run = |n: usize| {
            let mut g = Graph::new();
            let bind = store.bind(&mut g);
            let ids = steps(&mut g, &xs[..n]);
            let h = lstm.forward(&mut g, &bind, &ids);
            g.value(h).clone()
        };
        assert!(run(5).max_abs_diff(&run(1)) > 1e-6);
    }

    #[test]
    fn learns_to_memorise_first_input() {
        // Task: output the sign of the first timestep's first feature after
        // a short sequence of noise — needs the cell memory to work.
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let lstm = Lstm::new(&mut store, &mut rng, "lstm", 1, 8);
        let head = crate::layers::dense::Dense::new(&mut store, &mut rng, "head", 8, 1);
        let mut opt = Adam::new(0.02);
        let seq_len = 6;
        let batch = 16;
        let mut final_loss = f64::INFINITY;
        for _ in 0..250 {
            // First step carries the signal; the rest is small noise.
            let signal: Vec<f64> =
                (0..batch).map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 }).collect();
            let mut seq = vec![Tensor::from_vec(&[batch, 1], signal.clone())];
            for _ in 1..seq_len {
                seq.push(Tensor::randn(&mut rng, &[batch, 1], 0.1));
            }
            let target = Tensor::from_vec(&[batch, 1], signal);
            let mut g = Graph::new();
            let bind = store.bind(&mut g);
            let ids = steps(&mut g, &seq);
            let h = lstm.forward(&mut g, &bind, &ids);
            let y = head.forward(&mut g, &bind, h);
            let t = g.leaf(target);
            let d = g.sub(y, t);
            let sq = g.square(d);
            let loss = g.mean(sq);
            g.backward(loss);
            final_loss = g.value(loss).item();
            opt.step(&mut store, &bind.grads(&g));
        }
        assert!(final_loss < 0.2, "memorisation loss {final_loss}");
    }
}
