//! Reusable network layers built on the autodiff graph.

pub mod conv;
pub mod dense;
pub mod lstm;

pub use conv::{Conv2dLayer, ConvKind};
pub use dense::Dense;
pub use lstm::Lstm;
