//! 2-D convolution kernels (forward and backward) used by the graph.
//!
//! Layout is NCHW: input `(B, C_in, H, W)`, kernel `(C_out, C_in, KH, KW)`.
//! Stride is fixed at 1 — the PPN architecture (Table 2 of the paper) only
//! uses stride-1 convolutions. Dilation and asymmetric zero padding are
//! supported because the paper's blocks need:
//!
//! * **DCONV** — dilated *causal* convolution over the time axis (left-pad
//!   only, so no information leaks from the future to the past, §4.3.1);
//! * **CCONV** — *correlational* convolution over the asset axis with SAME
//!   padding (kernel height = m, §4.3.2);
//! * **Conv4 / decision conv** — VALID `1×k` and `1×1` convolutions.

use crate::tensor::Tensor;

/// Dilation factors `(dh, dw)` for the two spatial axes.
pub type Dilation = (usize, usize);

/// Zero padding `(top, bottom, left, right)` on the spatial axes.
pub type Padding = (usize, usize, usize, usize);

/// Output spatial size for one axis.
///
/// `None` when the effective kernel extent exceeds the padded input.
pub fn out_dim(
    input: usize,
    kernel: usize,
    dilation: usize,
    pad_lo: usize,
    pad_hi: usize,
) -> Option<usize> {
    let eff = dilation * (kernel - 1) + 1;
    let padded = input + pad_lo + pad_hi;
    padded.checked_sub(eff).map(|d| d + 1)
}

/// Padding that keeps the axis length unchanged under SAME semantics
/// (asymmetric when the effective kernel extent is even).
pub fn same_padding(kernel: usize, dilation: usize) -> (usize, usize) {
    let eff = dilation * (kernel - 1) + 1;
    ((eff - 1) / 2, eff / 2)
}

/// Causal padding for the time axis: everything on the left.
pub fn causal_padding(kernel: usize, dilation: usize) -> (usize, usize) {
    (dilation * (kernel - 1), 0)
}

/// Forward convolution. Returns `(B, C_out, H', W')`.
///
/// # Panics
/// Panics on rank/channel mismatches or when the kernel does not fit.
pub fn conv2d_forward(x: &Tensor, w: &Tensor, dilation: Dilation, pad: Padding) -> Tensor {
    assert_eq!(x.rank(), 4, "conv input must be NCHW, got {:?}", x.shape());
    assert_eq!(w.rank(), 4, "conv kernel must be OIHW, got {:?}", w.shape());
    let (b, cin, h, wid) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (cout, cin2, kh, kw) = (w.shape()[0], w.shape()[1], w.shape()[2], w.shape()[3]);
    assert_eq!(cin, cin2, "conv channels: input {cin} vs kernel {cin2}");
    let (dh, dw) = dilation;
    let (pt, pb, pl, pr) = pad;
    let oh = out_dim(h, kh, dh, pt, pb).unwrap_or_else(|| {
        // ppn-check: allow(no-panic) documented precondition — see `# Panics` above
        panic!("kernel {kh}x{kw} (dil {dh},{dw}) too large for H={h} pad=({pt},{pb})")
    });
    let ow = out_dim(wid, kw, dw, pl, pr).unwrap_or_else(|| {
        // ppn-check: allow(no-panic) documented precondition — see `# Panics` above
        panic!("kernel {kh}x{kw} (dil {dh},{dw}) too large for W={wid} pad=({pl},{pr})")
    });

    let xd = x.data();
    let wd = w.data();
    let mut out = vec![0.0; b * cout * oh * ow];

    let x_stride_b = cin * h * wid;
    let x_stride_c = h * wid;
    let w_stride_o = cin * kh * kw;
    let w_stride_c = kh * kw;
    let o_stride_b = cout * oh * ow;
    let o_stride_c = oh * ow;

    // Tap-major loops with hoisted padding bounds: the innermost loop is a
    // contiguous branch-free AXPY over the output row.
    for bi in 0..b {
        for oc in 0..cout {
            let out_block = bi * o_stride_b + oc * o_stride_c;
            for ic in 0..cin {
                let x_block = bi * x_stride_b + ic * x_stride_c;
                let w_block = oc * w_stride_o + ic * w_stride_c;
                for ky in 0..kh {
                    let iy_off = (ky * dh) as isize - pt as isize;
                    let oy_lo = (-iy_off).max(0) as usize;
                    let oy_hi = ((h as isize - iy_off).min(oh as isize)).max(0) as usize;
                    for kx in 0..kw {
                        let wv = wd[w_block + ky * kw + kx];
                        if crate::approx::is_zero(wv) {
                            continue;
                        }
                        let ix_off = (kx * dw) as isize - pl as isize;
                        let ox_lo = (-ix_off).max(0) as usize;
                        let ox_hi = ((wid as isize - ix_off).min(ow as isize)).max(0) as usize;
                        if ox_lo >= ox_hi {
                            continue;
                        }
                        let n = ox_hi - ox_lo;
                        let ix_lo = (ox_lo as isize + ix_off) as usize;
                        for oy in oy_lo..oy_hi {
                            let iy = (oy as isize + iy_off) as usize;
                            let xs = &xd[x_block + iy * wid + ix_lo..][..n];
                            let os = &mut out[out_block + oy * ow + ox_lo..][..n];
                            for (o, &xv) in os.iter_mut().zip(xs) {
                                *o += wv * xv;
                            }
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(&[b, cout, oh, ow], out)
}

/// Backward pass: returns `(grad_x, grad_w)` given the upstream gradient
/// `grad_out` of shape `(B, C_out, H', W')`.
pub fn conv2d_backward(
    x: &Tensor,
    w: &Tensor,
    grad_out: &Tensor,
    dilation: Dilation,
    pad: Padding,
) -> (Tensor, Tensor) {
    let (b, cin, h, wid) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (cout, _, kh, kw) = (w.shape()[0], w.shape()[1], w.shape()[2], w.shape()[3]);
    let (dh, dw) = dilation;
    let (pt, _, pl, _) = pad;
    let (oh, ow) = (grad_out.shape()[2], grad_out.shape()[3]);

    let xd = x.data();
    let wd = w.data();
    let gd = grad_out.data();
    let mut gx = vec![0.0; xd.len()];
    let mut gw = vec![0.0; wd.len()];

    let x_stride_b = cin * h * wid;
    let x_stride_c = h * wid;
    let w_stride_o = cin * kh * kw;
    let w_stride_c = kh * kw;
    let o_stride_b = cout * oh * ow;
    let o_stride_c = oh * ow;

    // Same tap-major structure as the forward pass: contiguous inner loops,
    // padding bounds hoisted out.
    for bi in 0..b {
        for oc in 0..cout {
            let g_block = bi * o_stride_b + oc * o_stride_c;
            for ic in 0..cin {
                let x_block = bi * x_stride_b + ic * x_stride_c;
                let w_block = oc * w_stride_o + ic * w_stride_c;
                for ky in 0..kh {
                    let iy_off = (ky * dh) as isize - pt as isize;
                    let oy_lo = (-iy_off).max(0) as usize;
                    let oy_hi = ((h as isize - iy_off).min(oh as isize)).max(0) as usize;
                    for kx in 0..kw {
                        let woff = w_block + ky * kw + kx;
                        let wv = wd[woff];
                        let ix_off = (kx * dw) as isize - pl as isize;
                        let ox_lo = (-ix_off).max(0) as usize;
                        let ox_hi = ((wid as isize - ix_off).min(ow as isize)).max(0) as usize;
                        if ox_lo >= ox_hi {
                            continue;
                        }
                        let n = ox_hi - ox_lo;
                        let ix_lo = (ox_lo as isize + ix_off) as usize;
                        let mut w_acc = 0.0;
                        for oy in oy_lo..oy_hi {
                            let iy = (oy as isize + iy_off) as usize;
                            let grow = &gd[g_block + oy * ow + ox_lo..][..n];
                            let xrow_base = x_block + iy * wid + ix_lo;
                            let gxrow = &mut gx[xrow_base..][..n];
                            let xrow = &xd[xrow_base..][..n];
                            for ((gxv, &g), &xv) in gxrow.iter_mut().zip(grow).zip(xrow) {
                                *gxv += g * wv;
                                w_acc += g * xv;
                            }
                        }
                        gw[woff] += w_acc;
                    }
                }
            }
        }
    }
    (Tensor::from_vec(x.shape(), gx), Tensor::from_vec(w.shape(), gw))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_dims() {
        assert_eq!(out_dim(30, 3, 1, 2, 0), Some(30)); // causal k=3 d=1
        assert_eq!(out_dim(30, 3, 4, 8, 0), Some(30)); // causal k=3 d=4
        assert_eq!(out_dim(30, 30, 1, 0, 0), Some(1)); // valid 1xk collapse
        assert_eq!(out_dim(3, 5, 1, 0, 0), None);
    }

    #[test]
    fn same_and_causal_padding() {
        assert_eq!(same_padding(3, 1), (1, 1));
        assert_eq!(same_padding(4, 1), (1, 2));
        assert_eq!(causal_padding(3, 4), (8, 0));
    }

    #[test]
    fn identity_kernel_passthrough() {
        let x = Tensor::from_vec(&[1, 1, 2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let w = Tensor::from_vec(&[1, 1, 1, 1], vec![1.0]);
        let y = conv2d_forward(&x, &w, (1, 1), (0, 0, 0, 0));
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn known_1d_convolution() {
        // x = [1,2,3,4], kernel [1,1] valid → moving sums [3,5,7].
        let x = Tensor::from_vec(&[1, 1, 1, 4], vec![1., 2., 3., 4.]);
        let w = Tensor::from_vec(&[1, 1, 1, 2], vec![1., 1.]);
        let y = conv2d_forward(&x, &w, (1, 1), (0, 0, 0, 0));
        assert_eq!(y.shape(), &[1, 1, 1, 3]);
        assert_eq!(y.data(), &[3., 5., 7.]);
    }

    #[test]
    fn causal_no_future_leakage() {
        // With causal padding, output[t] must not depend on input[t+1..].
        let mut x1 = vec![1., 2., 3., 4., 5.];
        let x2 = {
            let mut v = x1.clone();
            v[4] = 100.0; // change only the last element
            v
        };
        let w = Tensor::from_vec(&[1, 1, 1, 3], vec![0.5, -1.0, 2.0]);
        let (pl, pr) = causal_padding(3, 1);
        let y1 = conv2d_forward(
            &Tensor::from_vec(&[1, 1, 1, 5], x1.clone()),
            &w,
            (1, 1),
            (0, 0, pl, pr),
        );
        let y2 = conv2d_forward(&Tensor::from_vec(&[1, 1, 1, 5], x2), &w, (1, 1), (0, 0, pl, pr));
        // First four outputs identical, only the last may differ.
        for t in 0..4 {
            assert_eq!(y1.data()[t], y2.data()[t], "leakage at t={t}");
        }
        assert_ne!(y1.data()[4], y2.data()[4]);
        x1[0] = 0.0; // silence unused-mut lint paranoia
        let _ = x1;
    }

    #[test]
    fn dilated_receptive_field() {
        // k=3, d=2, causal: output[t] sees t, t-2, t-4.
        let x = Tensor::from_vec(&[1, 1, 1, 6], vec![1., 0., 0., 0., 0., 1.]);
        let w = Tensor::from_vec(&[1, 1, 1, 3], vec![1., 1., 1.]);
        let (pl, pr) = causal_padding(3, 2);
        let y = conv2d_forward(&x, &w, (1, 2), (0, 0, pl, pr));
        assert_eq!(y.shape(), &[1, 1, 1, 6]);
        // t=0: sees x[-4],x[-2],x[0] → 1. t=4: sees x[0],x[2],x[4] → 1.
        assert_eq!(y.data(), &[1., 0., 1., 0., 1., 1.]);
    }

    #[test]
    fn cconv_mixes_all_assets() {
        // Kernel height = m with SAME padding: every output row sees all rows.
        let m = 4;
        let x = Tensor::from_vec(&[1, 1, m, 1], vec![1., 2., 3., 4.]);
        let w = Tensor::from_vec(&[1, 1, m, 1], vec![1., 1., 1., 1.]);
        let (pt, pb) = same_padding(m, 1);
        let y = conv2d_forward(&x, &w, (1, 1), (pt, pb, 0, 0));
        assert_eq!(y.shape(), &[1, 1, m, 1]);
        // Row sums over the visible window (zero-padded outside).
        assert_eq!(y.data(), &[1. + 2. + 3., 10., 9., 3. + 4.]);
    }

    #[test]
    fn backward_matches_finite_difference() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(7);
        let x = Tensor::randn(&mut rng, &[2, 2, 3, 5], 1.0);
        let w = Tensor::randn(&mut rng, &[3, 2, 2, 3], 1.0);
        let dil = (1, 2);
        let pad = (1, 0, 4, 0);
        let y = conv2d_forward(&x, &w, dil, pad);
        // Loss = sum(y); upstream grad = ones.
        let gout = Tensor::ones(y.shape());
        let (gx, gw) = conv2d_backward(&x, &w, &gout, dil, pad);
        let eps = 1e-5;
        // Spot-check a handful of coordinates of both gradients.
        for &i in &[0usize, 7, 23, 41] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let fp = conv2d_forward(&xp, &w, dil, pad).sum();
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fm = conv2d_forward(&xm, &w, dil, pad).sum();
            let fd = (fp - fm) / (2.0 * eps);
            assert!((fd - gx.data()[i]).abs() < 1e-6, "gx[{i}]: fd={fd} ad={}", gx.data()[i]);
        }
        for &i in &[0usize, 5, 17, 31] {
            let mut wp = w.clone();
            wp.data_mut()[i] += eps;
            let fp = conv2d_forward(&x, &wp, dil, pad).sum();
            let mut wm = w.clone();
            wm.data_mut()[i] -= eps;
            let fm = conv2d_forward(&x, &wm, dil, pad).sum();
            let fd = (fp - fm) / (2.0 * eps);
            assert!((fd - gw.data()[i]).abs() < 1e-6, "gw[{i}]: fd={fd} ad={}", gw.data()[i]);
        }
    }
}
