//! 2-D convolution kernels (forward and backward) used by the graph.
//!
//! Layout is NCHW: input `(B, C_in, H, W)`, kernel `(C_out, C_in, KH, KW)`.
//! Stride is fixed at 1 — the PPN architecture (Table 2 of the paper) only
//! uses stride-1 convolutions. Dilation and asymmetric zero padding are
//! supported because the paper's blocks need:
//!
//! * **DCONV** — dilated *causal* convolution over the time axis (left-pad
//!   only, so no information leaks from the future to the past, §4.3.1);
//! * **CCONV** — *correlational* convolution over the asset axis with SAME
//!   padding (kernel height = m, §4.3.2);
//! * **Conv4 / decision conv** — VALID `1×k` and `1×1` convolutions.

use crate::storage::Storage;
use crate::tensor::Tensor;

/// Dilation factors `(dh, dw)` for the two spatial axes.
pub type Dilation = (usize, usize);

/// Zero padding `(top, bottom, left, right)` on the spatial axes.
pub type Padding = (usize, usize, usize, usize);

/// Output spatial size for one axis.
///
/// `None` when the effective kernel extent exceeds the padded input.
pub fn out_dim(
    input: usize,
    kernel: usize,
    dilation: usize,
    pad_lo: usize,
    pad_hi: usize,
) -> Option<usize> {
    let eff = dilation * (kernel - 1) + 1;
    let padded = input + pad_lo + pad_hi;
    padded.checked_sub(eff).map(|d| d + 1)
}

/// Padding that keeps the axis length unchanged under SAME semantics
/// (asymmetric when the effective kernel extent is even).
pub fn same_padding(kernel: usize, dilation: usize) -> (usize, usize) {
    let eff = dilation * (kernel - 1) + 1;
    ((eff - 1) / 2, eff / 2)
}

/// Causal padding for the time axis: everything on the left.
pub fn causal_padding(kernel: usize, dilation: usize) -> (usize, usize) {
    (dilation * (kernel - 1), 0)
}

/// Shared geometry for one conv call, precomputed once and read by every
/// worker.
#[derive(Clone, Copy)]
struct ConvDims {
    b: usize,
    cin: usize,
    h: usize,
    wid: usize,
    cout: usize,
    kh: usize,
    kw: usize,
    dh: usize,
    dw: usize,
    pt: usize,
    pl: usize,
    oh: usize,
    ow: usize,
}

impl ConvDims {
    fn x_stride_c(&self) -> usize {
        self.h * self.wid
    }
    fn x_stride_b(&self) -> usize {
        self.cin * self.x_stride_c()
    }
    fn w_stride_c(&self) -> usize {
        self.kh * self.kw
    }
    fn w_stride_o(&self) -> usize {
        self.cin * self.w_stride_c()
    }
    fn o_stride_c(&self) -> usize {
        self.oh * self.ow
    }
    fn o_stride_b(&self) -> usize {
        self.cout * self.o_stride_c()
    }
    /// Approximate multiply-add count of the forward pass (used to decide
    /// whether parallel dispatch is worth the spawn overhead).
    fn flops(&self) -> usize {
        2usize
            .saturating_mul(self.b * self.cout)
            .saturating_mul(self.cin * self.kh * self.kw)
            .saturating_mul(self.o_stride_c())
    }
    /// Hoisted vertical (row) bounds for kernel tap row `ky`: the input row
    /// offset and the valid output row range.
    fn y_bounds(&self, ky: usize) -> (isize, usize, usize) {
        let iy_off = (ky * self.dh) as isize - self.pt as isize;
        let oy_lo = (-iy_off).max(0) as usize;
        let oy_hi = ((self.h as isize - iy_off).min(self.oh as isize)).max(0) as usize;
        (iy_off, oy_lo, oy_hi)
    }
    /// Hoisted horizontal (column) bounds for kernel tap column `kx`:
    /// `None` when no output column sees valid input, otherwise the output
    /// column range, its length, and the first input column.
    fn x_bounds(&self, kx: usize) -> Option<(usize, usize, usize)> {
        let ix_off = (kx * self.dw) as isize - self.pl as isize;
        let ox_lo = (-ix_off).max(0) as usize;
        let ox_hi = ((self.wid as isize - ix_off).min(self.ow as isize)).max(0) as usize;
        if ox_lo >= ox_hi {
            return None;
        }
        let ix_lo = (ox_lo as isize + ix_off) as usize;
        Some((ox_lo, ox_hi - ox_lo, ix_lo))
    }
}

/// Forward convolution. Returns `(B, C_out, H', W')`.
///
/// Parallelised over `(batch, C_out)` output planes via [`crate::par`]:
/// each plane is written by exactly one worker with the same tap-major
/// accumulation order as the serial loop, so results are bit-identical at
/// every thread count.
///
/// # Panics
/// Panics on rank/channel mismatches or when the kernel does not fit.
pub fn conv2d_forward(x: &Tensor, w: &Tensor, dilation: Dilation, pad: Padding) -> Tensor {
    assert_eq!(x.rank(), 4, "conv input must be NCHW, got {:?}", x.shape());
    assert_eq!(w.rank(), 4, "conv kernel must be OIHW, got {:?}", w.shape());
    let (b, cin, h, wid) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (cout, cin2, kh, kw) = (w.shape()[0], w.shape()[1], w.shape()[2], w.shape()[3]);
    assert_eq!(cin, cin2, "conv channels: input {cin} vs kernel {cin2}");
    let (dh, dw) = dilation;
    let (pt, pb, pl, pr) = pad;
    let oh = out_dim(h, kh, dh, pt, pb).unwrap_or_else(|| {
        // ppn-check: allow(no-panic) documented precondition — see `# Panics` above
        panic!("kernel {kh}x{kw} (dil {dh},{dw}) too large for H={h} pad=({pt},{pb})")
    });
    let ow = out_dim(wid, kw, dw, pl, pr).unwrap_or_else(|| {
        // ppn-check: allow(no-panic) documented precondition — see `# Panics` above
        panic!("kernel {kh}x{kw} (dil {dh},{dw}) too large for W={wid} pad=({pl},{pr})")
    });
    let dims = ConvDims { b, cin, h, wid, cout, kh, kw, dh, dw, pt, pl, oh, ow };

    let timer = crate::tensor::kernel_timer();
    let xd = x.data();
    let wd = w.data();
    let mut out = Storage::zeroed(b * cout * oh * ow);
    let chunk = plane_chunk(dims.o_stride_c(), b * cout, dims.flops());
    crate::par::par_chunks_mut(&mut out, chunk, |ci, block| {
        let planes_per_chunk = chunk / dims.o_stride_c().max(1);
        for (pi, plane) in block.chunks_mut(dims.o_stride_c().max(1)).enumerate() {
            let p = ci * planes_per_chunk + pi;
            forward_plane(&dims, xd, wd, p / cout, p % cout, plane);
        }
    });
    crate::tensor::observe_kernel_ms("tensor.conv_ms", timer);
    Tensor::from_storage(&[b, cout, oh, ow], out)
}

/// Elements per pool chunk when splitting a buffer of `planes` planes of
/// `plane_len` elements: everything in one chunk when the kernel is too
/// small to parallelise, otherwise one plane per chunk.
fn plane_chunk(plane_len: usize, planes: usize, flops: usize) -> usize {
    let total = plane_len.saturating_mul(planes);
    if crate::par::threads() <= 1 || flops < crate::tensor::PAR_MIN_FLOPS {
        total.max(1)
    } else {
        plane_len.max(1)
    }
}

/// One `(bi, oc)` output plane of the forward pass. Tap-major loops with
/// hoisted padding bounds: the innermost loop is a contiguous branch-free
/// AXPY over the output row.
fn forward_plane(d: &ConvDims, xd: &[f64], wd: &[f64], bi: usize, oc: usize, plane: &mut [f64]) {
    // One dispatch decision per plane, not per ~30-element row.
    let simd = crate::simd::Dispatch::capture();
    for ic in 0..d.cin {
        let x_block = bi * d.x_stride_b() + ic * d.x_stride_c();
        let w_block = oc * d.w_stride_o() + ic * d.w_stride_c();
        for ky in 0..d.kh {
            let (iy_off, oy_lo, oy_hi) = d.y_bounds(ky);
            for kx in 0..d.kw {
                let wv = wd[w_block + ky * d.kw + kx];
                if crate::approx::is_zero(wv) {
                    continue;
                }
                let Some((ox_lo, n, ix_lo)) = d.x_bounds(kx) else { continue };
                for oy in oy_lo..oy_hi {
                    let iy = (oy as isize + iy_off) as usize;
                    let xs = &xd[x_block + iy * d.wid + ix_lo..][..n];
                    let os = &mut plane[oy * d.ow + ox_lo..][..n];
                    simd.axpy(os, xs, wv);
                }
            }
        }
    }
}

/// Backward pass: returns `(grad_x, grad_w)` given the upstream gradient
/// `grad_out` of shape `(B, C_out, H', W')`.
///
/// Split into two pool-dispatched kernels with disjoint outputs: `grad_x`
/// parallel over batch samples and `grad_w` parallel over `C_out` kernel
/// planes. Each keeps the per-element accumulation order of the original
/// fused serial loop (`oc,ic,ky,kx,oy` for `grad_x`; ascending-`bi` tap
/// sums for `grad_w`), so both gradients are bit-identical across thread
/// counts.
pub fn conv2d_backward(
    x: &Tensor,
    w: &Tensor,
    grad_out: &Tensor,
    dilation: Dilation,
    pad: Padding,
) -> (Tensor, Tensor) {
    let (b, cin, h, wid) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (cout, _, kh, kw) = (w.shape()[0], w.shape()[1], w.shape()[2], w.shape()[3]);
    let (dh, dw) = dilation;
    let (pt, _, pl, _) = pad;
    let (oh, ow) = (grad_out.shape()[2], grad_out.shape()[3]);
    let dims = ConvDims { b, cin, h, wid, cout, kh, kw, dh, dw, pt, pl, oh, ow };

    let timer = crate::tensor::kernel_timer();
    let xd = x.data();
    let wd = w.data();
    let gd = grad_out.data();
    let mut gx = Storage::zeroed(xd.len());
    let mut gw = Storage::zeroed(wd.len());

    let gx_chunk = plane_chunk(dims.x_stride_b(), b, dims.flops());
    crate::par::par_chunks_mut(&mut gx, gx_chunk, |ci, block| {
        let per_chunk = gx_chunk / dims.x_stride_b().max(1);
        for (pi, sample) in block.chunks_mut(dims.x_stride_b().max(1)).enumerate() {
            grad_x_sample(&dims, wd, gd, ci * per_chunk + pi, sample);
        }
    });

    let gw_chunk = plane_chunk(dims.w_stride_o(), cout, dims.flops());
    crate::par::par_chunks_mut(&mut gw, gw_chunk, |ci, block| {
        let per_chunk = gw_chunk / dims.w_stride_o().max(1);
        for (pi, plane) in block.chunks_mut(dims.w_stride_o().max(1)).enumerate() {
            grad_w_plane(&dims, xd, gd, ci * per_chunk + pi, plane);
        }
    });
    crate::tensor::observe_kernel_ms("tensor.conv_ms", timer);
    (Tensor::from_storage(x.shape(), gx), Tensor::from_storage(w.shape(), gw))
}

/// Input gradient for one batch sample `bi`; `gx_sample` is that sample's
/// `(C_in, H, W)` slice of `grad_x`. Loop order matches the fused serial
/// backward (`oc, ic, ky, kx, oy`) so every `grad_x` element accumulates in
/// the serial sequence.
fn grad_x_sample(d: &ConvDims, wd: &[f64], gd: &[f64], bi: usize, gx_sample: &mut [f64]) {
    // One dispatch decision per sample, not per ~30-element row.
    let simd = crate::simd::Dispatch::capture();
    for oc in 0..d.cout {
        let g_block = bi * d.o_stride_b() + oc * d.o_stride_c();
        for ic in 0..d.cin {
            let x_block = ic * d.x_stride_c();
            let w_block = oc * d.w_stride_o() + ic * d.w_stride_c();
            for ky in 0..d.kh {
                let (iy_off, oy_lo, oy_hi) = d.y_bounds(ky);
                for kx in 0..d.kw {
                    let wv = wd[w_block + ky * d.kw + kx];
                    let Some((ox_lo, n, ix_lo)) = d.x_bounds(kx) else { continue };
                    for oy in oy_lo..oy_hi {
                        let iy = (oy as isize + iy_off) as usize;
                        let grow = &gd[g_block + oy * d.ow + ox_lo..][..n];
                        let gxrow = &mut gx_sample[x_block + iy * d.wid + ix_lo..][..n];
                        // g * wv == wv * g bitwise, so the AXPY form is
                        // identical to the original `*gxv += g * wv` loop.
                        simd.axpy(gxrow, grow, wv);
                    }
                }
            }
        }
    }
}

/// Kernel gradient for one output channel `oc`; `gw_plane` is that
/// channel's `(C_in, KH, KW)` slice of `grad_w`. Each tap's window sum is
/// accumulated in the serial `(oy, ox)` order and added per batch sample in
/// ascending `bi`, matching the fused serial backward exactly.
fn grad_w_plane(d: &ConvDims, xd: &[f64], gd: &[f64], oc: usize, gw_plane: &mut [f64]) {
    for bi in 0..d.b {
        let g_block = bi * d.o_stride_b() + oc * d.o_stride_c();
        for ic in 0..d.cin {
            let x_block = bi * d.x_stride_b() + ic * d.x_stride_c();
            for ky in 0..d.kh {
                let (iy_off, oy_lo, oy_hi) = d.y_bounds(ky);
                for kx in 0..d.kw {
                    let Some((ox_lo, n, ix_lo)) = d.x_bounds(kx) else { continue };
                    let mut w_acc = 0.0;
                    for oy in oy_lo..oy_hi {
                        let iy = (oy as isize + iy_off) as usize;
                        let grow = &gd[g_block + oy * d.ow + ox_lo..][..n];
                        let xrow = &xd[x_block + iy * d.wid + ix_lo..][..n];
                        for (&g, &xv) in grow.iter().zip(xrow) {
                            w_acc += g * xv;
                        }
                    }
                    gw_plane[ic * d.w_stride_c() + ky * d.kw + kx] += w_acc;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_dims() {
        assert_eq!(out_dim(30, 3, 1, 2, 0), Some(30)); // causal k=3 d=1
        assert_eq!(out_dim(30, 3, 4, 8, 0), Some(30)); // causal k=3 d=4
        assert_eq!(out_dim(30, 30, 1, 0, 0), Some(1)); // valid 1xk collapse
        assert_eq!(out_dim(3, 5, 1, 0, 0), None);
    }

    #[test]
    fn same_and_causal_padding() {
        assert_eq!(same_padding(3, 1), (1, 1));
        assert_eq!(same_padding(4, 1), (1, 2));
        assert_eq!(causal_padding(3, 4), (8, 0));
    }

    #[test]
    fn identity_kernel_passthrough() {
        let x = Tensor::from_vec(&[1, 1, 2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let w = Tensor::from_vec(&[1, 1, 1, 1], vec![1.0]);
        let y = conv2d_forward(&x, &w, (1, 1), (0, 0, 0, 0));
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn known_1d_convolution() {
        // x = [1,2,3,4], kernel [1,1] valid → moving sums [3,5,7].
        let x = Tensor::from_vec(&[1, 1, 1, 4], vec![1., 2., 3., 4.]);
        let w = Tensor::from_vec(&[1, 1, 1, 2], vec![1., 1.]);
        let y = conv2d_forward(&x, &w, (1, 1), (0, 0, 0, 0));
        assert_eq!(y.shape(), &[1, 1, 1, 3]);
        assert_eq!(y.data(), &[3., 5., 7.]);
    }

    #[test]
    fn causal_no_future_leakage() {
        // With causal padding, output[t] must not depend on input[t+1..].
        let mut x1 = vec![1., 2., 3., 4., 5.];
        let x2 = {
            let mut v = x1.clone();
            v[4] = 100.0; // change only the last element
            v
        };
        let w = Tensor::from_vec(&[1, 1, 1, 3], vec![0.5, -1.0, 2.0]);
        let (pl, pr) = causal_padding(3, 1);
        let y1 = conv2d_forward(
            &Tensor::from_vec(&[1, 1, 1, 5], x1.clone()),
            &w,
            (1, 1),
            (0, 0, pl, pr),
        );
        let y2 = conv2d_forward(&Tensor::from_vec(&[1, 1, 1, 5], x2), &w, (1, 1), (0, 0, pl, pr));
        // First four outputs identical, only the last may differ.
        for t in 0..4 {
            assert_eq!(y1.data()[t], y2.data()[t], "leakage at t={t}");
        }
        assert_ne!(y1.data()[4], y2.data()[4]);
        x1[0] = 0.0; // silence unused-mut lint paranoia
        let _ = x1;
    }

    #[test]
    fn dilated_receptive_field() {
        // k=3, d=2, causal: output[t] sees t, t-2, t-4.
        let x = Tensor::from_vec(&[1, 1, 1, 6], vec![1., 0., 0., 0., 0., 1.]);
        let w = Tensor::from_vec(&[1, 1, 1, 3], vec![1., 1., 1.]);
        let (pl, pr) = causal_padding(3, 2);
        let y = conv2d_forward(&x, &w, (1, 2), (0, 0, pl, pr));
        assert_eq!(y.shape(), &[1, 1, 1, 6]);
        // t=0: sees x[-4],x[-2],x[0] → 1. t=4: sees x[0],x[2],x[4] → 1.
        assert_eq!(y.data(), &[1., 0., 1., 0., 1., 1.]);
    }

    #[test]
    fn cconv_mixes_all_assets() {
        // Kernel height = m with SAME padding: every output row sees all rows.
        let m = 4;
        let x = Tensor::from_vec(&[1, 1, m, 1], vec![1., 2., 3., 4.]);
        let w = Tensor::from_vec(&[1, 1, m, 1], vec![1., 1., 1., 1.]);
        let (pt, pb) = same_padding(m, 1);
        let y = conv2d_forward(&x, &w, (1, 1), (pt, pb, 0, 0));
        assert_eq!(y.shape(), &[1, 1, m, 1]);
        // Row sums over the visible window (zero-padded outside).
        assert_eq!(y.data(), &[1. + 2. + 3., 10., 9., 3. + 4.]);
    }

    #[test]
    fn backward_matches_finite_difference() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(7);
        let x = Tensor::randn(&mut rng, &[2, 2, 3, 5], 1.0);
        let w = Tensor::randn(&mut rng, &[3, 2, 2, 3], 1.0);
        let dil = (1, 2);
        let pad = (1, 0, 4, 0);
        let y = conv2d_forward(&x, &w, dil, pad);
        // Loss = sum(y); upstream grad = ones.
        let gout = Tensor::ones(y.shape());
        let (gx, gw) = conv2d_backward(&x, &w, &gout, dil, pad);
        let eps = 1e-5;
        // Spot-check a handful of coordinates of both gradients.
        for &i in &[0usize, 7, 23, 41] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let fp = conv2d_forward(&xp, &w, dil, pad).sum();
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fm = conv2d_forward(&xm, &w, dil, pad).sum();
            let fd = (fp - fm) / (2.0 * eps);
            assert!((fd - gx.data()[i]).abs() < 1e-6, "gx[{i}]: fd={fd} ad={}", gx.data()[i]);
        }
        for &i in &[0usize, 5, 17, 31] {
            let mut wp = w.clone();
            wp.data_mut()[i] += eps;
            let fp = conv2d_forward(&x, &wp, dil, pad).sum();
            let mut wm = w.clone();
            wm.data_mut()[i] -= eps;
            let fm = conv2d_forward(&x, &wm, dil, pad).sum();
            let fd = (fp - fm) / (2.0 * eps);
            assert!((fd - gw.data()[i]).abs() < 1e-6, "gw[{i}]: fd={fd} ad={}", gw.data()[i]);
        }
    }
}
