//! 32-byte-aligned tensor storage with a thread-local buffer-reuse arena.
//!
//! This module is the workspace's only `unsafe` surface outside the vendored
//! shims. Every `unsafe` block is paired with a `SAFETY:` comment and the
//! `ppn-check` `no-unsafe` rule audits exactly that invariant; the rest of
//! `ppn-tensor` stays `#![deny(unsafe_code)]`.
//!
//! ## Why not `Vec<f64>`
//!
//! `Vec` only guarantees the allocator's natural alignment (16 bytes on this
//! target), so 4-wide AVX2 loads over its buffers straddle cache lines and
//! the autovectorizer has to emit unaligned-tolerant code. [`Storage`]
//! allocates every buffer on a 32-byte boundary via an explicit
//! [`Layout`], which also makes the allocation size/alignment contract
//! auditable in one place.
//!
//! ## Arena
//!
//! Training runs thousands of structurally identical tape sweeps, so freed
//! buffers are parked in a thread-local, size-bucketed free list instead of
//! being returned to the allocator. A subsequent request for the same size
//! class pops the parked pointer — the "buffer reuse" optimization pass:
//! after the first sweep, steady-state forward/backward allocates nothing.
//! Buckets are power-of-two element counts from [`MIN_CAP`] up to
//! 2^22 elements (32 MiB); larger buffers bypass the arena, and at most
//! [`MAX_HELD_BYTES`] are parked per thread. [`arena_stats`] exposes
//! hit/miss/byte counters, mirrored to `ppn-obs` by [`flush_obs_counters`].

#![allow(unsafe_code)] // audited: raw allocation confined to this module, see module docs

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;

/// Guaranteed alignment (bytes) of every [`Storage`] buffer.
pub const ALIGN: usize = 32;

/// Smallest capacity ever allocated, in elements (one 32-byte AVX2 lane).
const MIN_CAP: usize = 4;

/// Largest power-of-two size class parked in the arena, in elements.
const MAX_CLASS: usize = 1 << 22;

/// Number of arena buckets: capacities `MIN_CAP << 0 ..= MIN_CAP << 20`.
const N_CLASSES: usize = 21;

/// Per-thread cap on bytes parked in the arena before buffers are freed.
const MAX_HELD_BYTES: usize = 64 << 20;

const BYTES: usize = std::mem::size_of::<f64>();

/// Largest representable capacity; keeps `cap * BYTES` from overflowing
/// `isize` as `Layout` requires.
const MAX_ELEMS: usize = isize::MAX as usize / BYTES;

/// Snapshot of the calling thread's arena counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Total bytes handed out by the system allocator (arena misses only).
    pub alloc_bytes: u64,
    /// Requests satisfied by recycling a parked buffer.
    pub arena_hits: u64,
    /// Requests that had to fall through to the system allocator.
    pub arena_misses: u64,
    /// Bytes currently parked in the free lists.
    pub held_bytes: u64,
}

struct Arena {
    /// Free list per power-of-two size class (`MIN_CAP << index` elements).
    free: [Vec<NonNull<f64>>; N_CLASSES],
    held_bytes: usize,
    alloc_bytes: u64,
    hits: u64,
    misses: u64,
    /// Counter values already mirrored to ppn-obs by `flush_obs_counters`.
    flushed: ArenaStats,
}

impl Arena {
    fn new() -> Self {
        Arena {
            free: std::array::from_fn(|_| Vec::new()),
            held_bytes: 0,
            alloc_bytes: 0,
            hits: 0,
            misses: 0,
            flushed: ArenaStats::default(),
        }
    }

    fn stats(&self) -> ArenaStats {
        ArenaStats {
            alloc_bytes: self.alloc_bytes,
            arena_hits: self.hits,
            arena_misses: self.misses,
            held_bytes: self.held_bytes as u64,
        }
    }
}

impl Drop for Arena {
    fn drop(&mut self) {
        for (ci, bucket) in self.free.iter_mut().enumerate() {
            for ptr in bucket.drain(..) {
                raw_dealloc(ptr, MIN_CAP << ci);
            }
        }
    }
}

thread_local! {
    static ARENA: RefCell<Arena> = RefCell::new(Arena::new());
}

/// Rounds a requested length up to its allocation capacity: the next
/// power of two within the arena's class range, or an exact `MIN_CAP`
/// multiple beyond it.
fn cap_for(len: usize) -> usize {
    if len > MAX_CLASS {
        len.div_ceil(MIN_CAP) * MIN_CAP
    } else {
        len.next_power_of_two().max(MIN_CAP)
    }
}

/// Bucket index for an arena-eligible capacity (`MIN_CAP <= cap <= MAX_CLASS`,
/// power of two).
fn class_index(cap: usize) -> usize {
    debug_assert!(cap.is_power_of_two() && (MIN_CAP..=MAX_CLASS).contains(&cap));
    (cap / MIN_CAP).trailing_zeros() as usize
}

fn layout_for(cap: usize) -> Layout {
    assert!(cap <= MAX_ELEMS, "storage capacity overflows allocation size");
    // ppn-check: allow(no-panic) size and alignment were validated just above
    Layout::from_size_align(cap * BYTES, ALIGN).expect("validated storage layout")
}

fn raw_alloc(cap: usize) -> NonNull<f64> {
    let layout = layout_for(cap);
    // SAFETY: layout has non-zero size (cap >= MIN_CAP > 0) and a valid
    // power-of-two alignment, as required by `alloc_zeroed`.
    let p = unsafe { alloc_zeroed(layout) };
    match NonNull::new(p.cast::<f64>()) {
        Some(nn) => nn,
        None => handle_alloc_error(layout),
    }
}

fn raw_dealloc(ptr: NonNull<f64>, cap: usize) {
    // SAFETY: every Storage pointer originates from `raw_alloc(cap)` with
    // this exact layout and is released exactly once (Drop or grow).
    unsafe { dealloc(ptr.as_ptr().cast::<u8>(), layout_for(cap)) };
}

/// Obtains a buffer of capacity `cap`, recycling from the arena when a
/// same-class buffer is parked. Returns the pointer and whether it was
/// recycled (recycled buffers hold stale f64 bits; fresh ones are zeroed).
fn acquire(cap: usize) -> (NonNull<f64>, bool) {
    if cap <= MAX_CLASS {
        let recycled = ARENA
            .try_with(|cell| {
                let mut a = cell.borrow_mut();
                match a.free[class_index(cap)].pop() {
                    Some(ptr) => {
                        a.held_bytes -= cap * BYTES;
                        a.hits += 1;
                        Some(ptr)
                    }
                    None => {
                        a.misses += 1;
                        a.alloc_bytes += (cap * BYTES) as u64;
                        None
                    }
                }
            })
            .unwrap_or(None); // TLS torn down: just allocate fresh
        if let Some(ptr) = recycled {
            return (ptr, true);
        }
    }
    (raw_alloc(cap), false)
}

/// Returns a buffer to the arena (same-class reuse) or to the allocator.
fn release(ptr: NonNull<f64>, cap: usize) {
    let parked = cap <= MAX_CLASS
        && ARENA
            .try_with(|cell| {
                let mut a = cell.borrow_mut();
                if a.held_bytes + cap * BYTES <= MAX_HELD_BYTES {
                    a.free[class_index(cap)].push(ptr);
                    a.held_bytes += cap * BYTES;
                    true
                } else {
                    false
                }
            })
            .unwrap_or(false); // TLS torn down: free directly
    if !parked {
        raw_dealloc(ptr, cap);
    }
}

/// A 32-byte-aligned, heap-allocated `f64` buffer — the backing store of
/// every [`crate::Tensor`].
///
/// Dereferences to `[f64]`; the full capacity is always initialized (fresh
/// allocations are zeroed, recycled ones hold previously valid f64s), so the
/// slice views never expose uninitialized memory.
pub struct Storage {
    ptr: NonNull<f64>,
    len: usize,
    cap: usize,
}

// SAFETY: Storage uniquely owns its allocation and has no interior
// mutability; transferring or sharing it across threads is as safe as for
// Vec<f64>.
unsafe impl Send for Storage {}
// SAFETY: &Storage only permits reads (no interior mutability), so shared
// references may cross threads, as for Vec<f64>.
unsafe impl Sync for Storage {}

impl Storage {
    /// Allocates (or recycles) a buffer for `len` elements; reports whether
    /// the buffer came from the arena and thus holds stale bits.
    fn with_raw_len(len: usize) -> (Storage, bool) {
        let cap = cap_for(len);
        let (ptr, recycled) = acquire(cap);
        (Storage { ptr, len, cap }, recycled)
    }

    /// A buffer of `len` zeros.
    pub fn zeroed(len: usize) -> Storage {
        let (mut s, recycled) = Storage::with_raw_len(len);
        if recycled {
            s.fill(0.0);
        }
        s
    }

    /// A buffer of `len` elements with unspecified contents, for callers
    /// that overwrite every element before reading any. Debug builds poison
    /// recycled buffers with NaN so read-before-write slips trip the
    /// graph's finiteness contracts.
    pub(crate) fn uninit(len: usize) -> Storage {
        let (mut s, recycled) = Storage::with_raw_len(len);
        if cfg!(debug_assertions) && recycled {
            s.fill(f64::NAN);
        }
        s
    }

    /// A buffer of `len` copies of `v`.
    pub fn filled(len: usize, v: f64) -> Storage {
        let mut s = Storage::uninit(len);
        s.fill(v);
        s
    }

    /// A buffer holding a copy of `data`.
    pub fn from_slice(data: &[f64]) -> Storage {
        let mut s = Storage::uninit(data.len());
        s.copy_from_slice(data);
        s
    }

    /// An empty buffer with room for at least `hint` elements.
    pub fn with_capacity(hint: usize) -> Storage {
        let (mut s, _) = Storage::with_raw_len(hint.max(MIN_CAP));
        s.len = 0;
        s
    }

    /// Appends `v`, growing (geometrically) if full.
    pub fn push(&mut self, v: f64) {
        if self.len == self.cap {
            self.grow();
        }
        // SAFETY: len < cap after grow(), so the write is in bounds of the
        // allocation; the slot holds an initialized f64 (see struct docs).
        unsafe { *self.ptr.as_ptr().add(self.len) = v };
        self.len += 1;
    }

    fn grow(&mut self) {
        let new_cap = cap_for(self.cap.saturating_mul(2).max(MIN_CAP));
        let (new_ptr, _) = acquire(new_cap);
        // SAFETY: both allocations are live, disjoint, and at least
        // `self.len` elements long (new_cap > cap >= len).
        unsafe { std::ptr::copy_nonoverlapping(self.ptr.as_ptr(), new_ptr.as_ptr(), self.len) };
        release(self.ptr, self.cap);
        self.ptr = new_ptr;
        self.cap = new_cap;
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Raw base pointer (32-byte aligned); for alignment assertions only.
    pub fn as_ptr(&self) -> *const f64 {
        self.ptr.as_ptr()
    }

    /// Copies the contents into a plain `Vec<f64>`.
    pub fn to_vec(&self) -> Vec<f64> {
        self[..].to_vec()
    }
}

impl Drop for Storage {
    fn drop(&mut self) {
        release(self.ptr, self.cap);
    }
}

impl Clone for Storage {
    fn clone(&self) -> Storage {
        Storage::from_slice(self)
    }
}

impl Deref for Storage {
    type Target = [f64];

    fn deref(&self) -> &[f64] {
        // SAFETY: ptr is valid for cap >= len initialized f64s (see struct
        // docs) and uniquely owned, so a shared slice view of len is sound.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

impl DerefMut for Storage {
    fn deref_mut(&mut self) -> &mut [f64] {
        // SAFETY: as for Deref; &mut self guarantees the view is unique.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl PartialEq for Storage {
    fn eq(&self, other: &Storage) -> bool {
        self[..] == other[..]
    }
}

impl std::fmt::Debug for Storage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&self[..], f)
    }
}

/// Counters for the calling thread's arena (zeros if TLS is gone).
pub fn arena_stats() -> ArenaStats {
    ARENA.try_with(|cell| cell.borrow().stats()).unwrap_or_default()
}

/// Mirrors the arena counter deltas since the last flush into the ppn-obs
/// metrics registry (`tensor.alloc_bytes`, `tensor.arena_hits`,
/// `tensor.arena_misses`). Called at the end of every backward sweep.
pub fn flush_obs_counters() {
    if !ppn_obs::metrics_enabled() {
        return;
    }
    let _ = ARENA.try_with(|cell| {
        let mut a = cell.borrow_mut();
        let now = a.stats();
        let prev = a.flushed;
        ppn_obs::counter("tensor.alloc_bytes").add(now.alloc_bytes - prev.alloc_bytes);
        ppn_obs::counter("tensor.arena_hits").add(now.arena_hits - prev.arena_hits);
        ppn_obs::counter("tensor.arena_misses").add(now.arena_misses - prev.arena_misses);
        a.flushed = now;
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_32_byte_aligned() {
        for len in [0, 1, 3, 4, 5, 17, 1024, 100_003] {
            let s = Storage::zeroed(len);
            assert_eq!(s.as_ptr() as usize % ALIGN, 0, "len={len}");
            assert_eq!(s.len(), len);
            assert!(s.iter().all(|&v| v == 0.0), "len={len}");
        }
    }

    #[test]
    fn cap_for_classes() {
        assert_eq!(cap_for(0), MIN_CAP);
        assert_eq!(cap_for(1), MIN_CAP);
        assert_eq!(cap_for(4), 4);
        assert_eq!(cap_for(5), 8);
        assert_eq!(cap_for(1000), 1024);
        assert_eq!(cap_for(MAX_CLASS), MAX_CLASS);
        // Oversize buffers round to an exact MIN_CAP multiple.
        assert_eq!(cap_for(MAX_CLASS + 1), MAX_CLASS + MIN_CAP);
        assert_eq!(class_index(MIN_CAP), 0);
        assert_eq!(class_index(MAX_CLASS), N_CLASSES - 1);
    }

    #[test]
    fn push_and_grow_preserve_contents_and_alignment() {
        let mut s = Storage::with_capacity(2);
        for i in 0..1000 {
            s.push(i as f64 * 0.5);
        }
        assert_eq!(s.len(), 1000);
        assert_eq!(s.as_ptr() as usize % ALIGN, 0);
        for (i, &v) in s.iter().enumerate() {
            assert_eq!(v, i as f64 * 0.5);
        }
    }

    #[test]
    fn arena_recycles_same_class() {
        // Park a buffer, then re-request the same size class.
        let before = arena_stats();
        let p = {
            let s = Storage::zeroed(600); // class 1024
            s.as_ptr() as usize
        };
        let s2 = Storage::zeroed(700); // same class 1024
        assert_eq!(s2.as_ptr() as usize, p, "same-class request should recycle");
        let after = arena_stats();
        assert!(after.arena_hits > before.arena_hits);
        // Recycled but zeroed on request.
        assert!(s2.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn clone_copies_bits() {
        let mut s = Storage::zeroed(9);
        s[3] = -0.0;
        s[4] = f64::NAN;
        let c = s.clone();
        assert_eq!(c.len(), 9);
        for (a, b) in s.iter().zip(c.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_ne!(s.as_ptr(), c.as_ptr());
    }

    #[test]
    fn oversize_buffers_bypass_arena() {
        let held = arena_stats().held_bytes;
        drop(Storage::zeroed(MAX_CLASS + 8));
        assert_eq!(arena_stats().held_bytes, held, "oversize must not be parked");
    }
}
