//! Shape arithmetic shared by the tensor and graph modules.
//!
//! Tensors are dense, row-major, and at most modest-dimensional (the PPN
//! workloads use rank 1–4), so shapes are plain `Vec<usize>` and all index
//! math is done eagerly here.

/// Number of elements implied by a shape. The empty shape denotes a scalar
/// and has one element.
pub fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Row-major strides for `shape`.
pub fn strides(shape: &[usize]) -> Vec<usize> {
    let mut s = vec![1usize; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        s[i] = s[i + 1] * shape[i + 1];
    }
    s
}

/// Flat offset of a multi-index under row-major layout.
///
/// Panics in debug builds if the index is out of bounds.
pub fn offset(shape: &[usize], idx: &[usize]) -> usize {
    debug_assert_eq!(shape.len(), idx.len());
    let st = strides(shape);
    let mut off = 0;
    for (d, (&i, &s)) in idx.iter().zip(st.iter()).enumerate() {
        debug_assert!(i < shape[d], "index {i} out of bounds for dim {d} of {shape:?}");
        off += i * s;
    }
    off
}

/// NumPy-style broadcast of two shapes.
///
/// Shapes are aligned at the trailing dimension; each pair of dims must be
/// equal or one of them 1. Returns the broadcast shape, or `None` if the
/// shapes are incompatible.
pub fn broadcast(a: &[usize], b: &[usize]) -> Option<Vec<usize>> {
    let rank = a.len().max(b.len());
    let mut out = vec![0usize; rank];
    for i in 0..rank {
        let da = if i < rank - a.len() { 1 } else { a[i - (rank - a.len())] };
        let db = if i < rank - b.len() { 1 } else { b[i - (rank - b.len())] };
        out[i] = if da == db {
            da
        } else if da == 1 {
            db
        } else if db == 1 {
            da
        } else {
            return None;
        };
    }
    Some(out)
}

/// Iterator over all multi-indices of `shape` in row-major order.
pub struct IndexIter {
    shape: Vec<usize>,
    cur: Vec<usize>,
    done: bool,
}

impl IndexIter {
    /// Starts iteration at the all-zeros index of `shape`.
    pub fn new(shape: &[usize]) -> Self {
        let done = numel(shape) == 0;
        IndexIter { shape: shape.to_vec(), cur: vec![0; shape.len()], done }
    }
}

impl Iterator for IndexIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        let out = self.cur.clone();
        // Advance odometer-style.
        let mut i = self.shape.len();
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            self.cur[i] += 1;
            if self.cur[i] < self.shape[i] {
                break;
            }
            self.cur[i] = 0;
        }
        Some(out)
    }
}

/// Maps a multi-index in the broadcast output shape back to the flat offset
/// in an operand of shape `src` (dims of size 1 are pinned at 0).
pub fn broadcast_offset(src: &[usize], out_idx: &[usize]) -> usize {
    let st = strides(src);
    let skip = out_idx.len() - src.len();
    let mut off = 0;
    for (d, &s) in st.iter().enumerate() {
        let i = out_idx[skip + d];
        off += if src[d] == 1 { 0 } else { i * s };
    }
    off
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(strides(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides(&[5]), vec![1]);
        assert_eq!(strides(&[]), Vec::<usize>::new());
    }

    #[test]
    fn offset_matches_manual() {
        assert_eq!(offset(&[2, 3, 4], &[1, 2, 3]), 12 + 8 + 3);
        assert_eq!(offset(&[7], &[6]), 6);
    }

    #[test]
    fn broadcast_rules() {
        assert_eq!(broadcast(&[2, 3], &[2, 3]), Some(vec![2, 3]));
        assert_eq!(broadcast(&[2, 1], &[1, 3]), Some(vec![2, 3]));
        assert_eq!(broadcast(&[3], &[2, 3]), Some(vec![2, 3]));
        assert_eq!(broadcast(&[], &[4]), Some(vec![4]));
        assert_eq!(broadcast(&[2, 3], &[3, 2]), None);
    }

    #[test]
    fn index_iter_covers_all() {
        let v: Vec<_> = IndexIter::new(&[2, 2]).collect();
        assert_eq!(v, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
        assert_eq!(IndexIter::new(&[0, 3]).count(), 0);
        // Scalar shape yields exactly one (empty) index.
        assert_eq!(IndexIter::new(&[]).count(), 1);
    }

    #[test]
    fn broadcast_offset_pins_unit_dims() {
        // src [1,3] broadcast into [2,3]: row index ignored.
        assert_eq!(broadcast_offset(&[1, 3], &[1, 2]), 2);
        assert_eq!(broadcast_offset(&[1, 3], &[0, 2]), 2);
        // src [3] broadcast into [2,3]: leading dim skipped.
        assert_eq!(broadcast_offset(&[3], &[1, 2]), 2);
    }

    #[test]
    fn numel_scalar_is_one() {
        assert_eq!(numel(&[]), 1);
        assert_eq!(numel(&[2, 0, 4]), 0);
    }
}
