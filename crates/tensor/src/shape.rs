//! Shape arithmetic shared by the tensor and graph modules.
//!
//! Tensors are dense, row-major, and at most modest-dimensional (the PPN
//! workloads use rank 1–4), so shapes are plain `Vec<usize>` and all index
//! math is done eagerly here.

/// Highest tensor rank the stack-allocated index scratch covers; higher
/// ranks fall back to a heap allocation inside [`with_dims`].
pub const MAX_RANK: usize = 8;

/// Scratch capacity: broadcast walks need up to three `MAX_RANK`-sized
/// arrays (two stride sets plus an odometer index).
const STACK_DIMS: usize = 3 * MAX_RANK;

/// Number of elements implied by a shape. The empty shape denotes a scalar
/// and has one element.
pub fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Runs `f` over an `n`-element zeroed `usize` scratch slice, stack-allocated
/// for `n <= 3 * MAX_RANK` so broadcast/permute inner paths stay free of
/// per-call heap traffic.
pub(crate) fn with_dims<R>(n: usize, f: impl FnOnce(&mut [usize]) -> R) -> R {
    if n <= STACK_DIMS {
        let mut buf = [0usize; STACK_DIMS];
        f(&mut buf[..n])
    } else {
        let mut buf = vec![0usize; n];
        f(&mut buf)
    }
}

/// Row-major strides for `shape`, written into a caller-provided slice of
/// the same length (allocation-free counterpart of [`strides`]).
pub fn strides_into(shape: &[usize], out: &mut [usize]) {
    debug_assert_eq!(shape.len(), out.len());
    let n = shape.len();
    if n == 0 {
        return;
    }
    out[n - 1] = 1;
    for i in (0..n - 1).rev() {
        out[i] = out[i + 1] * shape[i + 1];
    }
}

/// Row-major strides for `shape`.
pub fn strides(shape: &[usize]) -> Vec<usize> {
    let mut s = vec![1usize; shape.len()];
    strides_into(shape, &mut s);
    s
}

/// Flat offset of a multi-index under row-major layout.
///
/// Panics in debug builds if the index is out of bounds.
pub fn offset(shape: &[usize], idx: &[usize]) -> usize {
    debug_assert_eq!(shape.len(), idx.len());
    let st = strides(shape);
    let mut off = 0;
    for (d, (&i, &s)) in idx.iter().zip(st.iter()).enumerate() {
        debug_assert!(i < shape[d], "index {i} out of bounds for dim {d} of {shape:?}");
        off += i * s;
    }
    off
}

/// NumPy-style broadcast of two shapes.
///
/// Shapes are aligned at the trailing dimension; each pair of dims must be
/// equal or one of them 1. Returns the broadcast shape, or `None` if the
/// shapes are incompatible.
pub fn broadcast(a: &[usize], b: &[usize]) -> Option<Vec<usize>> {
    let rank = a.len().max(b.len());
    let mut out = vec![0usize; rank];
    for i in 0..rank {
        let da = if i < rank - a.len() { 1 } else { a[i - (rank - a.len())] };
        let db = if i < rank - b.len() { 1 } else { b[i - (rank - b.len())] };
        out[i] = if da == db {
            da
        } else if da == 1 {
            db
        } else if db == 1 {
            da
        } else {
            return None;
        };
    }
    Some(out)
}

/// Iterator over all multi-indices of `shape` in row-major order.
pub struct IndexIter {
    shape: Vec<usize>,
    cur: Vec<usize>,
    done: bool,
}

impl IndexIter {
    /// Starts iteration at the all-zeros index of `shape`.
    pub fn new(shape: &[usize]) -> Self {
        let done = numel(shape) == 0;
        IndexIter { shape: shape.to_vec(), cur: vec![0; shape.len()], done }
    }
}

impl Iterator for IndexIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        let out = self.cur.clone();
        // Advance odometer-style.
        let mut i = self.shape.len();
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            self.cur[i] += 1;
            if self.cur[i] < self.shape[i] {
                break;
            }
            self.cur[i] = 0;
        }
        Some(out)
    }
}

/// Maps a multi-index in the broadcast output shape back to the flat offset
/// in an operand of shape `src` (dims of size 1 are pinned at 0).
pub fn broadcast_offset(src: &[usize], out_idx: &[usize]) -> usize {
    let st = strides(src);
    let skip = out_idx.len() - src.len();
    let mut off = 0;
    for (d, &s) in st.iter().enumerate() {
        let i = out_idx[skip + d];
        off += if src[d] == 1 { 0 } else { i * s };
    }
    off
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(strides(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides(&[5]), vec![1]);
        assert_eq!(strides(&[]), Vec::<usize>::new());
    }

    #[test]
    fn offset_matches_manual() {
        assert_eq!(offset(&[2, 3, 4], &[1, 2, 3]), 12 + 8 + 3);
        assert_eq!(offset(&[7], &[6]), 6);
    }

    #[test]
    fn broadcast_rules() {
        assert_eq!(broadcast(&[2, 3], &[2, 3]), Some(vec![2, 3]));
        assert_eq!(broadcast(&[2, 1], &[1, 3]), Some(vec![2, 3]));
        assert_eq!(broadcast(&[3], &[2, 3]), Some(vec![2, 3]));
        assert_eq!(broadcast(&[], &[4]), Some(vec![4]));
        assert_eq!(broadcast(&[2, 3], &[3, 2]), None);
    }

    #[test]
    fn index_iter_covers_all() {
        let v: Vec<_> = IndexIter::new(&[2, 2]).collect();
        assert_eq!(v, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
        assert_eq!(IndexIter::new(&[0, 3]).count(), 0);
        // Scalar shape yields exactly one (empty) index.
        assert_eq!(IndexIter::new(&[]).count(), 1);
    }

    #[test]
    fn broadcast_offset_pins_unit_dims() {
        // src [1,3] broadcast into [2,3]: row index ignored.
        assert_eq!(broadcast_offset(&[1, 3], &[1, 2]), 2);
        assert_eq!(broadcast_offset(&[1, 3], &[0, 2]), 2);
        // src [3] broadcast into [2,3]: leading dim skipped.
        assert_eq!(broadcast_offset(&[3], &[1, 2]), 2);
    }

    #[test]
    fn numel_scalar_is_one() {
        assert_eq!(numel(&[]), 1);
        assert_eq!(numel(&[2, 0, 4]), 0);
    }

    #[test]
    fn strides_into_matches_strides() {
        for shape in [vec![], vec![5], vec![2, 3, 4], vec![1, 1, 7, 2]] {
            let mut out = vec![9usize; shape.len()];
            strides_into(&shape, &mut out);
            assert_eq!(out, strides(&shape), "{shape:?}");
        }
    }

    #[test]
    fn with_dims_zeroes_and_sizes_scratch() {
        // Stack path.
        with_dims(5, |s| {
            assert_eq!(s.len(), 5);
            assert!(s.iter().all(|&v| v == 0));
        });
        // Heap fallback beyond the stack capacity.
        with_dims(STACK_DIMS + 3, |s| {
            assert_eq!(s.len(), STACK_DIMS + 3);
            assert!(s.iter().all(|&v| v == 0));
        });
    }
}
