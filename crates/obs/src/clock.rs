//! The workspace's single wall-clock chokepoint.
//!
//! The `no-wallclock` lint (ppn-check) confines `Instant::now` /
//! `SystemTime::now` to the observability stack: numerical crates that read
//! the clock directly can smuggle nondeterminism into results and break the
//! bit-identical replay contract. Everything outside `ppn-obs`, `ppn-trace`,
//! and `ppn-bench` takes its timestamps from here instead, so there is
//! exactly one audited place a replay harness would need to virtualize.
//!
//! Only clock *reads* route through this module. Holding or differencing an
//! [`Instant`] (e.g. `t.elapsed()`) is fine anywhere — the nondeterminism
//! enters at the read, and the read is what this module owns.

use std::time::{Instant, SystemTime};

/// Reads the monotonic clock. The only sanctioned `Instant::now` for
/// first-party crates outside obs/trace/bench.
#[inline]
pub fn now() -> Instant {
    Instant::now()
}

/// Reads the wall clock. Use only for human-facing timestamps (manifests,
/// log lines) — never as an input to numerics.
#[inline]
pub fn system_now() -> SystemTime {
    SystemTime::now()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_is_monotonic() {
        let a = now();
        let b = now();
        assert!(b >= a);
        assert!(a.elapsed() >= std::time::Duration::ZERO);
    }

    #[test]
    fn system_clock_is_after_unix_epoch() {
        assert!(system_now().duration_since(std::time::UNIX_EPOCH).is_ok());
    }
}
