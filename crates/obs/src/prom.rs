//! Prometheus text-format exposition (version 0.0.4) for
//! [`MetricsSnapshot`], plus log-linear auto-bucketing helpers.
//!
//! Format guarantees:
//!
//! * every metric gets a `# TYPE` line (`counter` / `gauge` / `histogram`);
//! * metric names are sanitized to `[a-zA-Z0-9_:]` (dots become
//!   underscores: `serve.latency_ms` → `serve_latency_ms`);
//! * histogram buckets are **cumulative** with inclusive upper bounds,
//!   always end with `le="+Inf"`, and ship `_sum` and `_count` series where
//!   the `+Inf` bucket equals `_count`;
//! * output is byte-stable for a given snapshot: metrics render sorted by
//!   name within each kind (counters, then gauges, then histograms).
//!
//! The exposition content type is [`CONTENT_TYPE`].

use crate::metrics::MetricsSnapshot;

/// The HTTP `Content-Type` for Prometheus text exposition.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Maps a registry metric name onto the Prometheus name charset: every
/// character outside `[a-zA-Z0-9_:]` becomes `_`, and a leading digit gets
/// an underscore prefix.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Formats an `f64` the way Prometheus expects sample values and `le`
/// bounds (`1`, `0.05`, `+Inf`, `NaN`).
fn fmt_f64(v: f64) -> String {
    if v.is_infinite() {
        return if v > 0.0 { "+Inf".to_string() } else { "-Inf".to_string() };
    }
    format!("{v}")
}

/// Renders a snapshot as Prometheus text exposition. See the module docs
/// for the format guarantees.
pub fn render(snapshot: &MetricsSnapshot) -> String {
    let mut snap = snapshot.clone();
    snap.sort();
    let mut out = String::new();
    for c in &snap.counters {
        let name = sanitize_name(&c.name);
        out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.value));
    }
    for g in &snap.gauges {
        let name = sanitize_name(&g.name);
        out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", fmt_f64(g.value)));
    }
    for h in &snap.histograms {
        let name = sanitize_name(&h.name);
        out.push_str(&format!("# TYPE {name} histogram\n"));
        let mut cumulative = 0u64;
        for (i, count) in h.counts.iter().enumerate() {
            cumulative += count;
            let le = match h.bounds.get(i) {
                Some(b) => fmt_f64(*b),
                None => "+Inf".to_string(),
            };
            out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
        }
        // A histogram snapshot always carries bounds.len()+1 counts, but
        // render defensively: the +Inf bucket must exist even for a
        // hand-built snapshot with no overflow entry.
        if h.counts.len() <= h.bounds.len() {
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
        }
        out.push_str(&format!("{name}_sum {}\n", fmt_f64(h.sum)));
        out.push_str(&format!("{name}_count {}\n", h.count));
    }
    out
}

/// Strictly increasing log-linear bucket bounds covering `[lo, hi]` with
/// `per_decade` bounds per factor of ten — the auto-bucketing used when a
/// histogram has no hand-picked bounds. `lo` must be positive and finite,
/// `hi > lo`, `per_decade ≥ 1`; degenerate inputs fall back to a single
/// `[lo]` bound rather than panicking.
pub fn log_linear_bounds(lo: f64, hi: f64, per_decade: usize) -> Vec<f64> {
    if !lo.is_finite() || lo <= 0.0 || !hi.is_finite() || hi <= lo || per_decade == 0 {
        return vec![if lo.is_finite() && lo > 0.0 { lo } else { 1.0 }];
    }
    let step = 10f64.powf(1.0 / per_decade as f64);
    let mut bounds = Vec::new();
    let mut b = lo;
    let mut k = 0u32;
    while b < hi * (1.0 + 1e-12) {
        bounds.push(b);
        k += 1;
        b = lo * step.powi(k as i32);
        if bounds.len() > 512 {
            break; // hard cap against pathological ranges
        }
    }
    // Float powers are strictly increasing here, but de-duplicate
    // defensively so Histogram's strictly-increasing invariant holds.
    bounds.dedup_by(|a, b| a.total_cmp(b) == std::cmp::Ordering::Equal);
    bounds
}

/// The default auto-bucket bounds for latency-style histograms measured in
/// milliseconds: log-linear from 1 µs to 10 s, 3 buckets per decade
/// (≈ 1 / 2.2 / 4.6 spacing), 22 bounds total.
pub fn default_latency_bounds_ms() -> Vec<f64> {
    log_linear_bounds(1e-3, 1e4, 3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{CounterSnapshot, GaugeSnapshot, HistogramSnapshot};

    #[test]
    fn sanitize_maps_onto_the_prometheus_charset() {
        assert_eq!(sanitize_name("serve.latency_ms"), "serve_latency_ms");
        assert_eq!(sanitize_name("a-b c"), "a_b_c");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name("ok_name:x"), "ok_name:x");
        assert_eq!(sanitize_name(""), "_");
    }

    #[test]
    fn histogram_renders_cumulative_buckets_with_inf_sum_count() {
        let snap = MetricsSnapshot {
            counters: vec![CounterSnapshot { name: "s.req".into(), value: 7 }],
            gauges: vec![GaugeSnapshot { name: "s.depth".into(), value: 2.5, peak: false }],
            histograms: vec![HistogramSnapshot {
                name: "s.lat".into(),
                bounds: vec![1.0, 5.0],
                counts: vec![2, 3, 1],
                sum: 11.5,
                count: 6,
            }],
        };
        let text = render(&snap);
        assert!(text.contains("# TYPE s_req counter\ns_req 7\n"));
        assert!(text.contains("# TYPE s_depth gauge\ns_depth 2.5\n"));
        assert!(text.contains("# TYPE s_lat histogram\n"));
        assert!(text.contains("s_lat_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("s_lat_bucket{le=\"5\"} 5\n"), "buckets must be cumulative");
        assert!(text.contains("s_lat_bucket{le=\"+Inf\"} 6\n"));
        assert!(text.contains("s_lat_sum 11.5\n"));
        assert!(text.contains("s_lat_count 6\n"));
    }

    #[test]
    fn log_linear_bounds_are_strictly_increasing_and_cover_the_range() {
        let b = log_linear_bounds(1e-3, 1e4, 3);
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        assert!(b[0] <= 1e-3 * (1.0 + 1e-9));
        assert!(*b.last().expect("non-empty") >= 1e4 * (1.0 - 1e-9));
        assert_eq!(b.len(), 22);
        // Degenerate inputs fall back instead of panicking.
        assert_eq!(log_linear_bounds(0.0, 1.0, 3), vec![1.0]);
        assert_eq!(log_linear_bounds(2.0, 1.0, 3), vec![2.0]);
        assert_eq!(log_linear_bounds(1.0, 2.0, 0), vec![1.0]);
    }
}
