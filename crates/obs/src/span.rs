//! Span-based hierarchical wall-clock timing.
//!
//! `let _g = span!("train.step");` times the enclosing scope. Spans nest:
//! each thread keeps a stack of open spans, and a span's registry key is the
//! `/`-joined path of names from the stack root (`table3/train.step/
//! net.forward`). On drop, the elapsed time is added to the span's own
//! total *and* to its parent's child-time, so the report can show
//! **self-time** (total minus children) — the number that matters when
//! hunting tensor hot paths.
//!
//! Disabled (`PPN_OBS=off` or `nospans`) spans cost one relaxed atomic
//! load; see the `obs_overhead` test in `ppn-bench`.

use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::HashMap;
use std::time::Instant;

#[derive(Default, Clone)]
struct Node {
    count: u64,
    total_ns: u64,
    child_ns: u64,
}

static REGISTRY: Mutex<Option<HashMap<String, Node>>> = Mutex::new(None);

thread_local! {
    /// Stack of open span paths on this thread.
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard returned by [`enter`] / the `span!` macro.
pub struct SpanGuard {
    start: Option<Instant>,
}

/// Opens a span named `name` (prefer the `span!` macro).
#[inline]
pub fn enter(name: &str) -> SpanGuard {
    if !crate::spans_enabled() {
        return SpanGuard { start: None };
    }
    STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let path = match stack.last() {
            Some(parent) => format!("{parent}/{name}"),
            None => name.to_string(),
        };
        stack.push(path);
    });
    SpanGuard { start: Some(Instant::now()) }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed = start.elapsed().as_nanos() as u64;
        let (path, parent) = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = stack.pop().unwrap_or_default();
            (path, stack.last().cloned())
        });
        let mut reg = REGISTRY.lock();
        let map = reg.get_or_insert_with(HashMap::new);
        let node = map.entry(path).or_default();
        node.count += 1;
        node.total_ns += elapsed;
        if let Some(parent) = parent {
            map.entry(parent).or_default().child_ns += elapsed;
        }
    }
}

/// Aggregated timing for one span path.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SpanStat {
    /// `/`-joined path from the root span.
    pub path: String,
    /// Number of completed executions.
    pub count: u64,
    /// Total wall-clock nanoseconds (includes children).
    pub total_ns: u64,
    /// Nanoseconds spent in child spans.
    pub child_ns: u64,
}

impl SpanStat {
    /// Time spent in this span excluding instrumented children.
    pub fn self_ns(&self) -> u64 {
        self.total_ns.saturating_sub(self.child_ns)
    }

    /// Leaf name (last path segment).
    pub fn name(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or(&self.path)
    }
}

/// Snapshot of every recorded span, sorted by total time descending with
/// ties broken by path so the order is deterministic (the registry is a
/// `HashMap`; without the tie-break, equal totals would surface its
/// iteration order).
pub fn span_stats() -> Vec<SpanStat> {
    let reg = REGISTRY.lock();
    let mut stats: Vec<SpanStat> = reg
        .as_ref()
        .map(|map| {
            map.iter()
                .map(|(path, n)| SpanStat {
                    path: path.clone(),
                    count: n.count,
                    total_ns: n.total_ns,
                    child_ns: n.child_ns,
                })
                .collect()
        })
        .unwrap_or_default();
    stats.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then_with(|| a.path.cmp(&b.path)));
    stats
}

/// Clears the span registry (between experiments / in tests).
pub fn reset_spans() {
    *REGISTRY.lock() = None;
}

/// Renders the span registry as an aligned self-time report.
pub fn span_report() -> String {
    let stats = span_stats();
    if stats.is_empty() {
        return "span report: no spans recorded (PPN_OBS=off or nospans?)\n".to_string();
    }
    let width = stats.iter().map(|s| s.path.len()).max().unwrap_or(4).max(4);
    let mut out = format!(
        "{:<width$} {:>10} {:>12} {:>12} {:>12}\n",
        "span", "count", "total ms", "self ms", "mean µs"
    );
    // ppn-check: allow(hash-iter) span_stats() returns a (total, path)-sorted vec
    for s in &stats {
        out.push_str(&format!(
            "{:<width$} {:>10} {:>12.3} {:>12.3} {:>12.2}\n",
            s.path,
            s.count,
            s.total_ns as f64 / 1e6,
            s.self_ns() as f64 / 1e6,
            s.total_ns as f64 / 1e3 / s.count.max(1) as f64,
        ));
    }
    out
}
