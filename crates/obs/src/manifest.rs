//! Run manifests: provenance capture for experiment binaries.
//!
//! A manifest records everything needed to reproduce an experiment's
//! output: the binary and its arguments, the seed and dataset preset, the
//! serialized experiment config, `git describe` of the working tree, and
//! wall-clock timing. Experiment runners write it next to their results
//! (`results/telemetry/<name>.manifest.json`).

use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Instant;

/// Serializable provenance record for one experiment run.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RunManifest {
    /// Manifest schema version (bump on breaking field changes).
    pub schema: u64,
    /// Unique id: `<name>-<started_unix_ms>-<pid>`.
    pub run_id: String,
    /// Experiment name (usually the binary name).
    pub name: String,
    /// Full command-line arguments.
    pub args: Vec<String>,
    /// Dataset preset, when the experiment pins one.
    pub preset: Option<String>,
    /// RNG seed, when the experiment pins one.
    pub seed: Option<u64>,
    /// JSON-serialized experiment configuration, when available.
    pub config_json: Option<String>,
    /// `git describe --always --dirty` of the source tree.
    pub git_describe: Option<String>,
    /// `PPN_OBS` value the run was started with.
    pub ppn_obs: Option<String>,
    /// Milliseconds since the Unix epoch at start.
    pub started_unix_ms: u64,
    /// Total wall-clock duration (filled by [`RunManifest::finish`]).
    pub duration_secs: f64,
    /// Span self-time report captured at finish (one line per span).
    pub span_report: Vec<String>,
}

/// Live manifest being recorded; call [`ManifestGuard::finish`] (or drop)
/// to stamp the duration and write it out.
pub struct ManifestGuard {
    manifest: RunManifest,
    started: Instant,
    out_dir: PathBuf,
    written: bool,
}

fn git_describe() -> Option<String> {
    let out = Command::new("git").args(["describe", "--always", "--dirty"]).output().ok()?;
    if !out.status.success() {
        return None;
    }
    let text = String::from_utf8_lossy(&out.stdout).trim().to_string();
    (!text.is_empty()).then_some(text)
}

impl RunManifest {
    /// Captures process-level provenance for an experiment called `name`.
    pub fn capture(name: &str) -> RunManifest {
        let started_unix_ms = crate::sink::unix_ms();
        RunManifest {
            schema: 1,
            run_id: format!("{name}-{started_unix_ms}-{}", std::process::id()),
            name: name.to_string(),
            args: std::env::args().collect(),
            preset: None,
            seed: None,
            config_json: None,
            git_describe: git_describe(),
            ppn_obs: std::env::var("PPN_OBS").ok(),
            started_unix_ms,
            duration_secs: 0.0,
            span_report: Vec::new(),
        }
    }

    /// Starts a guarded run writing into `out_dir` on finish/drop.
    pub fn start(name: &str, out_dir: impl AsRef<Path>) -> ManifestGuard {
        ManifestGuard {
            manifest: RunManifest::capture(name),
            started: Instant::now(),
            out_dir: out_dir.as_ref().to_path_buf(),
            written: false,
        }
    }

    /// Writes the manifest as pretty JSON to `dir/<name>.manifest.json`.
    pub fn write(&self, dir: impl AsRef<Path>) -> std::io::Result<PathBuf> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.manifest.json", self.name));
        let json = serde_json::to_vec_pretty(self).map_err(std::io::Error::other)?;
        std::fs::write(&path, json)?;
        Ok(path)
    }
}

impl ManifestGuard {
    /// Attaches the dataset preset.
    pub fn preset(&mut self, preset: &str) -> &mut Self {
        self.manifest.preset = Some(preset.to_string());
        self
    }

    /// Attaches the RNG seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.manifest.seed = Some(seed);
        self
    }

    /// Attaches a JSON-serialized experiment configuration.
    pub fn config_json(&mut self, json: impl Into<String>) -> &mut Self {
        self.manifest.config_json = Some(json.into());
        self
    }

    /// Read access for tests and callers that log the id.
    pub fn manifest(&self) -> &RunManifest {
        &self.manifest
    }

    /// `PPN_OBS=off` means no artifacts at all, manifest included.
    fn active() -> bool {
        let c = crate::config();
        c.stderr_level.is_some() || c.jsonl_level.is_some() || c.spans || c.metrics
    }

    /// Stamps duration + span report and writes the manifest file.
    /// Returns the would-be path without writing when telemetry is fully
    /// disabled.
    pub fn finish(mut self) -> std::io::Result<PathBuf> {
        self.written = true;
        self.manifest.duration_secs = self.started.elapsed().as_secs_f64();
        self.manifest.span_report = crate::span_report().lines().map(str::to_string).collect();
        if !Self::active() {
            return Ok(self.out_dir.join(format!("{}.manifest.json", self.manifest.name)));
        }
        let path = self.manifest.write(&self.out_dir)?;
        crate::event!(
            crate::Level::Info,
            "run.finish",
            run_id = self.manifest.run_id.clone(),
            duration_secs = self.manifest.duration_secs,
            manifest = path.display().to_string(),
        );
        crate::sink::jsonl_flush();
        Ok(path)
    }
}

impl Drop for ManifestGuard {
    fn drop(&mut self) {
        if self.written || !Self::active() {
            return;
        }
        // Best-effort write when the caller forgot (or panicked past)
        // `finish()`.
        self.manifest.duration_secs = self.started.elapsed().as_secs_f64();
        self.manifest.span_report = crate::span_report().lines().map(str::to_string).collect();
        let _ = self.manifest.write(&self.out_dir);
    }
}
