//! Process-wide metrics registry: counters, gauges, fixed-bucket
//! histograms.
//!
//! Handles are cheap `Arc` clones; hot-path operations (`inc`, `observe`)
//! are single atomic ops and never take the registry lock. Snapshots are
//! serializable (JSONL-able) and mergeable — merge is commutative and
//! associative (counters/histograms add, gauges take the max), so shard
//! snapshots can be combined in any order.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Clone)]
enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

static REGISTRY: Mutex<Option<HashMap<String, Handle>>> = Mutex::new(None);

/// Monotonically increasing event count.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::metrics_enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-written floating-point level (stored as `f64` bits).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// Overwrites the level.
    #[inline]
    pub fn set(&self, v: f64) {
        if crate::metrics_enabled() {
            self.0.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current level.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

struct HistInner {
    /// Upper bucket bounds, strictly increasing; an implicit `+inf` bucket
    /// follows the last bound.
    bounds: Vec<f64>,
    /// One count per bound plus the overflow bucket.
    counts: Vec<AtomicU64>,
    /// Σ observed values, as `f64` bits updated by CAS.
    sum_bits: AtomicU64,
    /// Number of observations.
    count: AtomicU64,
}

/// Fixed-bucket histogram.
#[derive(Clone)]
pub struct Histogram(Arc<HistInner>);

impl Histogram {
    fn with_bounds(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing: {bounds:?}"
        );
        Histogram(Arc::new(HistInner {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }))
    }

    /// Records one observation. Bucket `i` counts values `v <= bounds[i]`
    /// (first matching bound); larger values land in the overflow bucket.
    pub fn observe(&self, v: f64) {
        if !crate::metrics_enabled() {
            return;
        }
        let inner = &self.0;
        let idx = inner.bounds.partition_point(|&b| b < v);
        inner.counts[idx].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = inner.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match inner.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Upper bucket bounds (without the implicit overflow bucket).
    pub fn bounds(&self) -> &[f64] {
        &self.0.bounds
    }

    /// Per-bucket counts including the trailing overflow bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }
}

fn with_registry<T>(f: impl FnOnce(&mut HashMap<String, Handle>) -> T) -> T {
    let mut reg = REGISTRY.lock();
    f(reg.get_or_insert_with(HashMap::new))
}

/// Registers (or fetches) the counter `name`.
pub fn counter(name: &str) -> Counter {
    with_registry(|reg| {
        match reg.entry(name.to_string()).or_insert_with(|| Handle::Counter(Counter::default())) {
            Handle::Counter(c) => c.clone(),
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    })
}

/// Registers (or fetches) the gauge `name`.
pub fn gauge(name: &str) -> Gauge {
    with_registry(|reg| {
        match reg.entry(name.to_string()).or_insert_with(|| Handle::Gauge(Gauge::default())) {
            Handle::Gauge(g) => g.clone(),
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    })
}

/// Registers (or fetches) the histogram `name` with the given bucket
/// bounds. The first registration wins; later calls with different bounds
/// get the existing histogram.
pub fn histogram(name: &str, bounds: &[f64]) -> Histogram {
    with_registry(|reg| {
        match reg
            .entry(name.to_string())
            .or_insert_with(|| Handle::Histogram(Histogram::with_bounds(bounds)))
        {
            Handle::Histogram(h) => h.clone(),
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    })
}

/// Clears the registry (between experiments / in tests).
pub fn reset_metrics() {
    *REGISTRY.lock() = None;
}

/// Serializable counter state.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: String,
    /// Counter value.
    pub value: u64,
}

/// Serializable gauge state.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Gauge level.
    pub value: f64,
}

/// Serializable histogram state.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Upper bucket bounds.
    pub bounds: Vec<f64>,
    /// Bucket counts (`bounds.len() + 1`, trailing overflow).
    pub counts: Vec<u64>,
    /// Sum of observations.
    pub sum: f64,
    /// Observation count.
    pub count: u64,
}

/// Full registry snapshot, sorted by metric name.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct MetricsSnapshot {
    /// All counters.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Merges another snapshot into this one. Commutative and associative:
    /// counters and histograms add; gauges keep the maximum.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for c in &other.counters {
            match self.counters.iter_mut().find(|m| m.name == c.name) {
                Some(m) => m.value += c.value,
                None => self.counters.push(c.clone()),
            }
        }
        for g in &other.gauges {
            match self.gauges.iter_mut().find(|m| m.name == g.name) {
                Some(m) => m.value = m.value.max(g.value),
                None => self.gauges.push(g.clone()),
            }
        }
        for h in &other.histograms {
            match self.histograms.iter_mut().find(|m| m.name == h.name) {
                Some(m) => {
                    assert_eq!(m.bounds, h.bounds, "merging histograms with different buckets");
                    for (a, b) in m.counts.iter_mut().zip(&h.counts) {
                        *a += b;
                    }
                    m.sum += h.sum;
                    m.count += h.count;
                }
                None => self.histograms.push(h.clone()),
            }
        }
        self.sort();
    }

    fn sort(&mut self) {
        self.counters.sort_by(|a, b| a.name.cmp(&b.name));
        self.gauges.sort_by(|a, b| a.name.cmp(&b.name));
        self.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    }
}

/// Snapshots every registered metric.
pub fn metrics_snapshot() -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::default();
    with_registry(|reg| {
        for (name, h) in reg.iter() {
            match h {
                Handle::Counter(c) => {
                    snap.counters.push(CounterSnapshot { name: name.clone(), value: c.get() })
                }
                Handle::Gauge(g) => {
                    snap.gauges.push(GaugeSnapshot { name: name.clone(), value: g.get() })
                }
                Handle::Histogram(hist) => snap.histograms.push(HistogramSnapshot {
                    name: name.clone(),
                    bounds: hist.bounds().to_vec(),
                    counts: hist.bucket_counts(),
                    sum: hist.sum(),
                    count: hist.count(),
                }),
            }
        }
    });
    snap.sort();
    snap
}
