//! Process-wide metrics registry: counters, gauges (level or peak mode),
//! and fixed-bucket histograms with optional log-linear auto-bucketing.
//!
//! Handles are cheap `Arc` clones; hot-path operations (`inc`, `observe`)
//! are single atomic ops and never take the registry lock. Snapshots are
//! serializable (JSONL-able), deterministically ordered (sorted by metric
//! name), and mergeable — merge is commutative and associative, so shard
//! snapshots can be combined in any order:
//!
//! * counters add;
//! * **level** gauges add (the total level across shards — e.g. summed
//!   queue depth), **peak** gauges take the max;
//! * histograms with identical bounds add element-wise; histograms with
//!   mismatched bounds are re-bucketed onto the **intersection** of their
//!   bound sets (exact, since every original bucket nests inside an
//!   intersection bucket; disjoint bound sets collapse to a single `+Inf`
//!   bucket). `sum` and `count` are always preserved exactly.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Clone)]
enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

static REGISTRY: Mutex<Option<HashMap<String, Handle>>> = Mutex::new(None);

/// Monotonically increasing event count.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::metrics_enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// How a gauge aggregates: a last-written level, or a monotone peak.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GaugeMode {
    /// `set` overwrites; snapshots report the last-written level and merge
    /// by **sum** (the combined level across shards).
    Level,
    /// `set` only raises; snapshots report the high-water mark and merge
    /// by **max**.
    Peak,
}

/// Floating-point gauge (stored as `f64` bits). See [`GaugeMode`] for the
/// level/peak semantics; [`gauge`] registers levels, [`gauge_peak`] peaks.
#[derive(Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
    mode: GaugeMode,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::with_mode(GaugeMode::Level)
    }
}

impl Gauge {
    fn with_mode(mode: GaugeMode) -> Self {
        Gauge { bits: Arc::new(AtomicU64::new(0f64.to_bits())), mode }
    }

    /// Records `v`: overwrites the level, or raises the peak (a peak gauge
    /// ignores values below its current high-water mark).
    #[inline]
    pub fn set(&self, v: f64) {
        if !crate::metrics_enabled() {
            return;
        }
        match self.mode {
            GaugeMode::Level => self.bits.store(v.to_bits(), Ordering::Relaxed),
            GaugeMode::Peak => {
                let mut cur = self.bits.load(Ordering::Relaxed);
                loop {
                    if v.total_cmp(&f64::from_bits(cur)) != std::cmp::Ordering::Greater {
                        break;
                    }
                    match self.bits.compare_exchange_weak(
                        cur,
                        v.to_bits(),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => break,
                        Err(actual) => cur = actual,
                    }
                }
            }
        }
    }

    /// Current level (or high-water mark for peak gauges).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// This gauge's aggregation mode.
    pub fn mode(&self) -> GaugeMode {
        self.mode
    }
}

struct HistInner {
    /// Upper bucket bounds, strictly increasing; an implicit `+inf` bucket
    /// follows the last bound.
    bounds: Vec<f64>,
    /// One count per bound plus the overflow bucket.
    counts: Vec<AtomicU64>,
    /// Σ observed values, as `f64` bits updated by CAS.
    sum_bits: AtomicU64,
    /// Number of observations.
    count: AtomicU64,
}

/// Fixed-bucket histogram.
#[derive(Clone)]
pub struct Histogram(Arc<HistInner>);

impl Histogram {
    fn with_bounds(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing: {bounds:?}"
        );
        Histogram(Arc::new(HistInner {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }))
    }

    /// Records one observation. Bucket `i` counts values `v <= bounds[i]`
    /// (first matching bound); larger values land in the overflow bucket.
    pub fn observe(&self, v: f64) {
        if !crate::metrics_enabled() {
            return;
        }
        let inner = &self.0;
        let idx = inner.bounds.partition_point(|&b| b < v);
        inner.counts[idx].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = inner.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match inner.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Upper bucket bounds (without the implicit overflow bucket).
    pub fn bounds(&self) -> &[f64] {
        &self.0.bounds
    }

    /// Per-bucket counts including the trailing overflow bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }
}

fn with_registry<T>(f: impl FnOnce(&mut HashMap<String, Handle>) -> T) -> T {
    let mut reg = REGISTRY.lock();
    f(reg.get_or_insert_with(HashMap::new))
}

/// Registers (or fetches) the counter `name`.
pub fn counter(name: &str) -> Counter {
    with_registry(|reg| {
        match reg.entry(name.to_string()).or_insert_with(|| Handle::Counter(Counter::default())) {
            Handle::Counter(c) => c.clone(),
            // ppn-check: allow(no-panic) registering one name as two metric kinds is a programming error; failing fast beats silently splitting the metric
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    })
}

fn gauge_with_mode(name: &str, mode: GaugeMode) -> Gauge {
    with_registry(|reg| {
        match reg.entry(name.to_string()).or_insert_with(|| Handle::Gauge(Gauge::with_mode(mode))) {
            Handle::Gauge(g) if g.mode == mode => g.clone(),
            Handle::Gauge(g) => {
                // ppn-check: allow(no-panic) level/peak mix-ups on one name corrupt merge semantics; fail fast like a kind mismatch
                panic!("gauge `{name}` already registered as {:?}, requested {mode:?}", g.mode)
            }
            // ppn-check: allow(no-panic) registering one name as two metric kinds is a programming error; failing fast beats silently splitting the metric
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    })
}

/// Registers (or fetches) the level gauge `name` (last-written value; shard
/// merges sum).
pub fn gauge(name: &str) -> Gauge {
    gauge_with_mode(name, GaugeMode::Level)
}

/// Registers (or fetches) the peak gauge `name` (monotone high-water mark;
/// shard merges take the max). Conventionally named `*_peak`.
pub fn gauge_peak(name: &str) -> Gauge {
    gauge_with_mode(name, GaugeMode::Peak)
}

/// Registers (or fetches) the histogram `name` with the given bucket
/// bounds. The first registration wins; later calls with different bounds
/// get the existing histogram.
pub fn histogram(name: &str, bounds: &[f64]) -> Histogram {
    with_registry(|reg| {
        match reg
            .entry(name.to_string())
            .or_insert_with(|| Handle::Histogram(Histogram::with_bounds(bounds)))
        {
            Handle::Histogram(h) => h.clone(),
            // ppn-check: allow(no-panic) registering one name as two metric kinds is a programming error; failing fast beats silently splitting the metric
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    })
}

/// Registers (or fetches) the histogram `name` with log-linear
/// auto-buckets (1 µs – 10 s, 3 per decade; see
/// [`crate::prom::default_latency_bounds_ms`]) — for latency-style metrics
/// in milliseconds that don't want hand-picked bounds.
pub fn auto_histogram(name: &str) -> Histogram {
    histogram(name, &crate::prom::default_latency_bounds_ms())
}

/// Clears the registry (between experiments / in tests).
pub fn reset_metrics() {
    *REGISTRY.lock() = None;
}

/// Serializable counter state.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: String,
    /// Counter value.
    pub value: u64,
}

/// Serializable gauge state.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Gauge level (or high-water mark when `peak`).
    pub value: f64,
    /// True for peak-mode gauges (merge by max instead of sum).
    pub peak: bool,
}

/// Serializable histogram state.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Upper bucket bounds.
    pub bounds: Vec<f64>,
    /// Bucket counts (`bounds.len() + 1`, trailing overflow).
    pub counts: Vec<u64>,
    /// Sum of observations.
    pub sum: f64,
    /// Observation count.
    pub count: u64,
}

/// Full registry snapshot, sorted by metric name.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct MetricsSnapshot {
    /// All counters.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms.
    pub histograms: Vec<HistogramSnapshot>,
}

/// Re-buckets `counts` (over `bounds` + implicit overflow) onto
/// `new_bounds`, a subset of `bounds`. Exact: each original bucket nests
/// inside exactly one target bucket.
fn rebucket(bounds: &[f64], counts: &[u64], new_bounds: &[f64]) -> Vec<u64> {
    let mut out = vec![0u64; new_bounds.len() + 1];
    for (i, &c) in counts.iter().enumerate() {
        let target = match bounds.get(i) {
            // First new bound ≥ this bucket's upper bound; none → overflow.
            Some(b) => new_bounds.partition_point(|nb| nb < b),
            None => new_bounds.len(),
        };
        out[target] += c;
    }
    out
}

/// The sorted intersection of two strictly-increasing bound vectors,
/// compared bitwise (bounds come from registration constants, so bitwise
/// equality is the right identity).
fn bounds_intersection(a: &[f64], b: &[f64]) -> Vec<f64> {
    let b_bits: Vec<u64> = b.iter().map(|x| x.to_bits()).collect();
    a.iter().copied().filter(|x| b_bits.contains(&x.to_bits())).collect()
}

impl MetricsSnapshot {
    /// Merges another snapshot into this one. Commutative and associative;
    /// see the module docs for the per-kind rules (counters and level
    /// gauges add, peak gauges max, histograms re-bucket onto the bound
    /// intersection when bounds mismatch).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for c in &other.counters {
            match self.counters.iter_mut().find(|m| m.name == c.name) {
                Some(m) => m.value += c.value,
                None => self.counters.push(c.clone()),
            }
        }
        for g in &other.gauges {
            match self.gauges.iter_mut().find(|m| m.name == g.name) {
                Some(m) => {
                    // Mixed-mode merges (a level meeting a peak under one
                    // name) conservatively become a peak.
                    if m.peak || g.peak {
                        m.value = m.value.max(g.value);
                        m.peak = true;
                    } else {
                        m.value += g.value;
                    }
                }
                None => self.gauges.push(g.clone()),
            }
        }
        for h in &other.histograms {
            match self.histograms.iter_mut().find(|m| m.name == h.name) {
                Some(m) => {
                    if m.bounds == h.bounds {
                        for (a, b) in m.counts.iter_mut().zip(&h.counts) {
                            *a += b;
                        }
                    } else {
                        let merged = bounds_intersection(&m.bounds, &h.bounds);
                        let mut counts = rebucket(&m.bounds, &m.counts, &merged);
                        for (a, b) in counts.iter_mut().zip(rebucket(&h.bounds, &h.counts, &merged))
                        {
                            *a += b;
                        }
                        m.bounds = merged;
                        m.counts = counts;
                    }
                    m.sum += h.sum;
                    m.count += h.count;
                }
                None => self.histograms.push(h.clone()),
            }
        }
        self.sort();
    }

    /// Sorts counters, gauges, and histograms by metric name, making the
    /// serialized form byte-stable. [`metrics_snapshot`] and
    /// [`MetricsSnapshot::merge`] call this; hand-built snapshots should
    /// too before serialization.
    pub fn sort(&mut self) {
        self.counters.sort_by(|a, b| a.name.cmp(&b.name));
        self.gauges.sort_by(|a, b| a.name.cmp(&b.name));
        self.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    }

    /// Renders this snapshot in Prometheus text exposition format (see
    /// [`crate::prom::render`]).
    pub fn to_prometheus(&self) -> String {
        crate::prom::render(self)
    }
}

/// Snapshots every registered metric, sorted by name (byte-stable across
/// runs that register the same metrics).
pub fn metrics_snapshot() -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::default();
    with_registry(|reg| {
        for (name, h) in reg.iter() {
            match h {
                Handle::Counter(c) => {
                    snap.counters.push(CounterSnapshot { name: name.clone(), value: c.get() })
                }
                Handle::Gauge(g) => snap.gauges.push(GaugeSnapshot {
                    name: name.clone(),
                    value: g.get(),
                    peak: g.mode() == GaugeMode::Peak,
                }),
                Handle::Histogram(hist) => snap.histograms.push(HistogramSnapshot {
                    name: name.clone(),
                    bounds: hist.bounds().to_vec(),
                    counts: hist.bucket_counts(),
                    sum: hist.sum(),
                    count: hist.count(),
                }),
            }
        }
    });
    snap.sort();
    snap
}
