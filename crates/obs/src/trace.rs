//! Request-scoped distributed tracing: trace/span ids, sampling, and JSONL
//! span events.
//!
//! A [`TraceSpan`] is one timed operation; a [`TraceContext`] is the
//! (trace id, span id) pair children attach to. The root span of a request
//! decides — once — whether the whole trace is **sampled**; everything
//! derived from an unsampled root is inert (a couple of relaxed atomic ops,
//! no clock reads, no emission), which is what keeps tracing inside the
//! observability overhead budget.
//!
//! Sampling is driven by the `PPN_TRACE_SAMPLE` environment variable:
//!
//! | value | effect |
//! |---|---|
//! | unset / `0` / `off` | tracing disabled (default) |
//! | `1` or `1/1` | every trace sampled |
//! | `1/N` (or bare `N`) | every `N`-th root span sampled |
//!
//! Sampled spans are emitted on drop as `trace.span` events through the
//! standard sink (enable the JSONL sink with `PPN_OBS=jsonl=PATH` to
//! capture them), carrying hex `trace`/`span`/`parent` ids, the span name,
//! and `start_ns`/`dur_ns` relative to process start. The `ppn-trace`
//! binary turns these lines into flamegraphs, latency breakdowns, and
//! per-trace waterfalls.
//!
//! ```no_run
//! let root = ppn_obs::trace::TraceSpan::root("serve.request");
//! let ctx = root.context();
//! {
//!     let _forward = ctx.child("serve.forward");
//!     // … batched forward pass …
//! } // `serve.forward` emitted here (if sampled)
//! // `serve.request` emitted when `root` drops
//! ```

use crate::sink::instant_offset_ns;
use crate::{FieldValue, Level};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Sentinel meaning "not yet initialised from the environment".
const SAMPLE_UNSET: u64 = u64::MAX;

/// 1/N sampling denominator; 0 disables tracing.
static SAMPLE_EVERY: AtomicU64 = AtomicU64::new(SAMPLE_UNSET);
/// Root-span counter driving the every-Nth sampling decision.
static ROOT_SEQ: AtomicU64 = AtomicU64::new(0);
/// Id counter, mixed through splitmix64 for well-spread ids.
static ID_SEQ: AtomicU64 = AtomicU64::new(0);

/// SplitMix64 finalizer: bijective, so ids from distinct counters never
/// collide within a process.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Fresh non-zero id, unique within the process and seeded by pid so ids
/// from different processes are unlikely to collide in shared logs.
fn next_id() -> u64 {
    let seq = ID_SEQ.fetch_add(1, Ordering::Relaxed);
    let seed = (std::process::id() as u64) << 32;
    let id = splitmix64(seed ^ seq);
    if id == 0 {
        1
    } else {
        id
    }
}

/// Parses a `PPN_TRACE_SAMPLE` value into the 1/N denominator (0 = off).
pub fn parse_sample_rate(raw: &str) -> u64 {
    let raw = raw.trim();
    if raw.is_empty() || raw == "off" || raw == "none" {
        return 0;
    }
    let denom = match raw.split_once('/') {
        Some((num, den)) => {
            if num.trim() != "1" {
                eprintln!("[ppn-obs] PPN_TRACE_SAMPLE `{raw}`: only 1/N fractions are supported");
                return 0;
            }
            den.trim().parse::<u64>().ok()
        }
        None => raw.parse::<u64>().ok(),
    };
    match denom {
        Some(n) => n,
        None => {
            eprintln!("[ppn-obs] ignoring unparseable PPN_TRACE_SAMPLE `{raw}`");
            0
        }
    }
}

/// The active sampling denominator (0 = tracing off), initialising from
/// `PPN_TRACE_SAMPLE` on first call.
pub fn sample_rate() -> u64 {
    let cur = SAMPLE_EVERY.load(Ordering::Relaxed);
    if cur != SAMPLE_UNSET {
        return cur;
    }
    let parsed = match std::env::var("PPN_TRACE_SAMPLE") {
        Ok(raw) => parse_sample_rate(&raw),
        Err(_) => 0,
    };
    // First writer wins; concurrent initialisers computed the same value.
    let _ =
        SAMPLE_EVERY.compare_exchange(SAMPLE_UNSET, parsed, Ordering::Relaxed, Ordering::Relaxed);
    SAMPLE_EVERY.load(Ordering::Relaxed)
}

/// Overrides the sampling denominator programmatically (tests, probes).
/// `0` disables tracing; `1` samples every trace.
pub fn set_sample_rate(every: u64) {
    SAMPLE_EVERY.store(every.min(SAMPLE_UNSET - 1), Ordering::Relaxed);
}

/// Every-Nth sampling decision for a new root span.
fn sample_next() -> bool {
    let every = sample_rate();
    if every == 0 {
        return false;
    }
    ROOT_SEQ.fetch_add(1, Ordering::Relaxed).is_multiple_of(every)
}

/// The (trace id, span id) coordinates children attach to. `Copy`, 16
/// bytes, safe to ship across threads inside queued requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Trace id shared by every span of one request; 0 = unsampled.
    trace_id: u64,
    /// The span new children report as their parent.
    span_id: u64,
}

impl TraceContext {
    /// An inert context: children and emissions are no-ops.
    pub fn inert() -> TraceContext {
        TraceContext { trace_id: 0, span_id: 0 }
    }

    /// Whether spans derived from this context will be emitted.
    #[inline]
    pub fn is_sampled(&self) -> bool {
        self.trace_id != 0
    }

    /// The trace id as the 16-hex-digit string used in span events
    /// (`None` when unsampled).
    pub fn trace_id_hex(&self) -> Option<String> {
        self.is_sampled().then(|| format!("{:016x}", self.trace_id))
    }

    /// Opens a child span guard; the span is emitted when the guard drops.
    #[inline]
    pub fn child(&self, name: &'static str) -> TraceSpan {
        if !self.is_sampled() {
            return TraceSpan::inert();
        }
        TraceSpan {
            ctx: TraceContext { trace_id: self.trace_id, span_id: next_id() },
            parent: self.span_id,
            name,
            start: Some(Instant::now()),
        }
    }

    /// Emits a child span with explicit endpoints — for stages whose start
    /// and end are observed on different threads (e.g. queue wait, measured
    /// from the handler's enqueue instant to the batcher's drain instant).
    pub fn emit_span(&self, name: &'static str, start: Instant, end: Instant) {
        if !self.is_sampled() {
            return;
        }
        let dur = end.saturating_duration_since(start);
        emit_span_event(self.trace_id, next_id(), self.span_id, name, start, dur.as_nanos() as u64);
    }

    /// Attaches a key/value annotation to this context's span, emitted as a
    /// `trace.annotation` event — how facts that are data rather than
    /// timing (e.g. the model version that served a `/decide`) get stamped
    /// onto the span tree. No-op when unsampled.
    pub fn annotate(&self, key: &'static str, value: u64) {
        if !self.is_sampled() || !crate::enabled(Level::Trace) {
            return;
        }
        crate::emit_event(
            Level::Trace,
            "trace.annotation",
            &[
                ("trace", FieldValue::Str(format!("{:016x}", self.trace_id))),
                ("span", FieldValue::Str(format!("{:016x}", self.span_id))),
                ("key", FieldValue::Str(key.to_string())),
                ("value", FieldValue::U64(value)),
            ],
        );
    }
}

/// RAII guard for one traced operation; emits its `trace.span` event on
/// drop. Obtain via [`TraceSpan::root`] or [`TraceContext::child`].
pub struct TraceSpan {
    /// trace id + this span's own id (the parent for nested children).
    ctx: TraceContext,
    parent: u64,
    name: &'static str,
    /// `None` for inert (unsampled) spans — no clock read is paid.
    start: Option<Instant>,
}

impl TraceSpan {
    /// An inert span: context is unsampled, drop emits nothing.
    pub fn inert() -> TraceSpan {
        TraceSpan { ctx: TraceContext::inert(), parent: 0, name: "", start: None }
    }

    /// Starts a new trace root, applying the every-Nth sampling decision.
    /// Unsampled roots are inert and cost two relaxed atomic ops.
    pub fn root(name: &'static str) -> TraceSpan {
        if !sample_next() {
            return TraceSpan::inert();
        }
        TraceSpan {
            ctx: TraceContext { trace_id: next_id(), span_id: next_id() },
            parent: 0,
            name,
            start: Some(Instant::now()),
        }
    }

    /// The context children of this span should attach to.
    pub fn context(&self) -> TraceContext {
        self.ctx
    }

    /// Whether this span will be emitted on drop.
    pub fn is_sampled(&self) -> bool {
        self.ctx.is_sampled()
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let dur_ns = start.elapsed().as_nanos() as u64;
        emit_span_event(self.ctx.trace_id, self.ctx.span_id, self.parent, self.name, start, dur_ns);
    }
}

/// Writes one `trace.span` event through the sink (trace level, so it only
/// reaches sinks configured to accept the firehose — in practice the JSONL
/// sink).
fn emit_span_event(
    trace_id: u64,
    span_id: u64,
    parent: u64,
    name: &str,
    start: Instant,
    dur_ns: u64,
) {
    if !crate::enabled(Level::Trace) {
        return;
    }
    crate::emit_event(
        Level::Trace,
        "trace.span",
        &[
            ("trace", FieldValue::Str(format!("{trace_id:016x}"))),
            ("span", FieldValue::Str(format!("{span_id:016x}"))),
            ("parent", FieldValue::Str(format!("{parent:016x}"))),
            ("name", FieldValue::Str(name.to_string())),
            ("start_ns", FieldValue::U64(instant_offset_ns(start))),
            ("dur_ns", FieldValue::U64(dur_ns)),
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sampling denominator and root counter are process globals, so
    /// tests that mutate them serialize on this lock.
    static SAMPLE_LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());

    #[test]
    fn sample_rate_grammar() {
        assert_eq!(parse_sample_rate("0"), 0);
        assert_eq!(parse_sample_rate("off"), 0);
        assert_eq!(parse_sample_rate(""), 0);
        assert_eq!(parse_sample_rate("1"), 1);
        assert_eq!(parse_sample_rate("1/1"), 1);
        assert_eq!(parse_sample_rate("1/16"), 16);
        assert_eq!(parse_sample_rate(" 1/64 "), 64);
        assert_eq!(parse_sample_rate("64"), 64);
        assert_eq!(parse_sample_rate("2/3"), 0, "non-unit fractions are rejected");
        assert_eq!(parse_sample_rate("bogus"), 0);
    }

    #[test]
    fn ids_are_unique_and_nonzero() {
        let ids: Vec<u64> = (0..1_000).map(|_| next_id()).collect();
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
        assert!(ids.iter().all(|&i| i != 0));
    }

    #[test]
    fn inert_spans_stay_inert() {
        let span = TraceSpan::inert();
        assert!(!span.is_sampled());
        let ctx = span.context();
        assert!(!ctx.is_sampled());
        assert!(ctx.trace_id_hex().is_none());
        let child = ctx.child("x");
        assert!(!child.is_sampled());
        // emit_span/annotate on an inert context are no-ops (must not
        // panic or emit).
        ctx.emit_span("y", Instant::now(), Instant::now());
        ctx.annotate("model_version", 7);
    }

    #[test]
    fn sampling_picks_every_nth_root() {
        let _serial = SAMPLE_LOCK.lock();
        set_sample_rate(4);
        // Align to the start of a sampling period, then count.
        while !TraceSpan::root("t.align").is_sampled() {}
        let sampled = (0..16).filter(|_| TraceSpan::root("t.count").is_sampled()).count();
        set_sample_rate(0);
        assert_eq!(sampled, 4, "1/4 sampling over the 16 roots after an aligned hit");
    }

    #[test]
    fn child_contexts_link_to_their_parent() {
        let _serial = SAMPLE_LOCK.lock();
        set_sample_rate(1);
        let root = TraceSpan::root("t.root");
        assert!(root.is_sampled());
        let ctx = root.context();
        let child = ctx.child("t.child");
        assert!(child.is_sampled());
        let grandchild_ctx = child.context();
        assert!(grandchild_ctx.is_sampled());
        // Same trace, fresh span id.
        assert_eq!(ctx.trace_id_hex(), grandchild_ctx.trace_id_hex());
        assert_ne!(ctx.span_id, grandchild_ctx.span_id);
        set_sample_rate(0);
    }
}
