#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # ppn-obs
//!
//! Zero-heavy-dependency observability substrate for the PPN workspace:
//!
//! * [`span`] — hierarchical wall-clock timers (`span!("train.step")`)
//!   aggregated into a total/self-time report, a poor-man's profiler for the
//!   tensor hot paths;
//! * [`metrics`] — a process-wide registry of counters, gauges, and
//!   fixed-bucket histograms behind `parking_lot` locks;
//! * leveled structured logging ([`obs_info!`], [`event!`], …) with two
//!   sinks: human-readable stderr and machine-readable JSONL under
//!   `results/telemetry/`;
//! * [`manifest::RunManifest`] — provenance capture (binary, args, seed,
//!   git describe, timing) so every table/figure is reproducible from its
//!   manifest;
//! * [`trace`] — request-scoped distributed tracing ([`TraceSpan`] /
//!   [`TraceContext`]) with `PPN_TRACE_SAMPLE=1/N` sampling, emitted as
//!   `trace.span` JSONL events the `ppn-trace` binary turns into
//!   flamegraphs, latency breakdowns, and waterfalls;
//! * [`prom`] — Prometheus text exposition of metric snapshots (cumulative
//!   `le` buckets, `+Inf`, `_sum`/`_count`) plus log-linear auto-bucketing;
//! * [`stats::StatsServer`] — a one-thread `GET /metrics` Prometheus
//!   endpoint so trainers and experiment binaries can be scraped mid-run.
//!
//! ## Configuration
//!
//! Everything is driven by the `PPN_OBS` environment variable, a
//! comma-separated token list parsed by [`ObsConfig::from_env_str`]:
//!
//! | token | effect |
//! |---|---|
//! | `off` | disable all sinks, spans, and metrics (near-zero overhead) |
//! | `error`/`warn`/`info`/`debug`/`trace` | stderr log level (default `info`) |
//! | `jsonl` | JSONL sink at `results/telemetry/<process>-<pid>.jsonl` |
//! | `jsonl=PATH` | JSONL sink at `PATH` |
//! | `quiet` | suppress the human stderr sink (JSONL unaffected) |
//! | `nospans` | disable span timing only |
//!
//! e.g. `PPN_OBS=debug,jsonl cargo run --bin table3_profitability`.
//!
//! The first telemetry call auto-initialises from the environment;
//! [`init`] / [`init_from_env`] make it explicit (and are idempotent).

/// The single audited wall-clock read point for non-obs crates.
pub mod clock;
/// Run manifests: provenance capture for experiment binaries.
pub mod manifest;
/// Counters, gauges (level/peak), histograms, snapshots, and merge.
pub mod metrics;
/// Prometheus text exposition and log-linear auto-bucketing.
pub mod prom;
/// Log/event sinks: human-readable stderr and machine-readable JSONL.
pub mod sink;
/// Hierarchical wall-clock span timing (the aggregate profiler).
pub mod span;
/// Lightweight Prometheus stats endpoint for trainer-side processes.
pub mod stats;
/// Request-scoped distributed tracing with `PPN_TRACE_SAMPLE` sampling.
pub mod trace;

pub use manifest::RunManifest;
pub use metrics::{
    auto_histogram, counter, gauge, gauge_peak, histogram, metrics_snapshot, MetricsSnapshot,
};
pub use sink::{emit_event, emit_log, FieldValue};
pub use span::{span_report, span_stats, SpanGuard, SpanStat};
pub use stats::StatsServer;
pub use trace::{TraceContext, TraceSpan};

use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::OnceLock;

/// Log severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or surprising failures.
    Error = 1,
    /// Suspicious conditions that do not stop the run.
    Warn = 2,
    /// Run-level progress (default stderr level).
    Info = 3,
    /// Per-epoch / per-experiment detail.
    Debug = 4,
    /// Per-step / per-period firehose.
    Trace = 5,
}

impl Level {
    /// Lower-case name, as emitted into JSONL.
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

/// Parsed observability configuration. See the crate docs for the `PPN_OBS`
/// token grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsConfig {
    /// Maximum level written to stderr (`None` silences the sink).
    pub stderr_level: Option<Level>,
    /// Maximum level written to the JSONL sink (`None` disables it).
    pub jsonl_level: Option<Level>,
    /// JSONL output path (`None` → `results/telemetry/<process>-<pid>.jsonl`).
    pub jsonl_path: Option<String>,
    /// Record span timings.
    pub spans: bool,
    /// Record metrics (counters/gauges/histograms).
    pub metrics: bool,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            stderr_level: Some(Level::Info),
            jsonl_level: None,
            jsonl_path: None,
            spans: true,
            metrics: true,
        }
    }
}

impl ObsConfig {
    /// Fully-disabled configuration (`PPN_OBS=off`).
    pub fn off() -> Self {
        ObsConfig {
            stderr_level: None,
            jsonl_level: None,
            jsonl_path: None,
            spans: false,
            metrics: false,
        }
    }

    /// Parses a `PPN_OBS`-style token list.
    pub fn from_env_str(raw: &str) -> Self {
        let mut cfg = ObsConfig::default();
        for token in raw.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            match token {
                "off" | "0" | "none" => return ObsConfig::off(),
                "error" => cfg.stderr_level = Some(Level::Error),
                "warn" => cfg.stderr_level = Some(Level::Warn),
                "info" => cfg.stderr_level = Some(Level::Info),
                "debug" => cfg.stderr_level = Some(Level::Debug),
                "trace" => cfg.stderr_level = Some(Level::Trace),
                "quiet" => cfg.stderr_level = None,
                "jsonl" => cfg.jsonl_level = Some(Level::Trace),
                "spans" => cfg.spans = true,
                "nospans" => cfg.spans = false,
                "nometrics" => cfg.metrics = false,
                other => {
                    if let Some(path) = other.strip_prefix("jsonl=") {
                        cfg.jsonl_level = Some(Level::Trace);
                        cfg.jsonl_path = Some(path.to_string());
                    } else {
                        eprintln!("[ppn-obs] ignoring unknown PPN_OBS token `{other}`");
                    }
                }
            }
        }
        cfg
    }

    /// Reads `PPN_OBS` from the process environment.
    pub fn from_env() -> Self {
        match std::env::var("PPN_OBS") {
            Ok(raw) => Self::from_env_str(&raw),
            Err(_) => ObsConfig::default(),
        }
    }

    fn max_level(&self) -> u8 {
        let s = self.stderr_level.map(|l| l as u8).unwrap_or(0);
        let j = self.jsonl_level.map(|l| l as u8).unwrap_or(0);
        s.max(j)
    }
}

static CONFIG: OnceLock<ObsConfig> = OnceLock::new();
/// Cached `max(stderr_level, jsonl_level)` for the fast path; 0 = all off.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(u8::MAX);
/// Cached `spans` flag for the fast path.
static SPANS_ON: AtomicBool = AtomicBool::new(true);
/// Cached `metrics` flag for the fast path.
static METRICS_ON: AtomicBool = AtomicBool::new(true);

/// Installs an explicit configuration. First caller wins (subsequent calls
/// — including the implicit env-var initialisation — are no-ops), matching
/// the usual logger-initialisation contract.
pub fn init(cfg: ObsConfig) -> &'static ObsConfig {
    let installed = CONFIG.get_or_init(|| cfg);
    MAX_LEVEL.store(installed.max_level(), Ordering::Relaxed);
    SPANS_ON.store(installed.spans, Ordering::Relaxed);
    METRICS_ON.store(installed.metrics, Ordering::Relaxed);
    installed
}

/// Installs the configuration parsed from `PPN_OBS` (idempotent).
pub fn init_from_env() -> &'static ObsConfig {
    init(ObsConfig::from_env())
}

/// The active configuration, auto-initialising from the environment.
pub fn config() -> &'static ObsConfig {
    match CONFIG.get() {
        Some(c) => c,
        None => init_from_env(),
    }
}

/// Fast check: would an event at `level` reach any sink?
#[inline]
pub fn enabled(level: Level) -> bool {
    let max = MAX_LEVEL.load(Ordering::Relaxed);
    if max == u8::MAX {
        // Not initialised yet: initialise, then re-check.
        return level as u8 <= config().max_level();
    }
    level as u8 <= max
}

/// Fast check: is span timing active?
#[inline]
pub fn spans_enabled() -> bool {
    if MAX_LEVEL.load(Ordering::Relaxed) == u8::MAX {
        config();
    }
    SPANS_ON.load(Ordering::Relaxed)
}

/// Fast check: is the metrics registry active?
#[inline]
pub fn metrics_enabled() -> bool {
    if MAX_LEVEL.load(Ordering::Relaxed) == u8::MAX {
        config();
    }
    METRICS_ON.load(Ordering::Relaxed)
}

/// Times a lexical scope: `let _g = span!("train.step");`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::enter($name)
    };
}

/// Emits a structured event: `event!(Level::Trace, "train.step", step = i,
/// reward = r);`. Keys become JSONL fields; the stderr sink renders
/// `key=value` pairs.
#[macro_export]
macro_rules! event {
    ($level:expr, $name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::enabled($level) {
            $crate::emit_event(
                $level,
                $name,
                &[$((stringify!($key), $crate::FieldValue::from($value)),)*],
            );
        }
    };
}

/// `error`-level formatted log line.
#[macro_export]
macro_rules! obs_error {
    ($($fmt:tt)+) => {
        if $crate::enabled($crate::Level::Error) {
            $crate::emit_log($crate::Level::Error, &format!($($fmt)+));
        }
    };
}

/// `warn`-level formatted log line.
#[macro_export]
macro_rules! obs_warn {
    ($($fmt:tt)+) => {
        if $crate::enabled($crate::Level::Warn) {
            $crate::emit_log($crate::Level::Warn, &format!($($fmt)+));
        }
    };
}

/// `info`-level formatted log line.
#[macro_export]
macro_rules! obs_info {
    ($($fmt:tt)+) => {
        if $crate::enabled($crate::Level::Info) {
            $crate::emit_log($crate::Level::Info, &format!($($fmt)+));
        }
    };
}

/// `debug`-level formatted log line.
#[macro_export]
macro_rules! obs_debug {
    ($($fmt:tt)+) => {
        if $crate::enabled($crate::Level::Debug) {
            $crate::emit_log($crate::Level::Debug, &format!($($fmt)+));
        }
    };
}

/// `trace`-level formatted log line.
#[macro_export]
macro_rules! obs_trace {
    ($($fmt:tt)+) => {
        if $crate::enabled($crate::Level::Trace) {
            $crate::emit_log($crate::Level::Trace, &format!($($fmt)+));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_grammar_parses_the_documented_matrix() {
        assert_eq!(ObsConfig::from_env_str("off"), ObsConfig::off());
        let c = ObsConfig::from_env_str("debug,jsonl=/tmp/t.jsonl,nospans");
        assert_eq!(c.stderr_level, Some(Level::Debug));
        assert_eq!(c.jsonl_level, Some(Level::Trace));
        assert_eq!(c.jsonl_path.as_deref(), Some("/tmp/t.jsonl"));
        assert!(!c.spans);
        let q = ObsConfig::from_env_str("quiet,jsonl");
        assert_eq!(q.stderr_level, None);
        assert_eq!(q.jsonl_level, Some(Level::Trace));
        // Unknown tokens are ignored, not fatal.
        let u = ObsConfig::from_env_str("info,bogus");
        assert_eq!(u.stderr_level, Some(Level::Info));
    }

    #[test]
    fn off_token_wins_regardless_of_position() {
        assert_eq!(ObsConfig::from_env_str("debug,jsonl,off"), ObsConfig::off());
    }

    #[test]
    fn levels_order_from_error_to_trace() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Info < Level::Trace);
        assert_eq!(Level::Warn.name(), "warn");
    }
}
