//! Log/event sinks: human-readable stderr and machine-readable JSONL.
//!
//! Every emission goes through [`emit_log`] (freeform message) or
//! [`emit_event`] (structured fields). The JSONL sink writes one JSON
//! object per line to `results/telemetry/<process>-<pid>.jsonl` (or the
//! `jsonl=PATH` override), created lazily on first write.

use crate::Level;
use parking_lot::Mutex;
use std::fs;
use std::io::Write;
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// A typed structured-event field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Floating-point field.
    F64(f64),
    /// Signed integer field.
    I64(i64),
    /// Unsigned integer field.
    U64(u64),
    /// Boolean field.
    Bool(bool),
    /// String field.
    Str(String),
}

macro_rules! from_field {
    ($($t:ty => $variant:ident as $cast:ty),* $(,)?) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> Self {
                FieldValue::$variant(v as $cast)
            }
        }
    )*};
}
from_field! {
    f64 => F64 as f64,
    f32 => F64 as f64,
    i64 => I64 as i64,
    i32 => I64 as i64,
    u64 => U64 as u64,
    u32 => U64 as u64,
    usize => U64 as u64,
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl FieldValue {
    fn write_json(&self, s: &mut serde::Ser) {
        match self {
            FieldValue::F64(v) => s.write_f64(*v),
            FieldValue::I64(v) => s.write_i64(*v),
            FieldValue::U64(v) => s.write_u64(*v),
            FieldValue::Bool(v) => s.write_bool(*v),
            FieldValue::Str(v) => s.write_str(v),
        }
    }
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::F64(v) => write!(f, "{v:.6}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

static PROCESS_START: OnceLock<Instant> = OnceLock::new();
static JSONL: Mutex<Option<fs::File>> = Mutex::new(None);
static JSONL_PATH: OnceLock<Option<PathBuf>> = OnceLock::new();

fn uptime_secs() -> f64 {
    PROCESS_START.get_or_init(Instant::now).elapsed().as_secs_f64()
}

/// Nanoseconds between the process-start reference instant and `t` (0 for
/// instants captured before the reference was initialised). Trace events
/// use this as their `start_ns` timebase so spans from one process share a
/// common clock.
pub fn instant_offset_ns(t: Instant) -> u64 {
    let start = *PROCESS_START.get_or_init(Instant::now);
    t.checked_duration_since(start).map(|d| d.as_nanos() as u64).unwrap_or(0)
}

/// Milliseconds since the Unix epoch (0 if the clock is broken).
pub fn unix_ms() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0)
}

/// Short name of the running executable.
pub fn process_name() -> String {
    std::env::current_exe()
        .ok()
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .unwrap_or_else(|| "ppn".to_string())
}

/// The JSONL sink path, if the sink is enabled (resolving the default).
pub fn jsonl_path() -> Option<PathBuf> {
    JSONL_PATH
        .get_or_init(|| {
            let cfg = crate::config();
            cfg.jsonl_level?;
            Some(match &cfg.jsonl_path {
                Some(p) => PathBuf::from(p),
                None => PathBuf::from("results/telemetry").join(format!(
                    "{}-{}.jsonl",
                    process_name(),
                    std::process::id()
                )),
            })
        })
        .clone()
}

fn write_jsonl_line(line: &str) {
    let Some(path) = jsonl_path() else { return };
    let mut guard = JSONL.lock();
    if guard.is_none() {
        if let Some(dir) = path.parent() {
            let _ = fs::create_dir_all(dir);
        }
        match fs::OpenOptions::new().create(true).append(true).open(&path) {
            Ok(f) => *guard = Some(f),
            Err(e) => {
                eprintln!("[ppn-obs] cannot open JSONL sink {}: {e}", path.display());
                return;
            }
        }
    }
    if let Some(f) = guard.as_mut() {
        let _ = f.write_all(line.as_bytes());
        let _ = f.write_all(b"\n");
    }
}

fn stderr_wants(level: Level) -> bool {
    crate::config().stderr_level.is_some_and(|max| level <= max)
}

fn jsonl_wants(level: Level) -> bool {
    crate::config().jsonl_level.is_some_and(|max| level <= max)
}

/// Emits a freeform log message to the active sinks.
pub fn emit_log(level: Level, msg: &str) {
    if stderr_wants(level) {
        eprintln!("[{:>9.3}s {:>5}] {msg}", uptime_secs(), level.name().to_uppercase());
    }
    if jsonl_wants(level) {
        let mut s = serde::Ser::new();
        s.begin_obj();
        s.key("ts_ms");
        s.write_u64(unix_ms());
        s.key("level");
        s.write_str(level.name());
        s.key("event");
        s.write_str("log");
        s.key("msg");
        s.write_str(msg);
        s.end_obj();
        write_jsonl_line(&s.finish());
    }
}

/// Emits a structured event (named, with typed fields) to the active sinks.
pub fn emit_event(level: Level, name: &str, fields: &[(&str, FieldValue)]) {
    if stderr_wants(level) {
        let mut line =
            format!("[{:>9.3}s {:>5}] {name}", uptime_secs(), level.name().to_uppercase());
        for (k, v) in fields {
            line.push_str(&format!(" {k}={v}"));
        }
        eprintln!("{line}");
    }
    if jsonl_wants(level) {
        let mut s = serde::Ser::new();
        s.begin_obj();
        s.key("ts_ms");
        s.write_u64(unix_ms());
        s.key("level");
        s.write_str(level.name());
        s.key("event");
        s.write_str(name);
        for (k, v) in fields {
            s.key(k);
            v.write_json(&mut s);
        }
        s.end_obj();
        write_jsonl_line(&s.finish());
    }
}

/// Flushes the JSONL sink (files are written line-at-a-time, so this only
/// matters for callers that read the file back within the same process).
pub fn jsonl_flush() {
    if let Some(f) = JSONL.lock().as_mut() {
        let _ = f.flush();
    }
}
