//! Lightweight Prometheus stats endpoint for non-server processes.
//!
//! [`StatsServer::start`] binds a TCP listener and serves the current
//! [`crate::metrics_snapshot`] as Prometheus text exposition from a single
//! background thread — so a *trainer* or experiment binary can be scraped
//! mid-run without pulling in the full `ppn-serve` stack. The experiment
//! harness starts one automatically when `PPN_STATS_ADDR` is set (e.g.
//! `PPN_STATS_ADDR=127.0.0.1:9184 cargo run --bin table3_profitability`).
//!
//! Routes: `GET /metrics` (and `/`) → Prometheus text; anything else → 404.
//! One request per connection, `Connection: close` — mirroring the minimal
//! HTTP framing used by `ppn-serve`.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Largest request head the stats endpoint will read before giving up.
const MAX_HEAD: usize = 8 * 1024;

/// A running stats endpoint; dropping the handle shuts it down.
pub struct StatsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl StatsServer {
    /// Binds `addr` (port `0` picks an ephemeral port) and spawns the
    /// single serving thread.
    pub fn start(addr: &str) -> io::Result<StatsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(mut stream) = stream {
                        serve_one(&mut stream);
                    }
                }
            })
        };
        crate::obs_info!("stats: Prometheus endpoint listening on {addr}");
        Ok(StatsServer { addr, stop, handle: Some(handle) })
    }

    /// The bound socket address (resolves an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the serving thread and joins it.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for StatsServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop_and_join();
        }
    }
}

/// Reads the request line and answers one request; transport errors are
/// swallowed (the scraper will just retry).
fn serve_one(stream: &mut TcpStream) {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    // Read until the blank line ending the head (we only need line one).
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") {
        if buf.len() > MAX_HEAD {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.split_whitespace();
    let method = parts.next().unwrap_or_default();
    let path = parts.next().unwrap_or_default();
    let (status, reason, content_type, body) = match (method, path) {
        ("GET", "/metrics") | ("GET", "/") => {
            let body = crate::prom::render(&crate::metrics_snapshot());
            (200u16, "OK", crate::prom::CONTENT_TYPE, body)
        }
        _ => (404, "Not Found", "text/plain; charset=utf-8", "not found\n".to_string()),
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let req = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
        stream.write_all(req.as_bytes()).expect("write");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read");
        let status: u16 =
            raw.split_whitespace().nth(1).and_then(|s| s.parse().ok()).expect("status");
        let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
        (status, body)
    }

    #[test]
    fn serves_prometheus_text_and_404s_elsewhere() {
        crate::init(crate::ObsConfig {
            stderr_level: None,
            jsonl_level: None,
            jsonl_path: None,
            spans: true,
            metrics: true,
        });
        crate::counter("stats.test_counter").add(3);
        let server = StatsServer::start("127.0.0.1:0").expect("stats server starts");
        let addr = server.addr();
        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(body.contains("# TYPE stats_test_counter counter"), "{body}");
        assert!(body.contains("stats_test_counter 3"), "{body}");
        let (status, _) = get(addr, "/nope");
        assert_eq!(status, 404);
        server.shutdown();
    }
}
