//! End-to-end JSONL sink check: events and logs written through the macros
//! parse back with serde_json and carry the documented schema
//! (`ts_ms` / `level` / `event` plus the event's own fields).

use ppn_obs::{Level, ObsConfig};
use serde_json::Value;

#[test]
fn events_round_trip_through_the_jsonl_sink() {
    let path = std::env::temp_dir().join(format!("ppn-obs-rt-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    ppn_obs::init(ObsConfig {
        stderr_level: None,
        jsonl_level: Some(Level::Trace),
        jsonl_path: Some(path.display().to_string()),
        spans: true,
        metrics: true,
    });

    ppn_obs::event!(
        Level::Info,
        "test.event",
        step = 7usize,
        reward = -0.125f64,
        preset = "Crypto-A",
        improved = true,
    );
    ppn_obs::obs_warn!("something {} happened", "odd");
    ppn_obs::event!(Level::Trace, "test.nan", v = f64::NAN);
    ppn_obs::sink::jsonl_flush();

    let text = std::fs::read_to_string(&path).expect("jsonl file written");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "one JSON object per line: {text}");

    let ev = Value::parse(lines[0]).expect("line 0 parses");
    assert!(matches!(ev.field("ts_ms"), Ok(Value::Num(ms)) if *ms > 0.0));
    assert!(matches!(ev.field("level"), Ok(Value::Str(s)) if s == "info"));
    assert!(matches!(ev.field("event"), Ok(Value::Str(s)) if s == "test.event"));
    assert!(matches!(ev.field("step"), Ok(Value::Num(n)) if *n == 7.0));
    assert!(matches!(ev.field("reward"), Ok(Value::Num(r)) if *r == -0.125));
    assert!(matches!(ev.field("preset"), Ok(Value::Str(s)) if s == "Crypto-A"));
    assert!(matches!(ev.field("improved"), Ok(Value::Bool(true))));

    let log = Value::parse(lines[1]).expect("line 1 parses");
    assert!(matches!(log.field("level"), Ok(Value::Str(s)) if s == "warn"));
    assert!(matches!(log.field("event"), Ok(Value::Str(s)) if s == "log"));
    assert!(matches!(log.field("msg"), Ok(Value::Str(s)) if s == "something odd happened"));

    // Non-finite floats serialize as null (JSON has no NaN) and stay
    // parseable.
    let nan = Value::parse(lines[2]).expect("line 2 parses");
    assert!(matches!(nan.field("v"), Ok(Value::Null)));

    let _ = std::fs::remove_file(&path);
}
