//! Registry-level behaviour: histogram bucket edges, span nesting and
//! self-time accounting, concurrent counters, and (via proptest) the
//! order-independence of metric-snapshot merges.

use ppn_obs::metrics::{CounterSnapshot, GaugeSnapshot, HistogramSnapshot};
use ppn_obs::{MetricsSnapshot, ObsConfig};
use proptest::prelude::*;
use std::time::Duration;

/// Quiet sinks, but spans + metrics active. First caller wins, so every
/// test calls this to make the config independent of test ordering.
fn init() {
    ppn_obs::init(ObsConfig {
        stderr_level: None,
        jsonl_level: None,
        jsonl_path: None,
        spans: true,
        metrics: true,
    });
}

#[test]
fn histogram_bucket_boundaries_are_inclusive_upper() {
    init();
    let h = ppn_obs::histogram("reg.bounds", &[1.0, 2.0, 5.0]);
    // A value exactly on a bound lands in that bound's bucket.
    for v in [0.5, 1.0] {
        h.observe(v);
    }
    for v in [1.5, 2.0] {
        h.observe(v);
    }
    for v in [2.1, 5.0] {
        h.observe(v);
    }
    for v in [5.1, 100.0] {
        h.observe(v); // overflow bucket
    }
    assert_eq!(h.bucket_counts(), vec![2, 2, 2, 2]);
    assert_eq!(h.count(), 8);
    let expected_sum = 0.5 + 1.0 + 1.5 + 2.0 + 2.1 + 5.0 + 5.1 + 100.0;
    assert!((h.sum() - expected_sum).abs() < 1e-9);
}

#[test]
fn span_nesting_attributes_self_time_to_the_parent() {
    init();
    ppn_obs::span::reset_spans();
    {
        let _outer = ppn_obs::span!("reg.outer");
        std::thread::sleep(Duration::from_millis(4));
        {
            let _inner = ppn_obs::span!("reg.inner");
            std::thread::sleep(Duration::from_millis(8));
        }
    }
    let stats = ppn_obs::span_stats();
    let outer = stats.iter().find(|s| s.path == "reg.outer").expect("outer span");
    let inner = stats.iter().find(|s| s.path == "reg.outer/reg.inner").expect("nested inner span");
    assert_eq!(outer.count, 1);
    assert_eq!(inner.count, 1);
    assert_eq!(inner.name(), "reg.inner");
    // The inner span's whole duration is charged to the outer's child time.
    assert_eq!(outer.child_ns, inner.total_ns);
    assert!(outer.total_ns > inner.total_ns);
    assert_eq!(outer.self_ns(), outer.total_ns - inner.total_ns);
    assert!(inner.total_ns >= 8_000_000, "inner slept 8ms: {}ns", inner.total_ns);
    // The rendered report mentions both paths.
    let report = ppn_obs::span_report();
    assert!(report.contains("reg.outer"));
    assert!(report.contains("reg.outer/reg.inner"));
}

#[test]
fn counters_are_exact_under_concurrency() {
    init();
    let c = ppn_obs::counter("reg.concurrent");
    let threads: Vec<_> = (0..8)
        .map(|_| {
            let c = c.clone();
            std::thread::spawn(move || {
                for _ in 0..10_000 {
                    c.inc();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(c.get(), 80_000);
    // The registry hands back the same underlying counter by name.
    assert_eq!(ppn_obs::counter("reg.concurrent").get(), 80_000);
}

#[test]
fn gauge_modes_level_overwrites_peak_is_monotone() {
    init();
    let level = ppn_obs::gauge("reg.level_gauge");
    level.set(5.0);
    level.set(2.0);
    assert_eq!(level.get(), 2.0, "level gauges keep the last-written value");
    let peak = ppn_obs::gauge_peak("reg.peak_gauge");
    peak.set(5.0);
    peak.set(2.0);
    assert_eq!(peak.get(), 5.0, "peak gauges ignore values below the high-water mark");
    peak.set(9.0);
    assert_eq!(peak.get(), 9.0);
    // Snapshots carry the mode so merges apply the right rule.
    let snap = ppn_obs::metrics_snapshot();
    let find = |name: &str| snap.gauges.iter().find(|g| g.name == name).expect("gauge in snapshot");
    assert!(!find("reg.level_gauge").peak);
    assert!(find("reg.peak_gauge").peak);
}

#[test]
fn merge_sums_level_gauges_and_maxes_peak_gauges() {
    init();
    let shard = |level: f64, peak: f64| MetricsSnapshot {
        counters: Vec::new(),
        gauges: vec![
            GaugeSnapshot { name: "q.depth".into(), value: level, peak: false },
            GaugeSnapshot { name: "q.depth_peak".into(), value: peak, peak: true },
        ],
        histograms: Vec::new(),
    };
    let mut merged = shard(3.0, 7.0);
    merged.merge(&shard(4.0, 5.0));
    let find = |name: &str| merged.gauges.iter().find(|g| g.name == name).expect("merged gauge");
    assert_eq!(find("q.depth").value, 7.0, "levels sum across shards (total queue depth)");
    assert_eq!(find("q.depth_peak").value, 7.0, "peaks take the max across shards");
}

#[test]
fn merge_rebuckets_mismatched_histogram_bounds_onto_the_intersection() {
    init();
    let mk = |bounds: Vec<f64>, counts: Vec<u64>, sum: f64| MetricsSnapshot {
        counters: Vec::new(),
        gauges: Vec::new(),
        histograms: vec![HistogramSnapshot {
            name: "h".into(),
            count: counts.iter().sum(),
            bounds,
            counts,
            sum,
        }],
    };
    // Fine bounds {1,2,5} meet coarse bounds {2,10}: intersection {2}.
    let mut merged = mk(vec![1.0, 2.0, 5.0], vec![1, 2, 3, 4], 20.0);
    merged.merge(&mk(vec![2.0, 10.0], vec![5, 6, 7], 30.0));
    let h = &merged.histograms[0];
    assert_eq!(h.bounds, vec![2.0]);
    // ≤2 from the fine side: 1+2; ≤2 from the coarse side: 5. Everything
    // else rolls into +Inf. Totals are preserved exactly.
    assert_eq!(h.counts, vec![1 + 2 + 5, 3 + 4 + 6 + 7]);
    assert_eq!(h.count, 10 + 18);
    assert!((h.sum - 50.0).abs() < 1e-12);
}

/// Builds a one-metric-per-kind snapshot from a small generated tuple.
fn snapshot_from(part: (u8, u64)) -> MetricsSnapshot {
    let (which, v) = part;
    let name = format!("m{}", which % 3);
    MetricsSnapshot {
        counters: vec![CounterSnapshot { name: name.clone(), value: v }],
        gauges: vec![GaugeSnapshot { name: name.clone(), value: v as f64 / 8.0, peak: false }],
        histograms: vec![HistogramSnapshot {
            name,
            bounds: vec![10.0, 100.0],
            counts: vec![v % 5, v % 7, v % 3],
            sum: v as f64,
            count: v % 5 + v % 7 + v % 3,
        }],
    }
}

/// A histogram over a bitmask-selected subset of the base bounds
/// `{1, 2, 5, 10}` — so generated snapshots exercise the mismatched-bounds
/// merge contract (re-bucketing onto the intersection).
fn masked_hist(mask: u8, v: u64) -> MetricsSnapshot {
    let base = [1.0, 2.0, 5.0, 10.0];
    let bounds: Vec<f64> =
        base.iter().enumerate().filter(|(i, _)| mask & (1 << i) != 0).map(|(_, b)| *b).collect();
    let counts: Vec<u64> = (0..=bounds.len() as u64).map(|i| (v + i) % 9).collect();
    MetricsSnapshot {
        counters: Vec::new(),
        gauges: Vec::new(),
        histograms: vec![HistogramSnapshot {
            name: "mh".into(),
            count: counts.iter().sum(),
            sum: v as f64 / 4.0,
            bounds,
            counts,
        }],
    }
}

proptest! {
    #[test]
    fn mismatched_bounds_merge_is_order_independent_and_preserves_totals(
        parts in prop::collection::vec((0u8..16, 0u64..1_000), 1..8)
    ) {
        init();
        let snaps: Vec<MetricsSnapshot> = snaps_of(&parts);
        let mut forward = MetricsSnapshot::default();
        for s in &snaps {
            forward.merge(s);
        }
        let mut backward = MetricsSnapshot::default();
        for s in snaps.iter().rev() {
            backward.merge(s);
        }
        prop_assert_eq!(&forward, &backward);
        // Associativity across an arbitrary grouping.
        let (head, tail) = snaps.split_at(snaps.len() / 2);
        let mut left = MetricsSnapshot::default();
        for s in head {
            left.merge(s);
        }
        let mut grouped = MetricsSnapshot::default();
        grouped.merge(&left);
        for s in tail {
            grouped.merge(s);
        }
        prop_assert_eq!(&forward, &grouped);
        // Re-bucketing is exact: total count and sum survive any merge.
        let h = &forward.histograms[0];
        let want_count: u64 = snaps.iter().map(|s| s.histograms[0].count).sum();
        let want_sum: f64 = snaps.iter().map(|s| s.histograms[0].sum).sum();
        prop_assert_eq!(h.counts.iter().sum::<u64>(), want_count);
        prop_assert_eq!(h.count, want_count);
        prop_assert!((h.sum - want_sum).abs() < 1e-9);
        // The merged bounds are the intersection of every input's bounds.
        let inter = parts.iter().fold(0xFu8, |acc, (m, _)| acc & m);
        prop_assert_eq!(h.bounds.len(), inter.count_ones() as usize);
    }
}

fn snaps_of(parts: &[(u8, u64)]) -> Vec<MetricsSnapshot> {
    parts.iter().map(|&(m, v)| masked_hist(m, v)).collect()
}

proptest! {
    #[test]
    fn merge_is_order_independent(parts in prop::collection::vec((0u8..3, 0u64..1_000), 1..8)) {
        init();
        let snaps: Vec<MetricsSnapshot> = parts.iter().map(|&p| snapshot_from(p)).collect();
        let mut forward = MetricsSnapshot::default();
        for s in &snaps {
            forward.merge(s);
        }
        let mut backward = MetricsSnapshot::default();
        for s in snaps.iter().rev() {
            backward.merge(s);
        }
        prop_assert_eq!(&forward, &backward);
        // Associativity: pairwise-merged prefix then the rest equals the
        // straight fold.
        let mut grouped = MetricsSnapshot::default();
        let (head, tail) = snaps.split_at(snaps.len() / 2);
        let mut left = MetricsSnapshot::default();
        for s in head {
            left.merge(s);
        }
        grouped.merge(&left);
        for s in tail {
            grouped.merge(s);
        }
        prop_assert_eq!(&forward, &grouped);
    }
}
