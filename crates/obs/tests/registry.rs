//! Registry-level behaviour: histogram bucket edges, span nesting and
//! self-time accounting, concurrent counters, and (via proptest) the
//! order-independence of metric-snapshot merges.

use ppn_obs::metrics::{CounterSnapshot, GaugeSnapshot, HistogramSnapshot};
use ppn_obs::{MetricsSnapshot, ObsConfig};
use proptest::prelude::*;
use std::time::Duration;

/// Quiet sinks, but spans + metrics active. First caller wins, so every
/// test calls this to make the config independent of test ordering.
fn init() {
    ppn_obs::init(ObsConfig {
        stderr_level: None,
        jsonl_level: None,
        jsonl_path: None,
        spans: true,
        metrics: true,
    });
}

#[test]
fn histogram_bucket_boundaries_are_inclusive_upper() {
    init();
    let h = ppn_obs::histogram("reg.bounds", &[1.0, 2.0, 5.0]);
    // A value exactly on a bound lands in that bound's bucket.
    for v in [0.5, 1.0] {
        h.observe(v);
    }
    for v in [1.5, 2.0] {
        h.observe(v);
    }
    for v in [2.1, 5.0] {
        h.observe(v);
    }
    for v in [5.1, 100.0] {
        h.observe(v); // overflow bucket
    }
    assert_eq!(h.bucket_counts(), vec![2, 2, 2, 2]);
    assert_eq!(h.count(), 8);
    let expected_sum = 0.5 + 1.0 + 1.5 + 2.0 + 2.1 + 5.0 + 5.1 + 100.0;
    assert!((h.sum() - expected_sum).abs() < 1e-9);
}

#[test]
fn span_nesting_attributes_self_time_to_the_parent() {
    init();
    ppn_obs::span::reset_spans();
    {
        let _outer = ppn_obs::span!("reg.outer");
        std::thread::sleep(Duration::from_millis(4));
        {
            let _inner = ppn_obs::span!("reg.inner");
            std::thread::sleep(Duration::from_millis(8));
        }
    }
    let stats = ppn_obs::span_stats();
    let outer = stats.iter().find(|s| s.path == "reg.outer").expect("outer span");
    let inner = stats.iter().find(|s| s.path == "reg.outer/reg.inner").expect("nested inner span");
    assert_eq!(outer.count, 1);
    assert_eq!(inner.count, 1);
    assert_eq!(inner.name(), "reg.inner");
    // The inner span's whole duration is charged to the outer's child time.
    assert_eq!(outer.child_ns, inner.total_ns);
    assert!(outer.total_ns > inner.total_ns);
    assert_eq!(outer.self_ns(), outer.total_ns - inner.total_ns);
    assert!(inner.total_ns >= 8_000_000, "inner slept 8ms: {}ns", inner.total_ns);
    // The rendered report mentions both paths.
    let report = ppn_obs::span_report();
    assert!(report.contains("reg.outer"));
    assert!(report.contains("reg.outer/reg.inner"));
}

#[test]
fn counters_are_exact_under_concurrency() {
    init();
    let c = ppn_obs::counter("reg.concurrent");
    let threads: Vec<_> = (0..8)
        .map(|_| {
            let c = c.clone();
            std::thread::spawn(move || {
                for _ in 0..10_000 {
                    c.inc();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(c.get(), 80_000);
    // The registry hands back the same underlying counter by name.
    assert_eq!(ppn_obs::counter("reg.concurrent").get(), 80_000);
}

/// Builds a one-metric-per-kind snapshot from a small generated tuple.
fn snapshot_from(part: (u8, u64)) -> MetricsSnapshot {
    let (which, v) = part;
    let name = format!("m{}", which % 3);
    MetricsSnapshot {
        counters: vec![CounterSnapshot { name: name.clone(), value: v }],
        gauges: vec![GaugeSnapshot { name: name.clone(), value: v as f64 / 8.0 }],
        histograms: vec![HistogramSnapshot {
            name,
            bounds: vec![10.0, 100.0],
            counts: vec![v % 5, v % 7, v % 3],
            sum: v as f64,
            count: v % 5 + v % 7 + v % 3,
        }],
    }
}

proptest! {
    #[test]
    fn merge_is_order_independent(parts in prop::collection::vec((0u8..3, 0u64..1_000), 1..8)) {
        init();
        let snaps: Vec<MetricsSnapshot> = parts.iter().map(|&p| snapshot_from(p)).collect();
        let mut forward = MetricsSnapshot::default();
        for s in &snaps {
            forward.merge(s);
        }
        let mut backward = MetricsSnapshot::default();
        for s in snaps.iter().rev() {
            backward.merge(s);
        }
        prop_assert_eq!(&forward, &backward);
        // Associativity: pairwise-merged prefix then the rest equals the
        // straight fold.
        let mut grouped = MetricsSnapshot::default();
        let (head, tail) = snaps.split_at(snaps.len() / 2);
        let mut left = MetricsSnapshot::default();
        for s in head {
            left.merge(s);
        }
        grouped.merge(&left);
        for s in tail {
            grouped.merge(s);
        }
        prop_assert_eq!(&forward, &grouped);
    }
}
