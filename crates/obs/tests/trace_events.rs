//! End-to-end trace emission: sampled spans written through the JSONL sink
//! carry the documented `trace.span` schema (hex ids, parent links,
//! `start_ns`/`dur_ns`), and snapshot serialization is byte-stable.

use ppn_obs::trace::{set_sample_rate, TraceSpan};
use ppn_obs::{Level, ObsConfig};
use serde_json::Value;
use std::time::Duration;

#[test]
fn sampled_spans_emit_linked_jsonl_events() {
    let path = std::env::temp_dir().join(format!("ppn-obs-trace-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    ppn_obs::init(ObsConfig {
        stderr_level: None,
        jsonl_level: Some(Level::Trace),
        jsonl_path: Some(path.display().to_string()),
        spans: true,
        metrics: true,
    });
    set_sample_rate(1);
    {
        let root = TraceSpan::root("t.request");
        assert!(root.is_sampled());
        let ctx = root.context();
        {
            let _child = ctx.child("t.forward");
            std::thread::sleep(Duration::from_millis(2));
        }
        let t0 = std::time::Instant::now();
        std::thread::sleep(Duration::from_millis(1));
        ctx.emit_span("t.queue_wait", t0, std::time::Instant::now());
    }
    set_sample_rate(0);
    ppn_obs::sink::jsonl_flush();

    let text = std::fs::read_to_string(&path).expect("trace jsonl written");
    let spans: Vec<Value> = text
        .lines()
        .filter_map(|l| Value::parse(l).ok())
        .filter(|v| matches!(v.field("event"), Ok(Value::Str(s)) if s == "trace.span"))
        .collect();
    assert_eq!(spans.len(), 3, "root + child + explicit span: {text}");

    let str_field = |v: &Value, k: &str| match v.field(k) {
        Ok(Value::Str(s)) => s.clone(),
        other => panic!("field {k} must be a string, got {other:?}"),
    };
    let num_field = |v: &Value, k: &str| match v.field(k) {
        Ok(Value::Num(n)) => *n,
        other => panic!("field {k} must be a number, got {other:?}"),
    };
    let root = spans.iter().find(|s| str_field(s, "name") == "t.request").expect("root span event");
    let child =
        spans.iter().find(|s| str_field(s, "name") == "t.forward").expect("child span event");
    let explicit =
        spans.iter().find(|s| str_field(s, "name") == "t.queue_wait").expect("explicit span event");

    // One shared 16-hex-digit trace id; children link to the root span id.
    let trace_id = str_field(root, "trace");
    assert_eq!(trace_id.len(), 16);
    assert!(trace_id.chars().all(|c| c.is_ascii_hexdigit()));
    assert_eq!(str_field(child, "trace"), trace_id);
    assert_eq!(str_field(explicit, "trace"), trace_id);
    assert_eq!(str_field(root, "parent"), "0".repeat(16), "roots have a zero parent");
    assert_eq!(str_field(child, "parent"), str_field(root, "span"));
    assert_eq!(str_field(explicit, "parent"), str_field(root, "span"));

    // Durations nest: the ~2ms child and ~1ms explicit span fit inside the
    // root, and offsets are expressed on the shared process timebase.
    assert!(num_field(child, "dur_ns") >= 2e6);
    assert!(num_field(explicit, "dur_ns") >= 1e6);
    assert!(num_field(root, "dur_ns") >= num_field(child, "dur_ns"));
    assert!(num_field(child, "start_ns") >= num_field(root, "start_ns"));
}

#[test]
fn snapshot_serialization_is_byte_stable() {
    ppn_obs::init(ObsConfig {
        stderr_level: None,
        jsonl_level: Some(Level::Trace),
        jsonl_path: Some(
            std::env::temp_dir()
                .join(format!("ppn-obs-trace-{}.jsonl", std::process::id()))
                .display()
                .to_string(),
        ),
        spans: true,
        metrics: true,
    });
    // Register in an order that differs from the sorted order.
    ppn_obs::counter("z.counter").inc();
    ppn_obs::counter("a.counter").inc();
    ppn_obs::gauge("z.gauge").set(1.0);
    ppn_obs::gauge_peak("a.gauge_peak").set(2.0);
    ppn_obs::histogram("z.hist", &[1.0, 2.0]).observe(0.5);
    ppn_obs::histogram("a.hist", &[1.0]).observe(3.0);

    let a = ppn_obs::metrics_snapshot();
    let b = ppn_obs::metrics_snapshot();
    let ser_a = serde_json::to_string(&a).expect("snapshot serializes");
    let ser_b = serde_json::to_string(&b).expect("snapshot serializes");
    assert_eq!(ser_a, ser_b, "same registry state must serialize identically");
    // Sorted by name within each kind, regardless of registration order.
    let names: Vec<&str> = a.counters.iter().map(|c| c.name.as_str()).collect();
    assert!(names.windows(2).all(|w| w[0] <= w[1]), "counters sorted: {names:?}");
    let gnames: Vec<&str> = a.gauges.iter().map(|g| g.name.as_str()).collect();
    assert!(gnames.windows(2).all(|w| w[0] <= w[1]), "gauges sorted: {gnames:?}");
    let hnames: Vec<&str> = a.histograms.iter().map(|h| h.name.as_str()).collect();
    assert!(hnames.windows(2).all(|w| w[0] <= w[1]), "histograms sorted: {hnames:?}");
    // And the Prometheus rendering is equally stable.
    assert_eq!(a.to_prometheus(), b.to_prometheus());
    assert!(a.to_prometheus().contains("# TYPE a_counter counter"));
}
