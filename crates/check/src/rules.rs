//! The rule registry and every rule implementation.
//!
//! Each rule has a stable kebab-case id, a one-line description, and a
//! checker that maps a scanned [`SourceFile`] to diagnostics. Rules are
//! line-oriented heuristics, deliberately biased toward *no false negatives
//! on the bug classes they target* — a justified exception is annotated in
//! the source with `// ppn-check: allow(rule-id) reason` (handled by the
//! engine, not the individual rules).

use crate::scanner::{Role, SourceFile};

/// One finding: `path:line` plus the violated rule and a message.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule id.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: error[{}]: {}", self.path, self.line, self.rule, self.message)
    }
}

/// A registered rule.
pub struct Rule {
    /// Stable kebab-case identifier used in diagnostics and allow-comments.
    pub id: &'static str,
    /// One-line description for `--list`.
    pub description: &'static str,
    /// The per-file checker. Public so the engine can time each rule
    /// individually instead of only running the whole registry at once.
    pub check: fn(&SourceFile) -> Vec<Diagnostic>,
}

/// Crates whose library code must be panic-free (rule `no-panic`).
const PANIC_FREE_CRATES: [&str; 8] = [
    "ppn-core",
    "ppn-market",
    "ppn-baselines",
    "ppn-tensor",
    "ppn-serve",
    "ppn-stream",
    "ppn-obs",
    "ppn-trace",
];
/// Crates whose library code must avoid exact float equality (`float-eq`).
const FLOAT_EQ_CRATES: [&str; 8] = [
    "ppn-core",
    "ppn-market",
    "ppn-baselines",
    "ppn-tensor",
    "ppn-obs",
    "ppn-serve",
    "ppn-stream",
    "ppn-trace",
];
/// Crates whose public items must carry doc comments (`pub-doc`).
const PUB_DOC_CRATES: [&str; 6] =
    ["ppn-core", "ppn-market", "ppn-serve", "ppn-stream", "ppn-obs", "ppn-trace"];
/// Crates whose root may soften `forbid(unsafe_code)` to `deny` because they
/// contain an audited unsafe module (see [`UNSAFE_ALLOWED_FILES`]).
const DENY_UNSAFE_CRATES: [&str; 1] = ["ppn-tensor"];

/// The full rule set, in reporting order.
pub fn registry() -> Vec<Rule> {
    vec![
        Rule {
            id: "no-panic",
            description: "no unwrap()/expect()/panic!/todo!/unimplemented! in library code of \
                          core, market, baselines, tensor, serve, obs, trace",
            check: check_no_panic,
        },
        Rule {
            id: "float-eq",
            description: "no exact f64 equality (==/!= against float literals) outside the \
                          whitelisted approx helper module",
            check: check_float_eq,
        },
        Rule {
            id: "hash-iter",
            description: "no HashMap/HashSet iteration feeding output without a subsequent \
                          sort in the same function (determinism)",
            check: check_hash_iter,
        },
        Rule {
            id: "lint-header",
            description: "crate roots must declare #![forbid(unsafe_code)] and a missing_docs \
                          lint header",
            check: check_lint_header,
        },
        Rule {
            id: "pub-doc",
            description: "every public item in core, market, serve, obs, and trace carries a \
                          doc comment",
            check: check_pub_doc,
        },
        Rule {
            id: "contract",
            description: "// ppn-check: contract(simplex|finite) tags must be backed by a \
                          matching assert_simplex/assert_finite invariant call in the tagged fn",
            check: check_contract,
        },
        Rule {
            id: "no-thread",
            description: "only ppn_tensor::par and the ppn-serve listener may spawn threads — \
                          all other first-party code must go through the worker pool \
                          (determinism + PPN_THREADS control)",
            check: check_no_thread,
        },
        Rule {
            id: "no-unsafe",
            description: "unsafe_code is confined to the audited ppn-tensor storage/simd \
                          modules, where every unsafe_code line needs an adjacent SAFETY comment",
            check: check_no_unsafe,
        },
        Rule {
            id: "no-hot-alloc",
            description: "no fresh allocation (vec!/Vec::with_capacity/Tensor::zeros) inside \
                          the tensor backward sweep and kernel inner functions — use the \
                          storage arena or stack scratch",
            check: check_no_hot_alloc,
        },
    ]
}

/// Runs every rule against one scanned file (allow-comments not yet applied).
pub fn check_file(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for rule in registry() {
        out.extend((rule.check)(file));
    }
    out
}

fn diag(file: &SourceFile, line0: usize, rule: &'static str, message: String) -> Diagnostic {
    Diagnostic { path: file.path.clone(), line: line0 + 1, rule, message }
}

// ---------------------------------------------------------------- no-panic

const PANIC_PATTERNS: [(&str, &str); 5] = [
    (".unwrap()", "unwrap() can panic"),
    (".expect(", "expect() can panic"),
    ("panic!", "explicit panic!"),
    ("todo!", "todo! placeholder"),
    ("unimplemented!", "unimplemented! placeholder"),
];

fn check_no_panic(file: &SourceFile) -> Vec<Diagnostic> {
    if file.role != Role::Lib || !PANIC_FREE_CRATES.contains(&file.crate_name.as_str()) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, line) in file.lines.iter().enumerate() {
        if file.in_test(i) {
            continue;
        }
        for (pat, why) in PANIC_PATTERNS {
            if let Some(at) = line.code.find(pat) {
                // Macro patterns must sit on a word boundary so identifiers
                // like `not_todo!` or `has_panic!` never match; the method
                // patterns already anchor on their leading `.`.
                let before = pat.starts_with('.')
                    || at == 0
                    || !is_ident_char(line.code.as_bytes()[at - 1] as char);
                if before {
                    out.push(diag(
                        file,
                        i,
                        "no-panic",
                        format!("{why} in library code (`{}`)", line.code.trim()),
                    ));
                    break; // one diagnostic per line is enough
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------- float-eq

fn check_float_eq(file: &SourceFile) -> Vec<Diagnostic> {
    if file.role != Role::Lib
        || !FLOAT_EQ_CRATES.contains(&file.crate_name.as_str())
        || file.path.ends_with("approx.rs")
    {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, line) in file.lines.iter().enumerate() {
        if file.in_test(i) {
            continue;
        }
        if let Some(op) = find_float_eq(&line.code) {
            out.push(diag(
                file,
                i,
                "float-eq",
                format!(
                    "exact float equality `{op}` — use ppn_tensor::approx::{{is_zero, approx_eq}} \
                     (`{}`)",
                    line.code.trim()
                ),
            ));
        }
    }
    out
}

/// Finds an `==`/`!=` comparison whose neighbourhood contains a float
/// literal (`1.0`, `0.5e-3`, `1f64`, …). Returns the offending snippet.
fn find_float_eq(code: &str) -> Option<String> {
    // Work on bytes so arbitrary (non-ASCII) text never lands a slice inside
    // a multi-byte char: every index we slice at sits next to an ASCII byte.
    let bytes = code.as_bytes();
    for i in 0..bytes.len().saturating_sub(1) {
        let is_eq = bytes[i] == b'=' && bytes[i + 1] == b'=';
        let is_ne = bytes[i] == b'!' && bytes[i + 1] == b'=';
        if !is_eq && !is_ne {
            continue;
        }
        // Exclude <=, >=, =>, ===-like runs, pattern guards `=>`, and `!`.
        let prev = if i > 0 { bytes[i - 1] } else { b' ' };
        let next = if i + 2 < bytes.len() { bytes[i + 2] } else { b' ' };
        if is_eq && matches!(prev, b'<' | b'>' | b'!' | b'=' | b'+' | b'-' | b'*' | b'/' | b'%') {
            continue;
        }
        if next == b'=' {
            continue;
        }
        let left = operand(&code[..i], true);
        let right = operand(&code[i + 2..], false);
        if contains_float_literal(left) || contains_float_literal(right) {
            let two = if is_eq { "==" } else { "!=" };
            return Some(format!("{} {two} {}", left.trim(), right.trim()));
        }
    }
    None
}

/// The operand text adjacent to a comparison, clipped at expression
/// boundaries that cannot be part of a simple comparand.
fn operand(s: &str, leftward: bool) -> &str {
    const STOPS: [char; 8] = [',', ';', '(', ')', '{', '}', '&', '|'];
    if leftward {
        match s.rfind(STOPS) {
            Some(p) => &s[p + 1..],
            None => s,
        }
    } else {
        match s.find(STOPS) {
            Some(p) => &s[..p],
            None => s,
        }
    }
}

/// True when `s` contains a floating-point literal: `<digit>.<digit>`,
/// an exponent form, or an `f32`/`f64` suffix on a number.
fn contains_float_literal(s: &str) -> bool {
    let b = s.as_bytes();
    for i in 0..b.len() {
        if b[i] == b'.'
            && i > 0
            && b[i - 1].is_ascii_digit()
            && i + 1 < b.len()
            && b[i + 1].is_ascii_digit()
        {
            return true;
        }
        // `b[i] == b'f'` guarantees `i` is a char boundary before slicing.
        if b[i] == b'f'
            && i > 0
            && b[i - 1].is_ascii_digit()
            && (s[i..].starts_with("f64") || s[i..].starts_with("f32"))
        {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------- hash-iter

const ITER_METHODS: [&str; 5] = [".iter()", ".iter_mut()", ".keys()", ".values()", ".values_mut()"];
const SORT_MARKERS: [&str; 5] =
    [".sort()", ".sort_by", ".sort_unstable", ".sort_by_key", "BTreeMap"];
/// Order-insensitive reductions: consuming an unordered iterator through one
/// of these is deterministic regardless of iteration order.
const REDUCTIONS: [&str; 7] =
    [".max()", ".min()", ".sum::<", ".sum()", ".count()", ".len()", ".fold("];

fn check_hash_iter(file: &SourceFile) -> Vec<Diagnostic> {
    if file.role != Role::Lib || !file.crate_name.starts_with("ppn") {
        return Vec::new();
    }
    // Pass 1: collect identifiers whose declaring line mentions a hash
    // container (let/static/field/param), or that are bound from one.
    let mut hashy: Vec<String> = Vec::new();
    let mut changed = true;
    while changed {
        changed = false;
        for line in &file.lines {
            let code = &line.code;
            let mentions_hash = code.contains("HashMap") || code.contains("HashSet");
            let mentions_hashy_ident = hashy.iter().any(|n| has_word(code, n));
            if !mentions_hash && !mentions_hashy_ident {
                continue;
            }
            for name in declared_idents(code) {
                if !hashy.contains(&name) {
                    hashy.push(name);
                    changed = true;
                }
            }
        }
    }
    // Pass 2: flag iteration over hashy identifiers unless the enclosing
    // function establishes order with a sort afterwards.
    let mut out = Vec::new();
    for (i, line) in file.lines.iter().enumerate() {
        if file.in_test(i) {
            continue;
        }
        let code = &line.code;
        let iterates = hashy.iter().any(|n| {
            ITER_METHODS.iter().any(|m| code.contains(&format!("{n}{m}")))
                || code.contains(&format!("in {n}")) && code.contains("for ")
                || code.contains(&format!("in &{n}")) && code.contains("for ")
        });
        if !iterates {
            continue;
        }
        if REDUCTIONS.iter().any(|r| code.contains(r)) {
            continue; // commutative reduction — order cannot leak out
        }
        // A sort anywhere in the enclosing function establishes order,
        // whether it runs before the loop or after a collect.
        let sorted_in_fn = file.enclosing_fn(i).is_some_and(|(start, end)| {
            (start..=end).any(|j| SORT_MARKERS.iter().any(|s| file.lines[j].code.contains(s)))
        });
        if !sorted_in_fn {
            out.push(diag(
                file,
                i,
                "hash-iter",
                format!(
                    "HashMap/HashSet iteration without a subsequent sort — output order is \
                     nondeterministic (`{}`)",
                    code.trim()
                ),
            ));
        }
    }
    out
}

/// Identifier names declared on this line next to a container type:
/// `let [mut] NAME`, `static NAME:`, struct field `NAME:`, fn param `NAME:`.
pub(crate) fn declared_idents(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    let t = code.trim();
    for kw in ["let mut ", "let ", "static mut ", "static "] {
        if let Some(rest) = t.strip_prefix(kw) {
            if let Some(name) = leading_ident(rest) {
                out.push(name);
            }
            return out;
        }
    }
    // Field or binding of the form `name: ...HashMap...` / `name = ...`.
    if let Some(colon) = t.find([':', '=']) {
        if let Some(name) = leading_ident(t) {
            if name.len() == t[..colon].trim_end().len() {
                out.push(name);
            }
        }
    }
    out
}

pub(crate) fn leading_ident(s: &str) -> Option<String> {
    let ident: String = s.chars().take_while(|&c| c.is_alphanumeric() || c == '_').collect();
    (!ident.is_empty() && !ident.chars().next().is_some_and(|c| c.is_ascii_digit()))
        .then_some(ident)
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

pub(crate) fn has_word(code: &str, word: &str) -> bool {
    let mut from = 0;
    while let Some(p) = code[from..].find(word) {
        let at = from + p;
        let before = at == 0
            || !code.as_bytes()[at - 1].is_ascii_alphanumeric() && code.as_bytes()[at - 1] != b'_';
        let after_idx = at + word.len();
        let after = after_idx >= code.len()
            || !code.as_bytes()[after_idx].is_ascii_alphanumeric()
                && code.as_bytes()[after_idx] != b'_';
        if before && after {
            return true;
        }
        from = at + word.len();
    }
    false
}

// ------------------------------------------------------------- lint-header

fn check_lint_header(file: &SourceFile) -> Vec<Diagnostic> {
    if !file.path.ends_with("lib.rs") || !file.crate_name.starts_with("ppn") {
        return Vec::new();
    }
    let head: String = file.lines.iter().map(|l| l.code.as_str()).collect::<Vec<_>>().join("\n");
    let mut out = Vec::new();
    // Crates with an audited unsafe module may use `deny` (module-level
    // `allow` then opts the audited files in); everyone else must `forbid`.
    let softened = DENY_UNSAFE_CRATES.contains(&file.crate_name.as_str());
    let has_forbid = head.contains("#![forbid(unsafe_code)]");
    if !softened && !has_forbid {
        out.push(diag(file, 0, "lint-header", "crate root missing #![forbid(unsafe_code)]".into()));
    }
    if softened && !has_forbid && !head.contains("#![deny(unsafe_code)]") {
        out.push(diag(
            file,
            0,
            "lint-header",
            "crate root missing #![deny(unsafe_code)] (audited-unsafe crates may deny instead \
             of forbid)"
                .into(),
        ));
    }
    if !head.contains("#![warn(missing_docs)]") && !head.contains("#![deny(missing_docs)]") {
        out.push(diag(
            file,
            0,
            "lint-header",
            "crate root missing #![warn(missing_docs)] (or deny)".into(),
        ));
    }
    out
}

// ---------------------------------------------------------------- pub-doc

const PUB_ITEM_KEYWORDS: [&str; 9] =
    ["fn", "struct", "enum", "trait", "mod", "const", "static", "type", "union"];

fn check_pub_doc(file: &SourceFile) -> Vec<Diagnostic> {
    if file.role != Role::Lib || !PUB_DOC_CRATES.contains(&file.crate_name.as_str()) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, line) in file.lines.iter().enumerate() {
        if file.in_test(i) {
            continue;
        }
        let t = line.code.trim();
        let Some(rest) = t.strip_prefix("pub ") else { continue };
        let is_item = PUB_ITEM_KEYWORDS
            .iter()
            .any(|kw| rest.starts_with(kw) && rest[kw.len()..].starts_with([' ', '<']))
            || rest.starts_with("unsafe ")
            || is_pub_field(rest);
        if !is_item {
            continue;
        }
        if !has_doc_above(file, i) {
            out.push(diag(
                file,
                i,
                "pub-doc",
                format!("public item missing doc comment (`{}`)", t),
            ));
        }
    }
    out
}

/// A struct field `name: Type,` — an identifier immediately followed by `:`
/// (but not `::`), ending in `,` or nothing.
fn is_pub_field(rest: &str) -> bool {
    let Some(name) = leading_ident(rest) else { return false };
    let after = &rest[name.len()..];
    after.starts_with(':') && !after.starts_with("::")
}

/// True when the nearest non-attribute line above `i` is a doc comment.
fn has_doc_above(file: &SourceFile, i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        let code = file.lines[j].code.trim();
        let comment = file.lines[j].comment.trim_start();
        if code.starts_with("#[") || code.starts_with("#!") || code.ends_with(")]") {
            continue; // attribute (possibly multi-line tail)
        }
        if code.is_empty() {
            // Comment-only line: doc comments surface as comments starting
            // with an extra `/` (`///` → comment text "/ …").
            if comment.starts_with('/') || comment.starts_with('!') {
                return true;
            }
            if !file.lines[j].comment.is_empty() {
                continue; // plain comment, keep looking upwards
            }
            return false; // blank line
        }
        return false; // real code line
    }
    false
}

// ---------------------------------------------------------------- contract

fn check_contract(file: &SourceFile) -> Vec<Diagnostic> {
    if !file.crate_name.starts_with("ppn") {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, line) in file.lines.iter().enumerate() {
        let comment = line.comment.trim();
        let Some(rest) = comment.strip_prefix("ppn-check: contract(") else { continue };
        let Some(kind) = rest.split(')').next() else { continue };
        let needle = match kind {
            "simplex" => "assert_simplex",
            "finite" => "assert_finite",
            other => {
                out.push(diag(
                    file,
                    i,
                    "contract",
                    format!("unknown contract kind `{other}` (expected simplex|finite)"),
                ));
                continue;
            }
        };
        // The tag must sit on (or directly above) a function whose body
        // contains the matching invariant call.
        let span = (i..(i + 4).min(file.lines.len())).find_map(|j| {
            crate::scanner::brace_span(&file.lines, j)
                .filter(|&(s, _)| s == j && file.lines[j].code.contains("fn "))
        });
        let Some((_, end)) = span else {
            out.push(diag(
                file,
                i,
                "contract",
                format!("contract({kind}) tag is not attached to a function"),
            ));
            continue;
        };
        let satisfied = (i..=end).any(|j| file.lines[j].code.contains(needle));
        if !satisfied {
            out.push(diag(
                file,
                i,
                "contract",
                format!("contract({kind}) tag without a matching `{needle}` invariant call"),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------- no-thread

/// Thread-spawning constructs. `thread::sleep`, `available_parallelism` and
/// `thread_local!` are deliberately not listed — they don't create threads.
const THREAD_SPAWN_PATTERNS: [(&str, &str); 3] = [
    ("thread::spawn", "direct thread::spawn"),
    ("thread::scope", "scoped thread region"),
    ("thread::Builder", "thread::Builder spawn"),
];

/// The only modules allowed to call thread-spawning constructs: the worker
/// pool itself, the ppn-serve event-loop module (exactly two threads per
/// server — the epoll loop and the batcher, never per-connection — work it
/// *dispatches* still runs on the pool), the one-thread ppn-obs stats
/// endpoint, and the ppn-stream updater service (one thread per
/// `StreamService`, owning the feed/train/publish loop). The serve
/// HTTP/queue modules and the stream divergence/promotion code stay
/// spawn-free by design; keep them off this list so a stray-thread
/// regression is caught.
const THREAD_ALLOWED_FILES: [&str; 4] = [
    "crates/tensor/src/par.rs",
    "crates/serve/src/server.rs",
    "crates/obs/src/stats.rs",
    "crates/stream/src/service.rs",
];

fn check_no_thread(file: &SourceFile) -> Vec<Diagnostic> {
    if !file.crate_name.starts_with("ppn")
        || THREAD_ALLOWED_FILES.iter().any(|p| file.path.ends_with(p))
    {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, line) in file.lines.iter().enumerate() {
        if file.in_test(i) {
            continue;
        }
        for (pat, why) in THREAD_SPAWN_PATTERNS {
            if line.code.contains(pat) {
                out.push(diag(
                    file,
                    i,
                    "no-thread",
                    format!(
                        "{why} outside ppn_tensor::par — use par::par_chunks_mut/par_map so \
                         PPN_THREADS and the determinism guarantee apply (`{}`)",
                        line.code.trim()
                    ),
                ));
                break;
            }
        }
    }
    out
}

/// The only files allowed to contain `unsafe` code: the aligned-allocation
/// store and the AVX2 kernels. Both sit under a module-level
/// `#![allow(unsafe_code)]` while the crate root stays `#![deny(unsafe_code)]`
/// (see [`DENY_UNSAFE_CRATES`]), and every unsafe line inside them must carry
/// an adjacent SAFETY comment — this rule audits exactly that.
const UNSAFE_ALLOWED_FILES: [&str; 2] =
    ["crates/tensor/src/storage.rs", "crates/tensor/src/simd.rs"];

/// How many lines above an `unsafe` line a SAFETY comment may sit (covers a
/// multi-line justification or an interleaved attribute).
const SAFETY_COMMENT_REACH: usize = 3;

/// Blanks out string and char literals so keyword scans don't trip on code
/// that merely *mentions* a keyword in a message or pattern (e.g. the lint
/// rules themselves). Quote characters are kept; contents become spaces.
/// A string left open at end of line (`"…\` continuation) blanks the rest.
fn blank_literals(code: &str) -> String {
    let bytes = code.as_bytes();
    let mut out = String::with_capacity(code.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => {
                out.push('"');
                i += 1;
                while i < bytes.len() && bytes[i] != b'"' {
                    // Skip the escaped char so \" doesn't close the string.
                    i += if bytes[i] == b'\\' { 2 } else { 1 };
                    out.push(' ');
                }
                if i < bytes.len() {
                    out.push('"');
                    i += 1;
                }
            }
            // Char literals ('x', '\n', '\''); lifetimes ('a) fall through.
            b'\'' => {
                let lit_len =
                    if bytes.get(i + 1) == Some(&b'\\') && bytes.get(i + 3) == Some(&b'\'') {
                        Some(4)
                    } else if bytes.get(i + 1).is_some() && bytes.get(i + 2) == Some(&b'\'') {
                        Some(3)
                    } else {
                        None
                    };
                match lit_len {
                    Some(n) => {
                        out.push('\'');
                        out.push_str(&" ".repeat(n - 2));
                        out.push('\'');
                        i += n;
                    }
                    None => {
                        out.push('\'');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b as char);
                i += 1;
            }
        }
    }
    out
}

fn check_no_unsafe(file: &SourceFile) -> Vec<Diagnostic> {
    if !file.crate_name.starts_with("ppn") || file.role != Role::Lib {
        return Vec::new();
    }
    let audited = UNSAFE_ALLOWED_FILES.iter().any(|p| file.path.ends_with(p));
    let mut out = Vec::new();
    for (i, line) in file.lines.iter().enumerate() {
        // `unsafe_code` (the lint name in deny/allow attributes) is not a
        // word-boundary match, so header attributes pass through here, and
        // string contents are blanked so messages naming the keyword don't
        // count as uses.
        if file.in_test(i) || !has_word(&blank_literals(&line.code), "unsafe") {
            continue;
        }
        if !audited {
            // `unsafe_code` (not the bare keyword) keeps this rule's own
            // messages from matching the word scan above.
            out.push(diag(
                file,
                i,
                "no-unsafe",
                format!(
                    "unsafe_code outside the audited storage/simd modules — route raw-pointer \
                     work through ppn_tensor::storage (`{}`)",
                    line.code.trim()
                ),
            ));
            continue;
        }
        // The module-level opt-in attribute needs no per-line justification.
        if line.code.contains("allow(unsafe_code)") {
            continue;
        }
        let lo = i.saturating_sub(SAFETY_COMMENT_REACH);
        let justified = (lo..=i).any(|j| file.lines[j].comment.contains("SAFETY"))
            || (lo..=i).any(|j| file.lines[j].comment.contains("Safety"));
        if !justified {
            out.push(diag(
                file,
                i,
                "no-unsafe",
                format!(
                    "unsafe_code without an adjacent SAFETY comment (same line or within {} \
                     lines above) (`{}`)",
                    SAFETY_COMMENT_REACH,
                    line.code.trim()
                ),
            ));
        }
    }
    out
}

/// (file suffix, hot function names) pairs: the tape backward sweep and the
/// kernel inner loops. A fresh heap allocation in these shows up on every
/// training step and defeats the storage arena, so it must go through
/// `Storage::uninit`/`Storage::zeroed` (arena-backed) or stack scratch
/// (`shape::with_dims`) instead.
const HOT_ALLOC_FILES: [(&str, &[&str]); 3] = [
    ("crates/tensor/src/graph.rs", &["backward_with", "propagate", "accumulate"]),
    ("crates/tensor/src/conv.rs", &["forward_plane", "grad_x_sample", "grad_w_plane"]),
    ("crates/tensor/src/tensor.rs", &["matmul_rows"]),
];

/// Allocation constructs flagged inside the hot functions above.
const HOT_ALLOC_PATTERNS: [(&str, &str); 3] = [
    ("vec!", "vec! allocation"),
    ("Vec::with_capacity", "Vec::with_capacity allocation"),
    ("Tensor::zeros", "Tensor::zeros allocation"),
];

fn check_no_hot_alloc(file: &SourceFile) -> Vec<Diagnostic> {
    if file.role != Role::Lib {
        return Vec::new();
    }
    let Some((_, hot_fns)) = HOT_ALLOC_FILES.iter().find(|(p, _)| file.path.ends_with(p)) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for (i, line) in file.lines.iter().enumerate() {
        if file.in_test(i) {
            continue;
        }
        let Some((_, why)) = HOT_ALLOC_PATTERNS.iter().find(|(pat, _)| line.code.contains(pat))
        else {
            continue;
        };
        // Attribute the line to its innermost enclosing fn and check whether
        // that fn is one of the audited hot paths.
        let in_hot_fn = file.enclosing_fn(i).is_some_and(|(start, _)| {
            let header = &file.lines[start].code;
            hot_fns.iter().any(|name| {
                header.contains(&format!("fn {name}(")) || header.contains(&format!("fn {name}<"))
            })
        });
        if in_hot_fn {
            out.push(diag(
                file,
                i,
                "no-hot-alloc",
                format!(
                    "{why} inside a hot kernel/backward function — use the storage arena \
                     (Storage::uninit/zeroed) or stack scratch (shape::with_dims) (`{}`)",
                    line.code.trim()
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::{Role, SourceFile};

    fn lib(src: &str) -> SourceFile {
        SourceFile::scan("crates/core/src/x.rs", "ppn-core", Role::Lib, src)
    }

    #[test]
    fn float_literal_detection() {
        assert!(contains_float_literal("x == 0.0"));
        assert!(contains_float_literal("1.5e-3"));
        assert!(contains_float_literal("2f64"));
        assert!(!contains_float_literal("x.len()"));
        assert!(!contains_float_literal("v[0]"));
        assert!(!contains_float_literal("schema == 1"));
    }

    #[test]
    fn float_eq_finds_only_float_comparisons() {
        assert!(find_float_eq("if psi == 0.0 {").is_some());
        assert!(find_float_eq("if 0.0 != dd {").is_some());
        assert!(find_float_eq("if n == 3 {").is_none());
        assert!(find_float_eq("if a <= 0.5 {").is_none());
        assert!(find_float_eq("x >= 1.0 && y < 2.0").is_none());
    }

    #[test]
    fn no_panic_skips_unwrap_or_variants() {
        let f = lib("pub fn a() { x.unwrap_or_default(); }\npub fn b() { x.unwrap(); }");
        let d = check_no_panic(&f);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn pub_doc_requires_comment() {
        let f = lib("/// Documented.\npub fn a() {}\n\npub fn b() {}");
        let d = check_pub_doc(&f);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 4);
    }

    #[test]
    fn contract_tag_needs_matching_invariant() {
        let good = lib(
            "// ppn-check: contract(simplex)\npub fn p(w: &[f64]) -> Vec<f64> {\n    contracts::assert_simplex(w, \"p\");\n    w.to_vec()\n}",
        );
        assert!(check_contract(&good).is_empty());
        let bad = lib("// ppn-check: contract(finite)\npub fn q(w: &[f64]) -> f64 {\n    w[0]\n}");
        assert_eq!(check_contract(&bad).len(), 1);
    }

    #[test]
    fn no_thread_flags_spawns_outside_par() {
        let src = "pub fn f() {\n    std::thread::spawn(|| {});\n    std::thread::scope(|s| {});\n    thread::Builder::new();\n    std::thread::sleep(d);\n    let n = std::thread::available_parallelism();\n}";
        let f = lib(src);
        assert_eq!(check_no_thread(&f).len(), 3, "sleep/available_parallelism are not spawns");
        // The allowlisted spawners: the pool, the serve event-loop module,
        // and the obs stats endpoint.
        let par = SourceFile::scan("crates/tensor/src/par.rs", "ppn-tensor", Role::Lib, src);
        assert!(check_no_thread(&par).is_empty());
        let srv = SourceFile::scan("crates/serve/src/server.rs", "ppn-serve", Role::Lib, src);
        assert!(check_no_thread(&srv).is_empty());
        let stats = SourceFile::scan("crates/obs/src/stats.rs", "ppn-obs", Role::Lib, src);
        assert!(check_no_thread(&stats).is_empty());
        let stream = SourceFile::scan("crates/stream/src/service.rs", "ppn-stream", Role::Lib, src);
        assert!(check_no_thread(&stream).is_empty());
        // Other ppn-serve modules stay under the rule — the event-driven
        // design means no per-connection threads, so a spawn appearing in
        // the HTTP state machine or the queue is a regression, not a need
        // for a wider allowlist.
        let other = SourceFile::scan("crates/serve/src/queue.rs", "ppn-serve", Role::Lib, src);
        assert_eq!(check_no_thread(&other).len(), 3);
        let conn = SourceFile::scan("crates/serve/src/http.rs", "ppn-serve", Role::Lib, src);
        assert_eq!(check_no_thread(&conn).len(), 3, "http.rs must never spawn");
        let bat = SourceFile::scan("crates/serve/src/batcher.rs", "ppn-serve", Role::Lib, src);
        assert_eq!(check_no_thread(&bat).len(), 3, "batcher.rs computes, server.rs spawns");
        // Third-party shims are out of scope.
        let shim = SourceFile::scan("crates/rand/src/x.rs", "rand", Role::Lib, src);
        assert!(check_no_thread(&shim).is_empty());
    }

    #[test]
    fn blank_literals_masks_strings_and_char_literals() {
        assert_eq!(blank_literals(r#"let s = "unsafe";"#), r#"let s = "      ";"#);
        assert_eq!(blank_literals("let c = '\"'; x(\"unsafe\")"), "let c = ' '; x(\"      \")");
        assert_eq!(blank_literals("fn f<'a>(x: &'a str) {}"), "fn f<'a>(x: &'a str) {}");
        // An open string (line continuation) blanks through end of line.
        assert_eq!(blank_literals(r#"m("unsafe and \"#), format!("m(\"{}", " ".repeat(12)));
        assert!(!has_word(&blank_literals(r#"id: "no-unsafe","#), "unsafe"));
        assert!(has_word(&blank_literals("unsafe { go() }"), "unsafe"));
    }

    #[test]
    fn no_unsafe_flags_keyword_outside_audited_files() {
        let src = "pub fn f(p: *mut f64) {\n    unsafe { *p = 1.0 };\n}";
        let d = check_no_unsafe(&lib(src));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
        // The deny/allow attribute spelling is not the keyword.
        let attr = lib("#![deny(unsafe_code)]\npub fn f() {}");
        assert!(check_no_unsafe(&attr).is_empty());
        // Shims are out of scope.
        let shim = SourceFile::scan("crates/rand/src/x.rs", "rand", Role::Lib, src);
        assert!(check_no_unsafe(&shim).is_empty());
    }

    #[test]
    fn no_unsafe_audited_files_require_safety_comments() {
        let bare = "pub fn f(p: *mut f64) {\n    unsafe { *p = 1.0 };\n}";
        let storage =
            |src| SourceFile::scan("crates/tensor/src/storage.rs", "ppn-tensor", Role::Lib, src);
        let d = check_no_unsafe(&storage(bare));
        assert_eq!(d.len(), 1, "audited file still needs a SAFETY comment");
        // Same line, directly above, and within-3-lines comments all count.
        let same = "pub fn f(p: *mut f64) {\n    unsafe { *p = 1.0 }; // SAFETY: p is valid\n}";
        assert!(check_no_unsafe(&storage(same)).is_empty());
        let above = "pub fn f(p: *mut f64) {\n    // SAFETY: caller guarantees p is valid\n    unsafe { *p = 1.0 };\n}";
        assert!(check_no_unsafe(&storage(above)).is_empty());
        let doc = "/// # Safety\n/// Caller must pass a valid pointer.\n#[inline]\npub unsafe fn f(p: *mut f64) {}";
        assert!(check_no_unsafe(&storage(doc)).is_empty());
        // The module-level opt-in attribute needs no justification.
        let optin = "#![allow(unsafe_code)]\npub fn f() {}";
        assert!(check_no_unsafe(&storage(optin)).is_empty());
        // A comment more than SAFETY_COMMENT_REACH lines away does not count.
        let far = "pub fn f(p: *mut f64) {\n    // SAFETY: far away\n    let a = 1;\n    let b = 2;\n    let c = 3;\n    unsafe { *p = a as f64 + b as f64 + c as f64 };\n}";
        assert_eq!(check_no_unsafe(&storage(far)).len(), 1);
    }

    #[test]
    fn no_hot_alloc_flags_allocations_only_in_hot_fns() {
        let graph =
            |src| SourceFile::scan("crates/tensor/src/graph.rs", "ppn-tensor", Role::Lib, src);
        let hot = "impl Graph {\n    fn propagate(&mut self, i: usize) {\n        let tmp = vec![0.0; 8];\n        let mut buf = Vec::with_capacity(8);\n        let t = Tensor::zeros(&[2, 2]);\n    }\n}";
        let d = check_no_hot_alloc(&graph(hot));
        assert_eq!(d.len(), 3);
        assert_eq!(d[0].line, 3);
        // The same allocations in a non-hot function pass.
        let cold = "impl Graph {\n    fn build(&mut self) {\n        let tmp = vec![0.0; 8];\n        let t = Tensor::zeros(&[2, 2]);\n    }\n}";
        assert!(check_no_hot_alloc(&graph(cold)).is_empty());
        // Files outside the hot list are out of scope entirely.
        let other = lib(hot);
        assert!(check_no_hot_alloc(&other).is_empty());
        // Arena-backed constructors are the sanctioned path.
        let arena = "impl Graph {\n    fn propagate(&mut self, i: usize) {\n        let s = Storage::zeroed(8);\n        let u = Storage::uninit(8);\n    }\n}";
        assert!(check_no_hot_alloc(&graph(arena)).is_empty());
    }

    #[test]
    fn lint_header_accepts_deny_for_audited_crates() {
        let tensor_root =
            |src| SourceFile::scan("crates/tensor/src/lib.rs", "ppn-tensor", Role::Lib, src);
        assert!(check_lint_header(&tensor_root("#![deny(unsafe_code)]\n#![warn(missing_docs)]"))
            .is_empty());
        assert!(check_lint_header(&tensor_root("#![forbid(unsafe_code)]\n#![warn(missing_docs)]"))
            .is_empty());
        let missing = check_lint_header(&tensor_root("#![warn(missing_docs)]"));
        assert!(missing.iter().any(|d| d.message.contains("deny(unsafe_code)")));
        // Non-audited crates must still forbid — deny is not enough.
        let core_root = SourceFile::scan(
            "crates/core/src/lib.rs",
            "ppn-core",
            Role::Lib,
            "#![deny(unsafe_code)]\n#![warn(missing_docs)]",
        );
        assert!(check_lint_header(&core_root)
            .iter()
            .any(|d| d.message.contains("forbid(unsafe_code)")));
    }

    #[test]
    fn hash_iter_flags_unsorted_iteration() {
        let src = "use std::collections::HashMap;\npub fn f() {\n    let map: HashMap<String, u64> = HashMap::new();\n    for (k, v) in map.iter() {\n        emit(k, v);\n    }\n}";
        let f = lib(src);
        assert_eq!(check_hash_iter(&f).len(), 1);
        let sorted = "use std::collections::HashMap;\npub fn f() {\n    let map: HashMap<String, u64> = HashMap::new();\n    let mut rows: Vec<_> = map.iter().collect();\n    rows.sort_by(|a, b| a.0.cmp(b.0));\n}";
        assert!(check_hash_iter(&lib(sorted)).is_empty());
    }
}
