#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # ppn-check
//!
//! A tidy-style workspace lint engine enforcing the numerical contracts the
//! PPN reproduction depends on: panic-free library hot paths, no exact
//! float equality, deterministic (sorted) output from hash containers,
//! hardened crate lint headers, documented public APIs, and
//! `contract(simplex)`/`contract(finite)` tags backed by `debug_assert`
//! invariants from `ppn_core::contracts`.
//!
//! ## Running
//!
//! ```text
//! cargo run -p ppn-check -- --all        # lint the whole workspace
//! cargo run -p ppn-check -- --list      # print the rule table
//! cargo test -p ppn-check              # fixtures + the workspace gate
//! ```
//!
//! Diagnostics are rustc-style `path:line: error[rule-id]: message` lines,
//! sorted by path/line/rule so output is stable across runs and file-system
//! orderings.
//!
//! ## Allowing a finding
//!
//! Add `// ppn-check: allow(rule-id) reason` on the offending line or the
//! line directly above. The reason is mandatory — an allow-comment without
//! one is itself a diagnostic (`allow-syntax`).
//!
//! ## What gets scanned
//!
//! First-party crates only. A crate is first-party when its package name
//! starts with `ppn` — the vendored dependency shims (`rand`, `serde*`,
//! `proptest`, `criterion`, `parking_lot`) keep their upstream names in
//! their manifests and are exempted via that manifest allowlist, not by
//! path, so moving or adding shims never silently widens the lint surface.
//!
//! ## Rule kinds
//!
//! Two kinds of rules run on every pass. *File rules*
//! ([`rules::registry`]) see one [`SourceFile`] at a time. *Workspace
//! rules* ([`workspace::registry`]) see the whole [`Workspace`] — every
//! scanned file plus the checked-in side artifacts (`env_manifest.toml`,
//! `README.md`, `results/api_surface.txt`) — which is what makes
//! cross-file properties like lock-order cycles checkable. Allow-comments
//! apply identically to both kinds when a finding lands on a source line.

pub mod rules;
pub mod scanner;
pub mod workspace;

pub use rules::{Diagnostic, Rule};
pub use scanner::{Role, SourceFile};
pub use workspace::{Workspace, WorkspaceRule};

use std::path::{Path, PathBuf};

/// Rule id used for malformed allow-comments.
pub const ALLOW_SYNTAX: &str = "allow-syntax";

/// A workspace member discovered from the manifests.
#[derive(Debug, Clone)]
pub struct CrateInfo {
    /// Package name from `Cargo.toml` (`name = "..."`).
    pub name: String,
    /// Crate directory (contains `Cargo.toml` and `src/`).
    pub dir: PathBuf,
}

impl CrateInfo {
    /// First-party crates are linted; vendored shims are exempt.
    pub fn is_first_party(&self) -> bool {
        self.name.starts_with("ppn")
    }
}

/// Reads `name = "..."` out of a crate manifest's `[package]` section.
fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let t = line.trim();
        if t.starts_with('[') {
            in_package = t == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = t.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(rest) = rest.strip_prefix('=') {
                    return Some(rest.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

/// Discovers workspace members: the root package plus every `crates/*`
/// directory with a `Cargo.toml`. Shim crates are included with their
/// upstream names so callers can observe (and test) the exemption.
pub fn discover(root: &Path) -> std::io::Result<Vec<CrateInfo>> {
    let mut out = Vec::new();
    let root_manifest = std::fs::read_to_string(root.join("Cargo.toml"))?;
    if let Some(name) = package_name(&root_manifest) {
        out.push(CrateInfo { name, dir: root.to_path_buf() });
    }
    let crates_dir = root.join("crates");
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.join("Cargo.toml").is_file())
        .collect();
    entries.sort();
    for dir in entries {
        let manifest = std::fs::read_to_string(dir.join("Cargo.toml"))?;
        if let Some(name) = package_name(&manifest) {
            out.push(CrateInfo { name, dir });
        }
    }
    Ok(out)
}

/// Collects the `.rs` files of a crate's `src/` tree (recursively), with
/// the [`Role`] each file compiles under.
pub fn crate_sources(info: &CrateInfo) -> std::io::Result<Vec<(PathBuf, Role)>> {
    let src = info.dir.join("src");
    let mut files = Vec::new();
    if src.is_dir() {
        walk(&src, &mut files)?;
    }
    files.sort();
    Ok(files
        .into_iter()
        .map(|p| {
            let is_bin = p.file_name().is_some_and(|f| f == "main.rs")
                || p.parent().and_then(Path::file_name).is_some_and(|d| d == "bin");
            (p, if is_bin { Role::Bin } else { Role::Lib })
        })
        .collect())
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Which engine a rule runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleKind {
    /// Per-file rule: `fn(&SourceFile) -> Vec<Diagnostic>`.
    File,
    /// Workspace rule: `fn(&Workspace) -> Vec<Diagnostic>`.
    Workspace,
}

impl RuleKind {
    /// Lowercase label used in `--all` timing lines and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            RuleKind::File => "file",
            RuleKind::Workspace => "workspace",
        }
    }
}

/// Wall-time spent in one rule across the whole run.
#[derive(Debug, Clone)]
pub struct RuleTiming {
    /// Rule identifier.
    pub id: &'static str,
    /// File or workspace rule.
    pub kind: RuleKind,
    /// Microseconds spent in the rule's checker (all files summed for file
    /// rules; one invocation for workspace rules).
    pub micros: u128,
}

/// Outcome of a workspace run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Surviving diagnostics, sorted by path/line/rule.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files scanned.
    pub files: usize,
    /// Number of crates skipped as vendored shims.
    pub shims_skipped: usize,
    /// Per-rule wall time, in registry order (file rules, then workspace).
    pub timings: Vec<RuleTiming>,
}

impl Report {
    /// True when the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Machine-readable rendering for `--json` and the CI artifact. Built
    /// by hand (no serde): the shape is small, flat, and fully escaped.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"files\": {},\n", self.files));
        out.push_str(&format!("  \"shims_skipped\": {},\n", self.shims_skipped));
        out.push_str(&format!("  \"clean\": {},\n", self.is_clean()));
        out.push_str("  \"timings\": [");
        for (i, t) in self.timings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"id\": \"{}\", \"kind\": \"{}\", \"micros\": {}}}",
                t.id,
                t.kind.label(),
                t.micros
            ));
        }
        out.push_str(if self.timings.is_empty() { "],\n" } else { "\n  ],\n" });
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"path\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
                json_escape(&d.path),
                d.line,
                d.rule,
                json_escape(&d.message)
            ));
        }
        out.push_str(if self.diagnostics.is_empty() { "]\n" } else { "\n  ]\n" });
        out.push('}');
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Every rule id an allow-comment may legally name: the file rules plus the
/// workspace rules.
pub fn known_rules() -> Vec<&'static str> {
    rules::registry()
        .iter()
        .map(|r| r.id)
        .chain(workspace::registry().iter().map(|r| r.id))
        .collect()
}

/// Emits `allow-syntax` diagnostics for malformed allow-comments in one
/// file: unknown rule ids and missing justifications.
fn allow_syntax_diags(file: &SourceFile, known: &[&'static str]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, line) in file.lines.iter().enumerate() {
        if let Some((rule, reason)) = parse_allow(&line.comment) {
            if !known.contains(&rule.as_str()) {
                out.push(Diagnostic {
                    path: file.path.clone(),
                    line: i + 1,
                    rule: ALLOW_SYNTAX,
                    message: format!("allow-comment names unknown rule `{rule}`"),
                });
            } else if reason.is_empty() {
                out.push(Diagnostic {
                    path: file.path.clone(),
                    line: i + 1,
                    rule: ALLOW_SYNTAX,
                    message: format!("allow({rule}) without a justification"),
                });
            }
        }
    }
    out
}

/// Lints one already-scanned file: runs every file rule, then applies
/// allow-comments (same line or the line directly above), emitting
/// `allow-syntax` diagnostics for malformed or reason-less allows.
/// Workspace rules do not run here — use [`run`] for the full pass.
pub fn lint_file(file: &SourceFile) -> Vec<Diagnostic> {
    // Malformed allow-comments are findings in their own right.
    let mut out = allow_syntax_diags(file, &known_rules());
    for d in rules::check_file(file) {
        if !is_allowed(file, &d) {
            out.push(d);
        }
    }
    out
}

/// True when the diagnostic's line (or a pure-comment line directly above)
/// carries a well-formed allow-comment for its rule. An allow trailing code
/// covers only its own line, so `x.unwrap(); // …allow…` never leaks onto
/// the statement below.
fn is_allowed(file: &SourceFile, d: &Diagnostic) -> bool {
    let line0 = d.line - 1;
    let matches = |i: usize| {
        file.lines
            .get(i)
            .and_then(|l| parse_allow(&l.comment))
            .is_some_and(|(rule, reason)| rule == d.rule && !reason.is_empty())
    };
    if matches(line0) {
        return true;
    }
    line0 > 0
        && file.lines.get(line0 - 1).is_some_and(|l| l.code.trim().is_empty())
        && matches(line0 - 1)
}

/// Parses `ppn-check: allow(rule-id) reason` out of comment text.
fn parse_allow(comment: &str) -> Option<(String, String)> {
    let rest = comment.trim().strip_prefix("ppn-check: allow(")?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    let reason = rest[close + 1..].trim().to_string();
    Some((rule, reason))
}

/// Scans the workspace at `root` into a [`Workspace`]: every first-party
/// source file plus the side artifacts the workspace passes reconcile
/// against. Returns the workspace and the number of shim crates skipped.
pub fn load_workspace(root: &Path) -> std::io::Result<(Workspace, usize)> {
    let mut shims = 0;
    let mut files = Vec::new();
    for info in &discover(root)? {
        if !info.is_first_party() {
            shims += 1;
            continue;
        }
        for (path, role) in crate_sources(info)? {
            let text = std::fs::read_to_string(&path)?;
            let rel = path.strip_prefix(root).unwrap_or(&path).display().to_string();
            files.push(SourceFile::scan(&rel, &info.name, role, &text));
        }
    }
    let read = |p: &str| std::fs::read_to_string(root.join(p)).ok();
    let ws = Workspace {
        files,
        env_manifest: read(workspace::env_registry::MANIFEST_PATH),
        readme: read("README.md"),
        api_golden: read(workspace::api_surface::GOLDEN_PATH),
    };
    Ok((ws, shims))
}

/// Scans and lints the whole workspace rooted at `root`: file rules, then
/// workspace rules, with per-rule wall time recorded and allow-comments
/// applied to every diagnostic that lands on a scanned source line.
pub fn run(root: &Path) -> std::io::Result<Report> {
    let (ws, shims_skipped) = load_workspace(root)?;
    let mut report = Report { files: ws.files.len(), shims_skipped, ..Report::default() };
    let known = known_rules();
    let mut raw: Vec<Diagnostic> = Vec::new();
    for file in &ws.files {
        raw.extend(allow_syntax_diags(file, &known));
    }
    for rule in rules::registry() {
        // ppn-check: allow(no-wallclock) per-rule timing is observability on the linter itself, not numerics
        let t0 = std::time::Instant::now();
        for file in &ws.files {
            raw.extend((rule.check)(file));
        }
        report.timings.push(RuleTiming {
            id: rule.id,
            kind: RuleKind::File,
            micros: t0.elapsed().as_micros(),
        });
    }
    for rule in workspace::registry() {
        // ppn-check: allow(no-wallclock) per-rule timing is observability on the linter itself, not numerics
        let t0 = std::time::Instant::now();
        raw.extend((rule.check)(&ws));
        report.timings.push(RuleTiming {
            id: rule.id,
            kind: RuleKind::Workspace,
            micros: t0.elapsed().as_micros(),
        });
    }
    // Allow-comments suppress any diagnostic anchored on a scanned line,
    // workspace findings included; findings on side artifacts (manifest,
    // golden file) have no allow escape by design.
    let by_path: std::collections::BTreeMap<&str, &SourceFile> =
        ws.files.iter().map(|f| (f.path.as_str(), f)).collect();
    for d in raw {
        let allowed = by_path.get(d.path.as_str()).is_some_and(|f| is_allowed(f, &d));
        if !allowed {
            report.diagnostics.push(d);
        }
    }
    report.diagnostics.sort();
    Ok(report)
}

/// Walks upward from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]` — the lint root.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn package_name_parses_package_section_only() {
        let manifest = "[workspace]\nmembers = [\"x\"]\n\n[package]\nname = \"ppn-core\"\n";
        assert_eq!(package_name(manifest).as_deref(), Some("ppn-core"));
        let shim = "[package]\nname = \"rand\"\nversion = \"0.8.5\"\n";
        assert_eq!(package_name(shim).as_deref(), Some("rand"));
        assert_eq!(package_name("[workspace]\n"), None);
    }

    #[test]
    fn allow_parsing_requires_reason() {
        assert_eq!(
            parse_allow(" ppn-check: allow(no-panic) invariant: shape checked above"),
            Some(("no-panic".into(), "invariant: shape checked above".into()))
        );
        assert_eq!(
            parse_allow(" ppn-check: allow(no-panic)"),
            Some(("no-panic".into(), "".into()))
        );
        assert_eq!(parse_allow(" just a comment"), None);
    }

    #[test]
    fn allow_comment_suppresses_on_same_and_previous_line() {
        let src = "\
pub fn a() {
    // ppn-check: allow(no-panic) statically infallible: len checked above
    x.unwrap();
    y.unwrap(); // ppn-check: allow(no-panic) documented invariant
    z.unwrap();
}";
        let f = SourceFile::scan("crates/core/src/a.rs", "ppn-core", Role::Lib, src);
        let ds = lint_file(&f);
        let unwraps: Vec<_> = ds.iter().filter(|d| d.rule == "no-panic").collect();
        assert_eq!(unwraps.len(), 1, "{ds:?}");
        assert_eq!(unwraps[0].line, 5);
    }

    #[test]
    fn reasonless_allow_is_a_diagnostic_and_does_not_suppress() {
        let src = "// ppn-check: allow(no-panic)\npub fn a() { x.unwrap(); }";
        let f = SourceFile::scan("crates/core/src/a.rs", "ppn-core", Role::Lib, src);
        let ds = lint_file(&f);
        assert!(ds.iter().any(|d| d.rule == ALLOW_SYNTAX));
        assert!(ds.iter().any(|d| d.rule == "no-panic"));
    }
}
