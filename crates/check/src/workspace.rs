//! The workspace-level analysis layer.
//!
//! PR 2's rules are per-file and line-oriented; the passes registered here
//! see *every* scanned file at once (plus the checked-in side artifacts:
//! the env manifest, the README, and the API-surface golden file). That is
//! what makes cross-file properties checkable: a lock-order cycle whose two
//! halves live in different functions, an env var read in one crate but
//! documented nowhere, a `pub` item silently dropped from a crate's API.
//!
//! A [`WorkspaceRule`] is the second rule kind next to [`crate::rules::Rule`]:
//! its checker receives the whole [`Workspace`] instead of one
//! [`SourceFile`]. Diagnostics still carry `path:line` anchors, so the
//! engine's allow-comment machinery applies unchanged to findings that land
//! on a source line (findings on side artifacts such as
//! `results/api_surface.txt` have no allow escape — they are resolved by
//! regenerating the artifact).

/// `api-surface`: pub-item snapshots diffed against a committed golden file.
pub mod api_surface;
/// `env-registry`: every `PPN_*` env access must match the env manifest.
pub mod env_registry;
/// `lock-order`: cross-file lock acquisition graph + cycle detection.
pub mod lock_order;
/// `no-wallclock`: wall-clock reads confined to obs/trace/bench.
pub mod wallclock;

use crate::rules::Diagnostic;
use crate::scanner::SourceFile;

/// Everything a workspace pass can see: the scanned first-party sources and
/// the checked-in side artifacts the passes reconcile them against.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    /// Every scanned first-party source file, in sorted path order.
    pub files: Vec<SourceFile>,
    /// Raw text of `env_manifest.toml` at the workspace root, if present.
    pub env_manifest: Option<String>,
    /// Raw text of `README.md` at the workspace root, if present.
    pub readme: Option<String>,
    /// Raw text of the committed `results/api_surface.txt` golden file.
    pub api_golden: Option<String>,
}

/// A registered workspace-level rule: like [`crate::rules::Rule`], but the
/// checker sees all files at once.
pub struct WorkspaceRule {
    /// Stable kebab-case identifier used in diagnostics and allow-comments.
    pub id: &'static str,
    /// One-line description for `--list`.
    pub description: &'static str,
    /// The pass itself.
    pub check: fn(&Workspace) -> Vec<Diagnostic>,
}

/// The workspace-level rule set, in reporting order.
pub fn registry() -> Vec<WorkspaceRule> {
    vec![
        WorkspaceRule {
            id: "lock-order",
            description: "Mutex/RwLock/Condvar acquisitions must form a cycle-free lock-order \
                          graph (AB/BA nesting deadlocks); re-entrant acquisition of the same \
                          lock is a 1-cycle",
            check: lock_order::check,
        },
        WorkspaceRule {
            id: "env-registry",
            description: "every PPN_* env access must match an env_manifest.toml entry, every \
                          entry must have a live access, and the README env table must be \
                          regenerated from the manifest (--write-env-docs)",
            check: env_registry::check,
        },
        WorkspaceRule {
            id: "no-wallclock",
            description: "Instant::now/SystemTime::now confined to obs, trace, and bench — \
                          numerical crates stay wall-clock-free (replayability); everything \
                          else routes through ppn_obs::clock",
            check: wallclock::check,
        },
        WorkspaceRule {
            id: "api-surface",
            description: "the name-sorted snapshot of pub items per crate must equal the \
                          committed results/api_surface.txt golden (--write-api-surface \
                          regenerates after an intentional change)",
            check: api_surface::check,
        },
    ]
}

/// Runs every workspace rule (allow-comments not yet applied).
pub fn check_workspace(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for rule in registry() {
        out.extend((rule.check)(ws));
    }
    out
}
