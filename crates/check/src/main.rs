//! `ppn-check` — workspace lint gate. See the `ppn_check` crate docs.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut list = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--all" => {} // the default (and only) scan mode; kept for clarity
            "--list" => list = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("ppn-check: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: ppn-check [--all] [--root PATH] [--list]\n\
                     Lints first-party workspace crates; exits non-zero on any diagnostic.\n\
                     Allow a finding with `// ppn-check: allow(rule-id) reason`."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("ppn-check: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    if list {
        println!("{:<12} description", "rule");
        for rule in ppn_check::rules::registry() {
            println!(
                "{:<12} {}",
                rule.id,
                rule.description.split_whitespace().collect::<Vec<_>>().join(" ")
            );
        }
        return ExitCode::SUCCESS;
    }
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let Some(root) = root.or_else(|| ppn_check::find_workspace_root(&cwd)) else {
        eprintln!("ppn-check: no workspace root found above {}", cwd.display());
        return ExitCode::from(2);
    };
    match ppn_check::run(&root) {
        Ok(report) => {
            for d in &report.diagnostics {
                println!("{d}");
            }
            if report.is_clean() {
                println!(
                    "ppn-check: clean — {} files scanned, {} shim crates exempt",
                    report.files, report.shims_skipped
                );
                ExitCode::SUCCESS
            } else {
                println!(
                    "ppn-check: {} diagnostic(s) across {} files",
                    report.diagnostics.len(),
                    report.files
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("ppn-check: scan failed: {e}");
            ExitCode::from(2)
        }
    }
}
