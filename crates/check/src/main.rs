//! `ppn-check` — workspace lint gate. See the `ppn_check` crate docs.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() {
    println!(
        "usage: ppn-check [--all] [--root PATH] [--list] [--json]\n\
         \x20                [--write-api-surface] [--write-env-docs]\n\
         Lints first-party workspace crates; exits non-zero on any diagnostic.\n\
         Allow a finding with `// ppn-check: allow(rule-id) reason`.\n\
         --all                run every rule and print per-rule timing lines\n\
         --json               print the report as JSON on stdout (summary on stderr)\n\
         --list               print the rule table, grouped by kind\n\
         --write-api-surface  regenerate results/api_surface.txt from the sources\n\
         --write-env-docs     regenerate the README env-var table from env_manifest.toml"
    );
}

fn list_rules() {
    println!("file rules (per-file, line-oriented):");
    for rule in ppn_check::rules::registry() {
        println!(
            "  {:<12} {}",
            rule.id,
            rule.description.split_whitespace().collect::<Vec<_>>().join(" ")
        );
    }
    println!("\nworkspace rules (cross-file, see every source at once):");
    for rule in ppn_check::workspace::registry() {
        println!(
            "  {:<12} {}",
            rule.id,
            rule.description.split_whitespace().collect::<Vec<_>>().join(" ")
        );
    }
}

/// Regenerates a checked-in artifact; returns the process exit code.
fn write_artifact(root: &std::path::Path, which: &str) -> ExitCode {
    let (ws, _) = match ppn_check::load_workspace(root) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("ppn-check: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    let result = match which {
        "api" => {
            let path = root.join(ppn_check::workspace::api_surface::GOLDEN_PATH);
            let text = ppn_check::workspace::api_surface::snapshot(&ws);
            std::fs::write(&path, text).map(|()| path)
        }
        _ => {
            use ppn_check::workspace::env_registry as env;
            let Some(manifest) = &ws.env_manifest else {
                eprintln!("ppn-check: no {} to render from", env::MANIFEST_PATH);
                return ExitCode::from(2);
            };
            let (entries, diags) = env::parse(manifest);
            if !diags.is_empty() {
                for d in &diags {
                    eprintln!("{d}");
                }
                return ExitCode::FAILURE;
            }
            let Some(readme) = &ws.readme else {
                eprintln!("ppn-check: no README.md to rewrite");
                return ExitCode::from(2);
            };
            let (Some(begin), Some(end)) =
                (readme.find(env::README_BEGIN), readme.find(env::README_END))
            else {
                eprintln!(
                    "ppn-check: README.md lacks the {} … {} markers",
                    env::README_BEGIN,
                    env::README_END
                );
                return ExitCode::from(2);
            };
            let rebuilt = format!(
                "{}\n{}{}",
                &readme[..begin + env::README_BEGIN.len()],
                env::render_table(&entries),
                &readme[end..]
            );
            let path = root.join("README.md");
            std::fs::write(&path, rebuilt).map(|()| path)
        }
    };
    match result {
        Ok(path) => {
            println!("ppn-check: wrote {}", path.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ppn-check: write failed: {e}");
            ExitCode::from(2)
        }
    }
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut list = false;
    let mut json = false;
    let mut timings = false;
    let mut write: Option<&str> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            // --all is the default (and only) scan mode; it additionally
            // turns on the per-rule timing lines.
            "--all" => timings = true,
            "--list" => list = true,
            "--json" => json = true,
            "--write-api-surface" => write = Some("api"),
            "--write-env-docs" => write = Some("env"),
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("ppn-check: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("ppn-check: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    if list {
        list_rules();
        return ExitCode::SUCCESS;
    }
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let Some(root) = root.or_else(|| ppn_check::find_workspace_root(&cwd)) else {
        eprintln!("ppn-check: no workspace root found above {}", cwd.display());
        return ExitCode::from(2);
    };
    if let Some(which) = write {
        return write_artifact(&root, which);
    }
    match ppn_check::run(&root) {
        Ok(report) => {
            if json {
                // Stdout carries only the JSON document so it pipes cleanly
                // into a file or a parser; the summary goes to stderr.
                println!("{}", report.to_json());
            } else {
                for d in &report.diagnostics {
                    println!("{d}");
                }
                if timings {
                    for t in &report.timings {
                        println!(
                            "ppn-check: rule {:<12} [{:>9}] {:>7} µs",
                            t.id,
                            t.kind.label(),
                            t.micros
                        );
                    }
                }
            }
            let summary = if report.is_clean() {
                format!(
                    "ppn-check: clean — {} files scanned, {} shim crates exempt",
                    report.files, report.shims_skipped
                )
            } else {
                format!(
                    "ppn-check: {} diagnostic(s) across {} files",
                    report.diagnostics.len(),
                    report.files
                )
            };
            if json {
                eprintln!("{summary}");
            } else {
                println!("{summary}");
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("ppn-check: scan failed: {e}");
            ExitCode::from(2)
        }
    }
}
