//! `lock-order`: build the workspace lock-order graph and reject cycles.
//!
//! ## Model
//!
//! A *lock* is an identifier declared next to a `Mutex`, `RwLock`, or
//! `Condvar` type (a `static`, a `let` binding, a struct field, or an fn
//! parameter). Lock identity is `(declaring file, identifier)` — two
//! `REGISTRY` statics in different modules are different locks, so
//! unrelated modules can never be welded into a false cycle.
//!
//! An *acquisition* is a `.lock()` / `.read()` / `.write()` / `.wait*()`
//! call whose receiver resolves to a known lock of the same file. A guard
//! bound with `let` is held until its block ends (tracked with the
//! scanner's per-line brace depths) or until an explicit `drop(guard)`;
//! a guard used as a temporary (`x.lock().len()`) is held to the end of
//! its line only.
//!
//! While lock `A` is held, acquiring lock `B` adds the directed edge
//! `A → B` (with both acquisition sites). Any cycle in the resulting graph
//! — including the 1-cycle of re-acquiring a non-reentrant lock — is a
//! latent deadlock and fails the pass.
//!
//! ## Known false negative
//!
//! The analysis is lexical: it sees nesting *within one function body*
//! (closures included, since they are just blocks). A guard passed across
//! a function or closure boundary — `fn helper(g: MutexGuard<…>)` calling
//! `other.lock()` — is invisible, as is a lock acquired behind a method
//! call. Keeping lock regions short and call-free is therefore still on
//! the human. See DESIGN.md §"Static analysis v2".

use crate::rules::{declared_idents, has_word, leading_ident, Diagnostic};
use crate::scanner::{call_sites, SourceFile};
use crate::workspace::Workspace;
use std::collections::{BTreeMap, BTreeSet};

/// Methods that acquire a lock (parking_lot and std spellings).
const ACQUIRE_METHODS: [&str; 6] = ["lock", "read", "write", "wait", "wait_while", "wait_for"];

/// Type names whose neighbouring identifier declares a lock.
const LOCK_TYPES: [&str; 3] = ["Mutex", "RwLock", "Condvar"];

/// One acquisition site, used in diagnostics.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Site {
    path: String,
    line: usize, // 1-based
}

impl std::fmt::Display for Site {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.path, self.line)
    }
}

/// Lock identity: declaring file + identifier.
type LockId = (String, String);

/// Identifiers declared as locks anywhere in `file`.
fn lock_idents(file: &SourceFile) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for line in &file.lines {
        let code = &line.code;
        if !LOCK_TYPES.iter().any(|t| has_word(code, t)) {
            continue;
        }
        // Declaration statements: `let x = Mutex::new(…)`, `static X: …`.
        out.extend(declared_idents(code));
        // Typed positions anywhere in the line (fields, fn params):
        // `name: [&][mut ]Mutex<…>` / `name: &'a RwLock<…>`.
        for ty in LOCK_TYPES {
            let mut from = 0;
            while let Some(p) = code[from..].find(ty) {
                let at = from + p;
                from = at + ty.len();
                if let Some(name) = ident_before_colon(&code[..at]) {
                    out.insert(name);
                }
            }
        }
    }
    out
}

/// Walks back over `&`, lifetimes, `mut`, and whitespace before a type
/// position; if a `:` preceded by an identifier is found, returns it.
fn ident_before_colon(before: &str) -> Option<String> {
    let mut s = before.trim_end();
    loop {
        let t = s.trim_end_matches(|c: char| c == '&' || c.is_whitespace());
        let t = t.strip_suffix("mut").unwrap_or(t);
        let t = match t.trim_end().rfind('\'') {
            // `&'a Mutex<…>`: drop the lifetime token.
            Some(q) if t[q + 1..].chars().all(|c| c.is_alphanumeric() || c == '_') => &t[..q],
            _ => t.trim_end(),
        };
        if t.len() == s.len() {
            break;
        }
        s = t;
    }
    let t = s.strip_suffix(':')?;
    let t = t.trim_end();
    let end = t.len();
    let start = t
        .char_indices()
        .rev()
        .take_while(|(_, c)| c.is_alphanumeric() || *c == '_')
        .last()
        .map(|(i, _)| i)?;
    let name = &t[start..end];
    (!name.is_empty() && !name.starts_with(|c: char| c.is_ascii_digit())).then(|| name.to_string())
}

/// Normalizes a call receiver to the declared identifier: `self.jobs` →
/// `jobs`, `Self::REGISTRY` → `REGISTRY`, plain `queue` stays `queue`.
fn receiver_ident(receiver: &str) -> &str {
    receiver.rsplit(['.', ':']).next().unwrap_or(receiver)
}

/// A guard currently held during the per-function walk.
struct Held {
    lock: LockId,
    site: Site,
    /// Brace depth at acquisition; released once the line depth drops below.
    depth: usize,
    /// Binding name, for `drop(name)` release tracking (None = temporary).
    guard: Option<String>,
}

/// Directed edge set: `(from, to) → (from-site, to-site)`, first occurrence.
type Edges = BTreeMap<(LockId, LockId), (Site, Site)>;

/// Extracts every held-while-acquiring edge from one file.
fn file_edges(file: &SourceFile, edges: &mut Edges) {
    let idents = lock_idents(file);
    if idents.is_empty() {
        return;
    }
    // Walk outermost function spans only — inner spans are covered by the
    // outer walk, and double-processing would duplicate work, not edges.
    let outer: Vec<(usize, usize)> = file
        .fn_spans
        .iter()
        .copied()
        .filter(|&(s, e)| {
            !file.fn_spans.iter().any(|&(s2, e2)| (s2 < s && e <= e2) || (s2 <= s && e < e2))
        })
        .collect();
    for (s, e) in outer {
        let mut held: Vec<Held> = Vec::new();
        for j in s..=e.min(file.lines.len() - 1) {
            let (depth_start, _) = file.depths[j];
            // Block exits release every guard acquired deeper than here.
            held.retain(|h| h.depth <= depth_start);
            let code = &file.lines[j].code;
            // Explicit early release: `drop(guard)`.
            held.retain(|h| match &h.guard {
                Some(g) => !(code.contains("drop(") && has_word(code, g)),
                None => true,
            });
            let mut line_temps: Vec<(LockId, Site)> = Vec::new();
            for site in call_sites(code) {
                if !ACQUIRE_METHODS.contains(&site.method.as_str()) {
                    continue;
                }
                let name = receiver_ident(&site.receiver);
                if !idents.contains(name) {
                    continue;
                }
                let lock: LockId = (file.path.clone(), name.to_string());
                let at = Site { path: file.path.clone(), line: j + 1 };
                for (from, from_site) in held
                    .iter()
                    .map(|h| (&h.lock, &h.site))
                    .chain(line_temps.iter().map(|(l, s)| (l, s)))
                {
                    edges
                        .entry((from.clone(), lock.clone()))
                        .or_insert_with(|| (from_site.clone(), at.clone()));
                }
                if let Some(guard) = binding_name(code, site.at) {
                    held.push(Held {
                        lock,
                        site: at,
                        depth: depth_start,
                        guard: Some(guard).filter(|g| g != "_"),
                    });
                } else {
                    line_temps.push((lock, at));
                }
            }
        }
    }
}

/// If the call at byte offset `at` is bound by a `let` on the same line,
/// returns the binding name (`let [mut] NAME = …`).
fn binding_name(code: &str, at: usize) -> Option<String> {
    let head = &code[..at];
    let let_pos = head.rfind("let ")?;
    let rest = head[let_pos + 4..].trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    // An intervening `;` means the `let` belongs to an earlier statement.
    if head[let_pos..].contains(';') {
        return None;
    }
    leading_ident(rest)
}

/// Renders a lock for humans: `ident (file.rs)`.
fn show(lock: &LockId) -> String {
    let file = lock.0.rsplit('/').next().unwrap_or(&lock.0);
    format!("`{}` ({file})", lock.1)
}

/// The `lock-order` pass: collect edges, then reject any cycle.
pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let mut edges: Edges = BTreeMap::new();
    for file in &ws.files {
        file_edges(file, &mut edges);
    }
    // Adjacency view for path search.
    let mut adj: BTreeMap<&LockId, Vec<&LockId>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from).or_default().push(to);
    }
    let mut out = Vec::new();
    let mut reported: BTreeSet<BTreeSet<LockId>> = BTreeSet::new();
    for ((from, to), (from_site, to_site)) in &edges {
        // The edge closes a cycle iff `to` can reach `from` again.
        let Some(back) = path(&adj, to, from) else { continue };
        let members: BTreeSet<LockId> = back.iter().map(|l| (*l).clone()).collect();
        let member_count = members.len();
        if !reported.insert(members) {
            continue; // one report per distinct lock set
        }
        // Render the full cycle with each edge's acquisition sites.
        let mut hops = vec![format!(
            "{} acquired at {to_site} while holding {} (acquired at {from_site})",
            show(to),
            show(from)
        )];
        for w in back.windows(2) {
            let (s_from, s_to) = &edges[&(w[0].clone(), w[1].clone())];
            hops.push(format!(
                "{} acquired at {s_to} while holding {} (acquired at {s_from})",
                show(w[1]),
                show(w[0])
            ));
        }
        out.push(Diagnostic {
            path: to_site.path.clone(),
            line: to_site.line,
            rule: "lock-order",
            message: format!(
                "lock-order cycle ({member_count} lock(s)): {} — a consistent global \
                 acquisition order is required to rule out deadlock",
                hops.join("; ")
            ),
        });
    }
    out
}

/// Shortest path `start → … → goal` over the edge set (BFS), returned as
/// the node list including both endpoints. `start == goal` returns the
/// 1-cycle `[start, goal]` only if a self-edge exists (handled by caller
/// via edge iteration, so here plain BFS suffices).
fn path<'a>(
    adj: &BTreeMap<&'a LockId, Vec<&'a LockId>>,
    start: &'a LockId,
    goal: &LockId,
) -> Option<Vec<&'a LockId>> {
    if start == goal {
        return Some(vec![start]);
    }
    let mut prev: BTreeMap<&LockId, &LockId> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::from([start]);
    while let Some(node) = queue.pop_front() {
        for &next in adj.get(node).into_iter().flatten() {
            if next == start || prev.contains_key(next) {
                continue;
            }
            prev.insert(next, node);
            if next == goal {
                // The prev chain already terminates at `start` (which has
                // no predecessor), so walking it back yields start…goal.
                let mut chain = vec![next];
                let mut cur = next;
                while let Some(&p) = prev.get(cur) {
                    chain.push(p);
                    cur = p;
                }
                chain.reverse();
                return Some(chain);
            }
            queue.push_back(next);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::{Role, SourceFile};

    fn ws(src: &str) -> Workspace {
        Workspace {
            files: vec![SourceFile::scan("crates/serve/src/x.rs", "ppn-serve", Role::Lib, src)],
            ..Workspace::default()
        }
    }

    #[test]
    fn lock_idents_cover_statics_fields_params_and_lets() {
        let src = "static REG: Mutex<u32> = Mutex::new(0);\nstruct S { jobs: Mutex<Vec<u32>> }\nfn f(queue: &Mutex<u32>, cv: &'a Condvar) {\n    let local = RwLock::new(1);\n}";
        let f = SourceFile::scan("x.rs", "ppn-serve", Role::Lib, src);
        let ids = lock_idents(&f);
        for name in ["REG", "jobs", "queue", "cv", "local"] {
            assert!(ids.contains(name), "{name} missing from {ids:?}");
        }
    }

    #[test]
    fn nested_opposite_orders_form_a_cycle() {
        let src = "\
static A: Mutex<u32> = Mutex::new(0);
static B: Mutex<u32> = Mutex::new(0);
pub fn ab() {
    let a = A.lock();
    let b = B.lock();
    drop((a, b));
}
pub fn ba() {
    let b = B.lock();
    let a = A.lock();
    drop((a, b));
}";
        let d = check(&ws(src));
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("x.rs:5"), "{}", d[0].message);
        assert!(d[0].message.contains("x.rs:10"), "{}", d[0].message);
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "\
static A: Mutex<u32> = Mutex::new(0);
static B: Mutex<u32> = Mutex::new(0);
pub fn ab() {
    let a = A.lock();
    let b = B.lock();
    drop((a, b));
}
pub fn ab_again() {
    let a = A.lock();
    let b = B.lock();
    drop((a, b));
}";
        assert!(check(&ws(src)).is_empty());
    }

    #[test]
    fn reacquiring_the_same_lock_is_a_one_cycle() {
        let src = "\
static A: Mutex<u32> = Mutex::new(0);
pub fn double() {
    let a = A.lock();
    let b = A.lock();
    drop((a, b));
}";
        let d = check(&ws(src));
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 4);
    }

    #[test]
    fn block_exit_and_drop_release_guards() {
        let src = "\
static A: Mutex<u32> = Mutex::new(0);
static B: Mutex<u32> = Mutex::new(0);
pub fn scoped() {
    {
        let a = A.lock();
        drop(a);
    }
    let b = B.lock();
    drop(b);
}
pub fn dropped() {
    let b = B.lock();
    drop(b);
    let a = A.lock();
    drop(a);
}
pub fn ab() {
    let a = A.lock();
    let b = B.lock();
    drop((a, b));
}";
        // scoped/dropped produce no B→A edges, so ab's A→B cannot cycle.
        assert!(check(&ws(src)).is_empty());
    }

    #[test]
    fn same_name_in_different_files_stays_distinct() {
        let one = "static REG: Mutex<u32> = Mutex::new(0);\nstatic AUX: Mutex<u32> = Mutex::new(0);\npub fn f() {\n    let r = REG.lock();\n    let x = AUX.lock();\n    drop((r, x));\n}";
        let two = "static REG: Mutex<u32> = Mutex::new(0);\nstatic AUX: Mutex<u32> = Mutex::new(0);\npub fn g() {\n    let x = AUX.lock();\n    let r = REG.lock();\n    drop((r, x));\n}";
        let ws = Workspace {
            files: vec![
                SourceFile::scan("crates/obs/src/one.rs", "ppn-obs", Role::Lib, one),
                SourceFile::scan("crates/obs/src/two.rs", "ppn-obs", Role::Lib, two),
            ],
            ..Workspace::default()
        };
        // Opposite orders, but over *different* lock pairs — no cycle.
        assert!(check(&ws).is_empty());
    }

    #[test]
    fn temporary_guards_only_pair_within_their_line() {
        let src = "\
static A: Mutex<u32> = Mutex::new(0);
static B: Mutex<u32> = Mutex::new(0);
pub fn f() -> usize {
    A.lock().len()
}
pub fn g() -> usize {
    B.lock().len() + A.lock().len()
}";
        // f's temporary is released before g runs; g orders B before A on
        // one line, and nothing ever orders A before B — no cycle.
        assert!(check(&ws(src)).is_empty());
    }
}
