//! `no-wallclock`: wall-clock reads are confined to the observability
//! stack.
//!
//! Bit-identical reproducibility is the workspace's standing verification
//! contract: a numerical crate that reads the wall clock can smuggle
//! nondeterminism into results (timing-dependent branches, timestamps in
//! outputs) and breaks replayability. `Instant::now`/`SystemTime::now` are
//! therefore allowed only in the crates whose *job* is timing — `ppn-obs`,
//! `ppn-trace`, `ppn-bench` — while every other crate routes through the
//! single `ppn_obs::clock` chokepoint (which a replay harness can audit or
//! virtualize in one place). Using the `Instant`/`SystemTime` *types* (e.g.
//! carrying a timestamp produced by obs) is fine; only the clock *reads*
//! are flagged.

use crate::rules::Diagnostic;
use crate::workspace::Workspace;

/// Crates allowed to read the wall clock directly.
const ALLOWED_CRATES: [&str; 3] = ["ppn-obs", "ppn-trace", "ppn-bench"];

/// Clock-read patterns. `elapsed()` on an existing `Instant` is not listed:
/// it derives from a read that already happened at a sanctioned site.
const CLOCK_PATTERNS: [(&str, &str); 2] =
    [("Instant::now", "monotonic clock read"), ("SystemTime::now", "wall clock read")];

/// The `no-wallclock` pass.
pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in &ws.files {
        if ALLOWED_CRATES.contains(&file.crate_name.as_str()) {
            continue;
        }
        for (i, line) in file.lines.iter().enumerate() {
            if file.in_test(i) {
                continue;
            }
            for (pat, why) in CLOCK_PATTERNS {
                if line.code.contains(pat) {
                    out.push(Diagnostic {
                        path: file.path.clone(),
                        line: i + 1,
                        rule: "no-wallclock",
                        message: format!(
                            "{why} outside obs/trace/bench — use ppn_obs::clock::now() so \
                             numerical crates stay replayable (`{}`)",
                            line.code.trim()
                        ),
                    });
                    break;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::{Role, SourceFile};

    fn ws(path: &str, krate: &str, src: &str) -> Workspace {
        Workspace {
            files: vec![SourceFile::scan(path, krate, Role::Lib, src)],
            ..Workspace::default()
        }
    }

    #[test]
    fn numerical_crates_may_not_read_the_clock() {
        let src = "pub fn f() {\n    let t0 = std::time::Instant::now();\n    let w = std::time::SystemTime::now();\n    drop((t0, w));\n}";
        let d = check(&ws("crates/core/src/x.rs", "ppn-core", src));
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].line, 2);
        assert_eq!(d[1].line, 3);
    }

    #[test]
    fn obs_trace_bench_are_exempt() {
        let src = "pub fn f() { let t0 = std::time::Instant::now(); drop(t0); }";
        for (path, krate) in [
            ("crates/obs/src/x.rs", "ppn-obs"),
            ("crates/trace/src/x.rs", "ppn-trace"),
            ("crates/bench/src/x.rs", "ppn-bench"),
        ] {
            assert!(check(&ws(path, krate, src)).is_empty(), "{krate}");
        }
    }

    #[test]
    fn clock_types_and_test_code_are_fine() {
        let src = "use std::time::Instant;\npub struct S { pub at: Instant }\npub fn f(t: Instant) -> f64 { t.elapsed().as_secs_f64() }\n#[cfg(test)]\nmod tests {\n    fn t() { let _ = std::time::Instant::now(); }\n}";
        assert!(check(&ws("crates/serve/src/x.rs", "ppn-serve", src)).is_empty());
    }
}
