//! `env-registry`: `PPN_*` environment variables must be declared.
//!
//! Env knobs silently change numerical behavior (`PPN_THREADS`,
//! `PPN_STEPS_SCALE`, …), so every one of them must be declared in the
//! checked-in `env_manifest.toml` at the workspace root — name, owning
//! crate, default, and effect. The manifest is the single source of truth:
//! the README env-var table is *generated* from it
//! (`ppn-check --write-env-docs`) and this pass fails when the two drift,
//! when code touches an undeclared `PPN_*` variable, or when a manifest
//! entry goes dead (no `env::var`/`set_var`/`remove_var` access anywhere —
//! tests included, since tests setting stale knobs is exactly the rot this
//! pass exists to catch).

use crate::rules::Diagnostic;
use crate::workspace::Workspace;
use std::collections::BTreeMap;

/// Path (relative to the workspace root) of the manifest.
pub const MANIFEST_PATH: &str = "env_manifest.toml";

/// One declared environment variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvVarSpec {
    /// Variable name (`PPN_…`).
    pub name: String,
    /// Crate that owns (defines the semantics of) the variable.
    pub owner: String,
    /// Default behavior when unset.
    pub default: String,
    /// One-line description of what the variable changes.
    pub effect: String,
    /// 1-based line of the entry's `[[var]]` header in the manifest.
    pub line: usize,
}

/// Parses the manifest. Syntax problems surface as diagnostics anchored in
/// the manifest file, not as parse failures — the pass must keep running to
/// report the rest of the workspace.
pub fn parse(text: &str) -> (Vec<EnvVarSpec>, Vec<Diagnostic>) {
    let mut entries: Vec<EnvVarSpec> = Vec::new();
    let mut diags = Vec::new();
    let mut cur: Option<EnvVarSpec> = None;
    let flush = |cur: &mut Option<EnvVarSpec>,
                 diags: &mut Vec<Diagnostic>,
                 entries: &mut Vec<EnvVarSpec>| {
        if let Some(e) = cur.take() {
            let mut missing = Vec::new();
            for (field, value) in [
                ("name", &e.name),
                ("crate", &e.owner),
                ("default", &e.default),
                ("effect", &e.effect),
            ] {
                if value.is_empty() {
                    missing.push(field);
                }
            }
            if missing.is_empty() {
                entries.push(e);
            } else {
                diags.push(manifest_diag(
                    e.line,
                    format!("manifest entry `{}` missing field(s): {}", e.name, missing.join(", ")),
                ));
            }
        }
    };
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[var]]" {
            flush(&mut cur, &mut diags, &mut entries);
            cur = Some(EnvVarSpec {
                name: String::new(),
                owner: String::new(),
                default: String::new(),
                effect: String::new(),
                line: i + 1,
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            diags.push(manifest_diag(i + 1, format!("unparseable manifest line `{line}`")));
            continue;
        };
        let value = value.trim().trim_matches('"').to_string();
        let Some(e) = cur.as_mut() else {
            diags.push(manifest_diag(i + 1, "key outside a [[var]] entry".into()));
            continue;
        };
        match key.trim() {
            "name" => e.name = value,
            "crate" => e.owner = value,
            "default" => e.default = value,
            "effect" => e.effect = value,
            other => diags.push(manifest_diag(i + 1, format!("unknown manifest key `{other}`"))),
        }
    }
    flush(&mut cur, &mut diags, &mut entries);
    // Name hygiene: the manifest covers exactly the PPN_* namespace.
    for e in &entries {
        let well_formed = e.name.strip_prefix("PPN_").is_some_and(|rest| {
            !rest.is_empty()
                && rest.chars().all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
        });
        if !well_formed {
            diags.push(manifest_diag(e.line, format!("`{}` is not a PPN_* variable name", e.name)));
        }
    }
    let mut seen: BTreeMap<&str, usize> = BTreeMap::new();
    for e in &entries {
        if let Some(first) = seen.insert(&e.name, e.line) {
            diags.push(manifest_diag(
                e.line,
                format!("duplicate manifest entry `{}` (first declared on line {first})", e.name),
            ));
        }
    }
    (entries, diags)
}

fn manifest_diag(line: usize, message: String) -> Diagnostic {
    Diagnostic { path: MANIFEST_PATH.to_string(), line, rule: "env-registry", message }
}

/// Every `PPN_*` env access in the workspace: `(name, path, 1-based line)`.
/// Test code is included deliberately — stale knobs rot in tests first.
pub fn env_accesses(ws: &Workspace) -> Vec<(String, String, usize)> {
    const ENV_FNS: [&str; 3] = ["env::var", "env::set_var", "env::remove_var"];
    let mut out = Vec::new();
    for file in &ws.files {
        for (i, line) in file.lines.iter().enumerate() {
            if !ENV_FNS.iter().any(|f| line.code.contains(f)) {
                continue;
            }
            for s in &line.strings {
                if s.starts_with("PPN_") {
                    out.push((s.clone(), file.path.clone(), i + 1));
                }
            }
        }
    }
    out
}

/// Renders the markdown env-var table (sorted by name) the README embeds.
pub fn render_table(entries: &[EnvVarSpec]) -> String {
    let mut sorted: Vec<&EnvVarSpec> = entries.iter().collect();
    sorted.sort_by(|a, b| a.name.cmp(&b.name));
    let mut out = String::from("| Variable | Owner | Default | Effect |\n|---|---|---|---|\n");
    for e in sorted {
        out.push_str(&format!("| `{}` | `{}` | {} | {} |\n", e.name, e.owner, e.default, e.effect));
    }
    out
}

/// Marker lines bounding the generated README region.
pub const README_BEGIN: &str = "<!-- env-manifest:begin -->";
/// Closing marker. See [`README_BEGIN`].
pub const README_END: &str = "<!-- env-manifest:end -->";

/// Extracts the generated region of a README, if the markers are present.
pub fn readme_region(readme: &str) -> Option<&str> {
    let begin = readme.find(README_BEGIN)? + README_BEGIN.len();
    let end = readme[begin..].find(README_END)? + begin;
    Some(&readme[begin..end])
}

/// The `env-registry` pass.
pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let Some(manifest) = &ws.env_manifest else {
        return vec![manifest_diag(
            1,
            "env_manifest.toml is missing from the workspace root — every PPN_* env var must \
             be declared there"
                .into(),
        )];
    };
    let (entries, mut out) = parse(manifest);
    let accesses = env_accesses(ws);
    let declared: BTreeMap<&str, &EnvVarSpec> =
        entries.iter().map(|e| (e.name.as_str(), e)).collect();
    // 1. Undeclared access.
    for (name, path, line) in &accesses {
        if !declared.contains_key(name.as_str()) {
            out.push(Diagnostic {
                path: path.clone(),
                line: *line,
                rule: "env-registry",
                message: format!(
                    "env var `{name}` accessed without an env_manifest.toml entry — declare it \
                     (name, crate, default, effect) or remove the access"
                ),
            });
        }
    }
    // 2. Dead entries.
    for e in &entries {
        if !accesses.iter().any(|(name, _, _)| *name == e.name) {
            out.push(manifest_diag(
                e.line,
                format!(
                    "dead manifest entry `{}` — nothing in the workspace accesses it; delete \
                     the entry or wire the variable",
                    e.name
                ),
            ));
        }
    }
    // 3. README drift.
    if let Some(readme) = &ws.readme {
        match readme_region(readme) {
            Some(region) => {
                if region.trim() != render_table(&entries).trim() {
                    out.push(Diagnostic {
                        path: "README.md".into(),
                        line: 1 + readme[..readme.find(README_BEGIN).unwrap_or(0)].lines().count(),
                        rule: "env-registry",
                        message: "README env-var table is stale — regenerate it from the \
                                  manifest with `cargo run -p ppn-check -- --write-env-docs`"
                            .into(),
                    });
                }
            }
            None => out.push(Diagnostic {
                path: "README.md".into(),
                line: 1,
                rule: "env-registry",
                message: format!(
                    "README has no generated env-var region ({README_BEGIN} … {README_END}) — \
                     add the markers and run `--write-env-docs`"
                ),
            }),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::{Role, SourceFile};

    const MANIFEST: &str = "\
[[var]]
name = \"PPN_THREADS\"
crate = \"ppn-tensor\"
default = \"available parallelism\"
effect = \"Worker-pool size.\"
";

    fn ws(src: &str, manifest: &str, readme: Option<String>) -> Workspace {
        Workspace {
            files: vec![SourceFile::scan("crates/tensor/src/par.rs", "ppn-tensor", Role::Lib, src)],
            env_manifest: Some(manifest.to_string()),
            readme,
            api_golden: None,
        }
    }

    #[test]
    fn declared_and_accessed_is_clean() {
        let src = "pub fn n() -> usize {\n    std::env::var(\"PPN_THREADS\").ok().and_then(|s| s.parse().ok()).unwrap_or(1)\n}";
        assert!(check(&ws(src, MANIFEST, None)).is_empty());
    }

    #[test]
    fn undeclared_access_is_flagged() {
        let src = "pub fn n() {\n    let _ = std::env::var(\"PPN_THREADS\");\n    let _ = std::env::var(\"PPN_MYSTERY\");\n}";
        let d = check(&ws(src, MANIFEST, None));
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("PPN_MYSTERY"));
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn dead_entry_is_flagged_even_when_only_tests_touch_others() {
        let manifest = format!(
            "{MANIFEST}[[var]]\nname = \"PPN_TW_UNUSED\"\ncrate = \"ppn-bench\"\ndefault = \"unset\"\neffect = \"Nothing — dead.\"\n"
        );
        let src = "pub fn n() { let _ = std::env::var(\"PPN_THREADS\"); }";
        let d = check(&ws(src, &manifest, None));
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("dead manifest entry `PPN_TW_UNUSED`"));
        assert_eq!(d[0].path, MANIFEST_PATH);
    }

    #[test]
    fn set_var_in_test_code_counts_as_access() {
        // A set_var of an undeclared var inside #[cfg(test)] must be caught:
        // this is exactly the PPN_TW_UNUSED rot pattern.
        let src = "pub fn n() { let _ = std::env::var(\"PPN_THREADS\"); }\n#[cfg(test)]\nmod tests {\n    fn t() { std::env::set_var(\"PPN_TW_UNUSED\", \"1\"); }\n}";
        let d = check(&ws(src, MANIFEST, None));
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("PPN_TW_UNUSED"));
        assert_eq!(d[0].line, 4);
    }

    #[test]
    fn readme_drift_and_missing_markers_are_flagged() {
        let (entries, _) = parse(MANIFEST);
        let fresh =
            format!("intro\n{README_BEGIN}\n{}\n{README_END}\ntail\n", render_table(&entries));
        let src = "pub fn n() { let _ = std::env::var(\"PPN_THREADS\"); }";
        assert!(check(&ws(src, MANIFEST, Some(fresh))).is_empty());
        let stale = format!("intro\n{README_BEGIN}\n| old |\n{README_END}\n");
        let d = check(&ws(src, MANIFEST, Some(stale)));
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("stale"));
        let none = check(&ws(src, MANIFEST, Some("no markers here".into())));
        assert_eq!(none.len(), 1);
        assert!(none[0].message.contains("no generated env-var region"));
    }

    #[test]
    fn manifest_syntax_problems_are_diagnostics() {
        let broken = "[[var]]\nname = \"PPN_X\"\ncrate = \"ppn-core\"\ndefault = \"0\"\n";
        let (entries, diags) = parse(broken); // missing `effect`
        assert!(entries.is_empty());
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("missing field(s): effect"));
        let (_, dup) = parse(&format!("{MANIFEST}{MANIFEST}"));
        assert!(dup.iter().any(|d| d.message.contains("duplicate manifest entry")));
        let (_, bad) =
            parse("[[var]]\nname = \"NOT_PPN\"\ncrate = \"x\"\ndefault = \"0\"\neffect = \"e\"\n");
        assert!(bad.iter().any(|d| d.message.contains("not a PPN_* variable name")));
    }
}
