//! Lightweight lexical scanner for Rust sources.
//!
//! The rules in this crate are line-oriented: each needs to know, per line,
//! what is *code* and what is *comment*, with string-literal contents blanked
//! so that a pattern like `.unwrap()` inside a message never matches. On top
//! of the split the scanner derives brace structure (function body spans) and
//! `#[cfg(test)]` module spans so library-only rules can skip test code.
//!
//! This is deliberately not a full parser — it understands exactly the
//! subset of Rust lexical structure the rules need: line and nested block
//! comments, plain/escaped/raw string literals, char literals vs lifetimes,
//! and brace nesting. That keeps the engine dependency-free and fast while
//! staying robust on real-world sources.

/// What kind of compilation target a file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Part of a library target (`src/**`, excluding `bin/` and `main.rs`).
    Lib,
    /// Part of a binary target (`src/main.rs`, `src/bin/**`).
    Bin,
}

/// One source line after lexical classification.
#[derive(Debug, Clone)]
pub struct Line {
    /// Code content with comments removed and string contents blanked to `""`.
    pub code: String,
    /// Comment content (both `//` and `/* */` text landing on this line).
    pub comment: String,
    /// Contents of string literals that *close* on this line, in source
    /// order. A literal spanning lines is attributed to its closing line.
    /// Rules that must see literal text (e.g. `env::var("PPN_…")` names)
    /// read these instead of the blanked `code`.
    pub strings: Vec<String>,
}

/// A scanned source file plus the derived structure the rules consume.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path used in diagnostics.
    pub path: String,
    /// Owning crate's package name (e.g. `ppn-core`).
    pub crate_name: String,
    /// Library or binary target membership.
    pub role: Role,
    /// Classified lines, in order.
    pub lines: Vec<Line>,
    /// Inclusive 0-based line spans of `#[cfg(test)]`-gated items.
    pub test_spans: Vec<(usize, usize)>,
    /// Inclusive 0-based line spans of function bodies (`fn` line → closing
    /// brace line), innermost spans included alongside enclosing ones.
    pub fn_spans: Vec<(usize, usize)>,
    /// Per-line brace depth: `(depth at line start, depth at line end)`,
    /// counting `{`/`}` in classified code only (strings and comments never
    /// move the depth). The workspace passes use this to decide which lock
    /// guards are still lexically live at a given line.
    pub depths: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Scans `text` into lines, spans, and comment structure.
    pub fn scan(path: &str, crate_name: &str, role: Role, text: &str) -> SourceFile {
        let lines = split_lines(text);
        let test_spans = find_test_spans(&lines);
        let fn_spans = find_fn_spans(&lines);
        let depths = line_depths(&lines);
        SourceFile {
            path: path.to_string(),
            crate_name: crate_name.to_string(),
            role,
            lines,
            test_spans,
            fn_spans,
            depths,
        }
    }

    /// True when 0-based `line` falls inside a `#[cfg(test)]` item.
    pub fn in_test(&self, line: usize) -> bool {
        self.test_spans.iter().any(|&(s, e)| (s..=e).contains(&line))
    }

    /// Innermost function-body span containing 0-based `line`, if any.
    pub fn enclosing_fn(&self, line: usize) -> Option<(usize, usize)> {
        self.fn_spans
            .iter()
            .copied()
            .filter(|&(s, e)| (s..=e).contains(&line))
            .min_by_key(|&(s, e)| e - s)
    }
}

/// Splits source text into per-line (code, comment) pairs.
///
/// String contents are blanked (`"…"` → `""`) so rule patterns never match
/// inside literals; comment text is preserved verbatim because the
/// `ppn-check:` directives live there.
pub fn split_lines(text: &str) -> Vec<Line> {
    #[derive(PartialEq)]
    enum State {
        Normal,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize),
    }
    let mut out = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut strings = Vec::new();
    let mut str_buf = String::new();
    let mut state = State::Normal;
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Normal;
            }
            out.push(Line {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
                strings: std::mem::take(&mut strings),
            });
            i += 1;
            continue;
        }
        let next = chars.get(i + 1).copied().unwrap_or('\0');
        match state {
            State::Normal => match c {
                '/' if next == '/' => {
                    state = State::LineComment;
                    i += 2;
                }
                '/' if next == '*' => {
                    state = State::BlockComment(1);
                    i += 2;
                }
                '"' => {
                    // Blank the contents but keep the delimiters.
                    code.push_str("\"\"");
                    state = State::Str;
                    i += 1;
                }
                'r' if next == '"' || (next == '#' && raw_str_hashes(&chars, i + 1).is_some()) => {
                    let hashes =
                        if next == '"' { 0 } else { raw_str_hashes(&chars, i + 1).unwrap_or(0) };
                    code.push_str("\"\"");
                    state = State::RawStr(hashes);
                    i += 2 + hashes; // skip r, hashes, opening quote
                }
                '\'' => {
                    // Char literal ('x', '\n', '\u{..}') vs lifetime ('a).
                    if next == '\\' {
                        // Escaped char literal: skip to the closing quote.
                        code.push_str("' '");
                        let mut j = i + 2;
                        while j < chars.len() && chars[j] != '\'' {
                            j += 1;
                        }
                        i = j + 1;
                    } else if chars.get(i + 2).copied() == Some('\'') {
                        code.push_str("' '");
                        i += 3;
                    } else {
                        // Lifetime: keep the tick, continue normally.
                        code.push(c);
                        i += 1;
                    }
                }
                _ => {
                    code.push(c);
                    i += 1;
                }
            },
            State::LineComment => {
                comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '/' && next == '*' {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && next == '/' {
                    state = if depth == 1 { State::Normal } else { State::BlockComment(depth - 1) };
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    // Keep the escaped pair verbatim (handles \" and \\).
                    str_buf.push(c);
                    if let Some(&n) = chars.get(i + 1) {
                        str_buf.push(n);
                    }
                    i += 2;
                } else if c == '"' {
                    strings.push(std::mem::take(&mut str_buf));
                    state = State::Normal;
                    i += 1;
                } else {
                    str_buf.push(c);
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    strings.push(std::mem::take(&mut str_buf));
                    state = State::Normal;
                    i += 1 + hashes;
                } else {
                    str_buf.push(c);
                    i += 1;
                }
            }
        }
    }
    if !code.is_empty() || !comment.is_empty() || !strings.is_empty() {
        out.push(Line { code, comment, strings });
    }
    out
}

/// Per-line `(start, end)` brace depth over classified code. Depth never
/// goes negative (stray `}` saturates at 0) so damaged input cannot poison
/// the rest of the file.
pub fn line_depths(lines: &[Line]) -> Vec<(usize, usize)> {
    let mut depth = 0usize;
    lines
        .iter()
        .map(|line| {
            let start = depth;
            for c in line.code.chars() {
                match c {
                    '{' => depth += 1,
                    '}' => depth = depth.saturating_sub(1),
                    _ => {}
                }
            }
            (start, depth)
        })
        .collect()
}

/// A method call site extracted from one classified code line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Receiver expression text (`self.jobs`, `REGISTRY`, `queue`), with
    /// balanced trailing call/index groups preserved (`foo()`).
    pub receiver: String,
    /// Method name (`lock`, `read`, `wait`, …).
    pub method: String,
    /// Byte offset of the `.` in the line's code (source order key).
    pub at: usize,
}

/// Extracts `receiver.method(…)` call sites from a classified code line.
/// Purely lexical: the receiver is the longest chain of identifiers, `.`,
/// `::`, and balanced `()`/`[]` groups ending at the dot.
pub fn call_sites(code: &str) -> Vec<CallSite> {
    let b = code.as_bytes();
    let mut out = Vec::new();
    for i in 0..b.len() {
        if b[i] != b'.' {
            continue;
        }
        // Method name: ident (not starting with a digit) followed by `(`.
        let mut j = i + 1;
        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
            j += 1;
        }
        if j == i + 1 || j >= b.len() || b[j] != b'(' || b[i + 1].is_ascii_digit() {
            continue;
        }
        let method = &code[i + 1..j];
        // Receiver: walk left over idents, `.`, `::`, and balanced groups.
        let mut k = i;
        while k > 0 {
            let p = b[k - 1];
            if p.is_ascii_alphanumeric() || p == b'_' || p == b'.' || p == b':' {
                k -= 1;
            } else if p == b')' || p == b']' {
                let (open, close) = if p == b')' { (b'(', b')') } else { (b'[', b']') };
                let mut bal = 0i32;
                let mut q = k;
                while q > 0 {
                    q -= 1;
                    if b[q] == close {
                        bal += 1;
                    } else if b[q] == open {
                        bal -= 1;
                        if bal == 0 {
                            break;
                        }
                    }
                }
                if bal != 0 {
                    break;
                }
                k = q;
            } else {
                break;
            }
        }
        let receiver = code[k..i].trim_start_matches(['.', ':']).to_string();
        if !receiver.is_empty() {
            out.push(CallSite { receiver, method: method.to_string(), at: i });
        }
    }
    out
}

/// Number of `#` between `r` and the opening quote of a raw string starting
/// at `chars[from]` (which must point at the first `#`), if well-formed.
fn raw_str_hashes(chars: &[char], from: usize) -> Option<usize> {
    let mut j = from;
    while chars.get(j).copied() == Some('#') {
        j += 1;
    }
    (chars.get(j).copied() == Some('"')).then_some(j - from)
}

fn closes_raw(chars: &[char], at: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| chars.get(at + k).copied() == Some('#'))
}

/// Finds `#[cfg(test)]` item spans: the attribute, any further attributes,
/// and the brace block of the following `mod`/`fn` item.
fn find_test_spans(lines: &[Line]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let t = line.code.trim();
        if !(t.starts_with("#[cfg(test)]") || t.starts_with("#[test]")) {
            continue;
        }
        // Walk forward past attributes/blank lines to the item header.
        let mut j = i;
        while j < lines.len() {
            let c = lines[j].code.trim();
            if !c.is_empty() && !c.starts_with("#[") && !c.starts_with("#!") {
                break;
            }
            j += 1;
        }
        if let Some((_, end)) = brace_span(lines, j) {
            spans.push((i, end));
        }
    }
    spans
}

/// Finds every function-body span (line of the `fn` keyword through the
/// closing brace of its body).
fn find_fn_spans(lines: &[Line]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for i in 0..lines.len() {
        if has_fn_keyword(&lines[i].code) {
            if let Some((_, end)) = brace_span(lines, i) {
                spans.push((i, end));
            }
        }
    }
    spans
}

/// True when the code text contains the `fn` keyword as a whole word.
fn has_fn_keyword(code: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find("fn") {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident_char(bytes[at - 1] as char);
        let after_ok = at + 2 >= bytes.len() || !is_ident_char(bytes[at + 2] as char);
        if before_ok && after_ok {
            return true;
        }
        from = at + 2;
    }
    false
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Starting the search at line `from`, finds the first `{` and returns the
/// inclusive line span up to its matching `}`. Returns `None` when a `;`
/// terminates the item before any brace (e.g. trait method declarations) or
/// the braces never balance.
pub fn brace_span(lines: &[Line], from: usize) -> Option<(usize, usize)> {
    let mut depth = 0usize;
    let mut opened = false;
    for (j, line) in lines.iter().enumerate().skip(from) {
        for c in line.code.chars() {
            match c {
                '{' => {
                    opened = true;
                    depth += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if opened && depth == 0 {
                        return Some((from, j));
                    }
                }
                ';' if !opened => return None,
                _ => {}
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_are_blanked_and_comments_split() {
        let src = "let x = \"a.unwrap() inside\"; // trailing note\nlet y = 1;";
        let lines = split_lines(src);
        assert_eq!(lines.len(), 2);
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].code.contains("\"\""));
        assert_eq!(lines[0].comment.trim(), "trailing note");
        assert_eq!(lines[1].code, "let y = 1;");
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let src = "a /* one /* two */ still */ b\n/* open\nclose */ c";
        let lines = split_lines(src);
        assert_eq!(lines[0].code.replace(' ', ""), "ab");
        assert_eq!(lines[1].code.trim(), "");
        assert_eq!(lines[2].code.trim(), "c");
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) -> char { '\\n' }";
        let lines = split_lines(src);
        assert!(lines[0].code.contains("<'a>"));
        assert!(!lines[0].code.contains("\\n"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let src = "let p = r#\"panic!(\"no\")\"#; let q = 2;";
        let lines = split_lines(src);
        assert!(!lines[0].code.contains("panic"));
        assert!(lines[0].code.contains("let q = 2;"));
    }

    #[test]
    fn test_spans_cover_cfg_test_modules() {
        let src = "pub fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\npub fn after() {}";
        let f = SourceFile::scan("x.rs", "ppn-core", Role::Lib, src);
        assert!(!f.in_test(0));
        assert!(f.in_test(3));
        assert!(!f.in_test(5));
    }

    #[test]
    fn fn_spans_find_enclosing_bodies() {
        let src = "fn outer() {\n    let a = 1;\n    fn inner() {\n        let b = 2;\n    }\n}";
        let f = SourceFile::scan("x.rs", "ppn-core", Role::Lib, src);
        assert_eq!(f.enclosing_fn(3), Some((2, 4)));
        assert_eq!(f.enclosing_fn(1), Some((0, 5)));
    }

    #[test]
    fn trait_method_declarations_have_no_span() {
        let src = "trait T {\n    fn decl(&self) -> usize;\n}";
        let lines = split_lines(src);
        assert_eq!(brace_span(&lines, 1), None);
    }

    #[test]
    fn string_contents_are_captured_per_line() {
        let src = "let v = std::env::var(\"PPN_THREADS\");\nlet r = r#\"raw {brace}\"#;";
        let lines = split_lines(src);
        assert_eq!(lines[0].strings, vec!["PPN_THREADS".to_string()]);
        assert_eq!(lines[1].strings, vec!["raw {brace}".to_string()]);
        // Escapes are preserved verbatim, not interpreted.
        let esc = split_lines("let s = \"a\\\"b\";");
        assert_eq!(esc[0].strings, vec!["a\\\"b".to_string()]);
    }

    #[test]
    fn depths_ignore_braces_in_strings_and_comments() {
        let src = "fn f() {\n    let s = \"{{{\"; // }}}\n    if x { y(); }\n}";
        let f = SourceFile::scan("x.rs", "ppn-core", Role::Lib, src);
        assert_eq!(f.depths, vec![(0, 1), (1, 1), (1, 1), (1, 0)]);
    }

    #[test]
    fn call_sites_extract_receiver_chains() {
        let sites = call_sites("    let g = self.jobs.lock();");
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].receiver, "self.jobs");
        assert_eq!(sites[0].method, "lock");
        let chained = call_sites("REGISTRY.lock().push(x.len())");
        let names: Vec<(&str, &str)> =
            chained.iter().map(|s| (s.receiver.as_str(), s.method.as_str())).collect();
        assert!(names.contains(&("REGISTRY", "lock")));
        assert!(names.contains(&("REGISTRY.lock()", "push")));
        assert!(names.contains(&("x", "len")));
        // Tuple access and float literals are not method calls.
        assert!(call_sites("let x = t.0; let y = 1.5;").is_empty());
    }
}
