//! Fixture: contract tags without backing invariant calls.

// ppn-check: contract(simplex)
pub fn project(v: &[f64]) -> Vec<f64> {
    v.to_vec()
}

// ppn-check: contract(finite)
pub fn reward(x: f64) -> f64 {
    x.ln()
}

// ppn-check: contract(bogus)
pub fn unknown_kind(x: f64) -> f64 {
    x
}

// ppn-check: contract(simplex)
pub const DETACHED: f64 = 1.0;
