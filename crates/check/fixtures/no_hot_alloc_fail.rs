//! no-hot-alloc failing fixture: claimed at `crates/tensor/src/graph.rs`.
//! Every fresh allocation below sits inside a hot-listed function, so each
//! one is a per-step heap allocation the storage arena exists to remove.

impl Graph {
    fn propagate(&mut self, i: usize) {
        let tmp = vec![0.0; 8];
        let mut buf = Vec::with_capacity(8);
        buf.extend_from_slice(&tmp);
        let t = Tensor::zeros(&[2, 2]);
        drop((buf, t, i));
    }
}
