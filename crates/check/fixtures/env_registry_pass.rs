//! Fixture: every `PPN_*` access matches the manifest, and mentioning a
//! variable name outside an env call (a doc string, a log line) is not an
//! access.

pub fn threads() -> usize {
    std::env::var("PPN_THREADS").ok().and_then(|s| s.parse().ok()).unwrap_or(1)
}

pub fn banner() -> String {
    format!("pool size comes from PPN_THREADS ({})", threads())
}
