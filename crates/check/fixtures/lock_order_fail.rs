//! Fixture: a real AB/BA deadlock. `ab` nests JOBS → STATS while `ba`
//! nests STATS → JOBS; under contention each thread can hold its first
//! lock and block forever on the other. The lock-order pass must report
//! the cycle with both acquisition sites.

static JOBS: Mutex<Vec<u32>> = Mutex::new(Vec::new());
static STATS: Mutex<u32> = Mutex::new(0);

pub fn ab() {
    let jobs = JOBS.lock();
    let mut stats = STATS.lock();
    *stats += jobs.len() as u32;
    drop((jobs, stats));
}

pub fn ba() {
    let stats = STATS.lock();
    let mut jobs = JOBS.lock();
    jobs.push(*stats);
    drop((stats, jobs));
}
