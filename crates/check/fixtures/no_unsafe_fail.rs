//! no-unsafe failing fixture. Claimed outside the audited storage/simd
//! modules both unsafe lines are violations; claimed at
//! `crates/tensor/src/storage.rs` only the SAFETY-comment-less one is.

/// Writes with a justification comment (fine inside audited files only).
pub fn write_one(p: *mut f64) {
    // SAFETY: callers hold a live, exclusive allocation behind `p`.
    unsafe { *p = 1.0 };
}

/// Writes without any justification (a violation everywhere).
pub fn write_two(p: *mut f64) {
    unsafe { *p = 2.0 };
}
