#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Fixture: a crate root carrying both required lint headers.

/// Does nothing.
pub fn noop() {}
