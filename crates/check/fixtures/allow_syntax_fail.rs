//! Fixture: malformed allow-comments are diagnostics themselves.

pub fn f(xs: &[f64]) -> f64 {
    // ppn-check: allow(no-panic)
    let a = *xs.first().unwrap();
    // ppn-check: allow(not-a-rule) some reason
    a
}
