//! Fixture: a crate root with neither lint header.

pub fn noop() {}
