//! Fixture: unwraps confined to test code, allow-comments, strings, and
//! non-matching identifiers are all fine.

pub fn describe() -> String {
    // A string literal mentioning .unwrap() must never match.
    let msg = "never call .unwrap() in prod";
    let not_todo_marker = has_panic_handler();
    format!("{msg} {not_todo_marker}")
}

fn has_panic_handler() -> bool {
    false
}

pub fn justified(xs: &[f64]) -> f64 {
    // ppn-check: allow(no-panic) invariant: caller guarantees non-empty input
    *xs.first().expect("non-empty by construction")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let xs = vec![1.0];
        assert_eq!(*xs.first().unwrap(), 1.0);
    }
}
