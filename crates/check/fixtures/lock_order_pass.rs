//! Fixture: the same two locks, always acquired in the same global order
//! (JOBS before STATS), with scoped and explicit releases in between — a
//! cycle-free lock-order graph.

static JOBS: Mutex<Vec<u32>> = Mutex::new(Vec::new());
static STATS: Mutex<u32> = Mutex::new(0);

pub fn ab() {
    let jobs = JOBS.lock();
    let mut stats = STATS.lock();
    *stats += jobs.len() as u32;
    drop((jobs, stats));
}

pub fn sequential() {
    {
        let stats = STATS.lock();
        drop(stats);
    }
    let jobs = JOBS.lock();
    drop(jobs);
}

pub fn released_before_next() {
    let stats = STATS.lock();
    drop(stats);
    let jobs = JOBS.lock();
    drop(jobs);
}
