//! Clean: parallelism goes through the pool; non-spawning thread APIs and
//! test code are fine.

pub fn fan_out(data: &mut [f64]) {
    ppn_tensor::par::par_chunks_mut(data, 8, |_, chunk| {
        chunk.iter_mut().for_each(|v| *v += 1.0);
    });
}

pub fn host_width() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

pub fn backoff(d: std::time::Duration) {
    std::thread::sleep(d);
}

pub fn sanctioned() {
    // ppn-check: allow(no-thread) exercising the escape hatch in a fixture
    let _ = std::thread::spawn(|| 1);
}

#[cfg(test)]
mod tests {
    #[test]
    fn spawning_in_tests_is_fine() {
        let h = std::thread::spawn(|| 2 + 2);
        assert_eq!(h.join().unwrap(), 4);
    }
}
