//! Fixture: a well-formed allow-comment suppresses exactly its finding.

pub fn f(xs: &[f64]) -> f64 {
    // ppn-check: allow(no-panic) invariant: validated non-empty by the caller
    *xs.first().expect("non-empty")
}
