//! Fixture: direct clock reads in a numerical crate — both patterns must
//! be flagged outside obs/trace/bench.

pub fn timed_step() -> f64 {
    let t0 = std::time::Instant::now();
    let wall = std::time::SystemTime::now();
    drop(wall);
    t0.elapsed().as_secs_f64()
}
