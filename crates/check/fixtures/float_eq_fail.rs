//! Fixture: exact float equality against literals.

pub fn degenerate(psi: f64, dd: f64) -> bool {
    if psi == 0.0 {
        return true;
    }
    dd != 1.5
}
