//! Fixture: one declared access (fine) and one undeclared `PPN_*` access
//! (flagged) — the manifest used by the test declares only PPN_THREADS.

pub fn threads() -> usize {
    std::env::var("PPN_THREADS").ok().and_then(|s| s.parse().ok()).unwrap_or(1)
}

pub fn mystery() -> bool {
    std::env::var("PPN_UNDECLARED").is_ok()
}
