//! Fixture: public items without doc comments.

pub fn undocumented() {}

pub struct Bare {
    pub field: f64,
}
