//! no-unsafe passing fixture: claimed at `crates/tensor/src/storage.rs`,
//! where unsafe is permitted as long as every unsafe line carries a SAFETY
//! comment on the same line or within three lines above.
#![allow(unsafe_code)]

/// Writes 1.0 through an externally validated pointer.
pub fn write_one(p: *mut f64) {
    // SAFETY: callers hold a live, exclusive allocation behind `p`.
    unsafe { *p = 1.0 };
}

/// # Safety
/// Caller must pass a pointer into a live allocation of at least one f64.
#[inline]
pub unsafe fn read_one(p: *const f64) -> f64 {
    unsafe { *p } // SAFETY: contract documented on the enclosing fn.
}
