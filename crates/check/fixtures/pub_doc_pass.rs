//! Fixture: every public item documented; private items need nothing.

/// A documented function.
pub fn documented() {}

/// A documented struct.
#[derive(Clone)]
pub struct Covered {
    /// A documented field.
    pub field: f64,
}

fn private_needs_no_doc() {}

#[cfg(test)]
mod tests {
    pub fn test_helpers_are_exempt() {}
}
