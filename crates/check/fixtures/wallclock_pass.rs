//! Fixture: clock *types* and differencing are fine anywhere; reads route
//! through the `ppn_obs::clock` chokepoint; test code is exempt.

use std::time::Instant;

pub struct Stamped {
    pub at: Instant,
}

pub fn timed_step() -> f64 {
    let t0 = ppn_obs::clock::now();
    t0.elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_read_the_clock() {
        let _ = std::time::Instant::now();
    }
}
