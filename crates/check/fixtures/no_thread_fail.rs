//! Violations: first-party code spawning threads outside ppn_tensor::par.

pub fn fan_out(items: Vec<u64>) -> Vec<u64> {
    let h = std::thread::spawn(move || items.iter().sum::<u64>());
    vec![h.join().unwrap_or(0)]
}

pub fn scoped(data: &mut [f64]) {
    std::thread::scope(|s| {
        for chunk in data.chunks_mut(8) {
            s.spawn(|| chunk.iter_mut().for_each(|v| *v += 1.0));
        }
    });
}

pub fn named_worker() {
    let _ = thread::Builder::new().name("worker".into());
}
