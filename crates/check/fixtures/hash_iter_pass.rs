//! Fixture: hash containers are fine when consumed through a sort or an
//! order-insensitive reduction.

use std::collections::HashMap;

pub fn render_sorted() -> String {
    let reg: HashMap<String, u64> = HashMap::new();
    let mut rows: Vec<(String, u64)> = reg.iter().map(|(k, v)| (k.clone(), *v)).collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = String::new();
    for (k, v) in rows {
        out.push_str(&format!("{k}={v}\n"));
    }
    out
}

pub fn total() -> u64 {
    let reg: HashMap<String, u64> = HashMap::new();
    reg.values().map(|v| *v).sum()
}
