//! Fixture: contract tags backed by the matching invariant calls.

use ppn_market::contracts::{assert_finite, assert_simplex};

// ppn-check: contract(simplex)
pub fn project(v: &[f64]) -> Vec<f64> {
    let p = v.to_vec();
    assert_simplex(&p, "project");
    p
}

// ppn-check: contract(finite)
pub fn reward(x: f64) -> f64 {
    let r = x.ln();
    assert_finite(&[r], "reward");
    r
}
