//! Fixture: a small crate surface for the api-surface golden workflow —
//! top-level items, a method behind an impl, a pub field, and private
//! items that must stay out of the snapshot.

pub struct Pool {
    pub workers: usize,
    queue: Vec<u32>,
}

impl Pool {
    pub fn submit(&self) {}
    fn rebalance(&self) {}
}

pub fn spawn() -> Pool {
    Pool { workers: 1, queue: Vec::new() }
}

pub const MAX: usize = 64;

pub(crate) fn internal() {}
